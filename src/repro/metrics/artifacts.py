"""Artifact-morphology metrics: blockiness and surface distance.

The paper attributes distinct artifact *shapes* to the two codecs:
"block-wise" artifacts from SZ-L/R's independent 6³ blocks (§3.3, Figures
9f/11e) versus smooth global "bump" artifacts from SZ-Interp (Figure 10b).
These metrics turn that observation into numbers:

* :func:`blockiness` — the ratio of reconstruction-error jump energy on
  block boundaries to jump energy inside blocks. ≈1 for block-agnostic
  artifacts; ≫1 when errors are coherent within blocks and jump at their
  edges.
* :func:`hausdorff_distance` — symmetric surface-to-surface distance
  between two triangle meshes (sampled at vertices and centroids),
  quantifying iso-surface displacement caused by compression.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.errors import MetricError
from repro.util.validation import check_array, check_same_shape
from repro.viz.mesh import TriangleMesh

__all__ = ["blockiness", "hausdorff_distance"]


def blockiness(original: np.ndarray, restored: np.ndarray, block: int = 6) -> float:
    """Block-boundary jump energy ratio of the reconstruction error.

    For every axis, first differences of the error field are split into
    those that straddle a block boundary (positions ``block, 2*block, ...``)
    and interior ones; the result is
    ``mean(boundary jump^2) / mean(interior jump^2)``.

    A codec whose errors are independent of any block grid scores ~1.0;
    a block-based codec whose errors are correlated *within* blocks but
    discontinuous *across* them scores well above 1.

    Parameters
    ----------
    original, restored:
        Equal-shaped arrays.
    block:
        Block edge to test against (6 for the paper's SZ-L/R).
    """
    a = check_array("original", original).astype(np.float64, copy=False)
    b = check_array("restored", restored).astype(np.float64, copy=False)
    check_same_shape("original", a, "restored", b)
    if block < 2:
        raise MetricError(f"block must be >= 2, got {block}")
    if any(s < 2 * block for s in a.shape):
        raise MetricError(f"array shape {a.shape} too small for block {block}")
    err = b - a
    boundary_sq = 0.0
    boundary_n = 0
    interior_sq = 0.0
    interior_n = 0
    for axis in range(err.ndim):
        diff = np.diff(err, axis=axis)
        n = diff.shape[axis]
        # diff[i] straddles cells i and i+1; block boundary when i+1 ≡ 0
        # (mod block).
        idx = np.arange(n)
        is_boundary = (idx + 1) % block == 0
        mv = np.moveaxis(diff, axis, 0)
        bnd = mv[is_boundary]
        inr = mv[~is_boundary]
        boundary_sq += float((bnd * bnd).sum())
        boundary_n += bnd.size
        interior_sq += float((inr * inr).sum())
        interior_n += inr.size
    if boundary_n == 0 or interior_n == 0:
        raise MetricError("degenerate block/shape combination")
    interior_mean = interior_sq / interior_n
    if interior_mean == 0.0:
        return float("inf") if boundary_sq > 0 else 1.0
    return (boundary_sq / boundary_n) / interior_mean


def _samples(mesh: TriangleMesh) -> np.ndarray:
    if mesh.is_empty():
        raise MetricError("cannot measure distance to an empty mesh")
    cent = mesh.vertices[mesh.faces].mean(axis=1)
    return np.concatenate([mesh.vertices, cent])


def hausdorff_distance(mesh_a: TriangleMesh, mesh_b: TriangleMesh) -> float:
    """Symmetric Hausdorff distance between surface sample sets.

    Sampled at vertices plus triangle centroids, so the value is an upper
    bound on the true surface distance up to one triangle's extent — ample
    for comparing iso-surfaces extracted on the same grid.
    """
    pa = _samples(mesh_a)
    pb = _samples(mesh_b)
    d_ab, _ = cKDTree(pb).query(pa)
    d_ba, _ = cKDTree(pa).query(pb)
    return float(max(d_ab.max(), d_ba.max()))
