"""Rate-distortion sweeps (Figures 12 and 13 of the paper).

Sweep a codec across error bounds on one field, collecting compression
ratio, bitrate, PSNR (on the data) and optionally SSIM/R-SSIM (on rendered
images via a caller-supplied callback — the paper computes image SSIM, so
the renderer is injected rather than hard-wired here).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.compression.base import Compressor
from repro.compression.registry import make_codec
from repro.metrics.error import psnr
from repro.metrics.ssim import ssim as _ssim

__all__ = ["RDPoint", "RDCurve", "rate_distortion_sweep"]


@dataclass(frozen=True)
class RDPoint:
    """One point of a rate-distortion curve."""

    error_bound: float
    ratio: float
    bitrate: float
    psnr: float
    ssim: float | None = None

    @property
    def r_ssim(self) -> float | None:
        """Reverse SSIM (1 - SSIM)."""
        return None if self.ssim is None else 1.0 - self.ssim


@dataclass
class RDCurve:
    """A labeled sequence of RD points."""

    label: str
    points: list[RDPoint] = field(default_factory=list)

    def column(self, name: str) -> list[float]:
        """Extract one metric as a list (e.g. ``"ratio"``, ``"psnr"``)."""
        return [getattr(p, name) for p in self.points]


def rate_distortion_sweep(
    data: np.ndarray,
    codec: str | Compressor,
    error_bounds: Sequence[float],
    mode: str = "rel",
    image_fn: Callable[[np.ndarray], np.ndarray] | None = None,
    label: str | None = None,
) -> RDCurve:
    """Sweep ``codec`` over ``error_bounds`` on ``data``.

    Parameters
    ----------
    data:
        Field to compress (uniform array).
    codec:
        Registry name or instance.
    error_bounds:
        Bound values (interpreted per ``mode``), typically log-spaced.
    mode:
        ``"rel"`` (paper convention) or ``"abs"``.
    image_fn:
        Optional callback mapping a field array to a rendered 2-D image;
        when given, SSIM is computed between the images of the original and
        decompressed data (the paper's methodology for Table 2 / Figs 12-13).
    label:
        Curve label (defaults to the codec name).
    """
    comp = make_codec(codec) if isinstance(codec, str) else codec
    curve = RDCurve(label=label if label is not None else comp.name)
    ref_image = image_fn(data) if image_fn is not None else None
    n_bytes = np.asarray(data).nbytes
    for eb in error_bounds:
        blob = comp.compress(data, eb, mode=mode)
        restored = comp.decompress(blob)
        ratio = n_bytes / len(blob)
        bitrate = 8.0 * len(blob) / np.asarray(data).size
        quality = psnr(data, restored)
        ssim_val: float | None = None
        if image_fn is not None:
            ssim_val = _ssim(ref_image, image_fn(restored))
        curve.points.append(
            RDPoint(error_bound=float(eb), ratio=ratio, bitrate=bitrate, psnr=quality, ssim=ssim_val)
        )
    return curve
