"""Point-wise reconstruction-error metrics (PSNR and friends).

PSNR in the paper (Table 2, Figures 12/13) is computed on the *field data*
(original vs decompressed values), with the peak set to the original data's
value range — the standard convention of the SZ literature.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MetricError
from repro.util.validation import check_array, check_same_shape

__all__ = ["max_abs_error", "mse", "rmse", "nrmse", "psnr", "verify_error_bound"]


def _pair(original: np.ndarray, restored: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = check_array("original", original)
    b = check_array("restored", restored)
    check_same_shape("original", a, "restored", b)
    return a.astype(np.float64, copy=False), b.astype(np.float64, copy=False)


def max_abs_error(original: np.ndarray, restored: np.ndarray) -> float:
    """Largest absolute point-wise deviation."""
    a, b = _pair(original, restored)
    return float(np.abs(a - b).max())


def mse(original: np.ndarray, restored: np.ndarray) -> float:
    """Mean squared error."""
    a, b = _pair(original, restored)
    diff = a - b
    return float(np.mean(diff * diff))


def rmse(original: np.ndarray, restored: np.ndarray) -> float:
    """Root mean squared error."""
    return float(np.sqrt(mse(original, restored)))


def nrmse(original: np.ndarray, restored: np.ndarray) -> float:
    """RMSE normalized by the original value range."""
    a, b = _pair(original, restored)
    value_range = float(a.max() - a.min())
    if value_range == 0.0:
        raise MetricError("NRMSE undefined for constant original data")
    return rmse(a, b) / value_range


def psnr(original: np.ndarray, restored: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB (peak = original value range).

    Identical arrays give ``inf``.
    """
    a, b = _pair(original, restored)
    value_range = float(a.max() - a.min())
    if value_range == 0.0:
        raise MetricError("PSNR undefined for constant original data")
    err = mse(a, b)
    if err == 0.0:
        return float("inf")
    return float(20.0 * np.log10(value_range) - 10.0 * np.log10(err))


def verify_error_bound(original: np.ndarray, restored: np.ndarray, eb: float, rtol: float = 1e-9) -> bool:
    """Whether ``|original - restored| <= eb`` holds everywhere (with a
    tiny relative tolerance for float rounding at exactly the bound)."""
    if eb <= 0:
        raise MetricError(f"error bound must be > 0, got {eb}")
    return max_abs_error(original, restored) <= eb * (1.0 + rtol)
