"""Quality metrics: point-wise error, PSNR, SSIM / R-SSIM, rate-distortion."""

from repro.metrics.error import max_abs_error, mse, rmse, nrmse, psnr, verify_error_bound
from repro.metrics.ssim import ssim, ssim_map, r_ssim
from repro.metrics.rd import RDPoint, RDCurve, rate_distortion_sweep
from repro.metrics.artifacts import blockiness, hausdorff_distance
from repro.metrics.spectrum import power_spectrum, spectrum_distortion

__all__ = [
    "max_abs_error",
    "mse",
    "rmse",
    "nrmse",
    "psnr",
    "verify_error_bound",
    "ssim",
    "ssim_map",
    "r_ssim",
    "RDPoint",
    "RDCurve",
    "rate_distortion_sweep",
    "blockiness",
    "hausdorff_distance",
    "power_spectrum",
    "spectrum_distortion",
]
