"""Power-spectrum preservation analysis.

Nyx users judge reduced data by how well it preserves the matter power
spectrum P(k) (the standard summary statistic of cosmological fields; the
paper's companion works, e.g. Jin et al. 2020, adopt exactly this
criterion). These helpers measure the isotropic P(k) of a periodic field
and the relative spectral distortion a codec introduces — an analysis-
driven quality axis complementing PSNR/SSIM.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MetricError
from repro.util.validation import check_array, check_same_shape

__all__ = ["power_spectrum", "spectrum_distortion"]


def power_spectrum(field: np.ndarray, n_bins: int = 16) -> tuple[np.ndarray, np.ndarray]:
    """Isotropic power spectrum of a periodic field.

    Parameters
    ----------
    field:
        2-D or 3-D array (treated as one period of a periodic signal).
    n_bins:
        Number of |k| bins between the fundamental and the Nyquist mode.

    Returns
    -------
    (k_centers, power):
        Bin-center wavenumbers (cycles per box) and mean ``|FFT|^2`` per
        bin, DC excluded.
    """
    arr = check_array("field", field).astype(np.float64, copy=False)
    if arr.ndim not in (2, 3):
        raise MetricError(f"power_spectrum expects 2-D or 3-D data, got {arr.ndim}-D")
    if n_bins < 2:
        raise MetricError(f"n_bins must be >= 2, got {n_bins}")
    fourier = np.fft.fftn(arr - arr.mean())
    power = np.abs(fourier) ** 2 / arr.size
    axes = [np.fft.fftfreq(n) * n for n in arr.shape]  # integer mode numbers
    grids = np.meshgrid(*axes, indexing="ij")
    kmag = np.sqrt(sum(g * g for g in grids))
    nyquist = min(arr.shape) / 2.0
    edges = np.linspace(1.0, nyquist, n_bins + 1)
    centers = 0.5 * (edges[:-1] + edges[1:])
    out = np.zeros(n_bins)
    flat_k = kmag.ravel()
    flat_p = power.ravel()
    which = np.digitize(flat_k, edges) - 1
    valid = (which >= 0) & (which < n_bins) & (flat_k > 0)
    counts = np.bincount(which[valid], minlength=n_bins)
    sums = np.bincount(which[valid], weights=flat_p[valid], minlength=n_bins)
    nonzero = counts > 0
    out[nonzero] = sums[nonzero] / counts[nonzero]
    return centers, out


def spectrum_distortion(
    original: np.ndarray, restored: np.ndarray, n_bins: int = 16
) -> tuple[np.ndarray, np.ndarray]:
    """Per-bin relative power error ``|P'(k)/P(k) - 1|``.

    Returns ``(k_centers, distortion)``; bins with zero reference power are
    reported as 0 when the restored power is also 0, else ``inf``.
    """
    a = check_array("original", original)
    b = check_array("restored", restored)
    check_same_shape("original", a, "restored", b)
    k, p_ref = power_spectrum(a, n_bins)
    _, p_got = power_spectrum(b, n_bins)
    out = np.zeros_like(p_ref)
    nz = p_ref > 0
    out[nz] = np.abs(p_got[nz] / p_ref[nz] - 1.0)
    out[~nz & (p_got > 0)] = np.inf
    return k, out
