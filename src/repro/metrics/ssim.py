"""Structural similarity (SSIM) and the paper's reverse SSIM (R-SSIM).

From-scratch implementation of Wang et al. (IEEE TIP 2004): local means,
variances and covariance from a Gaussian-weighted window, combined into the
familiar luminance/contrast/structure product, averaged over the image.
Works on 2-D images (the paper computes SSIM on rendered iso-surface
images) and, with a uniform cubic window, on 3-D volumes.

The paper observes SSIM saturates near 1.0 for small error bounds and
proposes ``R-SSIM = 1 - SSIM`` (Eq. 1) as the intuitive scale; Figures
12/13 plot R-SSIM on a log axis.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import convolve1d, uniform_filter

from repro.errors import MetricError
from repro.util.validation import check_array, check_same_shape

__all__ = ["ssim", "r_ssim", "ssim_map"]


def _gaussian_kernel(size: int, sigma: float) -> np.ndarray:
    half = size // 2
    x = np.arange(-half, half + 1, dtype=np.float64)
    k = np.exp(-(x * x) / (2.0 * sigma * sigma))
    return k / k.sum()


def _local_mean(arr: np.ndarray, window: int, sigma: float | None) -> np.ndarray:
    """Windowed local mean; Gaussian (separable) or uniform when sigma is None."""
    if sigma is None:
        return uniform_filter(arr, size=window, mode="reflect")
    kernel = _gaussian_kernel(window, sigma)
    out = arr
    for axis in range(arr.ndim):
        out = convolve1d(out, kernel, axis=axis, mode="reflect")
    return out


def ssim_map(
    reference: np.ndarray,
    test: np.ndarray,
    data_range: float | None = None,
    window: int = 11,
    sigma: float | None = 1.5,
) -> np.ndarray:
    """Per-pixel SSIM map between two arrays of equal shape.

    Parameters
    ----------
    reference, test:
        Arrays to compare (2-D images or 3-D volumes).
    data_range:
        Dynamic range of the data; defaults to the reference's value range
        (1.0 for a constant reference).
    window:
        Window size (odd).
    sigma:
        Gaussian window sigma; ``None`` selects a uniform window (cheaper,
        the usual choice for volumes).
    """
    a = check_array("reference", reference).astype(np.float64, copy=False)
    b = check_array("test", test).astype(np.float64, copy=False)
    check_same_shape("reference", a, "test", b)
    if window % 2 == 0 or window < 3:
        raise MetricError(f"window must be odd and >= 3, got {window}")
    if min(a.shape) < window:
        raise MetricError(f"array shape {a.shape} smaller than window {window}")
    if data_range is None:
        data_range = float(a.max() - a.min())
        if data_range == 0.0:
            data_range = 1.0
    c1 = (0.01 * data_range) ** 2
    c2 = (0.03 * data_range) ** 2
    mu_a = _local_mean(a, window, sigma)
    mu_b = _local_mean(b, window, sigma)
    mu_aa = _local_mean(a * a, window, sigma)
    mu_bb = _local_mean(b * b, window, sigma)
    mu_ab = _local_mean(a * b, window, sigma)
    var_a = np.maximum(mu_aa - mu_a * mu_a, 0.0)
    var_b = np.maximum(mu_bb - mu_b * mu_b, 0.0)
    cov = mu_ab - mu_a * mu_b
    num = (2.0 * mu_a * mu_b + c1) * (2.0 * cov + c2)
    den = (mu_a * mu_a + mu_b * mu_b + c1) * (var_a + var_b + c2)
    return num / den


def ssim(
    reference: np.ndarray,
    test: np.ndarray,
    data_range: float | None = None,
    window: int = 11,
    sigma: float | None = 1.5,
) -> float:
    """Mean SSIM (see :func:`ssim_map`)."""
    return float(ssim_map(reference, test, data_range, window, sigma).mean())


def r_ssim(
    reference: np.ndarray,
    test: np.ndarray,
    data_range: float | None = None,
    window: int = 11,
    sigma: float | None = 1.5,
) -> float:
    """Reverse SSIM, ``1 - SSIM`` (paper Eq. 1) — higher means worse."""
    return 1.0 - ssim(reference, test, data_range, window, sigma)
