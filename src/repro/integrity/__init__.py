"""Self-healing storage: integrity scrub, XOR parity, and repair.

Three layers over the container formats' existing checksums:

* :func:`scrub` — walk any snapshot / series / sharded campaign and
  verify every checksum it carries, reporting structured
  :class:`Finding` rows (``python -m repro.compression scrub``).
* :mod:`repro.integrity.parity` — the ``RPXP`` XOR parity-shard format
  written by ``ShardedSeriesWriter(parity=p)``.
* :func:`repair_sharded` — reconstruct damaged or missing shard
  segments bit-exactly from parity and recommit indexes + manifest
  (``python -m repro.compression repair``); :class:`SegmentHealer` does
  the same reconstruction on the fly for ``repro.serve``.
"""

from repro.integrity.parity import (
    PARITY_MAGIC,
    PARITY_SCHEME,
    PARITY_VERSION,
    ParityReader,
    ParityStripe,
    StripeMember,
    build_parity,
    parity_groups,
    parity_names,
    xor_blocks,
)
from repro.integrity.repair import (
    MemberDamage,
    RepairReport,
    SegmentHealer,
    repair_sharded,
)
from repro.integrity.scrub import Finding, ScrubReport, scrub

__all__ = [
    "PARITY_MAGIC",
    "PARITY_SCHEME",
    "PARITY_VERSION",
    "ParityReader",
    "ParityStripe",
    "StripeMember",
    "build_parity",
    "parity_groups",
    "parity_names",
    "xor_blocks",
    "Finding",
    "ScrubReport",
    "scrub",
    "MemberDamage",
    "RepairReport",
    "SegmentHealer",
    "repair_sharded",
]
