"""Integrity scrub: walk a container and verify every checksum it carries.

Production storage rots silently; the repro's formats were built so that
rot is *detectable* — every layer carries a crc32. This module is the
proactive side of that design: :func:`scrub` walks a file (or a whole
sharded campaign) and verifies every checksum the formats define,
emitting one structured :class:`Finding` per violation instead of raising
on the first. A clean file produces an empty report; production runs
scrub on a schedule and feed findings to
:func:`repro.integrity.repair_sharded`.

What gets verified, per format (magic-sniffed):

* ``RPH2`` snapshot container — footer magic, index crc, every patch
  stream crc, every ``RPGB`` group header crc, every group member
  payload crc.
* ``RPH2S`` series — series footer + timestep-index crc, every
  ``RPH2SEAL`` record (body crc and agreement with the index row), every
  segment's whole-segment crc, then the full container walk above
  *inside every segment*. A footerless (crashed) series is still
  scrubbed: the seal scan locates the segments.
* ``RPHM`` sharded manifest — manifest body crc + schema, then every
  data shard (series walk), every parity shard, and — when every member
  of a stripe is individually healthy — the XOR identity
  ``parity == XOR(members)`` itself.
* ``RPXP`` parity shard — footer + index crc, every stripe's parity
  block crc.

All reads go through a :class:`repro.storage.StorageBackend`, so remote
campaigns scrub the same way local ones do. Surfaced on the CLI as
``python -m repro.compression scrub``.
"""

from __future__ import annotations

import io
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.compression.container import ContainerReader
from repro.errors import FormatError, StorageError, TruncatedSeriesError
from repro.insitu.series import (
    SEAL_SIZE,
    SERIES_MAGIC,
    SeriesReader,
    unpack_seal,
)
from repro.insitu.sharded import MANIFEST_MAGIC, _shard_path, parse_manifest
from repro.integrity.parity import PARITY_MAGIC, ParityReader, xor_blocks
from repro.storage import LocalFileBackend, StorageBackend

__all__ = ["Finding", "ScrubReport", "scrub"]


@dataclass(frozen=True)
class Finding:
    """One integrity violation: which file, which check, where."""

    #: Object name the damage lives in.
    file: str
    #: Check that failed — one of ``missing``, ``unreadable``, ``framing``,
    #: ``footer``, ``index``, ``segment``, ``seal``, ``stream``,
    #: ``group-header``, ``group-payload``, ``manifest``,
    #: ``parity-stripe``, ``parity-member``, ``parity-mismatch``.
    kind: str
    #: Human-readable specifics (expected vs got, the caught error, ...).
    detail: str
    step: int | None = None
    level: int | None = None
    field: str | None = None
    patch: int | None = None
    gid: int | None = None
    member: int | None = None

    def describe(self) -> str:
        where = [os.path.basename(self.file)]
        for label, v in (
            ("step", self.step), ("level", self.level), ("field", self.field),
            ("patch", self.patch), ("group", self.gid), ("member", self.member),
        ):
            if v is not None:
                where.append(f"{label}={v}")
        return f"[{self.kind}] {' '.join(where)}: {self.detail}"


@dataclass
class ScrubReport:
    """Everything one :func:`scrub` walk verified, and what failed."""

    #: The object the scrub was pointed at.
    root: str
    findings: list[Finding] = field(default_factory=list)
    #: Files visited (manifest + shards + parity count individually).
    objects: int = 0
    #: Series segments walked.
    segments: int = 0
    #: Patch streams / group payloads crc-checked.
    streams: int = 0
    #: Total bytes actually read and checksummed.
    bytes_verified: int = 0

    @property
    def clean(self) -> bool:
        """True when every checksum the walk touched verified."""
        return not self.findings

    def describe(self) -> str:
        lines = [
            f"{self.root}: scrubbed {self.objects} object(s), "
            f"{self.segments} segment(s), {self.streams} stream(s), "
            f"{self.bytes_verified} byte(s) verified — "
            + ("clean" if self.clean else f"{len(self.findings)} finding(s)")
        ]
        lines.extend("  " + f.describe() for f in self.findings)
        return "\n".join(lines)


class _Scrubber:
    def __init__(self, root: str, backend: StorageBackend):
        self.backend = backend
        self.report = ScrubReport(root=str(root))

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def add(self, file: str, kind: str, detail: str, **loc) -> None:
        self.report.findings.append(Finding(file, kind, detail, **loc))

    def _read_all(self, name: str) -> bytes | None:
        """Whole-object read; a missing/unreadable object is a finding."""
        try:
            handle = self.backend.open_read(name)
        except StorageError as exc:
            kind = "missing" if not self.backend.exists(name) else "unreadable"
            self.add(name, kind, str(exc))
            return None
        try:
            return handle.read()
        except (OSError, StorageError) as exc:
            self.add(name, "unreadable", str(exc))
            return None
        finally:
            handle.close()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def scrub_object(self, name: str) -> None:
        blob = self._read_all(name)
        if blob is None:
            return
        self.report.objects += 1
        # RPH2S shares the RPH2 prefix by design — sniff the longer magic
        # first.
        if blob.startswith(SERIES_MAGIC):
            self.scrub_series(name, blob)
        elif blob.startswith(MANIFEST_MAGIC):
            self.scrub_manifest(name, blob)
        elif blob.startswith(PARITY_MAGIC):
            self.scrub_parity(name, blob)
        elif blob.startswith(b"RPH2"):
            self.scrub_container(name, blob)
        else:
            self.add(
                name, "framing",
                f"unrecognized magic {bytes(blob[:5])!r} — not an "
                "RPH2/RPH2S/RPHM/RPXP object",
            )

    # ------------------------------------------------------------------
    # RPH2 snapshot container
    # ------------------------------------------------------------------
    def scrub_container(
        self, name: str, blob: bytes, step: int | None = None
    ) -> None:
        """Walk one container's bytes: index, streams, groups."""
        try:
            reader = ContainerReader(blob)
        except FormatError as exc:
            self.add(name, "index", str(exc), step=step)
            return
        try:
            for e in reader.entries:
                try:
                    got = reader.read_stream(e, verify=True)
                    self.report.streams += 1
                    self.report.bytes_verified += len(got)
                except FormatError as exc:
                    self.add(
                        name, "stream", str(exc), step=step,
                        level=e.level, field=e.field, patch=e.patch,
                    )
            for g in reader.group_entries:
                try:
                    handle = reader.group(g.gid, verify=True)
                    self.report.bytes_verified += handle.header_len
                except FormatError as exc:
                    self.add(name, "group-header", str(exc), step=step, gid=g.gid)
                    continue
                for m in range(handle.n_patches):
                    try:
                        got = handle.read_payload(m, verify=True)
                        self.report.streams += 1
                        self.report.bytes_verified += len(got)
                    except FormatError as exc:
                        self.add(
                            name, "group-payload", str(exc),
                            step=step, gid=g.gid, member=m,
                        )
        finally:
            reader.close()

    # ------------------------------------------------------------------
    # RPH2S series
    # ------------------------------------------------------------------
    def scrub_series(self, name: str, blob: bytes) -> None:
        """Walk one series: footer/index, seals, segment crcs, and the
        container walk inside every segment."""
        entries = None
        try:
            with SeriesReader(io.BytesIO(blob)) as reader:
                entries = list(reader.step_entries)
        except TruncatedSeriesError as exc:
            self.add(name, "footer", str(exc))
        except FormatError as exc:
            self.add(name, "index", str(exc))
            return
        if entries is None:
            # Footerless (crashed) series: the sealed segments are still
            # worth scrubbing — locate them the way recovery does.
            from repro.insitu.recovery import scan_segments

            try:
                entries = [s.entry for s in scan_segments(blob).steps]
            except FormatError as exc:
                self.add(name, "framing", str(exc))
                return
        for e in entries:
            self.report.segments += 1
            seg = blob[e.offset : e.offset + e.length]
            if len(seg) != e.length:
                self.add(
                    name, "segment",
                    f"segment truncated ({len(seg)} of {e.length} bytes)",
                    step=e.step,
                )
                continue
            if zlib.crc32(seg) != e.crc32:
                self.add(
                    name, "segment",
                    "whole-segment checksum mismatch vs timestep index",
                    step=e.step,
                )
            else:
                self.report.bytes_verified += len(seg)
            seal_blob = blob[e.offset + e.length : e.offset + e.length + SEAL_SIZE]
            sealed = unpack_seal(seal_blob) if len(seal_blob) == SEAL_SIZE else None
            if sealed is None:
                self.add(
                    name, "seal",
                    "seal record missing or fails its body crc", step=e.step,
                )
            elif sealed != e:
                self.add(
                    name, "seal",
                    "seal record disagrees with the timestep-index row",
                    step=e.step,
                )
            else:
                self.report.bytes_verified += SEAL_SIZE
            # Deep-walk the embedded container even when the whole-segment
            # crc failed: the per-stream findings say *where* the rot is.
            self.scrub_container(name, seg, step=e.step)

    # ------------------------------------------------------------------
    # RPXP parity shard
    # ------------------------------------------------------------------
    def scrub_parity(self, name: str, blob: bytes) -> "ParityReader | None":
        """Verify one parity shard's framing, index, and stripe crcs.
        Returns the parsed reader (over in-memory bytes) for the caller's
        cross-file XOR check, or ``None`` when unparseable."""
        try:
            reader = _BytesParityReader(name, blob)
        except FormatError as exc:
            self.add(name, "index", str(exc))
            return None
        for s in reader.stripes:
            try:
                got = reader.parity_bytes(s, verify=True)
                self.report.bytes_verified += len(got)
            except FormatError as exc:
                self.add(name, "parity-stripe", str(exc))
        return reader

    # ------------------------------------------------------------------
    # RPHM sharded manifest (the campaign walk)
    # ------------------------------------------------------------------
    def scrub_manifest(self, name: str, blob: bytes) -> None:
        try:
            man = parse_manifest(blob)
            self.report.bytes_verified += len(blob)
        except (TruncatedSeriesError, FormatError) as exc:
            self.add(name, "manifest", str(exc))
            # Still scrub whatever shards can be discovered by convention.
            root, _ = os.path.splitext(name)
            for shard in sorted(self.backend.list(f"{root}.shard")):
                if shard.endswith(".rph2s"):
                    self.scrub_object(shard)
            for pfile in sorted(self.backend.list(f"{root}.parity")):
                if pfile.endswith(".rpxp"):
                    self.scrub_object(pfile)
            return
        shard_blobs: dict[str, bytes | None] = {}
        for row in man["shards"]:
            full = _shard_path(name, row["name"])
            shard_blob = self._read_all(full)
            shard_blobs[row["name"]] = shard_blob
            if shard_blob is None:
                continue
            self.report.objects += 1
            self.scrub_series(full, shard_blob)
        for prow in man.get("parity") or []:
            full = _shard_path(name, prow["name"])
            pblob = self._read_all(full)
            if pblob is None:
                continue
            self.report.objects += 1
            reader = self.scrub_parity(full, pblob)
            if reader is None:
                continue
            self._check_parity_identity(full, reader, shard_blobs)

    def _check_parity_identity(
        self,
        pname: str,
        reader: "ParityReader",
        shard_blobs: dict[str, bytes | None],
    ) -> None:
        """The deepest check: for each stripe whose members all pass their
        recorded crcs, assert ``XOR(members) == parity``. A member that
        already failed (or a missing shard) is its own finding; the
        identity check would only re-report it, so it is skipped."""
        for s in reader.stripes:
            blocks = []
            for m in s.members:
                shard_blob = shard_blobs.get(m.shard)
                if shard_blob is None:
                    blocks = None  # shard missing/unreadable: already found
                    break
                seg = shard_blob[m.offset : m.offset + m.length]
                if len(seg) != m.length or zlib.crc32(seg) != m.crc32:
                    self.add(
                        pname, "parity-member",
                        f"{m.shard} step {m.step} fails the crc recorded in "
                        "the parity index", step=m.step,
                    )
                    blocks = None
                    break
                blocks.append(seg)
            if blocks is None:
                continue
            try:
                parity = reader.parity_bytes(s, verify=False)
            except FormatError:
                continue  # already reported as parity-stripe
            if xor_blocks(blocks, length=len(parity)) != parity:
                self.add(
                    pname, "parity-mismatch",
                    f"stripe {s.index}: XOR of all (individually healthy) "
                    "members does not equal the stored parity block — the "
                    "parity is stale or bit-rotted",
                )


class _BytesParityReader(ParityReader):
    """ParityReader over already-fetched bytes (one read, no reopen)."""

    def __init__(self, name: str, blob: bytes):
        self._name = str(name)
        self._backend = None
        self._handle = io.BytesIO(blob)
        self._parse()


def scrub(
    path: str | Path, backend: StorageBackend | None = None
) -> ScrubReport:
    """Verify every checksum ``path`` (and, for a manifest, its whole
    campaign) carries; returns a :class:`ScrubReport`.

    Never modifies anything and never raises on damage — damage becomes
    :class:`Finding` rows. Only a *caller* error (no such object at all,
    through a backend that raises something other than
    :class:`~repro.errors.StorageError`) escapes.

    .. code-block:: python

        from repro.integrity import scrub

        report = scrub("run.rphm")
        if not report.clean:
            print(report.describe())
    """
    scrubber = _Scrubber(str(path), backend or LocalFileBackend())
    scrubber.scrub_object(str(path))
    return scrubber.report
