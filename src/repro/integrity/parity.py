"""RPXP parity shards: XOR redundancy over sharded campaigns.

A sharded RPHM campaign (:mod:`repro.insitu.sharded`) already *detects*
damage — every sealed step segment carries a whole-segment crc32 — but a
dead or bit-rotted shard is permanent data loss. This module adds the
redundancy that turns detection into repair: ``ShardedSeriesWriter``
created with ``parity=p`` writes ``p`` **parity shard files** alongside
the data shards, each holding the byte-wise XOR of its member shards'
sealed step segments.

Scheme (``xor-stripe-v1``, spec'd in ``docs/container_format.md``):

* Data shard ``k`` belongs to parity group ``k % p``; parity shard ``j``
  covers the group's members in shard order.
* **Stripe** ``i`` of a group XORs the ``i``-th sealed step segment of
  each member that has at least ``i + 1`` steps. Segments differ in
  length, so each member's bytes are zero-padded to the longest member's
  length (the *padded-block* rule: ``XOR`` of nothing is ``0``, so
  padding is free and reconstruction just truncates back to the recorded
  member length).
* A stripe member is the segment **plus its seal record** — exactly the
  bytes crash recovery needs to re-index a reconstructed shard.

Losing at most one member per stripe is recoverable bit-exactly:
``parity XOR (all surviving members, padded)`` is the lost member, and
the member's recorded crc32 proves the reconstruction before anyone
trusts it.

Parity file layout:

.. code-block:: text

    offset 0   magic    b"RPXP"                                 (4 bytes)
    offset 4   u8       parity version (currently 1)
    offset 5   stripe parity blocks, back to back (raw XOR bytes)
    ...        parity index: JSON document (see below)
    EOF-28     footer: u64 index_offset, u64 index_length,
               u32 crc32(index bytes), footer magic b"RPXP-IDX"

Parity index schema (JSON)::

    {
      "format": "rpxp", "version": 1, "scheme": "xor-stripe-v1",
      "group": int,                      # which parity group this file is
      "members": [str, ...],             # member shard basenames, in order
      "stripes": [[stripe, offset, length, crc32,
                   [[member, step, seg_offset, seg_length, seg_crc32],
                    ...]], ...]
    }

``offset``/``length``/``crc32`` locate and check the stripe's parity
bytes inside this file; each member row records which shard (an index
into ``members``), which step, where the segment+seal lives in that
shard, how long it is, and the crc32 of those exact bytes.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Callable, Sequence

import numpy as np

from repro.errors import FormatError, IntegrityError, StorageError
from repro.storage import LocalFileBackend, StorageBackend

__all__ = [
    "PARITY_MAGIC",
    "PARITY_FOOTER_MAGIC",
    "PARITY_VERSION",
    "PARITY_SCHEME",
    "StripeMember",
    "ParityStripe",
    "ParityReader",
    "parity_names",
    "parity_groups",
    "build_parity",
    "pack_parity_index",
    "xor_blocks",
]

PARITY_MAGIC = b"RPXP"
PARITY_FOOTER_MAGIC = b"RPXP-IDX"
PARITY_VERSION = 1
#: The one scheme this version writes and reads.
PARITY_SCHEME = "xor-stripe-v1"
_PARITY_HEADER = struct.Struct("<4sB")
_PARITY_FOOTER = struct.Struct("<QQI8s")


def parity_names(manifest: str | Path, parity: int) -> list[str]:
    """Full parity object names for a manifest name (same directory)."""
    root, _ = os.path.splitext(str(manifest))
    return [f"{root}.parity{j:03d}.rpxp" for j in range(parity)]


def parity_groups(n_shards: int, parity: int) -> list[list[int]]:
    """Member data-shard indices of each parity group (``k % parity``)."""
    return [
        [k for k in range(n_shards) if k % parity == j] for j in range(parity)
    ]


def xor_blocks(blocks: Sequence[bytes], length: int | None = None) -> bytes:
    """Byte-wise XOR of ``blocks``, each zero-padded to the longest (or to
    ``length``) — the padded-block rule both build and repair use."""
    width = max((len(b) for b in blocks), default=0)
    if length is not None:
        width = max(width, int(length))
    acc = np.zeros(width, dtype=np.uint8)
    for b in blocks:
        if b:
            acc[: len(b)] ^= np.frombuffer(b, dtype=np.uint8)
    return acc.tobytes()


@dataclass(frozen=True)
class StripeMember:
    """One data-shard segment covered by a stripe."""

    #: Member shard basename (resolves against the parity file's directory).
    shard: str
    step: int
    #: Absolute offset of the segment inside the shard file.
    offset: int
    #: Segment length *including* its seal record.
    length: int
    #: crc32 of exactly those ``length`` bytes.
    crc32: int


@dataclass(frozen=True)
class ParityStripe:
    """One XOR block over the i-th sealed segment of each group member."""

    index: int
    #: Where the parity bytes live inside the parity file.
    offset: int
    length: int
    crc32: int
    members: tuple[StripeMember, ...]

    def member_for(self, shard: str, step: int) -> StripeMember | None:
        for m in self.members:
            if m.shard == shard and m.step == step:
                return m
        return None


def pack_parity_index(
    group: int, members: Sequence[str], stripes: Sequence[ParityStripe]
) -> bytes:
    """Serialize the parity index JSON (canonical key order)."""
    member_pos = {name: i for i, name in enumerate(members)}
    index = {
        "format": "rpxp",
        "version": PARITY_VERSION,
        "scheme": PARITY_SCHEME,
        "group": int(group),
        "members": list(members),
        "stripes": [
            [
                s.index, s.offset, s.length, s.crc32,
                [
                    [member_pos[m.shard], m.step, m.offset, m.length, m.crc32]
                    for m in s.members
                ],
            ]
            for s in stripes
        ],
    }
    return json.dumps(index, separators=(",", ":")).encode()


def _read_exact(handle: BinaryIO, offset: int, length: int, what: str) -> bytes:
    handle.seek(offset)
    blob = handle.read(length)
    if len(blob) != length:
        raise FormatError(
            f"{what}: read {len(blob)} of {length} bytes (truncated?)"
        )
    return blob


class ParityReader:
    """Random access over one RPXP parity shard file.

    Opens the footer and index eagerly (a few hundred bytes); stripe
    parity blocks are fetched on demand. :meth:`reconstruct` is the
    repair primitive: given a ``read`` callable over the member shards,
    it rebuilds one lost member's segment+seal bytes bit-exactly (crc
    proven) or raises :class:`~repro.errors.IntegrityError`.
    """

    def __init__(self, name: str, backend: StorageBackend | None = None):
        self._name = str(name)
        self._backend = backend or LocalFileBackend()
        self._handle = self._backend.open_read(self._name)
        try:
            self._parse()
        except BaseException:
            self._handle.close()
            raise

    def _parse(self) -> None:
        h = self._handle
        h.seek(0, 2)
        total = h.tell()
        if total < _PARITY_HEADER.size + _PARITY_FOOTER.size:
            raise FormatError(
                f"{self._name}: too short ({total} bytes) for RPXP framing"
            )
        magic, version = _PARITY_HEADER.unpack(
            _read_exact(h, 0, _PARITY_HEADER.size, "parity header")
        )
        if magic != PARITY_MAGIC:
            raise FormatError(
                f"{self._name}: not an RPXP parity shard (magic {magic!r})"
            )
        if version != PARITY_VERSION:
            raise FormatError(f"unsupported parity version {version}")
        footer = _read_exact(
            h, total - _PARITY_FOOTER.size, _PARITY_FOOTER.size, "parity footer"
        )
        idx_off, idx_len, idx_crc, fmagic = _PARITY_FOOTER.unpack(footer)
        if fmagic != PARITY_FOOTER_MAGIC:
            raise FormatError(
                f"{self._name}: bad parity footer magic {fmagic!r} "
                "(truncated or torn write)"
            )
        if idx_off + idx_len > total - _PARITY_FOOTER.size:
            raise FormatError(f"{self._name}: parity index extends past EOF")
        idx_bytes = _read_exact(h, idx_off, idx_len, "parity index")
        if zlib.crc32(idx_bytes) != idx_crc:
            raise FormatError(f"{self._name}: parity index checksum mismatch")
        try:
            index = json.loads(idx_bytes.decode())
            if index["format"] != "rpxp":
                raise FormatError(
                    f"unexpected parity index format {index['format']!r}"
                )
            if index["scheme"] != PARITY_SCHEME:
                raise FormatError(
                    f"unsupported parity scheme {index['scheme']!r}"
                )
            self.group = int(index["group"])
            self.members: tuple[str, ...] = tuple(index["members"])
            stripes = []
            for si, off, ln, crc, rows in index["stripes"]:
                stripes.append(
                    ParityStripe(
                        index=int(si), offset=int(off), length=int(ln),
                        crc32=int(crc),
                        members=tuple(
                            StripeMember(
                                shard=self.members[int(mi)], step=int(st),
                                offset=int(so), length=int(sl), crc32=int(sc),
                            )
                            for mi, st, so, sl, sc in rows
                        ),
                    )
                )
        except (json.JSONDecodeError, UnicodeDecodeError, KeyError,
                IndexError, ValueError, TypeError) as exc:
            raise FormatError(
                f"{self._name}: corrupt parity index: {exc!r}"
            ) from exc
        self.stripes: tuple[ParityStripe, ...] = tuple(stripes)
        self._by_member = {
            (m.shard, m.step): (s, m)
            for s in self.stripes
            for m in s.members
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "ParityReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def name(self) -> str:
        return self._name

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def stripe_for(self, shard: str, step: int) -> tuple[ParityStripe, StripeMember] | None:
        """The stripe (and member row) covering ``step`` of shard basename
        ``shard``, or ``None`` when this parity file does not cover it."""
        return self._by_member.get((os.path.basename(shard), int(step)))

    def parity_bytes(self, stripe: ParityStripe, verify: bool = True) -> bytes:
        """One stripe's raw XOR block (crc-checked unless ``verify=False``)."""
        blob = _read_exact(
            self._handle, stripe.offset, stripe.length,
            f"parity stripe {stripe.index}",
        )
        if verify and zlib.crc32(blob) != stripe.crc32:
            raise FormatError(
                f"{self._name}: parity stripe {stripe.index} checksum mismatch"
            )
        return blob

    def reconstruct(
        self,
        stripe: ParityStripe,
        lost: StripeMember,
        read: Callable[[str, int, int], bytes],
    ) -> bytes:
        """Rebuild one lost member's segment+seal bytes from the stripe.

        ``read(shard_basename, offset, length)`` must return the exact
        bytes of a *surviving* member (raising
        :class:`~repro.errors.StorageError` / :class:`~repro.errors.FormatError`
        when it cannot). Survivors are crc-checked before use — XORing a
        silently-corrupt survivor would manufacture plausible garbage —
        and the reconstruction is only returned once it matches the lost
        member's recorded crc32.
        """
        blocks = [self.parity_bytes(stripe)]
        for m in stripe.members:
            if m is lost or (m.shard == lost.shard and m.step == lost.step):
                continue
            try:
                blob = read(m.shard, m.offset, m.length)
            except (StorageError, FormatError, OSError) as exc:
                raise IntegrityError(
                    f"cannot reconstruct step {lost.step} of {lost.shard}: "
                    f"surviving member {m.shard} step {m.step} is also "
                    f"unreadable ({exc}) — {PARITY_SCHEME} covers one lost "
                    "member per stripe"
                ) from exc
            if len(blob) != m.length or zlib.crc32(blob) != m.crc32:
                raise IntegrityError(
                    f"cannot reconstruct step {lost.step} of {lost.shard}: "
                    f"surviving member {m.shard} step {m.step} fails its "
                    f"recorded crc — two lost members in one stripe exceed "
                    f"what {PARITY_SCHEME} can repair"
                )
            blocks.append(blob)
        out = xor_blocks(blocks)[: lost.length]
        if len(out) != lost.length or zlib.crc32(out) != lost.crc32:
            raise IntegrityError(
                f"reconstruction of step {lost.step} of {lost.shard} fails "
                "its recorded crc (parity block damaged or stale)"
            )
        return out


def build_parity(
    backend: StorageBackend,
    parity_name: str,
    group: int,
    member_names: Sequence[str],
    member_segments: Sequence[Sequence[tuple[int, int, int]]],
) -> dict:
    """Write one parity shard over its member shards' sealed segments.

    ``member_segments[i]`` lists ``(step, offset, length)`` rows for
    ``member_names[i]`` — the segment **plus seal** extents, in step
    order. Reads the member bytes back through ``backend``, XORs stripe
    by stripe (bounded memory: one stripe at a time), and writes the
    RPXP file. Returns the manifest accounting row::

        {"name": basename, "group": j, "members": [basenames],
         "stripes": n, "bytes": parity_file_size}
    """
    basenames = [os.path.basename(n) for n in member_names]
    base_dir = os.path.dirname(str(parity_name))

    def full(name: str) -> str:
        return os.path.join(base_dir, name) if base_dir else name

    handles = {}
    stripes: list[ParityStripe] = []
    out = backend.open_write(str(parity_name))
    try:
        for name in member_names:
            handles[os.path.basename(name)] = backend.open_read(str(name))
        pos = 0

        def emit(blob: bytes) -> None:
            nonlocal pos
            out.write(blob)
            pos += len(blob)

        emit(_PARITY_HEADER.pack(PARITY_MAGIC, PARITY_VERSION))
        depth = max((len(rows) for rows in member_segments), default=0)
        for i in range(depth):
            members: list[StripeMember] = []
            blocks: list[bytes] = []
            for shard, rows in zip(basenames, member_segments):
                if i >= len(rows):
                    continue
                step, offset, length = rows[i]
                blob = _read_exact(
                    handles[shard], offset, length,
                    f"{shard} step {step} segment",
                )
                members.append(
                    StripeMember(
                        shard=shard, step=int(step), offset=int(offset),
                        length=int(length), crc32=zlib.crc32(blob),
                    )
                )
                blocks.append(blob)
            parity = xor_blocks(blocks)
            stripes.append(
                ParityStripe(
                    index=i, offset=pos, length=len(parity),
                    crc32=zlib.crc32(parity), members=tuple(members),
                )
            )
            emit(parity)
        index_bytes = pack_parity_index(group, basenames, stripes)
        index_offset = pos
        emit(index_bytes)
        emit(
            _PARITY_FOOTER.pack(
                index_offset, len(index_bytes), zlib.crc32(index_bytes),
                PARITY_FOOTER_MAGIC,
            )
        )
        out.flush()
    finally:
        for h in handles.values():
            h.close()
        out.close()
    return {
        "name": os.path.basename(str(parity_name)),
        "group": int(group),
        "members": basenames,
        "stripes": len(stripes),
        "bytes": pos,
    }
