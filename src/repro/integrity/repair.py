"""Parity-based repair: rebuild damaged or missing shard segments bit-exactly.

:func:`repair_sharded` is the write-side counterpart of
:func:`repro.integrity.scrub`: where scrub *reports* damage, repair undoes
it. For every stripe recorded in a campaign's RPXP parity shards
(:mod:`repro.integrity.parity`), each member segment is classified by its
recorded crc32:

* all members healthy — verify the stripe's parity block (and rebuild it
  from the members when the block itself is damaged or stale);
* exactly one member lost (bit-rot, torn bytes, or the whole shard file
  deleted) — reconstruct it as ``parity XOR survivors``, proven by the
  member's recorded crc before anything is written;
* two or more members lost in one stripe — beyond what XOR parity can
  undo; recorded as unrecoverable.

Dry-run by default. With ``commit=True`` (local filesystem only) the
damaged shard files are rewritten — series header plus every segment at
its recorded offset, healthy bytes copied, lost ones reconstructed — and
then handed to the existing crash-recovery machinery:
:func:`repro.insitu.recovery.recover_series` re-derives each rewritten
shard's timestep index from its seals and
:func:`repro.insitu.sharded.recover_sharded` rewrites the final manifest
from the surviving shard indexes. Repair composes with recovery rather
than duplicating it: parity restores *segment bytes*; recovery rebuilds
*indexes* from those bytes.

Surfaced on the CLI as ``python -m repro.compression repair``.

:class:`SegmentHealer` is the read-side primitive the serving layer uses
to do the same reconstruction on the fly (``stats["repairs"]``), without
committing anything.
"""

from __future__ import annotations

import io
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from threading import Lock

from repro.errors import (
    FormatError,
    IntegrityError,
    StorageError,
    TruncatedSeriesError,
)
from repro.insitu.series import _SERIES_HEADER, SERIES_MAGIC, SERIES_VERSION
from repro.insitu.sharded import _shard_path, parse_manifest
from repro.integrity.parity import (
    ParityReader,
    ParityStripe,
    StripeMember,
    build_parity,
    xor_blocks,
)
from repro.storage import LocalFileBackend, StorageBackend

__all__ = ["MemberDamage", "RepairReport", "repair_sharded", "SegmentHealer"]


@dataclass(frozen=True)
class MemberDamage:
    """One stripe member that failed its recorded crc (or whose shard is
    gone), and what happened to it."""

    shard: str
    step: int
    #: Why the member was classified damaged.
    reason: str
    #: ``"reconstructed"`` (parity held), or ``"unrecoverable"`` with the
    #: blocking reason in :attr:`blocked_by`.
    outcome: str
    blocked_by: str | None = None


@dataclass
class RepairReport:
    """What :func:`repair_sharded` found, rebuilt, and could not rebuild."""

    manifest: str
    #: Stripes examined across all parity groups.
    scanned: int = 0
    #: Every damaged member, with its outcome.
    damaged: list[MemberDamage] = field(default_factory=list)
    #: Parity files that were themselves damaged or stale and rebuilt
    #: (or rebuildable) from healthy members.
    parity_rebuilt: list[str] = field(default_factory=list)
    #: True when ``commit=True`` actually rewrote files.
    committed: bool = False

    @property
    def reconstructed(self) -> list[MemberDamage]:
        return [d for d in self.damaged if d.outcome == "reconstructed"]

    @property
    def unrecoverable(self) -> list[MemberDamage]:
        return [d for d in self.damaged if d.outcome == "unrecoverable"]

    @property
    def clean(self) -> bool:
        """True when every stripe verified and no parity needed rebuilding."""
        return not self.damaged and not self.parity_rebuilt

    def describe(self) -> str:
        lines = [
            f"{self.manifest}: {self.scanned} stripe(s) scanned, "
            f"{len(self.reconstructed)} segment(s) "
            + ("reconstructed" if self.committed else "reconstructible")
            + f", {len(self.unrecoverable)} unrecoverable, "
            f"{len(self.parity_rebuilt)} parity file(s) "
            + ("rebuilt" if self.committed else "needing rebuild")
        ]
        for d in self.damaged:
            line = f"  {d.shard} step {d.step}: {d.reason} -> {d.outcome}"
            if d.blocked_by:
                line += f" ({d.blocked_by})"
            lines.append(line)
        for name in self.parity_rebuilt:
            lines.append(f"  {os.path.basename(name)}: parity out of date")
        return "\n".join(lines)


def _read_member(
    backend: StorageBackend, full_name: str, m: StripeMember
) -> tuple[bytes | None, str | None]:
    """Fetch one member's segment+seal bytes; ``(None, reason)`` on damage."""
    try:
        handle = backend.open_read(full_name)
    except StorageError as exc:
        return None, f"shard unreadable ({exc})" if backend.exists(full_name) \
            else "shard file missing"
    try:
        handle.seek(m.offset)
        blob = handle.read(m.length)
    except (OSError, StorageError) as exc:
        return None, f"read failed ({exc})"
    finally:
        handle.close()
    if len(blob) != m.length:
        return None, f"segment truncated ({len(blob)} of {m.length} bytes)"
    if zlib.crc32(blob) != m.crc32:
        return None, "segment fails its recorded crc"
    return blob, None


def _discover_parity(
    backend: StorageBackend, manifest_name: str
) -> list[str]:
    root, _ = os.path.splitext(manifest_name)
    return sorted(
        n for n in backend.list(f"{root}.parity") if n.endswith(".rpxp")
    )


def repair_sharded(
    path: str | Path,
    commit: bool = False,
    backend: StorageBackend | None = None,
) -> RepairReport:
    """Diagnose (and optionally repair) parity-covered damage in a sharded
    campaign.

    Dry-run by default: every stripe is classified and every single-loss
    reconstruction is *performed and crc-proven in memory*, but nothing is
    written — the report says exactly what ``commit=True`` would do. With
    ``commit=True`` (local filesystem backend only, same restriction as
    :func:`~repro.insitu.sharded.recover_sharded`) the damaged shard files
    are rewritten from healthy bytes + reconstructions, stale parity files
    are rebuilt, and the recovery machinery re-derives shard indexes and
    the final manifest.

    Raises :class:`~repro.errors.IntegrityError` when the campaign has no
    parity at all (nothing to repair *from*); multi-loss stripes do not
    raise — they are reported as unrecoverable so the single-loss stripes
    still heal.
    """
    if backend is not None and commit and not isinstance(backend, LocalFileBackend):
        raise StorageError(
            "repair_sharded(commit=True) requires a local backend; "
            "run dry (commit=False) for classification only"
        )
    backend_ = backend or LocalFileBackend()
    manifest_name = str(path)
    man: dict | None = None
    try:
        handle = backend_.open_read(manifest_name)
        try:
            man = parse_manifest(handle.read())
        finally:
            handle.close()
    except (TruncatedSeriesError, FormatError, StorageError):
        man = None
    if man is not None and man.get("parity"):
        parity_files = [
            _shard_path(manifest_name, row["name"]) for row in man["parity"]
        ]
    else:
        # Manifest gone/damaged/parity-free on paper: the parity files
        # themselves are discoverable by naming convention and carry full
        # membership in their indexes.
        parity_files = _discover_parity(backend_, manifest_name)
    if not parity_files:
        raise IntegrityError(
            f"{manifest_name}: campaign has no parity shards — nothing to "
            "repair from (write with ShardedSeriesWriter(parity=p) to add "
            "redundancy)"
        )
    report = RepairReport(manifest=manifest_name)
    # shard basename -> {offset: reconstructed segment+seal bytes}
    rebuilt: dict[str, dict[int, bytes]] = {}
    # shard basenames whose files need rewriting at commit
    shards_to_rewrite: set[str] = set()
    # full membership across every parity group (for manifest completion)
    all_members: list[str] = []
    parity_specs: list[tuple[str, int, list[str]]] = []

    for pfile in parity_files:
        try:
            reader = ParityReader(pfile, backend=backend_)
        except (FormatError, StorageError) as exc:
            # The parity file itself is damaged. Its stripes cannot help
            # anyone; it can only be rebuilt if *every* member is healthy,
            # which build_parity verifies implicitly at commit. Without a
            # parseable index we cannot even know the membership from this
            # file — skip it (the manifest row, if any, still names it).
            report.parity_rebuilt.append(pfile)
            if man is not None and man.get("parity"):
                for row in man["parity"]:
                    if _shard_path(manifest_name, row["name"]) == pfile:
                        parity_specs.append(
                            (pfile, int(row["group"]), list(row["members"]))
                        )
                        for m in row["members"]:
                            if m not in all_members:
                                all_members.append(m)
            continue
        try:
            parity_specs.append((pfile, reader.group, list(reader.members)))
            for m in reader.members:
                if m not in all_members:
                    all_members.append(m)
            for stripe in reader.stripes:
                report.scanned += 1
                _repair_stripe(
                    backend_, manifest_name, pfile, reader, stripe,
                    report, rebuilt, shards_to_rewrite,
                )
        finally:
            reader.close()

    if commit and (shards_to_rewrite or report.parity_rebuilt):
        _commit_repair(
            backend_, manifest_name, man, rebuilt, shards_to_rewrite,
            all_members, parity_specs, report,
        )
        report.committed = True
    return report


def _repair_stripe(
    backend: StorageBackend,
    manifest_name: str,
    pfile: str,
    reader: ParityReader,
    stripe: ParityStripe,
    report: RepairReport,
    rebuilt: dict[str, dict[int, bytes]],
    shards_to_rewrite: set[str],
) -> None:
    healthy: dict[str, bytes] = {}
    lost: list[tuple[StripeMember, str]] = []
    for m in stripe.members:
        blob, reason = _read_member(
            backend, _shard_path(manifest_name, m.shard), m
        )
        if blob is None:
            lost.append((m, reason))
        else:
            healthy[m.shard] = blob
    if not lost:
        # Verify (and if necessary schedule a rebuild of) the parity block.
        try:
            parity = reader.parity_bytes(stripe, verify=True)
            stale = xor_blocks(list(healthy.values()), len(parity)) != parity
        except FormatError:
            stale = True
        if stale and pfile not in report.parity_rebuilt:
            report.parity_rebuilt.append(pfile)
        return
    if len(lost) > 1:
        who = ", ".join(f"{m.shard} step {m.step}" for m, _ in lost)
        for m, reason in lost:
            report.damaged.append(
                MemberDamage(
                    shard=m.shard, step=m.step, reason=reason,
                    outcome="unrecoverable",
                    blocked_by=f"{len(lost)} members lost in one stripe ({who})",
                )
            )
        return
    m, reason = lost[0]
    try:
        blob = reader.reconstruct(
            stripe, m, lambda shard, off, ln: healthy[shard]
        )
    except IntegrityError as exc:
        report.damaged.append(
            MemberDamage(
                shard=m.shard, step=m.step, reason=reason,
                outcome="unrecoverable", blocked_by=str(exc),
            )
        )
        return
    rebuilt.setdefault(m.shard, {})[m.offset] = blob
    shards_to_rewrite.add(m.shard)
    report.damaged.append(
        MemberDamage(
            shard=m.shard, step=m.step, reason=reason,
            outcome="reconstructed",
        )
    )


def _commit_repair(
    backend: StorageBackend,
    manifest_name: str,
    man: dict | None,
    rebuilt: dict[str, dict[int, bytes]],
    shards_to_rewrite: set[str],
    all_members: list[str],
    parity_specs: list[tuple[str, int, list[str]]],
    report: RepairReport,
) -> None:
    """Write the repair: rewrite damaged shards (header + every segment at
    its recorded offset), rebuild stale parity, then hand index + manifest
    reconstruction to the recovery machinery."""
    from repro.insitu.recovery import recover_series
    from repro.insitu.sharded import _write_manifest, recover_sharded
    from repro.insitu.series import SEAL_SIZE, SeriesReader

    # 1. Rewrite each damaged shard: surviving segment bytes come from the
    # old file (crc-proven against the parity index), lost ones from the
    # reconstructions. Segments land at their recorded offsets; the result
    # is a footerless-but-fully-sealed series — exactly the shape
    # recover_series commits.
    extents: dict[str, list[StripeMember]] = {}
    for pfile, _, _ in parity_specs:
        try:
            r = ParityReader(pfile, backend=backend)
        except (FormatError, StorageError):
            continue
        try:
            for s in r.stripes:
                for m in s.members:
                    extents.setdefault(m.shard, []).append(m)
        finally:
            r.close()
    for shard in sorted(shards_to_rewrite):
        full = _shard_path(manifest_name, shard)
        members = sorted(extents.get(shard, []), key=lambda m: m.offset)
        segments: list[tuple[int, bytes]] = []
        for m in members:
            got = rebuilt.get(shard, {}).get(m.offset)
            if got is None:
                got, why = _read_member(backend, full, m)
                if got is None:
                    # This member was healthy during classification but is
                    # not retrievable now (or belongs to a multi-loss
                    # stripe): leave it out; recovery will simply not see
                    # a seal for it.
                    continue
            segments.append((m.offset, got))
        out = backend.open_write(full + ".repair")
        try:
            out.write(_SERIES_HEADER.pack(SERIES_MAGIC, SERIES_VERSION))
            pos = _SERIES_HEADER.size
            for offset, blob in segments:
                if offset > pos:
                    out.write(b"\x00" * (offset - pos))
                    pos = offset
                out.seek(offset)
                out.write(blob)
                pos = offset + len(blob)
            out.flush()
        finally:
            out.close()
        os.replace(full + ".repair", full)
        # Rebuild the rewritten shard's timestep index from its seals.
        recover_series(full, commit=True)
    # 2. Make sure the manifest names every member shard (a shard dropped
    # by an earlier recover run must reappear now that its file is back),
    # then let recover_sharded rebuild routing + final manifest from the
    # shard indexes. Parity accounting rows are preserved by it.
    if man is not None:
        known = {row["name"] for row in man["shards"]}
        missing_rows = [m for m in all_members if m not in known]
        if missing_rows:
            rows = list(man["shards"]) + [
                {"name": m, "durability": "close", "steps": []}
                for m in missing_rows
            ]
            meta = {
                k: man[k]
                for k in ("codec", "error_bound", "mode", "fields",
                          "exclude_covered")
            }
            _write_manifest(
                backend, manifest_name, meta, rows, final=False,
                parity=man.get("parity"),
            )
    recover_sharded(manifest_name, commit=True, backend=None)
    # 3. Rebuild any parity file that was damaged or went stale. Member
    # extents are re-read from the (now healthy) shard indexes.
    for pfile in report.parity_rebuilt:
        spec = next((s for s in parity_specs if s[0] == pfile), None)
        if spec is None:
            continue
        _, group, members = spec
        member_segments = []
        member_names = [_shard_path(manifest_name, m) for m in members]
        ok = True
        for full in member_names:
            try:
                with SeriesReader.open(full) as sr:
                    member_segments.append(
                        [
                            (e.step, e.offset, e.length + SEAL_SIZE)
                            for e in sr.step_entries
                        ]
                    )
            except (FormatError, StorageError, OSError):
                ok = False
                break
        if ok:
            build_parity(backend, pfile, group, member_names, member_segments)


class SegmentHealer:
    """On-the-fly single-segment reconstruction for the serving layer.

    Built from a campaign's manifest path and parity rows
    (:attr:`repro.insitu.sharded.ShardedSeriesReader.parity`); thread-safe.
    :meth:`heal` reconstructs one step's segment+seal bytes from the
    surviving shards without writing anything;
    :meth:`write_back` optionally patches the reconstruction into the
    damaged shard file in place (best-effort — storage that cannot seek
    past EOF, e.g. a deleted shard, is left to :func:`repair_sharded`).
    """

    def __init__(
        self,
        manifest_path: str,
        parity_rows,
        backend: StorageBackend | None = None,
    ):
        self._manifest = str(manifest_path)
        self._rows = list(parity_rows or [])
        self._backend = backend or LocalFileBackend()
        self._readers: dict[str, ParityReader | None] = {}
        self._lock = Lock()

    def close(self) -> None:
        with self._lock:
            for r in self._readers.values():
                if r is not None:
                    r.close()
            self._readers.clear()

    @property
    def covers(self) -> bool:
        """True when the campaign recorded any parity at all."""
        return bool(self._rows)

    def _reader_for(self, shard_base: str) -> ParityReader | None:
        for row in self._rows:
            if shard_base not in row["members"]:
                continue
            pfile = _shard_path(self._manifest, row["name"])
            with self._lock:
                if pfile not in self._readers:
                    try:
                        self._readers[pfile] = ParityReader(
                            pfile, backend=self._backend
                        )
                    except (FormatError, StorageError):
                        self._readers[pfile] = None
                return self._readers[pfile]
        return None

    def heal(self, shard_name: str, step: int) -> tuple[StripeMember, bytes]:
        """Reconstruct ``step``'s segment+seal bytes from parity.

        ``shard_name`` is the damaged shard (full name or basename).
        Returns the parity index's member record plus the proven bytes.
        Raises :class:`~repro.errors.IntegrityError` when the step is not
        parity-covered or the stripe has more than one loss.
        """
        base = os.path.basename(shard_name)
        reader = self._reader_for(base)
        if reader is None:
            raise IntegrityError(
                f"step {step} of {base} is not covered by a readable parity "
                "shard"
            )
        found = reader.stripe_for(base, step)
        if found is None:
            raise IntegrityError(
                f"parity shard {os.path.basename(reader.name)} does not "
                f"cover step {step} of {base}"
            )
        stripe, member = found

        def read(shard: str, offset: int, length: int) -> bytes:
            handle = self._backend.open_read(
                _shard_path(self._manifest, shard)
            )
            try:
                handle.seek(offset)
                return handle.read(length)
            finally:
                handle.close()

        return member, reader.reconstruct(stripe, member, read)

    def write_back(self, shard_name: str, member: StripeMember, blob: bytes) -> bool:
        """Best-effort in-place write of a reconstruction into the damaged
        shard file. Returns False (without raising) when the file is
        missing or too short to patch in place — those need
        :func:`repair_sharded`."""
        full = _shard_path(self._manifest, os.path.basename(shard_name))
        try:
            if not self._backend.exists(full):
                return False
            if self._backend.size(full) < member.offset + member.length:
                return False
            handle = self._backend.open_append(full)
            try:
                handle.seek(member.offset)
                handle.write(blob)
                handle.flush()
            finally:
                handle.close()
            return True
        except (OSError, StorageError):
            return False
