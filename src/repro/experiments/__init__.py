"""Paper experiment harness: Tables 1-2 and Figures 1-14 regenerators."""

from repro.experiments.datasets import AppDataset, load_app, APPS, PAPER_TABLE1, PAPER_TABLE2
from repro.experiments.table1 import Table1Row, run_table1
from repro.experiments.table2 import Table2Row, run_table2, DEFAULT_CODECS, DEFAULT_ERROR_BOUNDS
from repro.experiments.figures import (
    PipelineRow,
    TimestepRow,
    RDRow,
    run_fig1,
    run_fig2,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_fig14,
    run_rd,
    run_visual_compare,
    METHODS,
)
from repro.experiments.throughput import ThroughputRow, run_throughput
from repro.experiments.insitu import InsituRow, run_insitu
from repro.experiments.report import format_table, rows_to_csv, ascii_plot

__all__ = [
    "AppDataset",
    "load_app",
    "APPS",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "Table1Row",
    "run_table1",
    "Table2Row",
    "run_table2",
    "DEFAULT_CODECS",
    "DEFAULT_ERROR_BOUNDS",
    "PipelineRow",
    "TimestepRow",
    "RDRow",
    "run_fig1",
    "run_fig2",
    "run_fig9",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "run_fig14",
    "run_rd",
    "run_visual_compare",
    "METHODS",
    "ThroughputRow",
    "run_throughput",
    "InsituRow",
    "run_insitu",
    "format_table",
    "rows_to_csv",
    "ascii_plot",
]
