"""Figure experiments: crack/gap audits, visual comparisons, RD curves.

Each ``run_fig*`` function regenerates the data behind one paper figure and
returns structured rows; the CLI (:mod:`repro.experiments.__main__`) turns
them into text tables, CSV files and PGM images. Rendered-image R-SSIM is
the quantitative stand-in for the paper's side-by-side screenshots: for a
given method, we render the iso-surface of the original data and of the
decompressed data with identical framing and compare.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.amr.hierarchy import AMRHierarchy
from repro.compression.amr_codec import compress_hierarchy, decompress_hierarchy
from repro.experiments.datasets import AppDataset, load_app
from repro.metrics.error import psnr as _psnr
from repro.metrics.ssim import ssim as _ssim
from repro.sims.nyx import NyxConfig, nyx_timesteps
from repro.viz.cracks import CrackReport, crack_report
from repro.viz.line1d import Figure14Demo, figure14_demo
from repro.viz.pipelines import IsoSurfaceResult, dual_cell_isosurface, resampling_isosurface
from repro.viz.render import render_mesh

__all__ = [
    "PipelineRow",
    "TimestepRow",
    "RDRow",
    "run_fig1",
    "run_fig2",
    "run_visual_compare",
    "run_fig9",
    "run_fig10",
    "run_fig11",
    "run_rd",
    "run_fig12",
    "run_fig13",
    "run_fig14",
    "METHODS",
]

#: The visualization methods compared throughout the paper's figures.
METHODS = ("resampling", "dual", "dual+redundant")


def _extract(method: str, hierarchy: AMRHierarchy, fld: str, iso: float) -> IsoSurfaceResult:
    if method == "resampling":
        return resampling_isosurface(hierarchy, fld, iso)
    if method == "dual":
        return dual_cell_isosurface(hierarchy, fld, iso, gap_fix="none")
    if method == "dual+redundant":
        return dual_cell_isosurface(hierarchy, fld, iso, gap_fix="redundant")
    raise ValueError(f"unknown method {method!r}")


def _domain_bounds(h: AMRHierarchy) -> tuple[np.ndarray, np.ndarray]:
    dx0 = np.asarray(h[0].dx)
    lo = np.asarray(h.domain.lo, dtype=np.float64) * dx0
    hi = (np.asarray(h.domain.hi, dtype=np.float64) + 1.0) * dx0
    return lo, hi


def _render(ds: AppDataset, result: IsoSurfaceResult, size: int = 256) -> np.ndarray:
    bounds = _domain_bounds(ds.hierarchy)
    # Elongated domains get an aspect-matched image.
    uv = [a for a in range(3) if a != ds.view_axis]
    span = bounds[1] - bounds[0]
    aspect = span[uv[1]] / span[uv[0]]
    shape = (size, max(8, int(round(size * aspect))))
    return render_mesh(result.merged, axis=ds.view_axis, size=shape, bounds=bounds)


# ----------------------------------------------------------------------
# Figure 1: original data, three pipeline variants
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PipelineRow:
    """Crack/gap audit plus image quality for one pipeline run."""

    app: str
    codec: str  # "original" when no compression applied
    error_bound: float | None
    method: str
    n_faces: int
    open_edge_count: int
    mean_gap: float
    max_gap: float
    render_r_ssim: float | None  # vs original-data render, same method
    data_psnr: float | None


def run_fig1(scale: float = 1.0, app: str = "warpx", image_store: dict | None = None) -> list[PipelineRow]:
    """Figure 1: iso-surface of *original* AMR data with re-sampling,
    dual-cell, and dual-cell + switching (redundant coarse) cells."""
    ds = load_app(app, scale)
    rows = []
    for method in METHODS:
        result = _extract(method, ds.hierarchy, ds.field, ds.iso)
        report = crack_report(result, ds.hierarchy)
        if image_store is not None:
            image_store[f"fig1_{method}"] = _render(ds, result)
        rows.append(
            PipelineRow(
                app=app,
                codec="original",
                error_bound=None,
                method=method,
                n_faces=result.n_faces,
                open_edge_count=report.open_edge_count,
                mean_gap=report.mean_gap,
                max_gap=report.max_gap,
                render_r_ssim=None,
                data_psnr=None,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Figure 2: refinement tracks structure over timesteps
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TimestepRow:
    """Refinement statistics of one Nyx timestep."""

    growth: float
    n_fine_boxes: int
    fine_fraction: float
    max_density: float


def run_fig2(scale: float = 1.0, image_store: dict | None = None) -> list[TimestepRow]:
    """Figure 2: the refined region follows collapsing structure.

    With ``image_store`` given, also produces a colormapped log-density
    mid-plane slice per timestep (the paper's Figure 2 panels) with the
    refined region's coarse boxes visible as brightness steps.
    """
    from repro.amr.uniform import flatten_to_uniform
    from repro.viz.colormap import apply_colormap
    from repro.viz.volume import normalize_field, slice_image

    cfg = NyxConfig(coarse_n=max(16, int(round(64 * scale))))
    rows = []
    for h, growth in zip(nyx_timesteps(config=cfg), (0.35, 0.65, 1.0)):
        density = h[1].patches("baryon_density")
        rows.append(
            TimestepRow(
                growth=growth,
                n_fine_boxes=len(h[1].boxes),
                fine_fraction=h.densities()[1],
                max_density=float(max(p.data.max() for p in density)),
            )
        )
        if image_store is not None:
            uniform = flatten_to_uniform(h, "baryon_density")
            panel = np.log10(slice_image(uniform, axis=2) + 1e-3)
            image_store[f"fig2_growth{growth:g}"] = apply_colormap(
                normalize_field(panel)
            )
    return rows


# ----------------------------------------------------------------------
# Figures 9/10/11: compression x visualization-method comparisons
# ----------------------------------------------------------------------
def run_visual_compare(
    app: str,
    codec: str,
    error_bounds: Sequence[float],
    scale: float = 1.0,
    methods: Sequence[str] = ("resampling", "dual+redundant"),
    include_original: bool = False,
    image_store: dict | None = None,
) -> list[PipelineRow]:
    """Compare visualization methods on decompressed data.

    For every error bound and method: decompress, extract, render, and
    measure (a) rendered-image R-SSIM against the original data rendered
    the same way, (b) data PSNR, (c) crack/gap metrics.
    """
    ds = load_app(app, scale)
    originals = {m: _extract(m, ds.hierarchy, ds.field, ds.iso) for m in methods}
    original_images = {m: _render(ds, r) for m, r in originals.items()}
    rows: list[PipelineRow] = []
    if include_original:
        for m in methods:
            report = crack_report(originals[m], ds.hierarchy)
            if image_store is not None:
                image_store[f"{app}_original_{m}"] = original_images[m]
            rows.append(
                PipelineRow(
                    app=app,
                    codec="original",
                    error_bound=None,
                    method=m,
                    n_faces=originals[m].n_faces,
                    open_edge_count=report.open_edge_count,
                    mean_gap=report.mean_gap,
                    max_gap=report.max_gap,
                    render_r_ssim=0.0,
                    data_psnr=float("inf"),
                )
            )
    reference = ds.uniform_field()
    for eb in error_bounds:
        container = compress_hierarchy(ds.hierarchy, codec, eb, mode="rel", fields=[ds.field])
        restored_h = decompress_hierarchy(container, ds.hierarchy)
        from repro.amr.uniform import flatten_to_uniform

        restored_uniform = flatten_to_uniform(restored_h, ds.field)
        quality = _psnr(reference, restored_uniform)
        for m in methods:
            result = _extract(m, restored_h, ds.field, ds.iso)
            report = crack_report(result, restored_h)
            image = _render(ds, result)
            if image_store is not None:
                image_store[f"{app}_{codec}_eb{eb:g}_{m}"] = image
            rows.append(
                PipelineRow(
                    app=app,
                    codec=codec,
                    error_bound=float(eb),
                    method=m,
                    n_faces=result.n_faces,
                    open_edge_count=report.open_edge_count,
                    mean_gap=report.mean_gap,
                    max_gap=report.max_gap,
                    render_r_ssim=1.0 - _ssim(original_images[m], image, data_range=1.0),
                    data_psnr=quality,
                )
            )
    return rows


def run_fig9(scale: float = 1.0, image_store: dict | None = None) -> list[PipelineRow]:
    """Figure 9: WarpX + SZ-L/R at eb 1e-4/1e-3/1e-2, both methods."""
    return run_visual_compare(
        "warpx", "sz-lr", (1e-4, 1e-3, 1e-2), scale, image_store=image_store
    )


def run_fig10(scale: float = 1.0, image_store: dict | None = None) -> list[PipelineRow]:
    """Figure 10: WarpX + SZ-Interp at eb 1e-3, both methods."""
    return run_visual_compare("warpx", "sz-interp", (1e-3,), scale, image_store=image_store)


def run_fig11(scale: float = 1.0, image_store: dict | None = None) -> list[PipelineRow]:
    """Figure 11: Nyx, original + SZ-L/R + SZ-Interp at eb 1e-2, both methods."""
    rows = run_visual_compare(
        "nyx", "sz-lr", (1e-2,), scale, include_original=True, image_store=image_store
    )
    rows += run_visual_compare("nyx", "sz-interp", (1e-2,), scale, image_store=image_store)
    return rows


# ----------------------------------------------------------------------
# Figures 12/13: rate-distortion curves
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RDRow:
    """One rate-distortion point."""

    app: str
    codec: str
    error_bound: float
    cr: float
    psnr: float
    r_ssim: float


def run_rd(
    app: str,
    scale: float = 1.0,
    codecs: Sequence[str] = ("sz-lr", "sz-interp"),
    error_bounds: Sequence[float] = (1e-4, 3e-4, 1e-3, 3e-3, 1e-2),
) -> list[RDRow]:
    """Rate-distortion sweep on the app's evaluated field (uniform view)."""
    ds = load_app(app, scale)
    reference = ds.uniform_field()
    rows = []
    for codec in codecs:
        for eb in error_bounds:
            container = compress_hierarchy(ds.hierarchy, codec, eb, mode="rel", fields=[ds.field])
            restored_h = decompress_hierarchy(container, ds.hierarchy)
            from repro.amr.uniform import flatten_to_uniform

            restored = flatten_to_uniform(restored_h, ds.field)
            rows.append(
                RDRow(
                    app=app,
                    codec=codec,
                    error_bound=float(eb),
                    cr=container.ratio,
                    psnr=_psnr(reference, restored),
                    r_ssim=1.0 - _ssim(reference, restored, window=7, sigma=None),
                )
            )
    return rows


def run_fig12(scale: float = 1.0) -> list[RDRow]:
    """Figure 12: RD comparison on the WarpX Ez field."""
    return run_rd("warpx", scale)


def run_fig13(scale: float = 1.0) -> list[RDRow]:
    """Figure 13: RD comparison on the Nyx density field."""
    return run_rd("nyx", scale)


def run_fig14(n: int = 9, block: int = 3) -> Figure14Demo:
    """Figure 14: the 1-D interpolation-smoothing construction."""
    return figure14_demo(n, block)
