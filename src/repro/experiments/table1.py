"""Table 1: dataset geometry and per-level densities."""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.datasets import APPS, PAPER_TABLE1, load_app

__all__ = ["Table1Row", "run_table1"]


@dataclass(frozen=True)
class Table1Row:
    """One application's row of Table 1 (measured and paper values)."""

    app: str
    n_levels: int
    grids: tuple[tuple[int, ...], ...]
    densities: tuple[float, ...]
    paper_densities: tuple[float, ...]

    @property
    def density_error(self) -> float:
        """Largest deviation from the paper's per-level density."""
        return max(abs(a - b) for a, b in zip(self.densities, self.paper_densities))


def run_table1(scale: float = 1.0) -> list[Table1Row]:
    """Measure Table 1 on the generated datasets.

    Grid sizes scale with ``scale`` (see
    :func:`repro.experiments.datasets.load_app`); densities are
    scale-independent targets and should match the paper within the
    clustering tolerance.
    """
    rows = []
    for app in APPS:
        ds = load_app(app, scale)
        h = ds.hierarchy
        rows.append(
            Table1Row(
                app=app,
                n_levels=h.n_levels,
                grids=tuple(h.grid_shape(l) for l in range(h.n_levels)),
                densities=h.densities(),
                paper_densities=PAPER_TABLE1[app]["densities"],
            )
        )
    return rows
