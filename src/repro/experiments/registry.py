"""The experiment registry: every paper figure/table as a CI-gated benchmark.

One table — :data:`EXPERIMENTS` — declares every reproduction experiment:
its group (``figures`` / ``tables`` / ``ablations`` / ``scenarios``), the
function that computes it, the scales it runs at, and the metrics it emits
(each with a unit, a gate direction, and an optional regression
tolerance). The registry replaces one ad-hoc ``bench_*`` driver per figure
with declarative entries; the old ``benchmarks/bench_fig*.py`` files are
thin wrappers over these entries now.

Running an entry does three things:

1. computes the experiment at the requested scale (``--quick`` uses the
   entry's ``quick_scale`` — the deterministic PR-CI size; the default is
   ``full_scale``, the nightly size),
2. re-asserts the paper-shape checks the legacy drivers carried (a failed
   check raises :class:`~repro.errors.ExperimentError` — the claim itself
   broke, not just a metric drifted),
3. emits a ``BENCH_<name>.json`` artifact through
   ``benchmarks/perf_harness.py`` for ``tools/bench_compare.py`` to gate
   against ``benchmarks/baselines/``.

Registry artifacts are **deterministic**: fixed seeds, metric values
rounded to :data:`SIG_FIGS` significant digits, and no RSS/timing
annotations — so a fresh ``--quick`` run is byte-identical to the
committed baselines (the ``bench-registry-consistency`` CI job asserts
exactly that via ``bench_compare --check-consistency``).

CLI (also reachable as ``python -m repro.experiments run ...``)::

    python -m repro.experiments run all --quick --out bench-out
    python -m repro.experiments run figures --quick
    python -m repro.experiments run fig09 table2 --scale 0.5
    python -m repro.experiments list
"""

from __future__ import annotations

import argparse
import importlib.util
import math
import sys
from dataclasses import dataclass, field as dc_field
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.errors import ExperimentError

__all__ = [
    "MetricSpec",
    "ExperimentSpec",
    "ExperimentResult",
    "EXPERIMENTS",
    "GROUP_NAMES",
    "SIG_FIGS",
    "register",
    "check",
    "round_sig",
    "load_all",
    "groups",
    "resolve",
    "run_experiment",
    "main",
]

#: Significant digits metric values are rounded to before emission — the
#: contract that makes registry artifacts byte-stable across runs.
SIG_FIGS = 6

#: The registry's experiment groups, in display order.
GROUP_NAMES = ("figures", "tables", "ablations", "scenarios")


@dataclass(frozen=True)
class MetricSpec:
    """Declared gate semantics of one emitted metric."""

    unit: str
    #: Gate direction: throughput/effect-strength up, error/overhead down.
    higher_is_better: bool = True
    #: Optional per-metric regression tolerance (fraction) overriding
    #: ``bench_compare``'s default 20%.
    tolerance: float | None = None


@dataclass(frozen=True)
class ExperimentSpec:
    """One registry entry: a paper figure/table/ablation as a benchmark."""

    name: str
    group: str
    title: str
    #: ``fn(scale) -> {metric_name: value}``; must also run the entry's
    #: paper-shape checks (raising ExperimentError on violation) and must
    #: be deterministic at a fixed scale.
    fn: Callable[[float], Mapping[str, float]]
    #: Declared metrics; ``fn`` must return exactly these keys.
    metrics: Mapping[str, MetricSpec] = dc_field(default_factory=dict)
    #: Scale used by ``--quick`` (PR CI) and by default (nightly).
    quick_scale: float = 0.25
    full_scale: float = 0.5


@dataclass(frozen=True)
class ExperimentResult:
    """Outcome of one registry run (checks passed; metrics computed)."""

    name: str
    group: str
    scale: float
    #: metric name -> full artifact record (value/unit/higher_is_better).
    metrics: dict[str, dict[str, Any]]
    #: Artifact path when an output directory was given, else None.
    artifact: Path | None


#: The registry. Populate via :func:`register`; read via :func:`load_all`.
EXPERIMENTS: dict[str, ExperimentSpec] = {}


def register(
    name: str,
    group: str,
    title: str,
    metrics: Mapping[str, MetricSpec],
    quick_scale: float = 0.25,
    full_scale: float = 0.5,
):
    """Decorator registering ``fn`` as experiment ``name`` in ``group``.

    Duplicate names and unknown groups are rejected at import time — a
    typo fails the test that imports the fleet, not a nightly run.
    """

    def wrap(fn: Callable[[float], Mapping[str, float]]):
        if name in EXPERIMENTS:
            raise ExperimentError(f"duplicate experiment name {name!r}")
        if group not in GROUP_NAMES:
            raise ExperimentError(
                f"experiment {name!r} has unknown group {group!r} "
                f"(have {GROUP_NAMES})"
            )
        if not metrics:
            raise ExperimentError(f"experiment {name!r} declares no metrics")
        EXPERIMENTS[name] = ExperimentSpec(
            name=name,
            group=group,
            title=title,
            fn=fn,
            metrics=dict(metrics),
            quick_scale=float(quick_scale),
            full_scale=float(full_scale),
        )
        return fn

    return wrap


def check(condition: bool, message: str) -> None:
    """Assert a paper-shape property of an experiment's results.

    Used by the fleet entries in place of the legacy drivers' bare
    ``assert`` so the checks also run outside pytest (CLI, nightly).
    """
    if not condition:
        raise ExperimentError(f"experiment check failed: {message}")


def round_sig(value: float, sig: int = SIG_FIGS) -> float:
    """Round to ``sig`` significant digits (artifact determinism)."""
    v = float(value)
    if v == 0 or not math.isfinite(v):
        return v
    return round(v, sig - 1 - int(math.floor(math.log10(abs(v)))))


def load_all() -> dict[str, ExperimentSpec]:
    """Import every entry module and return the populated registry."""
    # Deferred: fleet/scenarios import the registry back for @register.
    from repro.experiments import fleet, scenarios  # noqa: F401

    return EXPERIMENTS


def groups() -> dict[str, tuple[str, ...]]:
    """Group name -> member experiment names (registration order)."""
    out: dict[str, tuple[str, ...]] = {}
    for g in GROUP_NAMES:
        members = tuple(n for n, s in EXPERIMENTS.items() if s.group == g)
        if members:
            out[g] = members
    return out


def resolve(selectors) -> tuple[str, ...]:
    """Expand names/groups/``all`` into concrete experiment names.

    Order follows the registry (stable across runs); duplicates collapse.
    Unknown selectors raise with the full menu.
    """
    load_all()
    chosen: list[str] = []
    for sel in selectors:
        if sel == "all":
            matched = list(EXPERIMENTS)
        elif sel in GROUP_NAMES:
            matched = [n for n, s in EXPERIMENTS.items() if s.group == sel]
        elif sel in EXPERIMENTS:
            matched = [sel]
        else:
            raise ExperimentError(
                f"unknown experiment or group {sel!r}; have groups "
                f"{list(groups())} and experiments {list(EXPERIMENTS)}"
            )
        for name in matched:
            if name not in chosen:
                chosen.append(name)
    return tuple(chosen)


def _perf_harness():
    """The shared artifact writer (``benchmarks/perf_harness.py``).

    ``benchmarks/`` is not a package; pytest puts it on ``sys.path`` but
    the CLI runs from anywhere in the repo, so fall back to loading the
    module straight off the repo layout (``src/repro/...`` -> repo root).
    """
    try:
        import perf_harness  # type: ignore

        return perf_harness
    except ImportError:
        pass
    path = Path(__file__).resolve().parents[3] / "benchmarks" / "perf_harness.py"
    spec = importlib.util.spec_from_file_location("perf_harness", path)
    if spec is None or spec.loader is None:  # pragma: no cover - repo layout
        raise ExperimentError(f"cannot load perf_harness from {path}")
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("perf_harness", module)
    spec.loader.exec_module(module)
    return module


def run_experiment(
    name: str,
    quick: bool = False,
    scale: float | None = None,
    out_dir: Path | str | None = None,
) -> ExperimentResult:
    """Run one registry entry: compute, check, and (optionally) emit.

    ``scale`` overrides the spec's quick/full scales when given. With
    ``out_dir``, writes ``BENCH_<name>.json`` there through
    ``perf_harness.write_artifact`` (schema-validated, deterministic — no
    RSS annotation).
    """
    load_all()
    spec = EXPERIMENTS.get(name)
    if spec is None:
        raise ExperimentError(
            f"unknown experiment {name!r}; have {list(EXPERIMENTS)}"
        )
    run_scale = float(
        scale if scale is not None
        else (spec.quick_scale if quick else spec.full_scale)
    )
    values = dict(spec.fn(run_scale))
    declared = set(spec.metrics)
    if set(values) != declared:
        raise ExperimentError(
            f"experiment {name!r} returned metrics {sorted(values)} but "
            f"declares {sorted(declared)}"
        )
    records: dict[str, dict[str, Any]] = {}
    for metric in sorted(values):
        mspec = spec.metrics[metric]
        entry: dict[str, Any] = {
            "value": round_sig(values[metric]),
            "unit": mspec.unit,
            "higher_is_better": mspec.higher_is_better,
        }
        if mspec.tolerance is not None:
            entry["tolerance"] = float(mspec.tolerance)
        records[metric] = entry
    artifact = None
    if out_dir is not None:
        artifact = _perf_harness().write_artifact(
            Path(out_dir), name, records, run_scale
        )
    return ExperimentResult(
        name=name, group=spec.group, scale=run_scale,
        metrics=records, artifact=artifact,
    )


def _format_result(result: ExperimentResult) -> str:
    lines = [f"{result.name} [{result.group}] @ scale {result.scale:g}"]
    for metric, entry in result.metrics.items():
        arrow = "^" if entry["higher_is_better"] else "v"
        lines.append(
            f"  {metric:<36} {entry['value']:>12.6g} {entry['unit']:<6} ({arrow})"
        )
    if result.artifact is not None:
        lines.append(f"  wrote {result.artifact}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Registry CLI: ``run <name|group|all>... [--quick] [--out DIR]``."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments-registry",
        description="Run registry experiments and emit BENCH_<name>.json artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    runp = sub.add_parser("run", help="run experiments by name, group, or 'all'")
    runp.add_argument(
        "selectors", nargs="+",
        help=f"experiment names, group names {GROUP_NAMES}, or 'all'",
    )
    runp.add_argument(
        "--quick", action="store_true",
        help="use each entry's quick_scale (deterministic PR-CI size)",
    )
    runp.add_argument(
        "--scale", type=float, default=None,
        help="explicit scale overriding quick/full",
    )
    runp.add_argument(
        "--out", type=Path, default=None, metavar="DIR",
        help="directory for BENCH_<name>.json artifacts",
    )
    sub.add_parser("list", help="list registered experiments by group")
    args = parser.parse_args(argv)

    if args.command == "list":
        load_all()
        for group, members in groups().items():
            print(f"{group}:")
            for name in members:
                spec = EXPERIMENTS[name]
                print(f"  {name:<24} {spec.title}")
        return 0

    try:
        names = resolve(args.selectors)
    except ExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    failed = 0
    for name in names:
        try:
            result = run_experiment(
                name, quick=args.quick, scale=args.scale, out_dir=args.out
            )
        except ExperimentError as exc:
            failed += 1
            print(f"FAIL {name}: {exc}", file=sys.stderr)
            continue
        print(_format_result(result))
    if failed:
        print(f"registry: {failed}/{len(names)} experiment(s) failed", file=sys.stderr)
        return 1
    print(f"registry: {len(names)} experiment(s) passed")
    return 0
