"""Report formatting: text tables, CSV files, ASCII rate-distortion plots.

The offline environment has no plotting stack, so figures are emitted as
(a) structured CSV for downstream tooling and (b) ASCII scatter plots that
make the win/loss ordering visible directly in a terminal.
"""

from __future__ import annotations

import csv
import math
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any, Sequence

from repro.errors import ExperimentError

__all__ = ["format_table", "rows_to_csv", "ascii_plot"]


def _cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == float("inf"):
            return "inf"
        if value == 0.0:
            return "0"
        if abs(value) >= 1e4 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    if isinstance(value, tuple):
        return "x".join(str(v) for v in value) if all(
            isinstance(v, int) for v in value
        ) else str(value)
    return str(value)


def format_table(rows: Sequence[Any], columns: Sequence[str] | None = None, title: str = "") -> str:
    """Render dataclass/dict rows as an aligned text table."""
    if not rows:
        return f"{title}\n(empty)\n" if title else "(empty)\n"
    dicts = [asdict(r) if is_dataclass(r) else dict(r) for r in rows]
    cols = list(columns) if columns is not None else list(dicts[0])
    header = [c for c in cols]
    body = [[_cell(d.get(c)) for c in cols] for d in dicts]
    widths = [max(len(h), *(len(row[i]) for row in body)) for i, h in enumerate(header)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines) + "\n"


def rows_to_csv(rows: Sequence[Any], path: str | Path) -> Path:
    """Write dataclass/dict rows to CSV."""
    if not rows:
        raise ExperimentError("no rows to write")
    dicts = [asdict(r) if is_dataclass(r) else dict(r) for r in rows]
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(dicts[0]))
        writer.writeheader()
        for d in dicts:
            writer.writerow(d)
    return out


def ascii_plot(
    series: dict[str, list[tuple[float, float]]],
    width: int = 64,
    height: int = 20,
    logx: bool = False,
    logy: bool = False,
    title: str = "",
    xlabel: str = "x",
    ylabel: str = "y",
) -> str:
    """Scatter multiple labeled series on a character grid.

    Each series gets a marker (``*``, ``o``, ``+``, ...); axes can be log
    scaled — Figures 12/13 plot R-SSIM on a log axis.
    """
    markers = "*o+x#@%&"
    pts = [(x, y) for s in series.values() for (x, y) in s]
    if not pts:
        return f"{title}\n(no data)\n"

    def tx(v: float, log: bool) -> float:
        if log:
            if v <= 0:
                raise ExperimentError("log axis requires positive values")
            return math.log10(v)
        return v

    xs = [tx(x, logx) for x, _ in pts]
    ys = [tx(y, logy) for _, y in pts]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    xr = x1 - x0 or 1.0
    yr = y1 - y0 or 1.0
    grid = [[" "] * width for _ in range(height)]
    for marker, (label, data) in zip(markers, series.items()):
        for x, y in data:
            cx = int(round((tx(x, logx) - x0) / xr * (width - 1)))
            cy = int(round((tx(y, logy) - y0) / yr * (height - 1)))
            grid[height - 1 - cy][cx] = marker
    lines = []
    if title:
        lines.append(title)
    legend = "  ".join(f"{m}={label}" for m, (label, _) in zip(markers, series.items()))
    lines.append(legend)
    top = f"{y1:.3g}" if not logy else f"1e{y1:.2f}"
    bot = f"{y0:.3g}" if not logy else f"1e{y0:.2f}"
    lines.append(f"{ylabel} (top={top}, bottom={bot})")
    for row in grid:
        lines.append("|" + "".join(row))
    left = f"{x0:.3g}" if not logx else f"1e{x0:.2f}"
    right = f"{x1:.3g}" if not logx else f"1e{x1:.2f}"
    lines.append("+" + "-" * width)
    lines.append(f" {xlabel}: {left} .. {right}")
    return "\n".join(lines) + "\n"
