"""Table 2: CR / PSNR / SSIM / R-SSIM across apps, codecs and error bounds.

For each (application, codec, relative error bound) cell the paper reports
the compression ratio, the data PSNR, the (volumetric) SSIM and the reverse
SSIM. The harness compresses the evaluated field of the whole hierarchy
(both levels, per-patch), reconstructs it, composites both versions onto
the uniform fine grid, and measures there — the post-analysis view of
Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.amr.uniform import flatten_to_uniform
from repro.compression.amr_codec import compress_hierarchy, decompress_hierarchy
from repro.experiments.datasets import APPS, PAPER_TABLE2, load_app
from repro.metrics.error import psnr as _psnr
from repro.metrics.ssim import ssim as _ssim

__all__ = ["Table2Row", "run_table2", "DEFAULT_ERROR_BOUNDS", "DEFAULT_CODECS"]

#: The paper's three relative error bounds.
DEFAULT_ERROR_BOUNDS = (1e-4, 1e-3, 1e-2)

#: The paper's two compressors.
DEFAULT_CODECS = ("sz-lr", "sz-interp")


@dataclass(frozen=True)
class Table2Row:
    """One cell of Table 2."""

    app: str
    codec: str
    error_bound: float
    cr: float
    psnr: float
    ssim: float
    paper_cr: float | None = None
    paper_psnr: float | None = None
    paper_ssim: float | None = None

    @property
    def r_ssim(self) -> float:
        """Reverse SSIM (paper Eq. 1)."""
        return 1.0 - self.ssim

    @property
    def paper_r_ssim(self) -> float | None:
        """Paper's reverse SSIM for this cell, when available."""
        return None if self.paper_ssim is None else 1.0 - self.paper_ssim


def run_table2(
    scale: float = 1.0,
    apps: Sequence[str] = APPS,
    codecs: Sequence[str] = DEFAULT_CODECS,
    error_bounds: Sequence[float] = DEFAULT_ERROR_BOUNDS,
) -> list[Table2Row]:
    """Regenerate Table 2 at the requested scale."""
    rows: list[Table2Row] = []
    for app in apps:
        ds = load_app(app, scale)
        reference = ds.uniform_field()
        for codec in codecs:
            for eb in error_bounds:
                container = compress_hierarchy(
                    ds.hierarchy, codec, eb, mode="rel", fields=[ds.field]
                )
                restored_h = decompress_hierarchy(container, ds.hierarchy)
                restored = flatten_to_uniform(restored_h, ds.field)
                paper = PAPER_TABLE2.get((app, codec, eb), {})
                rows.append(
                    Table2Row(
                        app=app,
                        codec=codec,
                        error_bound=eb,
                        cr=container.ratio,
                        psnr=_psnr(reference, restored),
                        ssim=_ssim(reference, restored, window=7, sigma=None),
                        paper_cr=paper.get("cr"),
                        paper_psnr=paper.get("psnr"),
                        paper_ssim=paper.get("ssim"),
                    )
                )
    return rows
