"""Hierarchy (de)compression throughput across execution modes.

The paper argues (§3.3) that per-patch independence turns AMR compression
into an embarrassingly parallel map. This experiment measures that claim
end to end on the synthetic app datasets: wall-clock compress/decompress
time and MB/s for the serial, thread, and process executors, plus the
speedup over serial, and the cost of a *selective* single-patch decode —
the access pattern the indexed container exists for.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.compression.amr_codec import (
    compress_hierarchy,
    decompress_hierarchy,
    decompress_selection,
)
from repro.experiments.datasets import load_app
from repro.parallel.pool import EXECUTION_MODES, resolve_workers

__all__ = ["ThroughputRow", "run_throughput"]


@dataclass(frozen=True)
class ThroughputRow:
    """One (app, execution mode) throughput measurement."""

    app: str
    mode: str
    workers: int
    compress_s: float
    decompress_s: float
    compress_mb_s: float
    decompress_mb_s: float
    #: compress-path speedup over the serial run of the same app
    #: (NaN when the sweep includes no preceding serial baseline).
    speedup: float
    #: wall-clock to selectively decode one patch from the container bytes.
    selective_s: float


def _timed(fn, *args, **kwargs):
    t0 = time.perf_counter()
    out = fn(*args, **kwargs)
    return out, time.perf_counter() - t0


def run_throughput(
    scale: float = 0.5,
    apps: Sequence[str] = ("nyx",),
    codec: str = "sz-lr",
    error_bound: float = 1e-3,
    modes: Sequence[str] = EXECUTION_MODES,
    workers: int | None = None,
) -> list[ThroughputRow]:
    """Measure container (de)compression throughput per execution mode."""
    n_workers = resolve_workers(workers)
    rows: list[ThroughputRow] = []
    for app in apps:
        ds = load_app(app, scale)
        mb = ds.hierarchy.nbytes(ds.field) / 1e6
        serial_s: float | None = None
        for mode in modes:
            container, comp_s = _timed(
                compress_hierarchy,
                ds.hierarchy, codec, error_bound, mode="rel", fields=[ds.field],
                parallel=mode, workers=n_workers,
            )
            _, dec_s = _timed(
                decompress_hierarchy,
                container, ds.hierarchy, parallel=mode, workers=n_workers,
            )
            raw = container.tobytes()
            _, sel_s = _timed(
                decompress_selection,
                raw,
                levels=len(container.streams) - 1,
                fields=ds.field,
                patches=0,
            )
            if mode == "serial":
                serial_s = comp_s
            rows.append(
                ThroughputRow(
                    app=app,
                    mode=mode,
                    workers=1 if mode == "serial" else n_workers,
                    compress_s=comp_s,
                    decompress_s=dec_s,
                    compress_mb_s=mb / comp_s,
                    decompress_mb_s=mb / dec_s,
                    speedup=(serial_s / comp_s) if serial_s is not None else float("nan"),
                    selective_s=sel_s,
                )
            )
    return rows
