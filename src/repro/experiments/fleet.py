"""The registry fleet: every paper figure/table/ablation as an entry.

Each function here absorbs one legacy ``benchmarks/bench_*.py`` driver:
the computation delegates to the existing ``run_*`` experiment functions,
the driver's paper-shape asserts become :func:`~.registry.check` calls
(so they run under pytest *and* under the CLI/nightly), and the scalar
measurements worth tracking become declared metrics (see
:class:`~.registry.MetricSpec` for gate semantics). The legacy bench files
are thin wrappers over these entries now.

Metric-design convention: prefer *ratios that encode a paper claim*
(artifact amplification, codec advantage, exclusion gain) — they travel
across machines and scales better than absolute values, and their gate
direction is the claim's direction ("effect got weaker" fails).
"""

from __future__ import annotations

import math

import numpy as np

from repro.experiments.datasets import load_app
from repro.experiments.registry import MetricSpec, check, register

__all__: list[str] = []


def _geomean(values) -> float:
    vals = list(values)
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


# ----------------------------------------------------------------------
# figures
# ----------------------------------------------------------------------
@register(
    "fig01", "figures",
    "Figure 1: crack/gap audit on original data (resampling vs dual-cell)",
    metrics={
        "resampling_open_edges": MetricSpec("edges"),
        "dual_mean_gap": MetricSpec("cells"),
        "fixed_over_dual_gap": MetricSpec("ratio", higher_is_better=False),
    },
)
def fig01(scale: float) -> dict[str, float]:
    from repro.experiments.figures import run_fig1

    resample, dual, fixed = run_fig1(scale)
    check(resample.open_edge_count > 0, "re-sampling shows cracks (Fig 1a)")
    check(dual.mean_gap > resample.mean_gap, "dual-cell gaps exceed cracks (Fig 1b)")
    check(fixed.mean_gap < dual.mean_gap, "switching cells close the gap (Fig 1c)")
    return {
        "resampling_open_edges": float(resample.open_edge_count),
        "dual_mean_gap": dual.mean_gap,
        "fixed_over_dual_gap": fixed.mean_gap / dual.mean_gap,
    }


@register(
    "fig02", "figures",
    "Figure 2: refinement tracks collapsing structure over timesteps",
    metrics={
        "max_density_final": MetricSpec("rho"),
        "fine_fraction_final": MetricSpec("frac"),
        "n_fine_boxes_final": MetricSpec("boxes"),
    },
)
def fig02(scale: float) -> dict[str, float]:
    from repro.experiments.figures import run_fig2

    rows = run_fig2(scale)
    maxima = [r.max_density for r in rows]
    check(maxima == sorted(maxima), "structure sharpens as the universe evolves")
    check(all(r.n_fine_boxes > 0 for r in rows), "every timestep refines somewhere")
    final = rows[-1]
    return {
        "max_density_final": final.max_density,
        "fine_fraction_final": final.fine_fraction,
        "n_fine_boxes_final": float(final.n_fine_boxes),
    }


@register(
    "fig09", "figures",
    "Figure 9: WarpX + SZ-L/R, dual-cell amplifies artifacts across bounds",
    metrics={
        "amplification_mean": MetricSpec("x"),
        "resampling_rssim_at_1e2": MetricSpec("r-ssim", higher_is_better=False),
    },
)
def fig09(scale: float) -> dict[str, float]:
    from repro.experiments.figures import run_fig9

    rows = run_fig9(scale)
    ratios = []
    for eb in (1e-4, 1e-3, 1e-2):
        res = next(r for r in rows if r.error_bound == eb and r.method == "resampling")
        dual = next(r for r in rows if r.error_bound == eb and r.method == "dual+redundant")
        check(
            dual.render_r_ssim > res.render_r_ssim,
            f"dual-cell must amplify compression artifacts at eb {eb:g} (paper §4.1)",
        )
        ratios.append(dual.render_r_ssim / res.render_r_ssim)
    for method in ("resampling", "dual+redundant"):
        series = sorted((r for r in rows if r.method == method), key=lambda r: r.error_bound)
        vals = [r.render_r_ssim for r in series]
        check(vals == sorted(vals), f"{method}: visual degradation grows with eb")
    res_1e2 = next(
        r for r in rows if r.error_bound == 1e-2 and r.method == "resampling"
    )
    return {
        "amplification_mean": float(np.mean(ratios)),
        "resampling_rssim_at_1e2": res_1e2.render_r_ssim,
    }


@register(
    "fig10", "figures",
    "Figure 10: WarpX + SZ-Interp, dual-cell amplifies the bump artifacts",
    metrics={
        "amplification": MetricSpec("x"),
        "resampling_rssim": MetricSpec("r-ssim", higher_is_better=False),
    },
)
def fig10(scale: float) -> dict[str, float]:
    from repro.experiments.figures import run_fig10

    rows = run_fig10(scale)
    res = next(r for r in rows if r.method == "resampling")
    dual = next(r for r in rows if r.method == "dual+redundant")
    check(dual.render_r_ssim > res.render_r_ssim, "dual-cell amplifies SZ-Interp bumps")
    return {
        "amplification": dual.render_r_ssim / res.render_r_ssim,
        "resampling_rssim": res.render_r_ssim,
    }


@register(
    "fig11", "figures",
    "Figure 11: Nyx at eb 1e-2 — both codecs, both methods, plus originals",
    metrics={
        "szlr_amplification": MetricSpec("x"),
        "szinterp_amplification": MetricSpec("x"),
    },
)
def fig11(scale: float) -> dict[str, float]:
    from repro.experiments.figures import run_fig11

    rows = run_fig11(scale)
    check(
        {r.codec for r in rows} == {"original", "sz-lr", "sz-interp"},
        "original references plus both codecs present",
    )
    out = {}
    for codec, key in (("sz-lr", "szlr_amplification"), ("sz-interp", "szinterp_amplification")):
        res = next(r for r in rows if r.codec == codec and r.method == "resampling")
        dual = next(r for r in rows if r.codec == codec and r.method == "dual+redundant")
        check(
            dual.render_r_ssim > res.render_r_ssim,
            f"{codec}: dual-cell must degrade visual quality (paper §4.2)",
        )
        out[key] = dual.render_r_ssim / res.render_r_ssim
    return out


@register(
    "fig12", "figures",
    "Figure 12: rate-distortion on WarpX Ez (SZ-Interp dominates the rate axis)",
    metrics={
        "szinterp_cr_advantage": MetricSpec("x"),
        "best_psnr": MetricSpec("dB"),
        "best_cr": MetricSpec("x"),
    },
)
def fig12(scale: float) -> dict[str, float]:
    from repro.experiments.figures import run_fig12

    rows = run_fig12(scale)
    by_eb: dict[float, dict[str, object]] = {}
    for r in rows:
        by_eb.setdefault(r.error_bound, {})[r.codec] = r
    advantages = []
    for eb, pair in by_eb.items():
        check(
            pair["sz-interp"].cr > pair["sz-lr"].cr,
            f"WarpX is smooth: SZ-Interp must win CR at eb {eb:g}",
        )
        advantages.append(pair["sz-interp"].cr / pair["sz-lr"].cr)
    return {
        "szinterp_cr_advantage": _geomean(advantages),
        "best_psnr": max(r.psnr for r in rows),
        "best_cr": max(r.cr for r in rows),
    }


@register(
    "fig13", "figures",
    "Figure 13: rate-distortion on Nyx density (SZ-L/R competitive on spiky data)",
    metrics={
        "szlr_cr_at_max_eb": MetricSpec("x"),
        "rssim_ratio_at_max_eb": MetricSpec("x"),
    },
)
def fig13(scale: float) -> dict[str, float]:
    from repro.experiments.figures import run_fig13

    rows = run_fig13(scale)
    largest = max(r.error_bound for r in rows)
    lr = next(r for r in rows if r.codec == "sz-lr" and r.error_bound == largest)
    it = next(r for r in rows if r.codec == "sz-interp" and r.error_bound == largest)
    # The paper's Nyx observation needs enough small-scale structure; it
    # holds from scale 0.5 up (the legacy driver gated it identically).
    if scale >= 0.5:
        check(lr.r_ssim < it.r_ssim, "SZ-L/R captures Nyx's local patterns better")
    return {
        "szlr_cr_at_max_eb": lr.cr,
        "rssim_ratio_at_max_eb": it.r_ssim / max(lr.r_ssim, 1e-12),
    }


@register(
    "fig14", "figures",
    "Figure 14: the 1-D interpolation-smoothing construction",
    metrics={
        "resampled_rmse": MetricSpec("rmse", higher_is_better=False),
        "dual_over_resampled_rmse": MetricSpec("x"),
    },
)
def fig14(scale: float) -> dict[str, float]:
    from repro.experiments.figures import run_fig14

    demo = run_fig14()
    check(demo.decompressed.tolist() == [1, 1, 1, 4, 4, 4, 7, 7, 7], "paper's exact 1-D example")
    check(
        demo.resampled.tolist() == [1, 1, 1, 2.5, 4, 4, 5.5, 7, 7, 7],
        "paper's exact re-sampled sequence",
    )
    check(demo.resampled_rmse < demo.dual_cell_rmse, "re-sampling smooths the staircase")
    for n, block in ((60, 4), (100, 5)):
        d = run_fig14(n, block)
        check(
            d.resampled_rmse <= d.dual_cell_rmse,
            f"generalization holds at n={n}, block={block}",
        )
    return {
        "resampled_rmse": demo.resampled_rmse,
        "dual_over_resampled_rmse": demo.dual_cell_rmse / demo.resampled_rmse,
    }


# ----------------------------------------------------------------------
# tables
# ----------------------------------------------------------------------
@register(
    "table1", "tables",
    "Table 1: dataset geometry and per-level densities vs the paper",
    metrics={
        "density_error_max": MetricSpec("frac", higher_is_better=False),
        "warpx_fine_density": MetricSpec("frac"),
        "nyx_fine_density": MetricSpec("frac"),
    },
)
def table1(scale: float) -> dict[str, float]:
    from repro.experiments.table1 import run_table1

    rows = run_table1(scale)
    for row in rows:
        check(row.n_levels == 2, f"{row.app}: two-level hierarchy")
        check(row.density_error < 0.1, f"{row.app}: densities within 0.1 of the paper")
    by_app = {r.app: r for r in rows}
    return {
        "density_error_max": max(r.density_error for r in rows),
        "warpx_fine_density": by_app["warpx"].densities[1],
        "nyx_fine_density": by_app["nyx"].densities[1],
    }


@register(
    "table2", "tables",
    "Table 2: CR / PSNR / SSIM across apps x codecs x error bounds",
    metrics={
        "mean_cr": MetricSpec("x"),
        "mean_psnr": MetricSpec("dB"),
        "warpx_szinterp_cr_win_min": MetricSpec("x"),
    },
)
def table2(scale: float) -> dict[str, float]:
    from repro.experiments.table2 import run_table2

    rows = run_table2(scale)
    for app in ("warpx", "nyx"):
        for codec in ("sz-lr", "sz-interp"):
            series = sorted(
                (r for r in rows if r.app == app and r.codec == codec),
                key=lambda r: r.error_bound,
            )
            crs = [r.cr for r in series]
            psnrs = [r.psnr for r in series]
            check(crs == sorted(crs), f"{app}/{codec}: CR must grow with eb")
            check(psnrs == sorted(psnrs, reverse=True), f"{app}/{codec}: PSNR must fall with eb")
    wins = []
    for eb in (1e-4, 1e-3, 1e-2):
        lr = next(r for r in rows if r.app == "warpx" and r.codec == "sz-lr" and r.error_bound == eb)
        it = next(r for r in rows if r.app == "warpx" and r.codec == "sz-interp" and r.error_bound == eb)
        check(it.cr > lr.cr, f"WarpX: SZ-Interp must win CR at eb {eb:g}")
        wins.append(it.cr / lr.cr)
    return {
        "mean_cr": _geomean(r.cr for r in rows),
        "mean_psnr": float(np.mean([r.psnr for r in rows])),
        "warpx_szinterp_cr_win_min": min(wins),
    }


# ----------------------------------------------------------------------
# ablations
# ----------------------------------------------------------------------
@register(
    "ablation_artifacts", "ablations",
    "Ablation: artifact morphology — SZ-L/R block-wise vs SZ-Interp smooth",
    metrics={
        "szlr_blockiness_min": MetricSpec("x"),
        "blockiness_contrast_min": MetricSpec("x"),
    },
)
def ablation_artifacts(scale: float) -> dict[str, float]:
    from repro.compression.registry import make_codec
    from repro.metrics import blockiness, hausdorff_distance
    from repro.viz import marching_cubes

    blocky: dict[str, dict[str, float]] = {}
    for app in ("warpx", "nyx"):
        ds = load_app(app, scale)
        data = ds.uniform_field()
        ref_mesh = marching_cubes(data, ds.iso)
        blocky[app] = {}
        for codec_name in ("sz-lr", "sz-interp"):
            codec = make_codec(codec_name)
            restored = codec.decompress(codec.compress(data, 1e-2, mode="rel"))
            blocky[app][codec_name] = blockiness(data, restored, 6)
            if codec_name == "sz-lr":
                mesh = marching_cubes(restored, ds.iso)
                check(
                    not ref_mesh.is_empty() and not mesh.is_empty(),
                    f"{app}: iso-surfaces must be non-empty",
                )
                hd = hausdorff_distance(ref_mesh, mesh)
                check(np.isfinite(hd) and hd > 0, f"{app}: iso-surface displacement measurable")
    for app, by_codec in blocky.items():
        check(
            by_codec["sz-lr"] > by_codec["sz-interp"],
            f"{app}: SZ-L/R artifacts must align with the block grid",
        )
        check(by_codec["sz-lr"] > 1.2, f"{app}: block-wise artifacts must be detectable")
    return {
        "szlr_blockiness_min": min(b["sz-lr"] for b in blocky.values()),
        "blockiness_contrast_min": min(
            b["sz-lr"] / b["sz-interp"] for b in blocky.values()
        ),
    }


@register(
    "ablation_blocksize", "ablations",
    "Ablation: SZ-L/R block size sweep (the paper fixes 6x6x6)",
    metrics={
        "cr_spread_max": MetricSpec("x", higher_is_better=False),
        "warpx_cr_at_block6": MetricSpec("x"),
    },
)
def ablation_blocksize(scale: float) -> dict[str, float]:
    from repro.compression.sz_lr import SZLR

    spreads = []
    warpx_cr6 = None
    for app in ("warpx", "nyx"):
        data = load_app(app, scale).uniform_field()
        crs = {}
        for bs in (4, 6, 8, 12):
            blob = SZLR(block_size=bs).compress(data, 1e-3, mode="rel")
            crs[bs] = data.nbytes / len(blob)
        spread = max(crs.values()) / min(crs.values())
        check(spread < 3.0, f"{app}: block size matters but not catastrophically")
        spreads.append(spread)
        if app == "warpx":
            warpx_cr6 = crs[6]
    return {"cr_spread_max": max(spreads), "warpx_cr_at_block6": warpx_cr6}


@register(
    "ablation_entropy", "ablations",
    "Ablation: entropy stage — Huffman + DEFLATE vs DEFLATE alone",
    metrics={
        "huffman_gain_geomean": MetricSpec("x"),
        "min_cr": MetricSpec("x"),
    },
)
def ablation_entropy(scale: float) -> dict[str, float]:
    from repro.compression.sz_interp import SZInterp
    from repro.compression.sz_lr import SZLR

    gains = []
    min_cr = float("inf")
    for app in ("warpx", "nyx"):
        data = load_app(app, scale).uniform_field()
        for cls in (SZLR, SZInterp):
            crs = {}
            for entropy in ("huffman", "deflate"):
                blob = cls(entropy=entropy).compress(data, 1e-3, mode="rel")
                crs[entropy] = data.nbytes / len(blob)
                check(crs[entropy] > 1.0, f"{app}/{cls.__name__}/{entropy}: stream must compress")
                min_cr = min(min_cr, crs[entropy])
            gains.append(crs["huffman"] / crs["deflate"])
    return {"huffman_gain_geomean": _geomean(gains), "min_cr": min_cr}


@register(
    "ablation_predictor", "ablations",
    "Ablation: SZ-L/R predictor selection (Lorenzo / regression / hybrid)",
    metrics={
        "auto_vs_best_min": MetricSpec("x"),
        "warpx_auto_cr": MetricSpec("x"),
    },
)
def ablation_predictor(scale: float) -> dict[str, float]:
    from repro.compression.sz_lr import SZLR

    ratios = []
    warpx_auto = None
    for app in ("warpx", "nyx"):
        data = load_app(app, scale).uniform_field()
        by = {}
        for predictor in ("lorenzo", "regression", "auto"):
            blob = SZLR(predictor=predictor).compress(data, 1e-3, mode="rel")
            by[predictor] = data.nbytes / len(blob)
        ratio = by["auto"] / max(by["lorenzo"], by["regression"])
        check(ratio >= 0.95, f"{app}: hybrid selection must not lose to either fixed predictor")
        ratios.append(ratio)
        if app == "warpx":
            warpx_auto = by["auto"]
    return {"auto_vs_best_min": min(ratios), "warpx_auto_cr": warpx_auto}


@register(
    "ablation_redundant", "ablations",
    "Ablation: excluding redundant covered-coarse data (paper §2.2)",
    metrics={
        "gain_min": MetricSpec("x"),
        "nyx_gain_max": MetricSpec("x"),
    },
)
def ablation_redundant(scale: float) -> dict[str, float]:
    from repro.compression.amr_codec import compress_hierarchy

    gains: dict[tuple[str, str], float] = {}
    for app in ("warpx", "nyx"):
        ds = load_app(app, scale)
        for codec in ("sz-lr", "sz-interp"):
            plain = compress_hierarchy(ds.hierarchy, codec, 1e-3, fields=[ds.field])
            excl = compress_hierarchy(
                ds.hierarchy, codec, 1e-3, fields=[ds.field], exclude_covered=True
            )
            gains[(app, codec)] = excl.ratio / plain.ratio
    for (app, codec), gain in gains.items():
        check(gain > 0.95, f"{app}/{codec}: exclusion must not cost ratio")
    nyx_max = max(g for (app, _), g in gains.items() if app == "nyx")
    check(nyx_max > 1.02, "exclusion should pay off on Nyx (~40% refined)")
    return {"gain_min": min(gains.values()), "nyx_gain_max": nyx_max}


@register(
    "ablation_zmesh", "ablations",
    "Ablation: zMesh-style 1-D reordering vs 3-D per-patch compression",
    metrics={
        "warpx_advantage_3d": MetricSpec("x"),
        "nyx_advantage_3d": MetricSpec("x"),
    },
)
def ablation_zmesh(scale: float) -> dict[str, float]:
    from repro.compression.amr_codec import compress_hierarchy
    from repro.compression.zmesh_like import ZMeshLike

    out = {}
    for app, key in (("warpx", "warpx_advantage_3d"), ("nyx", "nyx_advantage_3d")):
        ds = load_app(app, scale)
        uniform = ds.uniform_field()
        eb_abs = 1e-3 * float(uniform.max() - uniform.min())
        z = ZMeshLike("sz-lr")
        blob = z.compress_hierarchy(ds.hierarchy, ds.field, eb_abs, mode="abs")
        cr_1d = ds.hierarchy.nbytes(ds.field) / len(blob)
        c3d = compress_hierarchy(ds.hierarchy, "sz-lr", eb_abs, mode="abs", fields=[ds.field])
        out[key] = c3d.ratio / cr_1d
    check(out["warpx_advantage_3d"] > 1.0, "smooth data: 3-D locality must win (TAC premise)")
    check(out["nyx_advantage_3d"] > 0.3, "spiky data: 3-D path stays within a small factor")
    return out
