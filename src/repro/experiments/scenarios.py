"""Mixed-physics registry scenarios: per-field error bounds end to end.

The paper's campaigns compress one field per application; real runs carry
mixed physics whose fields tolerate different distortion. The
``warpx_mixed_bounds`` scenario exercises the per-field error-bound
support end to end on a WarpX dataset extended with its wake magnetic
fields (``WarpXConfig(with_b_fields=True)``): E fields compress at the
working bound, B fields — an order of magnitude smaller, feeding force
calculations — at a 10x tighter relative bound.

The entry is *gated* like every other registry experiment: it checks that
every field of the batch container AND of the streamed series round-trips
within its own resolved bound, that the ``field_bounds`` metadata survives
the container/series formats, and that mixed bounds beat uniformly
tightening every field on compression ratio.
"""

from __future__ import annotations

import io

import numpy as np

from repro.experiments.registry import MetricSpec, check, register

__all__: list[str] = []

#: Working relative bound for the E fields / tighter bound for B.
E_BOUND = 1e-3
B_BOUND = 1e-4

#: The scenario's field set (E + rho at the working bound, B tighter).
SCENARIO_FIELDS = ("Ex", "Ey", "Ez", "Bx", "By")


def _mixed_hierarchy(scale: float):
    from repro.sims import WarpXConfig, warpx_hierarchy

    return warpx_hierarchy(
        WarpXConfig(
            nx=max(8, int(round(32 * scale))),
            nz=max(32, int(round(256 * scale))),
            with_b_fields=True,
        )
    )


def _check_bounds(hierarchy, restored, comp, fields, bounds) -> float:
    """Verify every patch of every field honours its per-field bound.

    Returns the worst observed error/bound utilization (must be <= 1).
    """
    worst = 0.0
    for name in fields:
        eb = bounds[name]
        for lev_idx in range(hierarchy.n_levels):
            orig = hierarchy[lev_idx].patches(name)
            rest = restored[lev_idx].patches(name)
            for o, r in zip(orig, rest):
                eb_abs = comp.resolve_error_bound(o.data, eb, "rel")
                err = float(np.abs(o.data - r.data).max())
                check(
                    err <= eb_abs * (1 + 1e-12) + 1e-300,
                    f"{name} level {lev_idx}: error {err:g} exceeds bound {eb_abs:g}",
                )
                if eb_abs > 0:
                    worst = max(worst, err / eb_abs)
    return worst


@register(
    "warpx_mixed_bounds", "scenarios",
    "Mixed-physics WarpX: E fields at 1e-3, B fields at 1e-4, one campaign",
    metrics={
        "cr_mixed": MetricSpec("x"),
        "cr_gain_vs_uniform_tight": MetricSpec("x"),
        "b_bound_utilization_max": MetricSpec("frac", higher_is_better=False),
    },
)
def warpx_mixed_bounds(scale: float) -> dict[str, float]:
    from repro.compression.amr_codec import (
        compress_hierarchy,
        decompress_hierarchy,
        resolve_patch_codec,
    )
    from repro.insitu import StreamingWriter
    from repro.insitu.series import SeriesReader

    h = _mixed_hierarchy(scale)
    field_bounds = {"Bx": B_BOUND, "By": B_BOUND}
    bounds = {name: field_bounds.get(name, E_BOUND) for name in SCENARIO_FIELDS}
    comp = resolve_patch_codec("sz-lr")

    # Batch path: per-field bounds honoured, metadata round-trips.
    mixed = compress_hierarchy(
        h, "sz-lr", E_BOUND, fields=SCENARIO_FIELDS, field_bounds=field_bounds
    )
    check(mixed.field_bounds == field_bounds, "container carries the per-field bounds")
    restored = decompress_hierarchy(mixed, h)
    _check_bounds(h, restored, comp, SCENARIO_FIELDS, bounds)

    # Streamed path: same data through StreamingWriter; the series must
    # restore the bounds and its step must decode bound-correct too.
    buf = io.BytesIO()
    with StreamingWriter(
        buf, "sz-lr", E_BOUND, fields=SCENARIO_FIELDS, field_bounds=field_bounds
    ) as w:
        w.append_step(h, time=0.0, step=0)
    with SeriesReader(buf.getvalue()) as reader:
        check(
            reader.field_bounds == field_bounds,
            "series footer carries the per-field bounds",
        )
        streamed = reader.select(steps=0, fields=["Bx", "By"])
    worst_b = 0.0
    for name in ("Bx", "By"):
        for lev_idx in range(h.n_levels):
            for p_idx, patch in enumerate(h[lev_idx].patches(name)):
                eb_abs = comp.resolve_error_bound(patch.data, B_BOUND, "rel")
                err = float(np.abs(patch.data - streamed[(0, lev_idx, name, p_idx)]).max())
                check(
                    err <= eb_abs * (1 + 1e-12) + 1e-300,
                    f"streamed {name}: error {err:g} exceeds tight bound {eb_abs:g}",
                )
                if eb_abs > 0:
                    worst_b = max(worst_b, err / eb_abs)

    # Economics: mixed bounds must beat uniformly tightening every field
    # to the B bound (that is the point of per-field overrides).
    uniform_tight = compress_hierarchy(h, "sz-lr", B_BOUND, fields=SCENARIO_FIELDS)
    gain = mixed.ratio / uniform_tight.ratio
    check(gain > 1.0, "mixed bounds must out-compress uniformly tight bounds")

    return {
        "cr_mixed": mixed.ratio,
        "cr_gain_vs_uniform_tight": gain,
        "b_bound_utilization_max": worst_b,
    }
