"""In-situ streaming campaign: throughput and peak memory vs the batch path.

The streaming writer exists for one reason: a solver cannot afford to hold
a campaign (or sometimes even one materialized snapshot set) in memory
while a post-hoc compressor catches up. This experiment runs the same
synthetic Nyx campaign twice —

* **streaming**: timesteps generated lazily and appended to an RPH2S
  series one at a time (peak memory ~ one snapshot + the in-flight
  compression window),
* **batch**: every timestep materialized first, then compressed
  snapshot-by-snapshot (peak memory ~ the whole campaign),

— and reports wall-clock throughput plus the peak of Python-traced
allocations (``tracemalloc``; NumPy registers its buffers with it), the
apples-to-apples number the ``benchmarks/bench_insitu.py`` acceptance
gate also uses.
"""

from __future__ import annotations

import gc
import tempfile
import time
import tracemalloc
from dataclasses import dataclass
from pathlib import Path

from repro.sims.nyx import NyxConfig
from repro.sims.streams import nyx_step_stream

__all__ = ["InsituRow", "run_insitu"]


@dataclass(frozen=True)
class InsituRow:
    """One (path, campaign) measurement."""

    path: str
    steps: int
    raw_mb: float
    wall_s: float
    mb_s: float
    #: peak of tracemalloc-traced allocations during the run, in MB.
    peak_mb: float
    out_mb: float
    ratio: float


def _traced(fn):
    """Run ``fn`` with a fresh tracemalloc window; return (result, wall_s, peak_bytes)."""
    gc.collect()
    tracemalloc.start()
    try:
        t0 = time.perf_counter()
        out = fn()
        wall = time.perf_counter() - t0
        peak = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()
    return out, wall, peak


def run_insitu(
    scale: float = 0.5,
    steps: int = 8,
    codec: str = "sz-lr",
    error_bound: float = 1e-3,
    field: str = "baryon_density",
    parallel: str = "serial",
    workers: int | None = 2,
) -> list[InsituRow]:
    """Measure streaming vs batch campaign compression on a Nyx-like run.

    Parameters
    ----------
    scale:
        Grid-size multiplier on the default 64^3 coarse grid.
    steps:
        Campaign length (timesteps).
    codec, error_bound:
        Compression spec, shared by both paths.
    field:
        Field to compress (the generators still synthesize all six Nyx
        fields per step — faithful to what a solver would hand over).
    parallel, workers:
        Execution mode for the per-patch compression map.
    """
    cfg = NyxConfig(coarse_n=max(8, int(round(64 * scale))))
    rows: list[InsituRow] = []
    with tempfile.TemporaryDirectory(prefix="repro-insitu-") as tmp:
        stream_path = Path(tmp) / "stream.rph2s"
        batch_path = Path(tmp) / "batch.rph2s"

        def streaming() -> int:
            from repro.amr.io import write_series

            write_series(
                stream_path, nyx_step_stream(steps, cfg), codec=codec,
                error_bound=error_bound, fields=[field], parallel=parallel,
                workers=workers,
            )
            return stream_path.stat().st_size

        def batch() -> int:
            from repro.amr.io import write_series

            # Materialize the whole campaign first (the post-hoc workflow),
            # then run the identical compression pass — so the two rows
            # differ only in *when* each snapshot exists.
            campaign = [s for s in nyx_step_stream(steps, cfg)]
            write_series(
                batch_path, campaign, codec=codec, error_bound=error_bound,
                fields=[field], parallel=parallel, workers=workers,
            )
            return batch_path.stat().st_size

        for name, fn, path in (
            ("streaming", streaming, stream_path),
            ("batch", batch, batch_path),
        ):
            out_bytes, wall, peak = _traced(fn)
            from repro.amr.io import open_series

            with open_series(path) as reader:
                raw = reader.original_bytes
                ratio = raw / reader.compressed_bytes
            rows.append(
                InsituRow(
                    path=name,
                    steps=steps,
                    raw_mb=raw / 1e6,
                    wall_s=wall,
                    mb_s=raw / 1e6 / wall,
                    peak_mb=peak / 1e6,
                    out_mb=out_bytes / 1e6,
                    ratio=ratio,
                )
            )
    return rows
