"""Experiment CLI: regenerate every table and figure of the paper.

Usage::

    python -m repro.experiments all --scale 1.0 --out results/
    python -m repro.experiments table2
    python -m repro.experiments fig9 --out results/

Each experiment prints a paper-layout text table (and ASCII RD plots) and,
with ``--out``, writes CSV rows plus PGM renders of the iso-surfaces.

The **registry** mode runs the CI-gated benchmark fleet instead
(:mod:`repro.experiments.registry` — checks + ``BENCH_<name>.json``
artifacts)::

    python -m repro.experiments run all --quick --out bench-out
    python -m repro.experiments run figures fig09 --scale 0.5
    python -m repro.experiments list
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.experiments import figures as figs
from repro.experiments.report import ascii_plot, format_table, rows_to_csv
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.insitu import run_insitu
from repro.experiments.throughput import run_throughput
from repro.viz.image_io import write_pgm

__all__ = ["main"]

EXPERIMENTS = (
    "table1",
    "table2",
    "fig1",
    "fig2",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "throughput",
    "insitu",
)


def _emit(name: str, rows, out: Path | None, columns=None, title: str = "") -> None:
    print(format_table(rows, columns=columns, title=title or name))
    if out is not None and rows:
        rows_to_csv(rows, out / f"{name}.csv")


def _save_images(images: dict, out: Path | None) -> None:
    if out is None:
        return
    from repro.viz.colormap import write_ppm

    for name, img in images.items():
        if img.ndim == 3:  # colormapped RGB panel
            write_ppm(out / "images" / f"{name}.ppm", img)
        else:
            write_pgm(out / "images" / f"{name}.pgm", img)


def _rd_plots(rows, app: str) -> None:
    by_codec_psnr = {}
    by_codec_rssim = {}
    for r in rows:
        by_codec_psnr.setdefault(r.codec, []).append((r.cr, r.psnr))
        by_codec_rssim.setdefault(r.codec, []).append((r.cr, max(r.r_ssim, 1e-12)))
    print(ascii_plot(by_codec_psnr, title=f"{app}: PSNR vs CR", xlabel="CR", ylabel="PSNR"))
    print(
        ascii_plot(
            by_codec_rssim,
            logy=True,
            title=f"{app}: R-SSIM vs CR (log)",
            xlabel="CR",
            ylabel="R-SSIM",
        )
    )


def run_one(name: str, scale: float, out: Path | None) -> None:
    """Run one named experiment and emit its outputs."""
    images: dict = {}
    if name == "table1":
        _emit(name, run_table1(scale), out, title="Table 1: dataset geometry and densities")
    elif name == "table2":
        _emit(name, run_table2(scale), out, title="Table 2: CR / PSNR / SSIM / R-SSIM")
    elif name == "fig1":
        _emit(name, figs.run_fig1(scale, image_store=images), out,
              title="Figure 1: original-data pipelines (cracks / gaps / fixed)")
    elif name == "fig2":
        _emit(name, figs.run_fig2(scale, image_store=images), out,
              title="Figure 2: refinement vs timestep")
    elif name == "fig9":
        _emit(name, figs.run_fig9(scale, image_store=images), out,
              title="Figure 9: WarpX + SZ-L/R, methods x error bounds")
    elif name == "fig10":
        _emit(name, figs.run_fig10(scale, image_store=images), out,
              title="Figure 10: WarpX + SZ-Interp")
    elif name == "fig11":
        _emit(name, figs.run_fig11(scale, image_store=images), out,
              title="Figure 11: Nyx, original + SZ-L/R + SZ-Interp")
    elif name == "fig12":
        rows = figs.run_fig12(scale)
        _emit(name, rows, out, title="Figure 12: RD on WarpX Ez")
        _rd_plots(rows, "warpx")
    elif name == "fig13":
        rows = figs.run_fig13(scale)
        _emit(name, rows, out, title="Figure 13: RD on Nyx density")
        _rd_plots(rows, "nyx")
    elif name == "throughput":
        _emit(name, run_throughput(scale), out,
              title="Container (de)compression throughput by execution mode")
    elif name == "insitu":
        _emit(name, run_insitu(scale), out,
              title="In-situ streaming campaign: throughput and peak memory vs batch")
    elif name == "fig14":
        demo = figs.run_fig14()
        print("Figure 14: 1-D interpolation-smoothing demo")
        print("  original:     ", demo.original.tolist())
        print("  decompressed: ", demo.decompressed.tolist())
        print("  re-sampled:   ", demo.resampled.tolist())
        print(f"  dual-cell RMSE={demo.dual_cell_rmse:.4f}  re-sampled RMSE={demo.resampled_rmse:.4f}")
    else:
        raise SystemExit(f"unknown experiment {name!r}; have {EXPERIMENTS + ('all',)}")
    _save_images(images, out)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (legacy tables/figures mode + registry mode)."""
    args_in = sys.argv[1:] if argv is None else argv
    if args_in and args_in[0] in ("run", "list"):
        from repro.experiments.registry import main as registry_main

        return registry_main(args_in)
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiment", choices=EXPERIMENTS + ("all",), help="which experiment")
    parser.add_argument("--scale", type=float, default=1.0, help="grid-size multiplier (default 1.0)")
    parser.add_argument("--out", type=Path, default=None, help="output directory for CSV/PGM artifacts")
    args = parser.parse_args(argv)
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
    targets = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    for name in targets:
        run_one(name, args.scale, args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
