"""Canonical experiment datasets (the paper's Table 1 configurations).

One place defines the two applications' geometry, the evaluated field, the
iso value used for surface extraction, and the paper's reference numbers,
all scaled by a single ``scale`` knob:

* ``scale=1.0`` — default reproduction size: Nyx 64^3+128^3, WarpX
  32x32x256 + 64x64x512 (paper geometry / 4 per dimension; see DESIGN.md).
* ``scale=4.0`` — the paper's literal grid sizes (hours in pure Python).
* ``scale=0.5`` — CI/benchmark size.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.amr.hierarchy import AMRHierarchy
from repro.amr.uniform import flatten_to_uniform
from repro.errors import ExperimentError
from repro.sims.nyx import NyxConfig, nyx_hierarchy
from repro.sims.warpx import WarpXConfig, warpx_hierarchy

__all__ = ["AppDataset", "load_app", "APPS", "PAPER_TABLE1", "PAPER_TABLE2"]

#: Application names used across the harness.
APPS = ("warpx", "nyx")

#: Table 1 of the paper (reference values).
PAPER_TABLE1 = {
    "warpx": {
        "levels": 2,
        "grids": ((128, 128, 1024), (256, 256, 2048)),
        "densities": (0.914, 0.086),
    },
    "nyx": {
        "levels": 2,
        "grids": ((256, 256, 256), (512, 512, 512)),
        "densities": (0.593, 0.407),
    },
}

#: Table 2 of the paper (reference values), keyed (app, codec, eb).
PAPER_TABLE2 = {
    ("warpx", "sz-lr", 1e-4): {"cr": 23.7, "psnr": 96.34, "ssim": 0.9999998},
    ("warpx", "sz-lr", 1e-3): {"cr": 31.4, "psnr": 77.72, "ssim": 0.999986},
    ("warpx", "sz-lr", 1e-2): {"cr": 42.3, "psnr": 60.70, "ssim": 0.99960},
    ("warpx", "sz-interp", 1e-4): {"cr": 32.4, "psnr": 96.57, "ssim": 0.9999995},
    ("warpx", "sz-interp", 1e-3): {"cr": 45.1, "psnr": 78.24, "ssim": 0.999955},
    ("warpx", "sz-interp", 1e-2): {"cr": 52.6, "psnr": 60.38, "ssim": 0.99723},
    ("nyx", "sz-lr", 1e-4): {"cr": 14.6, "psnr": 102.51, "ssim": 0.9999999},
    ("nyx", "sz-lr", 1e-3): {"cr": 28.6, "psnr": 90.33, "ssim": 0.9999988},
    ("nyx", "sz-lr", 1e-2): {"cr": 61.9, "psnr": 81.09, "ssim": 0.999989},
    ("nyx", "sz-interp", 1e-4): {"cr": 15.8, "psnr": 103.11, "ssim": 0.9999999},
    ("nyx", "sz-interp", 1e-3): {"cr": 34.7, "psnr": 86.63, "ssim": 0.9999937},
    ("nyx", "sz-interp", 1e-2): {"cr": 77.9, "psnr": 72.94, "ssim": 0.999722},
}


@dataclass(frozen=True)
class AppDataset:
    """One application's hierarchy plus evaluation conventions."""

    name: str
    hierarchy: AMRHierarchy
    #: field evaluated by the paper (WarpX "Ez", Nyx density).
    field: str
    #: iso value for surface extraction.
    iso: float
    #: axis the figures view along.
    view_axis: int

    def uniform_field(self) -> np.ndarray:
        """The evaluated field composited to the finest uniform grid."""
        return flatten_to_uniform(self.hierarchy, self.field)


def _scaled_int(base: int, scale: float, minimum: int) -> int:
    return max(minimum, int(round(base * scale)))


@lru_cache(maxsize=8)
def load_app(name: str, scale: float = 1.0, seed: int | None = None) -> AppDataset:
    """Build (and cache) one application dataset.

    Parameters
    ----------
    name:
        ``"warpx"`` or ``"nyx"``.
    scale:
        Linear grid-size multiplier relative to the default size.
    seed:
        Override the default generation seed (for seed-robustness tests).
    """
    if name == "warpx":
        cfg = WarpXConfig(
            nx=_scaled_int(32, scale, 8),
            nz=_scaled_int(256, scale, 32),
            seed=7 if seed is None else seed,
        )
        h = warpx_hierarchy(cfg)
        ez = h[0].patches("Ez")[0].data
        # Wake-scale iso value: low enough that the surface spans both the
        # refined pulse region and the coarse wake (crossing the level
        # interface, as the paper's Figure 1 surface does).
        iso = 0.08 * float(np.abs(ez).max())
        return AppDataset(name=name, hierarchy=h, field="Ez", iso=iso, view_axis=1)
    if name == "nyx":
        cfg = NyxConfig(
            coarse_n=_scaled_int(64, scale, 16),
            seed=42 if seed is None else seed,
        )
        h = nyx_hierarchy(cfg)
        # Filament surface: overdensity 2 (mean-normalized field).
        return AppDataset(name=name, hierarchy=h, field="baryon_density", iso=2.0, view_axis=2)
    raise ExperimentError(f"unknown app {name!r} (have {APPS})")
