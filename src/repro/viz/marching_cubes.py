"""Vectorized 3-D marching cubes (paper §2.3) with NaN masking.

Operates on vertex-centered scalar grids. Cells whose eight corner values
include NaN are skipped — this is how per-level AMR extraction restricts
the surface to a level's valid region (and precisely how the dangling-node
cracks of Figure 5/6 arise at level interfaces).

Vertices are deduplicated via global edge indexing (one vertex per
intersected grid edge), so the mesh is watertight wherever the data is:
closed iso-surfaces come out with zero boundary edges.
"""

from __future__ import annotations

import numpy as np

from repro.errors import VisualizationError
from repro.viz import mc_tables as tables
from repro.viz.mesh import TriangleMesh

__all__ = ["marching_cubes"]


def _interp_t(v0: np.ndarray, v1: np.ndarray, iso: float) -> np.ndarray:
    """Linear interpolation parameter of the iso-crossing on an edge."""
    denom = v1 - v0
    # Guard exact equality; the edge is only used when signs differ, so
    # denom == 0 cannot actually select a crossing, but avoid the warning.
    safe = np.where(denom == 0.0, 1.0, denom)
    t = (iso - v0) / safe
    return np.clip(t, 0.0, 1.0)


def marching_cubes(
    field: np.ndarray,
    iso: float,
    spacing: tuple[float, float, float] | float = 1.0,
    origin: tuple[float, float, float] = (0.0, 0.0, 0.0),
    cell_mask: np.ndarray | None = None,
) -> TriangleMesh:
    """Extract the ``field == iso`` surface from a vertex-centered grid.

    Parameters
    ----------
    field:
        3-D array of grid-vertex values; NaN marks invalid vertices.
    iso:
        Iso value.
    spacing:
        Grid-vertex spacing (scalar or per-axis).
    origin:
        Physical position of vertex ``(0, 0, 0)``.
    cell_mask:
        Optional boolean array of shape ``field.shape - 1``; ``False``
        cells are skipped in addition to NaN-adjacent ones.

    Returns
    -------
    TriangleMesh
        Triangles with consistent orientation (normals toward decreasing
        field values... increasing outside).
    """
    arr = np.asarray(field, dtype=np.float64)
    if arr.ndim != 3:
        raise VisualizationError(f"field must be 3-D, got {arr.ndim}-D")
    if any(s < 2 for s in arr.shape):
        raise VisualizationError(f"field shape {arr.shape} too small for marching cubes")
    if np.isscalar(spacing):
        dx = np.array([float(spacing)] * 3)
    else:
        dx = np.asarray(spacing, dtype=np.float64)
        if dx.shape != (3,):
            raise VisualizationError("spacing must be scalar or length 3")
    org = np.asarray(origin, dtype=np.float64)
    nx, ny, nz = arr.shape
    cx, cy, cz = nx - 1, ny - 1, nz - 1

    valid_vert = np.isfinite(arr)
    inside = np.where(valid_vert, arr > iso, False)

    # Cube configuration per cell: sum of corner bits. Corner c contributes
    # bit c when vertex (i+di, j+dj, k+dk) is inside.
    config = np.zeros((cx, cy, cz), dtype=np.uint16)
    cell_valid = np.ones((cx, cy, cz), dtype=bool)
    for c, (di, dj, dk) in enumerate(tables.CORNER_OFFSETS):
        sl = (slice(di, cx + di), slice(dj, cy + dj), slice(dk, cz + dk))
        config |= inside[sl].astype(np.uint16) << c
        cell_valid &= valid_vert[sl]
    if cell_mask is not None:
        mask = np.asarray(cell_mask, dtype=bool)
        if mask.shape != (cx, cy, cz):
            raise VisualizationError(
                f"cell_mask shape {mask.shape} != cell grid {(cx, cy, cz)}"
            )
        cell_valid &= mask
    active = cell_valid & (config != 0) & (config != 255)
    if not active.any():
        return TriangleMesh.empty()

    cells = np.nonzero(active)
    cell_cfg = config[cells]
    ci, cj, ck = (c.astype(np.int64) for c in cells)

    # ------------------------------------------------------------------
    # Global edge ids: edge (axis a) from grid vertex (i, j, k).
    # ------------------------------------------------------------------
    def global_edge(i: np.ndarray, j: np.ndarray, k: np.ndarray, axis: np.ndarray) -> np.ndarray:
        return ((i * ny + j) * nz + k) * 3 + axis

    # Per active cell, global ids of its 12 local edges.
    eoa = tables.EDGE_ORIGIN_AXIS
    cell_edges = np.empty((ci.size, 12), dtype=np.int64)
    for e in range(12):
        di, dj, dk, axis = eoa[e]
        cell_edges[:, e] = global_edge(ci + di, cj + dj, ck + dk, np.int64(axis))

    # ------------------------------------------------------------------
    # Emit triangles per configuration group.
    # ------------------------------------------------------------------
    tri_chunks: list[np.ndarray] = []
    for cfg in np.unique(cell_cfg):
        tris = tables.TRI_TABLE[cfg]
        if not tris:
            continue
        rows = np.nonzero(cell_cfg == cfg)[0]
        local = np.asarray(tris, dtype=np.int64)  # (t, 3) edge ids
        # (n_cells_in_group, t, 3) global edge ids.
        tri_chunks.append(cell_edges[rows][:, local].reshape(-1, 3))
    all_tris = np.concatenate(tri_chunks)

    # ------------------------------------------------------------------
    # One vertex per referenced global edge.
    # ------------------------------------------------------------------
    used_edges, face_idx = np.unique(all_tris, return_inverse=True)
    axis = used_edges % 3
    rest = used_edges // 3
    k0 = rest % nz
    rest //= nz
    j0 = rest % ny
    i0 = rest // ny
    v0 = arr[i0, j0, k0]
    i1 = i0 + (axis == 0)
    j1 = j0 + (axis == 1)
    k1 = k0 + (axis == 2)
    v1 = arr[i1, j1, k1]
    t = _interp_t(v0, v1, iso)
    base = np.stack([i0, j0, k0], axis=1).astype(np.float64)
    step = np.zeros((used_edges.size, 3))
    step[np.arange(used_edges.size), axis] = t
    verts = org + (base + step) * dx
    faces = face_idx.reshape(-1, 3)
    return TriangleMesh(verts, faces).dropped_degenerate()
