"""Gap handling between AMR levels for the dual-cell method (Figure 8).

Two fixes from the paper (§2.4):

* **Redundant coarse data / "switching cells"** — patch-based AMR retains
  coarse values underneath refined regions; extending the coarse dual grid
  one (or more) redundant-cell rings into the fine region makes the coarse
  surface overlap the fine one, closing the visual gap (Figure 8, top).
  :func:`redundant_ring_mask` computes the extended coarse-cell mask; the
  pipelines feed it to dual extraction. Works in any dimension.
* **Stitching cells** (Weber et al. 2001) — build explicit cells bridging
  the fine dual boundary to the coarse dual boundary (Figure 8, bottom).
  Implemented here for 2-D contours (:func:`stitch_contours_2d`), which is
  what the paper's didactic figures show; in 3-D the repository uses the
  redundant-data fix (see DESIGN.md substitution table).
"""

from __future__ import annotations

import numpy as np

from repro.amr.tagging import dilate_tags
from repro.errors import VisualizationError

__all__ = ["redundant_ring_mask", "stitch_contours_2d"]


def redundant_ring_mask(exposed: np.ndarray, covered: np.ndarray, rings: int = 1) -> np.ndarray:
    """Coarse-cell mask including ``rings`` of redundant covered cells.

    Parameters
    ----------
    exposed:
        Boolean mask of coarse cells *not* overlaid by fine data.
    covered:
        Boolean mask of coarse cells overlaid by fine data (the redundant
        region whose values patch-based AMR still stores).
    rings:
        How many cells deep to extend into the covered region; one ring is
        enough to overlap the fine dual grid for ratio-2 refinement.
    """
    if exposed.shape != covered.shape:
        raise VisualizationError("exposed/covered mask shapes differ")
    grown = dilate_tags(exposed, rings)
    return exposed | (grown & covered)


def stitch_contours_2d(
    fine_ends: np.ndarray,
    coarse_ends: np.ndarray,
    max_span: float,
) -> np.ndarray:
    """Greedy stitch segments joining open contour endpoints across a gap.

    Parameters
    ----------
    fine_ends:
        ``(n, 2)`` open endpoints of the fine level's dual contour.
    coarse_ends:
        ``(m, 2)`` open endpoints of the coarse level's dual contour.
    max_span:
        Largest endpoint distance to bridge (typically one coarse cell).

    Returns
    -------
    numpy.ndarray
        ``(k, 2, 2)`` stitch segments, each fine endpoint connected to its
        nearest unused coarse endpoint within ``max_span``.
    """
    fine = np.asarray(fine_ends, dtype=np.float64).reshape(-1, 2)
    coarse = np.asarray(coarse_ends, dtype=np.float64).reshape(-1, 2)
    if fine.size == 0 or coarse.size == 0:
        return np.empty((0, 2, 2))
    used = np.zeros(len(coarse), dtype=bool)
    segments = []
    # Greedy nearest matching, closest pairs first.
    d = np.linalg.norm(fine[:, None, :] - coarse[None, :, :], axis=2)
    order = np.dstack(np.unravel_index(np.argsort(d, axis=None), d.shape))[0]
    fine_used = np.zeros(len(fine), dtype=bool)
    for fi, cj in order:
        if fine_used[fi] or used[cj]:
            continue
        if d[fi, cj] > max_span:
            break
        segments.append([fine[fi], coarse[cj]])
        fine_used[fi] = True
        used[cj] = True
    if not segments:
        return np.empty((0, 2, 2))
    return np.asarray(segments)
