"""2-D marching squares (the paper's Figure 4-right / Figure 5 examples).

Produces iso-contour line segments from a vertex-centered 2-D grid, with
the same "separate positive corners" ambiguity rule as the 3-D tables in
:mod:`repro.viz.mc_tables` and the same NaN masking semantics. Used by the
didactic 2-D figures and by the 2-D stitching demonstration.
"""

from __future__ import annotations

import numpy as np

from repro.errors import VisualizationError

__all__ = ["marching_squares", "contour_length"]

# Square corners: 0=(0,0) 1=(0,1) 2=(1,1) 3=(1,0), cyclic. Edge i connects
# corner i and corner (i+1) % 4.
_CORNERS = np.array([[0, 0], [0, 1], [1, 1], [1, 0]], dtype=np.int64)
_EDGE_LOOKUP: dict[int, list[tuple[int, int]]] = {}
for cfg in range(16):
    pos = [(cfg >> c) & 1 for c in range(4)]
    n_pos = sum(pos)
    segs: list[tuple[int, int]] = []
    if n_pos in (1, 3):
        target = 1 if n_pos == 1 else 0
        corner = pos.index(target)
        segs.append(((corner - 1) % 4, corner))
    elif n_pos == 2:
        if pos[0] == pos[2]:  # diagonal: separate positives
            for corner in range(4):
                if pos[corner]:
                    segs.append(((corner - 1) % 4, corner))
        else:
            crossed = [i for i in range(4) if pos[i] != pos[(i + 1) % 4]]
            segs.append((crossed[0], crossed[1]))
    _EDGE_LOOKUP[cfg] = segs


def _edge_point(grid: np.ndarray, ci: int, cj: int, edge: int, iso: float) -> np.ndarray:
    a = _CORNERS[edge]
    b = _CORNERS[(edge + 1) % 4]
    pa = np.array([ci + a[0], cj + a[1]], dtype=np.float64)
    pb = np.array([ci + b[0], cj + b[1]], dtype=np.float64)
    va = grid[ci + a[0], cj + a[1]]
    vb = grid[ci + b[0], cj + b[1]]
    denom = vb - va
    t = 0.5 if denom == 0.0 else float(np.clip((iso - va) / denom, 0.0, 1.0))
    return pa + t * (pb - pa)


def marching_squares(
    field: np.ndarray,
    iso: float,
    spacing: tuple[float, float] | float = 1.0,
    origin: tuple[float, float] = (0.0, 0.0),
) -> np.ndarray:
    """Extract iso-contour segments from a vertex-centered 2-D grid.

    Returns
    -------
    numpy.ndarray
        ``(n, 2, 2)`` array of segments (start/end x,y). Cells touching a
        NaN vertex are skipped.
    """
    arr = np.asarray(field, dtype=np.float64)
    if arr.ndim != 2:
        raise VisualizationError(f"field must be 2-D, got {arr.ndim}-D")
    if any(s < 2 for s in arr.shape):
        raise VisualizationError("field too small for marching squares")
    if np.isscalar(spacing):
        dx = np.array([float(spacing)] * 2)
    else:
        dx = np.asarray(spacing, dtype=np.float64)
    org = np.asarray(origin, dtype=np.float64)
    segments = []
    ni, nj = arr.shape
    valid = np.isfinite(arr)
    for ci in range(ni - 1):
        for cj in range(nj - 1):
            corners_idx = [(ci + o[0], cj + o[1]) for o in _CORNERS]
            if not all(valid[i, j] for i, j in corners_idx):
                continue
            cfg = 0
            for c, (i, j) in enumerate(corners_idx):
                if arr[i, j] > iso:
                    cfg |= 1 << c
            for ea, eb in _EDGE_LOOKUP[cfg]:
                p0 = _edge_point(arr, ci, cj, ea, iso)
                p1 = _edge_point(arr, ci, cj, eb, iso)
                segments.append([org + p0 * dx, org + p1 * dx])
    if not segments:
        return np.empty((0, 2, 2))
    return np.asarray(segments)


def contour_length(segments: np.ndarray) -> float:
    """Total polyline length of marching-squares output."""
    if len(segments) == 0:
        return 0.0
    d = segments[:, 1] - segments[:, 0]
    return float(np.linalg.norm(d, axis=1).sum())
