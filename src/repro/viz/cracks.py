"""Quantitative crack / gap metrics for AMR iso-surfaces.

The paper demonstrates cracks and gaps visually (Figures 1, 9-11); this
module turns them into numbers so the benchmark harness can assert the
qualitative claims:

* **open-edge audit** — mesh boundary edges that do not lie on the domain
  boundary indicate surface terminations inside the volume: cracks
  (re-sampling) or gap rims (dual-cell).
* **interface gap distance** — for two adjacent levels' surfaces, the
  distance from each interior open-edge midpoint of one surface to the
  nearest sample of the other. Large for dual-cell gaps, small but nonzero
  for re-sampling cracks, near zero when the redundant-data fix makes the
  surfaces overlap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

from repro.amr.hierarchy import AMRHierarchy
from repro.errors import MetricError
from repro.viz.mesh import TriangleMesh
from repro.viz.pipelines import IsoSurfaceResult

__all__ = ["CrackReport", "interior_boundary_edges", "interface_gap", "crack_report"]


def _domain_bounds(hierarchy: AMRHierarchy) -> tuple[np.ndarray, np.ndarray]:
    dx0 = np.asarray(hierarchy[0].dx)
    lo = np.asarray(hierarchy.domain.lo, dtype=np.float64) * dx0
    hi = (np.asarray(hierarchy.domain.hi, dtype=np.float64) + 1.0) * dx0
    return lo, hi


def interior_boundary_edges(
    mesh: TriangleMesh, domain_lo: np.ndarray, domain_hi: np.ndarray, tol: float
) -> np.ndarray:
    """Boundary edges whose midpoint is farther than ``tol`` from every
    domain face (i.e. terminations *inside* the volume)."""
    edges = mesh.boundary_edges()
    if len(edges) == 0:
        return edges
    mid = 0.5 * (mesh.vertices[edges[:, 0]] + mesh.vertices[edges[:, 1]])
    near_face = np.zeros(len(edges), dtype=bool)
    for axis in range(3):
        near_face |= np.abs(mid[:, axis] - domain_lo[axis]) <= tol
        near_face |= np.abs(mid[:, axis] - domain_hi[axis]) <= tol
    return edges[~near_face]


def _surface_samples(mesh: TriangleMesh) -> np.ndarray:
    """Vertices plus triangle centroids — a cheap dense surface sampling."""
    if mesh.is_empty():
        return np.empty((0, 3))
    cent = mesh.vertices[mesh.faces].mean(axis=1)
    return np.concatenate([mesh.vertices, cent])


def interface_gap(
    mesh_a: TriangleMesh,
    mesh_b: TriangleMesh,
    domain_lo: np.ndarray,
    domain_hi: np.ndarray,
    tol: float,
) -> tuple[float, float]:
    """(mean, max) distance from ``mesh_a``'s interior open edges to
    ``mesh_b``'s surface samples. Returns ``(0.0, 0.0)`` when either side
    has nothing to measure."""
    edges = interior_boundary_edges(mesh_a, domain_lo, domain_hi, tol)
    samples = _surface_samples(mesh_b)
    if len(edges) == 0 or len(samples) == 0:
        return 0.0, 0.0
    mid = 0.5 * (mesh_a.vertices[edges[:, 0]] + mesh_a.vertices[edges[:, 1]])
    dist, _ = cKDTree(samples).query(mid)
    return float(dist.mean()), float(dist.max())


@dataclass(frozen=True)
class CrackReport:
    """Crack/gap summary of one pipeline run on one hierarchy."""

    method: str
    open_edge_count: int
    open_edge_length: float
    mean_gap: float
    max_gap: float

    def is_sealed(self, gap_tolerance: float) -> bool:
        """Whether level surfaces meet within ``gap_tolerance``."""
        return self.open_edge_count == 0 or self.max_gap <= gap_tolerance


def crack_report(result: IsoSurfaceResult, hierarchy: AMRHierarchy) -> CrackReport:
    """Audit a pipeline result for cracks/gaps at level interfaces.

    Open edges are collected per level mesh (interior only); gap distances
    are measured from each finer level's open edges to the next coarser
    level's surface — the inter-level seam the paper's figures inspect.
    """
    if len(result.level_meshes) != hierarchy.n_levels:
        raise MetricError("result/hierarchy level count mismatch")
    lo, hi = _domain_bounds(hierarchy)
    tol = 1.01 * float(max(hierarchy[0].dx))
    count = 0
    length = 0.0
    gaps_mean: list[float] = []
    gaps_max: list[float] = []
    for lev_idx, mesh in enumerate(result.level_meshes):
        edges = interior_boundary_edges(mesh, lo, hi, tol)
        count += len(edges)
        length += float(mesh.edge_lengths(edges).sum()) if len(edges) else 0.0
        if lev_idx >= 1:
            mean_d, max_d = interface_gap(mesh, result.level_meshes[lev_idx - 1], lo, hi, tol)
            if max_d > 0.0:
                gaps_mean.append(mean_d)
                gaps_max.append(max_d)
    return CrackReport(
        method=result.method,
        open_edge_count=count,
        open_edge_length=length,
        mean_gap=float(np.mean(gaps_mean)) if gaps_mean else 0.0,
        max_gap=float(np.max(gaps_max)) if gaps_max else 0.0,
    )
