"""Cell-centered to vertex-centered re-sampling (paper §2.3, Figure 4).

The conventional AMR visualization path "diffuses" each cell's value onto
its vertices: a grid vertex receives the average of its adjacent cells (up
to ``2**ndim`` of them; fewer at domain boundaries). Output has one more
sample per dimension than the input.

NaN-aware: invalid (masked) cells simply do not contribute, and vertices
with no valid neighbor stay NaN — which is what confines per-level
extraction to the level's region.

The paper's §4.3 discussion hinges on this step: averaging acts as a small
low-pass filter that *smooths away part of the compression artifacts*
(Figure 14), which is why re-sampling visualizations of decompressed data
look better than dual-cell ones.
"""

from __future__ import annotations

import numpy as np

from repro.errors import VisualizationError

__all__ = ["cell_to_vertex"]


def cell_to_vertex(cells: np.ndarray) -> np.ndarray:
    """Average cell-centered data onto the surrounding vertex lattice.

    Parameters
    ----------
    cells:
        n-D cell-centered array; NaN marks invalid cells.

    Returns
    -------
    numpy.ndarray
        Vertex-centered array of shape ``cells.shape + 1`` per axis; NaN
        where no adjacent valid cell exists.
    """
    arr = np.asarray(cells, dtype=np.float64)
    if arr.ndim < 1:
        raise VisualizationError("cells must be an array")
    out_shape = tuple(s + 1 for s in arr.shape)
    total = np.zeros(out_shape, dtype=np.float64)
    count = np.zeros(out_shape, dtype=np.int64)
    valid = np.isfinite(arr)
    filled = np.where(valid, arr, 0.0)
    # Each cell contributes to its 2**ndim surrounding vertices; iterate the
    # corner offsets (vectorized adds, 2**ndim passes).
    for corner in range(1 << arr.ndim):
        sl = tuple(
            slice(1, None) if (corner >> d) & 1 else slice(None, -1) for d in range(arr.ndim)
        )
        total[sl] += filled
        count[sl] += valid
    with np.errstate(invalid="ignore"):
        out = total / count
    out[count == 0] = np.nan
    return out
