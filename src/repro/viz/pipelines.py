"""End-to-end AMR iso-surface pipelines (the paper's two methods, §3.1).

Both pipelines walk the hierarchy level by level:

* :func:`resampling_isosurface` — the *basic* method: composite each
  level's exposed cells, re-sample cell->vertex (Figure 4), then marching
  cubes. Levels meet at dangling nodes, so the merged surface shows the
  cracks of Figure 1a — and the interpolation inherent in re-sampling
  partially smooths compression artifacts (§4.3).
* :func:`dual_cell_isosurface` — the *advanced* method: marching cubes on
  each level's dual (cell-center) grid. Crack-free, but with inter-level
  gaps (Figure 1b) unless ``gap_fix="redundant"`` extends the coarse dual
  grid with redundant coarse data (Figure 1c); uses raw cell values, so
  compression artifacts pass through unsmoothed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.amr.box import Box
from repro.amr.hierarchy import AMRHierarchy
from repro.errors import VisualizationError
from repro.viz.dual_cell import dual_isosurface
from repro.viz.marching_cubes import marching_cubes
from repro.viz.mesh import TriangleMesh
from repro.viz.resample import cell_to_vertex
from repro.viz.stitching import redundant_ring_mask

__all__ = ["IsoSurfaceResult", "resampling_isosurface", "dual_cell_isosurface"]


@dataclass
class IsoSurfaceResult:
    """Output of an AMR iso-surface pipeline."""

    method: str
    iso: float
    level_meshes: list[TriangleMesh] = field(default_factory=list)

    @property
    def merged(self) -> TriangleMesh:
        """All level surfaces as one mesh (no welding across levels)."""
        return TriangleMesh.merge(self.level_meshes)

    @property
    def n_faces(self) -> int:
        """Total triangle count."""
        return sum(m.n_faces for m in self.level_meshes)


def _level_cells(
    hierarchy: AMRHierarchy, level: int, fld: str, keep: np.ndarray
) -> tuple[np.ndarray, Box]:
    """Level's cell data over its full-domain window, NaN outside ``keep``."""
    dom = hierarchy.domain_at(level)
    cells = hierarchy[level].to_array(fld, dom, fill=np.nan)
    cells[~keep] = np.nan
    return cells, dom


def _masks(hierarchy: AMRHierarchy, level: int) -> tuple[np.ndarray, np.ndarray]:
    """(exposed, covered) cell masks over the level's full domain."""
    dom = hierarchy.domain_at(level)
    stored = hierarchy[level].boxes.mask(dom)
    covered = hierarchy.covered_mask(level)
    return stored & ~covered, stored & covered


def resampling_isosurface(
    hierarchy: AMRHierarchy,
    fld: str,
    iso: float,
) -> IsoSurfaceResult:
    """Basic AMR iso-surface: per-level re-sampling + marching cubes.

    Each level contributes the surface over its *exposed* region (covered
    coarse data is skipped, as in standard post-analysis — Figure 3). The
    per-level vertex grids disagree at level interfaces (dangling nodes),
    which is exactly the crack artifact the paper analyzes.
    """
    if hierarchy.ndim != 3:
        raise VisualizationError("iso-surface pipelines need 3-D hierarchies")
    result = IsoSurfaceResult(method="resampling", iso=float(iso))
    for lev_idx, lev in enumerate(hierarchy):
        exposed, _ = _masks(hierarchy, lev_idx)
        cells, dom = _level_cells(hierarchy, lev_idx, fld, exposed)
        vertices = cell_to_vertex(cells)
        origin = tuple(l * d for l, d in zip(dom.lo, lev.dx))
        mesh = marching_cubes(vertices, iso, spacing=tuple(lev.dx), origin=origin)
        result.level_meshes.append(mesh)
    return result


def dual_cell_isosurface(
    hierarchy: AMRHierarchy,
    fld: str,
    iso: float,
    gap_fix: str = "none",
    rings: int = 1,
) -> IsoSurfaceResult:
    """Advanced AMR iso-surface: per-level dual-cell marching cubes.

    Parameters
    ----------
    hierarchy, fld, iso:
        Dataset, field name, iso value.
    gap_fix:
        ``"none"`` — leave the inter-level gaps (Figure 1b);
        ``"redundant"`` — extend coarse levels into refined regions using
        the redundant coarse data ("switching cells", Figure 1c).
    rings:
        Redundant-cell rings to include with ``gap_fix="redundant"``.
    """
    if hierarchy.ndim != 3:
        raise VisualizationError("iso-surface pipelines need 3-D hierarchies")
    if gap_fix not in ("none", "redundant"):
        raise VisualizationError(f"unknown gap_fix {gap_fix!r}")
    result = IsoSurfaceResult(method=f"dual-cell[{gap_fix}]", iso=float(iso))
    for lev_idx, lev in enumerate(hierarchy):
        exposed, covered = _masks(hierarchy, lev_idx)
        keep = exposed
        if gap_fix == "redundant" and covered.any():
            keep = redundant_ring_mask(exposed, covered, rings)
        cells, dom = _level_cells(hierarchy, lev_idx, fld, keep)
        origin = tuple(l * d for l, d in zip(dom.lo, lev.dx))
        mesh = dual_isosurface(cells, iso, spacing=tuple(lev.dx), origin=origin)
        result.level_meshes.append(mesh)
    return result
