"""AMR iso-surface visualization substrate.

Pipelines (:mod:`repro.viz.pipelines`) implement the paper's two methods —
re-sampling + marching cubes and dual-cell + marching cubes (with gap
fixes) — on top of a from-scratch marching cubes
(:mod:`repro.viz.marching_cubes`), crack metrics (:mod:`repro.viz.cracks`)
and a deterministic software renderer (:mod:`repro.viz.render`).
"""

from repro.viz.mesh import TriangleMesh
from repro.viz.resample import cell_to_vertex
from repro.viz.marching_cubes import marching_cubes
from repro.viz.marching_squares import marching_squares, contour_length
from repro.viz.dual_cell import dual_isosurface
from repro.viz.stitching import redundant_ring_mask, stitch_contours_2d
from repro.viz.pipelines import IsoSurfaceResult, resampling_isosurface, dual_cell_isosurface
from repro.viz.cracks import CrackReport, crack_report, interface_gap, interior_boundary_edges
from repro.viz.render import render_mesh
from repro.viz.image_io import write_pgm, read_pgm
from repro.viz.line1d import Figure14Demo, figure14_demo, blocky_compress_1d
from repro.viz.colormap import apply_colormap, write_ppm
from repro.viz.volume import (
    slice_image,
    max_intensity_projection,
    volume_render,
    normalize_field,
)

__all__ = [
    "TriangleMesh",
    "cell_to_vertex",
    "marching_cubes",
    "marching_squares",
    "contour_length",
    "dual_isosurface",
    "redundant_ring_mask",
    "stitch_contours_2d",
    "IsoSurfaceResult",
    "resampling_isosurface",
    "dual_cell_isosurface",
    "CrackReport",
    "crack_report",
    "interface_gap",
    "interior_boundary_edges",
    "render_mesh",
    "write_pgm",
    "read_pgm",
    "Figure14Demo",
    "figure14_demo",
    "blocky_compress_1d",
    "slice_image",
    "max_intensity_projection",
    "volume_render",
    "normalize_field",
    "apply_colormap",
    "write_ppm",
]
