"""Orthographic z-buffer mesh renderer (pure NumPy).

The paper's SSIM numbers are computed on rendered iso-surface images; with
no graphics stack offline, this module rasterizes triangle meshes into
grayscale images deterministically:

* orthographic projection along a chosen axis,
* flat Lambert shading (two-sided) with a fixed light direction,
* z-buffer resolution via a single vectorized lexsort over all candidate
  (pixel, triangle) pairs — no per-triangle Python loop.

Determinism matters: Table 2 / Figures 9-13 compare images of original vs
decompressed data, so any renderer bias cancels out as long as the mapping
from mesh to pixels is fixed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import VisualizationError
from repro.viz.mesh import TriangleMesh

__all__ = ["render_mesh"]


def render_mesh(
    mesh: TriangleMesh,
    axis: int = 0,
    size: tuple[int, int] = (256, 256),
    bounds: tuple[np.ndarray, np.ndarray] | None = None,
    light: tuple[float, float, float] = (0.5, 0.6, 0.62),
    background: float = 0.0,
    ambient: float = 0.25,
) -> np.ndarray:
    """Render an orthographic grayscale view of ``mesh``.

    Parameters
    ----------
    mesh:
        Input surface.
    axis:
        View axis (0/1/2); the camera looks down decreasing coordinates.
    size:
        Output image ``(height, width)``.
    bounds:
        Physical window ``(lo, hi)`` mapped onto the image; defaults to the
        mesh bounding box. Pass the *domain* bounds when comparing images
        of different meshes so the framing is identical.
    light:
        Light direction (normalized internally).
    background:
        Background gray level.
    ambient:
        Ambient term; shade = ambient + (1 - ambient) * |n . l|.

    Returns
    -------
    numpy.ndarray
        ``size`` float64 image in [0, 1].
    """
    if axis not in (0, 1, 2):
        raise VisualizationError(f"axis must be 0, 1 or 2, got {axis}")
    h, w = int(size[0]), int(size[1])
    if h < 2 or w < 2:
        raise VisualizationError(f"image size too small: {size}")
    img = np.full((h, w), float(background))
    if mesh.is_empty():
        return img
    uv_axes = [a for a in range(3) if a != axis]
    if bounds is None:
        lo, hi = mesh.bounds()
    else:
        lo = np.asarray(bounds[0], dtype=np.float64)
        hi = np.asarray(bounds[1], dtype=np.float64)
    span = np.where(hi - lo > 0, hi - lo, 1.0)

    verts = mesh.vertices
    # Pixel coordinates: v (rows) from uv_axes[0], u (cols) from uv_axes[1].
    py = (verts[:, uv_axes[0]] - lo[uv_axes[0]]) / span[uv_axes[0]] * (h - 1)
    px = (verts[:, uv_axes[1]] - lo[uv_axes[1]]) / span[uv_axes[1]] * (w - 1)
    depth = verts[:, axis]

    tri_py = py[mesh.faces]
    tri_px = px[mesh.faces]
    tri_z = depth[mesh.faces]

    # Flat two-sided Lambert shade per face.
    lvec = np.asarray(light, dtype=np.float64)
    lvec = lvec / np.linalg.norm(lvec)
    shade = ambient + (1.0 - ambient) * np.abs(mesh.face_normals() @ lvec)

    # Candidate pixel ranges per triangle.
    y0 = np.clip(np.floor(tri_py.min(axis=1)).astype(np.int64), 0, h - 1)
    y1 = np.clip(np.ceil(tri_py.max(axis=1)).astype(np.int64), 0, h - 1)
    x0 = np.clip(np.floor(tri_px.min(axis=1)).astype(np.int64), 0, w - 1)
    x1 = np.clip(np.ceil(tri_px.max(axis=1)).astype(np.int64), 0, w - 1)
    ny = y1 - y0 + 1
    nx = x1 - x0 + 1
    counts = ny * nx
    keep = counts > 0
    if not keep.any():
        return img
    idx = np.nonzero(keep)[0]
    counts = counts[idx]
    total = int(counts.sum())
    tri_of = np.repeat(idx, counts)
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    rank = np.arange(total) - np.repeat(offsets, counts)
    local_x = rank % np.repeat(nx[idx], counts)
    local_y = rank // np.repeat(nx[idx], counts)
    cand_y = np.repeat(y0[idx], counts) + local_y
    cand_x = np.repeat(x0[idx], counts) + local_x

    # Barycentric test at pixel centers.
    ay, ax = tri_py[tri_of, 0], tri_px[tri_of, 0]
    by, bx = tri_py[tri_of, 1], tri_px[tri_of, 1]
    cy, cx = tri_py[tri_of, 2], tri_px[tri_of, 2]
    pyc = cand_y.astype(np.float64)
    pxc = cand_x.astype(np.float64)
    det = (by - ay) * (cx - ax) - (bx - ax) * (cy - ay)
    safe_det = np.where(det == 0.0, 1.0, det)
    w1 = ((pyc - ay) * (cx - ax) - (pxc - ax) * (cy - ay)) / safe_det
    w2 = ((by - ay) * (pxc - ax) - (bx - ax) * (pyc - ay)) / safe_det
    w0 = 1.0 - w1 - w2
    eps = -1e-9
    inside = (det != 0.0) & (w0 >= eps) & (w1 >= eps) & (w2 >= eps)
    if not inside.any():
        return img
    tri_of = tri_of[inside]
    cand_y = cand_y[inside]
    cand_x = cand_x[inside]
    z = (
        w0[inside] * tri_z[tri_of, 0]
        + w1[inside] * tri_z[tri_of, 1]
        + w2[inside] * tri_z[tri_of, 2]
    )

    # Z-buffer: camera at +axis looking down, so the *largest* coordinate
    # wins; lexsort by (pixel, -z) and keep the first entry per pixel.
    pixel_id = cand_y * w + cand_x
    order = np.lexsort((-z, pixel_id))
    pid_sorted = pixel_id[order]
    first = np.ones(len(order), dtype=bool)
    first[1:] = pid_sorted[1:] != pid_sorted[:-1]
    win = order[first]
    img.flat[pixel_id[win]] = shade[tri_of[win]]
    return img
