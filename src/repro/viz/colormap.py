"""Scalar-to-color mapping and binary PPM output (matplotlib-free).

Gives the 2-D outputs (slices, volume renders, Figure 2 timestep panels) a
perceptually-ordered color map. The map is an analytic approximation of a
dark-blue -> teal -> yellow ramp (viridis-like monotone luminance) built
from smooth polynomial channel curves — no lookup data files.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import FormatError
from repro.util.validation import check_array

__all__ = ["apply_colormap", "write_ppm"]


def apply_colormap(image: np.ndarray) -> np.ndarray:
    """Map a [0, 1] grayscale image to RGB uint8 (viridis-like ramp).

    Values outside [0, 1] are clipped.
    """
    arr = check_array("image", image, ndim=2).astype(np.float64, copy=False)
    t = np.clip(arr, 0.0, 1.0)
    # Smooth channel polynomials fitted to a dark-violet->teal->yellow ramp.
    r = 0.28 + t * (-1.33 + t * (4.63 + t * (-2.58)))
    g = 0.00 + t * (1.40 + t * (-0.90 + t * 0.40))
    b = 0.33 + t * (1.00 + t * (-2.48 + t * 1.18))
    rgb = np.stack([r, g, b], axis=-1)
    return np.clip(np.rint(rgb * 255.0), 0, 255).astype(np.uint8)


def write_ppm(path: str | Path, rgb: np.ndarray) -> Path:
    """Write an ``(h, w, 3)`` uint8 array as binary PPM (P6)."""
    arr = np.asarray(rgb)
    if arr.ndim != 3 or arr.shape[2] != 3:
        raise FormatError(f"PPM needs (h, w, 3), got {arr.shape}")
    if arr.dtype != np.uint8:
        raise FormatError(f"PPM needs uint8, got {arr.dtype}")
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    h, w = arr.shape[:2]
    with open(out, "wb") as fh:
        fh.write(f"P6\n{w} {h}\n255\n".encode())
        fh.write(np.ascontiguousarray(arr).tobytes())
    return out
