"""Triangle meshes and the open-edge audit used for crack metrics.

The paper's central visual evidence (Figures 1, 9-11) is about *cracks* and
*gaps* in extracted iso-surfaces. A crack manifests as mesh boundary edges
(edges referenced by exactly one triangle) in the interior of the domain;
:meth:`TriangleMesh.boundary_edges` exposes them, and
:mod:`repro.viz.cracks` turns them into quantitative metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import VisualizationError

__all__ = ["TriangleMesh"]


@dataclass
class TriangleMesh:
    """Indexed triangle mesh.

    Attributes
    ----------
    vertices:
        ``(n, 3)`` float64 positions.
    faces:
        ``(m, 3)`` int64 vertex indices.
    """

    vertices: np.ndarray
    faces: np.ndarray

    def __post_init__(self) -> None:
        v = np.asarray(self.vertices, dtype=np.float64)
        f = np.asarray(self.faces, dtype=np.int64)
        if v.ndim != 2 or v.shape[1] != 3:
            raise VisualizationError(f"vertices must be (n, 3), got {v.shape}")
        if f.ndim != 2 or f.shape[1] != 3:
            raise VisualizationError(f"faces must be (m, 3), got {f.shape}")
        if f.size and (f.min() < 0 or f.max() >= len(v)):
            raise VisualizationError("face indices out of range")
        self.vertices = v
        self.faces = f

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "TriangleMesh":
        """Mesh with no geometry."""
        return cls(np.empty((0, 3)), np.empty((0, 3), dtype=np.int64))

    @property
    def n_vertices(self) -> int:
        """Vertex count."""
        return len(self.vertices)

    @property
    def n_faces(self) -> int:
        """Triangle count."""
        return len(self.faces)

    def is_empty(self) -> bool:
        """Whether the mesh has no triangles."""
        return self.n_faces == 0

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def _edge_counts(self) -> tuple[np.ndarray, np.ndarray]:
        """Unique undirected edges and their incidence counts."""
        if self.is_empty():
            return np.empty((0, 2), dtype=np.int64), np.empty(0, dtype=np.int64)
        e = np.concatenate([self.faces[:, [0, 1]], self.faces[:, [1, 2]], self.faces[:, [2, 0]]])
        e.sort(axis=1)
        edges, counts = np.unique(e, axis=0, return_counts=True)
        return edges, counts

    def boundary_edges(self) -> np.ndarray:
        """Edges used by exactly one triangle, shape ``(k, 2)``.

        A closed (watertight) surface has none; cracks and surface
        terminations appear here.
        """
        edges, counts = self._edge_counts()
        return edges[counts == 1]

    def is_closed(self) -> bool:
        """Whether every edge is shared by exactly two triangles."""
        edges, counts = self._edge_counts()
        return bool(edges.size) and bool((counts == 2).all())

    def euler_characteristic(self) -> int:
        """V - E + F (2 for a closed genus-0 surface)."""
        edges, _ = self._edge_counts()
        used = np.unique(self.faces) if self.faces.size else np.empty(0, dtype=np.int64)
        return int(used.size - len(edges) + self.n_faces)

    def edge_lengths(self, edges: np.ndarray | None = None) -> np.ndarray:
        """Lengths of ``edges`` (default: all unique edges)."""
        if edges is None:
            edges, _ = self._edge_counts()
        if len(edges) == 0:
            return np.empty(0)
        d = self.vertices[edges[:, 0]] - self.vertices[edges[:, 1]]
        return np.linalg.norm(d, axis=1)

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def face_normals(self, normalize: bool = True) -> np.ndarray:
        """Per-face normals (right-hand rule)."""
        a = self.vertices[self.faces[:, 0]]
        b = self.vertices[self.faces[:, 1]]
        c = self.vertices[self.faces[:, 2]]
        n = np.cross(b - a, c - a)
        if normalize:
            norm = np.linalg.norm(n, axis=1, keepdims=True)
            norm[norm == 0.0] = 1.0
            n = n / norm
        return n

    def area(self) -> float:
        """Total surface area."""
        if self.is_empty():
            return 0.0
        return float(0.5 * np.linalg.norm(self.face_normals(normalize=False) * 2.0, axis=1).sum() / 2.0)

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """(min, max) corner of the vertex bounding box."""
        if self.n_vertices == 0:
            raise VisualizationError("empty mesh has no bounds")
        return self.vertices.min(axis=0), self.vertices.max(axis=0)

    def translated(self, offset: np.ndarray) -> "TriangleMesh":
        """Mesh shifted by ``offset``."""
        return TriangleMesh(self.vertices + np.asarray(offset, dtype=np.float64), self.faces.copy())

    def scaled(self, factor: float | np.ndarray) -> "TriangleMesh":
        """Mesh scaled about the origin."""
        return TriangleMesh(self.vertices * np.asarray(factor, dtype=np.float64), self.faces.copy())

    # ------------------------------------------------------------------
    # Cleanup / combination
    # ------------------------------------------------------------------
    def dropped_degenerate(self, min_area: float = 0.0) -> "TriangleMesh":
        """Remove zero/near-zero-area triangles and repeated indices."""
        if self.is_empty():
            return self
        f = self.faces
        distinct = (f[:, 0] != f[:, 1]) & (f[:, 1] != f[:, 2]) & (f[:, 0] != f[:, 2])
        areas = 0.5 * np.linalg.norm(self.face_normals(normalize=False), axis=1)
        keep = distinct & (areas > min_area)
        return TriangleMesh(self.vertices, f[keep])

    def welded(self, decimals: int = 9) -> "TriangleMesh":
        """Merge vertices that coincide after rounding to ``decimals``."""
        if self.n_vertices == 0:
            return self
        key = np.round(self.vertices, decimals)
        uniq, inverse = np.unique(key, axis=0, return_inverse=True)
        return TriangleMesh(uniq, inverse[self.faces]).dropped_degenerate()

    @staticmethod
    def merge(meshes: list["TriangleMesh"]) -> "TriangleMesh":
        """Concatenate meshes (no welding across parts)."""
        parts = [m for m in meshes if not m.is_empty()]
        if not parts:
            return TriangleMesh.empty()
        verts = []
        faces = []
        offset = 0
        for m in parts:
            verts.append(m.vertices)
            faces.append(m.faces + offset)
            offset += m.n_vertices
        return TriangleMesh(np.concatenate(verts), np.concatenate(faces))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TriangleMesh({self.n_vertices} vertices, {self.n_faces} faces)"
