"""Marching-cubes case tables, generated programmatically.

Rather than transcribing the classic 256x16 triangle table (easy to corrupt
silently), the table is *derived* at import time from first principles:

1. For each of the 256 inside/outside corner configurations, intersect the
   iso-surface with each cube face by running 2-D marching squares on the
   face's four corners. The ambiguous two-diagonal case always separates
   the *positive* corners; since a face's corner values look identical from
   the two cubes sharing it, both cubes emit the same face segments — the
   consistency property that makes the extracted surface crack-free within
   a uniform grid.
2. The face segments pair up into closed loops around the iso-surface
   cross-section (every intersected cube edge lies on exactly two faces).
3. Each loop is fan-triangulated, oriented so triangle normals point from
   the positive (inside) region to the negative region.

Conventions
-----------
* Corner ``c`` (0-7) sits at ``((c >> 2) & 1, (c >> 1) & 1, c & 1)``.
* Edge ids 0-11 index :data:`EDGE_CORNERS`, the sorted list of corner pairs
  differing in one bit; :data:`EDGE_ORIGIN_AXIS` gives each edge's lower
  corner offset and direction for global-edge indexing.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "CORNER_OFFSETS",
    "EDGE_CORNERS",
    "EDGE_ORIGIN_AXIS",
    "TRI_TABLE",
    "MAX_TRIS_PER_CELL",
]

#: (8, 3) integer offsets of cube corners.
CORNER_OFFSETS = np.array([[(c >> 2) & 1, (c >> 1) & 1, c & 1] for c in range(8)], dtype=np.int64)

#: (12, 2) corner-id pairs, one per cube edge, lexicographically sorted.
EDGE_CORNERS = np.array(
    sorted((a, b) for a in range(8) for b in range(8) if a < b and bin(a ^ b).count("1") == 1),
    dtype=np.int64,
)

#: (12, 4): (di, dj, dk, axis) of each edge's lower corner and direction.
EDGE_ORIGIN_AXIS = np.array(
    [
        list(CORNER_OFFSETS[a]) + [int(np.nonzero(CORNER_OFFSETS[b] - CORNER_OFFSETS[a])[0][0])]
        for a, b in EDGE_CORNERS
    ],
    dtype=np.int64,
)

_EDGE_INDEX = {(int(a), int(b)): i for i, (a, b) in enumerate(EDGE_CORNERS)}


def _face_corners() -> list[list[int]]:
    """Six faces, each as 4 corner ids in cyclic order around the face."""
    faces = []
    for axis in range(3):
        for side in (0, 1):
            corners = [c for c in range(8) if CORNER_OFFSETS[c][axis] == side]
            # Order cyclically: sort by angle in the face plane.
            other = [a for a in range(3) if a != axis]
            pts = CORNER_OFFSETS[corners][:, other].astype(float) - 0.5
            ang = np.arctan2(pts[:, 1], pts[:, 0])
            faces.append([corners[i] for i in np.argsort(ang)])
    return faces


def _face_segments(cycle: list[int], inside: int) -> list[tuple[int, int]]:
    """Marching-squares segments for one face.

    ``cycle`` lists the face's corners in cyclic order; ``inside`` is the
    cube configuration bitmask. Returns pairs of cube-edge ids. Ambiguous
    faces separate the positive corners (fixed, orientation-independent
    rule -> neighbor-consistent).
    """
    pos = [(inside >> c) & 1 for c in cycle]
    n_pos = sum(pos)
    edges_of = []  # face edge i connects cycle[i] and cycle[i+1]
    for i in range(4):
        a, b = cycle[i], cycle[(i + 1) % 4]
        edges_of.append(_EDGE_INDEX[(min(a, b), max(a, b))])
    crossed = [i for i in range(4) if pos[i] != pos[(i + 1) % 4]]
    if n_pos in (0, 4):
        return []
    if n_pos == 1 or n_pos == 3:
        target = 1 if n_pos == 1 else 0
        corner = pos.index(target)
        # The segment wraps the lone corner: its two adjacent face edges.
        return [(edges_of[(corner - 1) % 4], edges_of[corner])]
    # Two positives.
    if pos[0] == pos[2]:  # diagonal (ambiguous): two segments, each
        segs = []  # isolating one positive corner.
        for corner in range(4):
            if pos[corner]:
                segs.append((edges_of[(corner - 1) % 4], edges_of[corner]))
        return segs
    # Adjacent pair: one segment across the two crossed face edges.
    assert len(crossed) == 2
    return [(edges_of[crossed[0]], edges_of[crossed[1]])]


def _loops_from_segments(segments: list[tuple[int, int]]) -> list[list[int]]:
    """Chain edge-id segments into closed loops."""
    adj: dict[int, list[int]] = {}
    for a, b in segments:
        adj.setdefault(a, []).append(b)
        adj.setdefault(b, []).append(a)
    for node, nbrs in adj.items():
        if len(nbrs) != 2:
            raise AssertionError(f"non-manifold segment graph at edge {node}: {nbrs}")
    loops = []
    visited: set[int] = set()
    for start in sorted(adj):
        if start in visited:
            continue
        loop = [start]
        visited.add(start)
        prev = None
        cur = start
        while True:
            nxt = [n for n in adj[cur] if n != prev]
            # Both neighbors equal prev only in a 2-cycle, which cannot
            # happen: segments connect distinct edges of distinct faces.
            step = nxt[0]
            if step == start:
                break
            loop.append(step)
            visited.add(step)
            prev, cur = cur, step
        loops.append(loop)
    return loops


def _edge_midpoint(edge_id: int) -> np.ndarray:
    a, b = EDGE_CORNERS[edge_id]
    return (CORNER_OFFSETS[a] + CORNER_OFFSETS[b]) / 2.0


def _orient_loop(loop: list[int], inside: int) -> list[int]:
    """Orient so the fan normals point away from the positive region."""
    pts = np.array([_edge_midpoint(e) for e in loop])
    centroid = pts.mean(axis=0)
    # Newell normal of the (possibly non-planar) polygon.
    normal = np.zeros(3)
    for i in range(len(loop)):
        u = pts[i] - centroid
        v = pts[(i + 1) % len(loop)] - centroid
        normal += np.cross(u, v)
    pos_corners = [c for c in range(8) if (inside >> c) & 1]
    neg_corners = [c for c in range(8) if not (inside >> c) & 1]
    direction = CORNER_OFFSETS[neg_corners].mean(axis=0) - CORNER_OFFSETS[pos_corners].mean(axis=0)
    if np.dot(normal, direction) < 0:
        return loop[::-1]
    return loop


def _build_tri_table() -> list[list[tuple[int, int, int]]]:
    faces = _face_corners()
    table: list[list[tuple[int, int, int]]] = []
    for config in range(256):
        segments: list[tuple[int, int]] = []
        for cycle in faces:
            segments.extend(_face_segments(cycle, config))
        if not segments:
            table.append([])
            continue
        tris: list[tuple[int, int, int]] = []
        for loop in _loops_from_segments(segments):
            loop = _orient_loop(loop, config)
            for i in range(1, len(loop) - 1):
                tris.append((loop[0], loop[i], loop[i + 1]))
        table.append(tris)
    return table


#: ``TRI_TABLE[config]`` is a list of (edge, edge, edge) triangles.
TRI_TABLE = _build_tri_table()

#: Largest triangle count over all configurations (used to size buffers).
MAX_TRIS_PER_CELL = max(len(t) for t in TRI_TABLE)
