"""Minimal PGM image I/O (matplotlib-free environment).

Binary PGM (P5) is a two-line header plus raw bytes — readable by every
image viewer and by NumPy, which is all the experiment harness needs to
dump the rendered iso-surface figures.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import FormatError

__all__ = ["write_pgm", "read_pgm"]


def write_pgm(path: str | Path, image: np.ndarray) -> Path:
    """Write a float image in [0, 1] (or uint8) as binary PGM."""
    arr = np.asarray(image)
    if arr.ndim != 2:
        raise FormatError(f"PGM needs a 2-D array, got {arr.ndim}-D")
    if arr.dtype.kind == "f":
        data = np.clip(np.rint(arr * 255.0), 0, 255).astype(np.uint8)
    elif arr.dtype == np.uint8:
        data = arr
    else:
        raise FormatError(f"unsupported image dtype {arr.dtype}")
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    h, w = data.shape
    with open(out, "wb") as fh:
        fh.write(f"P5\n{w} {h}\n255\n".encode())
        fh.write(np.ascontiguousarray(data).tobytes())
    return out


def read_pgm(path: str | Path) -> np.ndarray:
    """Read a binary PGM written by :func:`write_pgm`; returns uint8."""
    raw = Path(path).read_bytes()
    if not raw.startswith(b"P5"):
        raise FormatError(f"{path} is not a binary PGM")
    # Header: magic, dimensions, maxval — whitespace separated, then data.
    parts: list[bytes] = []
    pos = 2
    while len(parts) < 3:
        while pos < len(raw) and raw[pos : pos + 1].isspace():
            pos += 1
        if pos < len(raw) and raw[pos : pos + 1] == b"#":  # comment line
            while pos < len(raw) and raw[pos] != 0x0A:
                pos += 1
            continue
        start = pos
        while pos < len(raw) and not raw[pos : pos + 1].isspace():
            pos += 1
        parts.append(raw[start:pos])
    pos += 1  # single whitespace after maxval
    try:
        w, h, maxval = (int(p) for p in parts)
    except ValueError as exc:
        raise FormatError(f"corrupt PGM header in {path}") from exc
    if maxval != 255:
        raise FormatError(f"only 8-bit PGM supported, maxval={maxval}")
    if len(raw) - pos < w * h:
        raise FormatError(f"{path}: truncated pixel data")
    data = np.frombuffer(raw, dtype=np.uint8, count=w * h, offset=pos)
    return data.reshape(h, w).copy()
