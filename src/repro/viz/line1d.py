"""The paper's Figure 14: a 1-D model of why re-sampling hides artifacts.

The paper explains the dual-cell quality penalty with a 1-D sketch: SZ-L/R
turns a smooth ramp "012345678" into block-constant "111 444 777"; the
dual-cell method shows those values as-is, while re-sampling's cell->vertex
averaging interpolates across block boundaries ("111 2.5 44 5.5 777"),
smearing the block steps back toward the original ramp. These helpers
reproduce that construction for arbitrary signals so a bench can check the
smoothing claim numerically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import VisualizationError
from repro.viz.resample import cell_to_vertex

__all__ = ["Figure14Demo", "blocky_compress_1d", "figure14_demo"]


def blocky_compress_1d(signal: np.ndarray, block: int) -> np.ndarray:
    """Toy SZ-L/R stand-in: replace each length-``block`` run by its mean.

    Mimics the block-wise artifact morphology (constant plateaus with jumps
    at block boundaries) without running a real codec.
    """
    arr = np.asarray(signal, dtype=np.float64)
    if arr.ndim != 1:
        raise VisualizationError("signal must be 1-D")
    if block < 1:
        raise VisualizationError(f"block must be >= 1, got {block}")
    n = arr.size
    out = arr.copy()
    for start in range(0, n, block):
        seg = slice(start, min(start + block, n))
        out[seg] = arr[seg].mean()
    return out


@dataclass(frozen=True)
class Figure14Demo:
    """Arrays of the Figure 14 construction."""

    original: np.ndarray
    decompressed: np.ndarray  # dual-cell view: raw blocky values
    resampled: np.ndarray  # vertex-centered view after interpolation

    @property
    def dual_cell_rmse(self) -> float:
        """RMSE of the dual-cell view against the original."""
        return float(np.sqrt(np.mean((self.decompressed - self.original) ** 2)))

    @property
    def resampled_rmse(self) -> float:
        """RMSE of the re-sampled view against the (re-sampled) original.

        Compared on the vertex lattice, where both signals live after
        re-sampling.
        """
        ref = cell_to_vertex(self.original)
        return float(np.sqrt(np.mean((self.resampled - ref) ** 2)))


def figure14_demo(n: int = 9, block: int = 3) -> Figure14Demo:
    """Build the paper's exact example: ramp 0..n-1, block-mean compression.

    With the defaults this is literally "012345678" -> "111 444 777" ->
    "1 1 1 2.5 4 4 5.5 7 7 7" (vertex-centered, one sample longer).
    """
    original = np.arange(n, dtype=np.float64)
    decompressed = blocky_compress_1d(original, block)
    resampled = cell_to_vertex(decompressed)
    return Figure14Demo(original=original, decompressed=decompressed, resampled=resampled)
