"""Dual-cell grids (paper §2.4, Figure 7).

The dual-cell method skips re-sampling entirely: it builds a grid whose
*vertices are the cell centers* and whose vertex values are the original
cell values. Marching cubes on this dual grid uses unmodified data (no
interpolation smoothing), avoids dangling nodes — and is therefore immune
to the crack problem — but the dual grid of each AMR level is half a cell
smaller on every side, producing the inter-level *gaps* of Figure 1b /
Figure 8 that the stitching / redundant-coarse-data fixes address.
"""

from __future__ import annotations

import numpy as np

from repro.viz.marching_cubes import marching_cubes
from repro.viz.mesh import TriangleMesh

__all__ = ["dual_isosurface"]


def dual_isosurface(
    cells: np.ndarray,
    iso: float,
    spacing: tuple[float, float, float] | float = 1.0,
    origin: tuple[float, float, float] = (0.0, 0.0, 0.0),
) -> TriangleMesh:
    """Iso-surface of cell-centered data via the dual grid.

    Parameters
    ----------
    cells:
        3-D cell-centered values; NaN marks cells outside the level.
    iso:
        Iso value.
    spacing:
        Cell spacing.
    origin:
        Physical position of the *lower corner* of cell ``(0, 0, 0)``; the
        dual vertex for that cell sits half a cell inward.

    Notes
    -----
    Implemented by treating the cell array as a vertex-centered grid whose
    lattice is shifted to the cell centers — dual-cell extraction *is*
    marching cubes on that lattice.
    """
    if np.isscalar(spacing):
        dx = np.array([float(spacing)] * 3)
    else:
        dx = np.asarray(spacing, dtype=np.float64)
    org = np.asarray(origin, dtype=np.float64) + 0.5 * dx
    return marching_cubes(cells, iso, spacing=tuple(dx), origin=tuple(org))
