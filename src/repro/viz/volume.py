"""Volume rendering and slicing (the paper's §3.1 alternatives).

The paper motivates its focus on iso-surfaces by noting they are *more
sensitive* to compression error than volume rendering or slicing. These
axis-aligned implementations make that claim testable:

* :func:`slice_image` — a 2-D slice through the uniform composite;
* :func:`max_intensity_projection` — brightest-sample projection;
* :func:`volume_render` — front-to-back emission/absorption compositing
  with a linear transfer function (pure NumPy cumulative products).

All three consume the uniform composite (via
:func:`repro.amr.uniform.flatten_to_uniform`) so they apply unchanged to
original and decompressed hierarchies.
"""

from __future__ import annotations

import numpy as np

from repro.errors import VisualizationError
from repro.util.validation import check_array

__all__ = ["slice_image", "max_intensity_projection", "volume_render", "normalize_field"]


def normalize_field(field: np.ndarray, lo: float | None = None, hi: float | None = None) -> np.ndarray:
    """Affinely map a field to [0, 1] (clipping outside ``lo``/``hi``).

    Pass the *original* data's range when normalizing decompressed data so
    both images use the identical transfer function.
    """
    arr = check_array("field", field).astype(np.float64, copy=False)
    lo_v = float(arr.min()) if lo is None else float(lo)
    hi_v = float(arr.max()) if hi is None else float(hi)
    if hi_v <= lo_v:
        return np.zeros_like(arr)
    return np.clip((arr - lo_v) / (hi_v - lo_v), 0.0, 1.0)


def slice_image(field: np.ndarray, axis: int = 0, index: int | None = None) -> np.ndarray:
    """Extract one 2-D slice (defaults to the middle plane)."""
    arr = check_array("field", field, ndim=3)
    if not 0 <= axis <= 2:
        raise VisualizationError(f"axis must be 0..2, got {axis}")
    n = arr.shape[axis]
    idx = n // 2 if index is None else int(index)
    if not 0 <= idx < n:
        raise VisualizationError(f"slice index {idx} out of range [0, {n})")
    return np.take(arr, idx, axis=axis).astype(np.float64, copy=True)


def max_intensity_projection(field: np.ndarray, axis: int = 0) -> np.ndarray:
    """Maximum-intensity projection along ``axis``."""
    arr = check_array("field", field, ndim=3)
    if not 0 <= axis <= 2:
        raise VisualizationError(f"axis must be 0..2, got {axis}")
    return arr.max(axis=axis).astype(np.float64)


def volume_render(
    field: np.ndarray,
    axis: int = 0,
    opacity_scale: float = 4.0,
    emission_gamma: float = 1.0,
) -> np.ndarray:
    """Front-to-back emission/absorption volume rendering.

    The field must already be normalized to [0, 1]
    (:func:`normalize_field`). Each sample emits ``v ** emission_gamma``
    and absorbs with per-sample opacity
    ``alpha = 1 - exp(-opacity_scale * v / n_samples)`` — the standard
    discretized absorption model. Returns a [0, 1] image.
    """
    arr = check_array("field", field, ndim=3).astype(np.float64, copy=False)
    if not 0 <= axis <= 2:
        raise VisualizationError(f"axis must be 0..2, got {axis}")
    if opacity_scale <= 0:
        raise VisualizationError(f"opacity_scale must be > 0, got {opacity_scale}")
    if arr.min() < 0.0 or arr.max() > 1.0:
        raise VisualizationError("volume_render expects a [0, 1]-normalized field")
    vol = np.moveaxis(arr, axis, 0)
    n = vol.shape[0]
    alpha = 1.0 - np.exp(-opacity_scale * vol / n)
    emission = vol**emission_gamma
    # Front-to-back compositing: transmittance before sample k is the
    # cumulative product of (1 - alpha) over samples 0..k-1.
    one_minus = 1.0 - alpha
    trans = np.cumprod(one_minus, axis=0)
    trans_before = np.concatenate([np.ones((1,) + vol.shape[1:]), trans[:-1]], axis=0)
    image = (trans_before * alpha * emission).sum(axis=0)
    peak = image.max()
    if peak > 0:
        image = image / peak
    return image
