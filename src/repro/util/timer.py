"""Lightweight wall-clock timing helpers for throughput reporting.

The compression benchmarks report per-stage throughput (prediction,
quantization, entropy coding); :class:`StageTimes` accumulates named stages
so codecs can expose a breakdown without depending on a profiler.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer", "StageTimes"]


class Timer:
    """Context-manager stopwatch.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed = time.perf_counter() - self._start


@dataclass
class StageTimes:
    """Accumulator of named stage durations (seconds)."""

    stages: dict[str, float] = field(default_factory=dict)

    def add(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` into stage ``name``."""
        self.stages[name] = self.stages.get(name, 0.0) + float(seconds)

    def measure(self, name: str) -> "_StageContext":
        """Return a context manager that times a block into stage ``name``."""
        return _StageContext(self, name)

    @property
    def total(self) -> float:
        """Sum of all stage durations."""
        return sum(self.stages.values())

    def as_dict(self) -> dict[str, float]:
        """Copy of the stage table."""
        return dict(self.stages)


class _StageContext:
    def __init__(self, times: StageTimes, name: str) -> None:
        self._times = times
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_StageContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self._times.add(self._name, time.perf_counter() - self._start)
