"""Deterministic random-number generation.

Every stochastic component in the package (field synthesis, workload
generators, property tests) routes through :func:`make_rng` so experiments
are exactly reproducible from a single integer seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng"]


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` for OS entropy. Centralizing this makes it trivial to audit
    that no module calls the legacy global RNG.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
