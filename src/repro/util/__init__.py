"""Shared utilities: validation helpers, timers, deterministic RNG."""

from repro.util.validation import (
    check_dim,
    check_positive,
    check_array,
    check_same_shape,
    as_tuple,
)
from repro.util.timer import Timer, StageTimes
from repro.util.rng import make_rng

__all__ = [
    "check_dim",
    "check_positive",
    "check_array",
    "check_same_shape",
    "as_tuple",
    "Timer",
    "StageTimes",
    "make_rng",
]
