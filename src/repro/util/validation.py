"""Input-validation helpers used across the package.

These raise early with precise messages instead of letting NumPy produce an
opaque broadcasting error deep inside a kernel.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.errors import ReproError

__all__ = [
    "check_dim",
    "check_positive",
    "check_array",
    "check_same_shape",
    "as_tuple",
]


def check_dim(ndim: int, *, allowed: Sequence[int] = (1, 2, 3)) -> int:
    """Validate a spatial dimensionality.

    Parameters
    ----------
    ndim:
        Number of spatial dimensions.
    allowed:
        Permitted values.

    Returns
    -------
    int
        The validated ``ndim``.
    """
    if ndim not in allowed:
        raise ReproError(f"dimensionality {ndim} not supported (allowed: {tuple(allowed)})")
    return int(ndim)


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Validate that ``value`` is positive (or non-negative if not strict)."""
    if strict and not value > 0:
        raise ReproError(f"{name} must be > 0, got {value!r}")
    if not strict and not value >= 0:
        raise ReproError(f"{name} must be >= 0, got {value!r}")
    return value


def check_array(
    name: str,
    arr: Any,
    *,
    ndim: int | None = None,
    dtype_kind: str | None = None,
    allow_empty: bool = False,
) -> np.ndarray:
    """Coerce ``arr`` to an ndarray and validate its rank / dtype kind.

    Parameters
    ----------
    name:
        Parameter name used in error messages.
    arr:
        Array-like input.
    ndim:
        Required number of dimensions, or ``None`` to skip the check.
    dtype_kind:
        Required ``dtype.kind`` string, e.g. ``"f"`` for floats. ``None``
        skips the check.
    allow_empty:
        Whether zero-size arrays are acceptable.
    """
    out = np.asarray(arr)
    if ndim is not None and out.ndim != ndim:
        raise ReproError(f"{name} must be {ndim}-D, got {out.ndim}-D shape {out.shape}")
    if dtype_kind is not None and out.dtype.kind != dtype_kind:
        raise ReproError(f"{name} must have dtype kind {dtype_kind!r}, got {out.dtype}")
    if not allow_empty and out.size == 0:
        raise ReproError(f"{name} must be non-empty")
    return out


def check_same_shape(a_name: str, a: np.ndarray, b_name: str, b: np.ndarray) -> None:
    """Validate that two arrays have identical shapes."""
    if a.shape != b.shape:
        raise ReproError(f"{a_name} shape {a.shape} != {b_name} shape {b.shape}")


def as_tuple(value: int | Sequence[int], ndim: int, name: str = "value") -> tuple[int, ...]:
    """Broadcast a scalar or sequence to an ``ndim``-tuple of ints."""
    if np.isscalar(value):
        return (int(value),) * ndim
    out = tuple(int(v) for v in value)  # type: ignore[union-attr]
    if len(out) != ndim:
        raise ReproError(f"{name} must have length {ndim}, got {len(out)}")
    return out
