"""Parallel execution: ordered pools, chunking, blockwise compression."""

from repro.parallel.pool import WorkerPool, parallel_map, resolve_workers, EXECUTION_MODES
from repro.parallel.chunking import chunk_boxes, aligned_chunk_boxes
from repro.parallel.blockwise import (
    ChunkedStream,
    compress_chunks,
    decompress_chunks,
    compress_patches,
)

__all__ = [
    "WorkerPool",
    "parallel_map",
    "resolve_workers",
    "EXECUTION_MODES",
    "chunk_boxes",
    "aligned_chunk_boxes",
    "ChunkedStream",
    "compress_chunks",
    "decompress_chunks",
    "compress_patches",
]
