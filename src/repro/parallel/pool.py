"""Ordered parallel map over threads or processes, plus a persistent pool.

SZ-L/R blocks and AMR patches are independent (paper §3.3), so their
compression is a pure map. This module provides the two primitives the
parallel paths need:

* :func:`parallel_map` — ordered map with a selectable executor and
  propagated worker exceptions. Historically it constructed (and tore
  down) an executor *per call*, which is pure overhead on workloads that
  map many times — an in-situ campaign calls it once per timestep. Pass a
  persistent :class:`WorkerPool` via ``pool=`` to amortize that cost;
  without one the per-call executor fallback keeps existing callers
  working unchanged.
* :class:`WorkerPool` — a context-managed executor that survives across
  ``parallel_map`` calls and timesteps. ``compress_hierarchy`` /
  ``decompress_hierarchy`` / ``decompress_selection`` and the in-situ
  :class:`~repro.insitu.writer.StreamingWriter` all accept one.

Thread mode is effective here despite the GIL because the heavy kernels
(NumPy ufuncs, zlib) release it; process mode trades startup cost for true
parallelism on multi-core hosts.
"""

from __future__ import annotations

import os
import sys
from concurrent.futures import Executor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro.errors import ReproError

__all__ = ["parallel_map", "resolve_workers", "WorkerPool", "EXECUTION_MODES"]

T = TypeVar("T")
R = TypeVar("R")

#: Supported execution modes.
EXECUTION_MODES = ("serial", "thread", "process")


def resolve_workers(workers: int | None) -> int:
    """Resolve a worker count: ``None`` or ``0`` means one per CPU core."""
    if workers is None or workers == 0:
        return max(1, os.cpu_count() or 1)
    if workers < 0:
        raise ReproError(f"workers must be >= 0 or None, got {workers}")
    return workers


class WorkerPool:
    """A persistent, context-managed executor for repeated parallel maps.

    Parameters
    ----------
    mode:
        ``"serial"`` (inline execution — a no-op pool, so call sites can
        take a pool unconditionally), ``"thread"``, or ``"process"``.
    workers:
        Executor size; ``None``/``0`` means one per CPU core.
    chunksize:
        Batch size for process-mode maps (amortizes IPC overhead).

    The pool is reusable across any number of :meth:`map` / :meth:`submit`
    calls until :meth:`close` (or the ``with`` block) releases it — unlike
    the per-call executors :func:`parallel_map` builds without one, the
    workers survive across calls and across timesteps:

    .. code-block:: python

        from repro.parallel import WorkerPool

        with WorkerPool("thread", workers=8) as pool:
            for step in stream:                      # one pool, N steps
                compress_hierarchy(step, "sz-lr", 1e-3, pool=pool)
    """

    def __init__(self, mode: str = "thread", workers: int | None = None, chunksize: int = 1):
        if mode not in EXECUTION_MODES:
            raise ReproError(f"unknown execution mode {mode!r} (have {EXECUTION_MODES})")
        if chunksize < 1:
            raise ReproError(f"chunksize must be >= 1, got {chunksize}")
        self._mode = mode
        self._workers = resolve_workers(workers)
        self._chunksize = int(chunksize)
        self._closed = False
        self._pid = os.getpid()
        self._executor: Executor | None = None
        if mode == "thread":
            self._executor = ThreadPoolExecutor(max_workers=self._workers)
        elif mode == "process":
            self._executor = ProcessPoolExecutor(max_workers=self._workers)

    @property
    def mode(self) -> str:
        """Execution mode this pool runs tasks in."""
        return self._mode

    @property
    def workers(self) -> int:
        """Resolved executor size (1 for serial pools)."""
        return self._workers if self._mode != "serial" else 1

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has released the executor."""
        return self._closed

    @property
    def broken(self) -> bool:
        """Whether the executor can no longer run tasks (a process-pool
        worker died, poisoning the pool). Serial and thread pools never
        break; a broken process pool fails every future with
        ``BrokenProcessPool`` until replaced — callers owning their pool
        (e.g. :class:`repro.serve.QueryService`) use this to rebuild."""
        return bool(getattr(self._executor, "_broken", False))

    def _check_open(self) -> None:
        if self._closed:
            raise ReproError("worker pool is closed")
        if self._mode == "process" and os.getpid() != self._pid:
            # A forked child inherits the executor object but not its
            # worker processes or queue threads — using it deadlocks or
            # silently targets the parent's workers. Refuse loudly.
            raise ReproError(
                f"process-mode worker pool created in pid {self._pid} used "
                f"from forked pid {os.getpid()}: executor handles do not "
                "survive os.fork(); create a new pool in the child"
            )

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item, preserving order (see
        :func:`parallel_map` for the contract)."""
        self._check_open()
        seq: Sequence[T] = list(items)
        if self._executor is None or len(seq) <= 1:
            return [fn(item) for item in seq]
        if self._mode == "process":
            return list(self._executor.map(fn, seq, chunksize=self._chunksize))
        return list(self._executor.map(fn, seq))

    def submit(self, fn: Callable[..., R], *args) -> Future:
        """Schedule one call; serial pools run it inline and return an
        already-resolved future (so pipelined callers like the streaming
        writer need no special casing)."""
        self._check_open()
        if self._executor is not None:
            return self._executor.submit(fn, *args)
        fut: Future = Future()
        try:
            fut.set_result(fn(*args))
        except BaseException as exc:  # propagate via .result(), like executors
            fut.set_exception(exc)
        return fut

    def close(self) -> None:
        """Shut the executor down (idempotent); the pool is unusable after.

        Waits for running tasks but *cancels* queued-not-yet-started ones
        (their futures raise ``CancelledError``): once :attr:`closed`
        reports True, no task can still start. Without ``cancel_futures``
        a task submitted from another thread just before close would run
        *after* the pool reported closed. On Python < 3.9 (no
        ``cancel_futures``) the legacy drain-the-queue behavior applies.
        """
        if self._closed:
            return
        self._closed = True
        if self._executor is not None:
            if sys.version_info >= (3, 9):
                self._executor.shutdown(wait=True, cancel_futures=True)
            else:  # pragma: no cover - the repo's floor is 3.10
                self._executor.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    mode: str = "serial",
    workers: int = 2,
    chunksize: int = 1,
    pool: WorkerPool | None = None,
) -> list[R]:
    """Apply ``fn`` to every item, preserving order.

    Parameters
    ----------
    fn:
        Callable applied per item; must be picklable for ``"process"``.
    items:
        Work items.
    mode:
        ``"serial"``, ``"thread"``, or ``"process"``.
    workers:
        Executor size for the parallel modes.
    chunksize:
        Batch size for process mode (amortizes IPC overhead).
    pool:
        Optional persistent :class:`WorkerPool`. When given, the map runs
        on the pool's executor (its mode/size/chunksize govern;
        ``mode``/``workers``/``chunksize`` here are ignored) and nothing
        is constructed or torn down per call. Without one, behavior is
        the historical per-call executor.
    """
    if pool is not None:
        return pool.map(fn, items)
    if mode not in EXECUTION_MODES:
        raise ReproError(f"unknown execution mode {mode!r} (have {EXECUTION_MODES})")
    seq: Sequence[T] = list(items)
    if mode == "serial" or len(seq) <= 1:
        return [fn(item) for item in seq]
    if workers < 1:
        raise ReproError(f"workers must be >= 1, got {workers}")
    if mode == "thread":
        with ThreadPoolExecutor(max_workers=workers) as executor:
            return list(executor.map(fn, seq))
    with ProcessPoolExecutor(max_workers=workers) as executor:
        return list(executor.map(fn, seq, chunksize=max(1, chunksize)))
