"""Ordered parallel map over threads or processes.

SZ-L/R blocks and AMR patches are independent (paper §3.3), so their
compression is a pure map. This module provides the one primitive the
parallel paths need: ``parallel_map`` with selectable executor, preserving
input order and propagating worker exceptions.

Thread mode is effective here despite the GIL because the heavy kernels
(NumPy ufuncs, zlib) release it; process mode trades startup cost for true
parallelism on multi-core hosts.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro.errors import ReproError

__all__ = ["parallel_map", "resolve_workers", "EXECUTION_MODES"]

T = TypeVar("T")
R = TypeVar("R")

#: Supported execution modes.
EXECUTION_MODES = ("serial", "thread", "process")


def resolve_workers(workers: int | None) -> int:
    """Resolve a worker count: ``None`` or ``0`` means one per CPU core."""
    if workers is None or workers == 0:
        return max(1, os.cpu_count() or 1)
    if workers < 0:
        raise ReproError(f"workers must be >= 0 or None, got {workers}")
    return workers


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    mode: str = "serial",
    workers: int = 2,
    chunksize: int = 1,
) -> list[R]:
    """Apply ``fn`` to every item, preserving order.

    Parameters
    ----------
    fn:
        Callable applied per item; must be picklable for ``"process"``.
    items:
        Work items.
    mode:
        ``"serial"``, ``"thread"``, or ``"process"``.
    workers:
        Executor size for the parallel modes.
    chunksize:
        Batch size for process mode (amortizes IPC overhead).
    """
    if mode not in EXECUTION_MODES:
        raise ReproError(f"unknown execution mode {mode!r} (have {EXECUTION_MODES})")
    seq: Sequence[T] = list(items)
    if mode == "serial" or len(seq) <= 1:
        return [fn(item) for item in seq]
    if workers < 1:
        raise ReproError(f"workers must be >= 1, got {workers}")
    if mode == "thread":
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, seq))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, seq, chunksize=max(1, chunksize)))
