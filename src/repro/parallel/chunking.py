"""Domain decomposition helpers for parallel compression.

Splits a uniform array into contiguous chunks whose boundaries align with
codec block sizes, so per-chunk compression produces bit-identical blocks
to whole-array compression (no cross-chunk dependencies in SZ-L/R).
"""

from __future__ import annotations

import numpy as np

from repro.amr.box import Box
from repro.errors import ReproError

__all__ = ["chunk_boxes", "aligned_chunk_boxes"]


def chunk_boxes(shape: tuple[int, ...], n_chunks: int, axis: int = 0) -> list[Box]:
    """Split ``shape`` into up to ``n_chunks`` slabs along ``axis``."""
    if n_chunks < 1:
        raise ReproError(f"n_chunks must be >= 1, got {n_chunks}")
    if not 0 <= axis < len(shape):
        raise ReproError(f"axis {axis} out of range for shape {shape}")
    n = shape[axis]
    n_chunks = min(n_chunks, n)
    edges = np.linspace(0, n, n_chunks + 1, dtype=np.int64)
    boxes = []
    full = Box.from_shape(shape)
    for a, b in zip(edges[:-1], edges[1:]):
        if b <= a:
            continue
        lo = list(full.lo)
        hi = list(full.hi)
        lo[axis] = int(a)
        hi[axis] = int(b) - 1
        boxes.append(Box(tuple(lo), tuple(hi)))
    return boxes


def aligned_chunk_boxes(
    shape: tuple[int, ...], n_chunks: int, block_size: int, axis: int = 0
) -> list[Box]:
    """Slab decomposition with cut planes rounded to ``block_size``.

    Guarantees each chunk (except possibly the last) has an extent that is
    a multiple of the codec block size along ``axis``, so blockwise codecs
    see the same block grid as they would on the full array.
    """
    if block_size < 1:
        raise ReproError(f"block_size must be >= 1, got {block_size}")
    raw = chunk_boxes(shape, n_chunks, axis)
    if block_size == 1 or len(raw) <= 1:
        return raw
    full = Box.from_shape(shape)
    cuts = []
    for box in raw[:-1]:
        end = box.hi[axis] + 1
        cuts.append(int(round(end / block_size)) * block_size)
    cuts = sorted({c for c in cuts if 0 < c < shape[axis]})
    boxes = []
    prev = 0
    for c in cuts + [shape[axis]]:
        if c <= prev:
            continue
        lo = list(full.lo)
        hi = list(full.hi)
        lo[axis] = prev
        hi[axis] = c - 1
        boxes.append(Box(tuple(lo), tuple(hi)))
        prev = c
    return boxes
