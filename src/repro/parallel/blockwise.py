"""Parallel chunk/patch compression built on :func:`parallel_map`.

Two entry points:

* :func:`compress_chunks` — decompose a uniform array into block-aligned
  slabs and compress each independently (the in-situ pattern: each rank
  compresses its subdomain). Reassembly is exact because chunks are
  compressed with an *absolute* bound resolved once for the whole array.
* :func:`compress_patches` — compress every (level, field, patch) of a
  hierarchy in parallel; the AMR analogue.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass

import numpy as np

from repro.amr.box import Box
from repro.compression.base import Compressor
from repro.compression.registry import decompress_any, make_codec
from repro.errors import CompressionError, FormatError
from repro.parallel.chunking import aligned_chunk_boxes
from repro.parallel.pool import parallel_map

__all__ = ["ChunkedStream", "compress_chunks", "decompress_chunks", "compress_patches"]

_MAGIC = b"RPCK"


@dataclass
class ChunkedStream:
    """Independently-compressed slabs of one array."""

    shape: tuple[int, ...]
    boxes: list[Box]
    blobs: list[bytes]

    @property
    def compressed_bytes(self) -> int:
        """Total compressed payload."""
        return sum(len(b) for b in self.blobs)

    def tobytes(self) -> bytes:
        """Serialize to one self-describing byte string."""
        head = json.dumps(
            {
                "shape": list(self.shape),
                "boxes": [{"lo": list(b.lo), "hi": list(b.hi)} for b in self.boxes],
                "lengths": [len(b) for b in self.blobs],
            },
            separators=(",", ":"),
        ).encode()
        out = bytearray(_MAGIC + struct.pack("<I", len(head)) + head)
        for blob in self.blobs:
            out += blob
        return bytes(out)

    @classmethod
    def frombytes(cls, raw: bytes) -> "ChunkedStream":
        """Parse :meth:`tobytes` output."""
        if raw[:4] != _MAGIC:
            raise FormatError("not a chunked stream")
        (hlen,) = struct.unpack_from("<I", raw, 4)
        head = json.loads(raw[8 : 8 + hlen].decode())
        pos = 8 + hlen
        blobs = []
        for length in head["lengths"]:
            blobs.append(raw[pos : pos + length])
            pos += length
        boxes = [Box(tuple(b["lo"]), tuple(b["hi"])) for b in head["boxes"]]
        return cls(shape=tuple(head["shape"]), boxes=boxes, blobs=blobs)


def compress_chunks(
    data: np.ndarray,
    codec: str | Compressor,
    error_bound: float,
    mode: str = "abs",
    n_chunks: int = 4,
    parallel: str = "thread",
    workers: int = 4,
) -> ChunkedStream:
    """Compress ``data`` as independent block-aligned slabs.

    The error bound is resolved against the *whole* array first (so
    ``mode="rel"`` means the same thing as single-stream compression), then
    each chunk is compressed with the resulting absolute bound.
    """
    comp = make_codec(codec) if isinstance(codec, str) else codec
    arr = np.ascontiguousarray(data)
    eb_abs = Compressor.resolve_error_bound(arr, error_bound, mode)
    block = getattr(comp, "block_size", 1)
    if not isinstance(block, int):  # "auto" block selection
        block = 1
    boxes = aligned_chunk_boxes(arr.shape, n_chunks, block_size=block, axis=0)
    views = [arr[b.slices()] for b in boxes]
    blobs = parallel_map(
        lambda v: comp.compress(v, eb_abs, mode="abs"), views, mode=parallel, workers=workers
    )
    return ChunkedStream(shape=arr.shape, boxes=boxes, blobs=blobs)


def decompress_chunks(
    stream: ChunkedStream, parallel: str = "thread", workers: int = 4
) -> np.ndarray:
    """Reassemble an array from a :class:`ChunkedStream`."""
    if len(stream.boxes) != len(stream.blobs):
        raise CompressionError("chunk stream boxes/blobs mismatch")
    parts = parallel_map(decompress_any, stream.blobs, mode=parallel, workers=workers)
    out = np.empty(stream.shape, dtype=parts[0].dtype if parts else np.float64)
    for box, part in zip(stream.boxes, parts):
        out[box.slices()] = part.reshape(box.shape)
    return out


def compress_patches(
    patch_arrays: list[np.ndarray],
    codec: str | Compressor,
    error_bound: float,
    mode: str = "rel",
    parallel: str = "thread",
    workers: int = 4,
) -> list[bytes]:
    """Compress a list of patch arrays in parallel (order-preserving)."""
    comp = make_codec(codec) if isinstance(codec, str) else codec
    return parallel_map(
        lambda a: comp.compress(a, error_bound, mode=mode),
        patch_arrays,
        mode=parallel,
        workers=workers,
    )
