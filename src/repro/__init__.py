"""repro — reproduction of "Analyzing Impact of Data Reduction Techniques on
Visualization for AMR Applications Using AMReX Framework" (SC-W 2023).

The package provides, from scratch:

* a patch-based AMR substrate (:mod:`repro.amr`),
* synthetic Nyx / WarpX workload generators (:mod:`repro.sims`),
* SZ-style error-bounded lossy compressors (:mod:`repro.compression`),
* AMR iso-surface visualization pipelines (:mod:`repro.viz`),
* quality metrics incl. SSIM / R-SSIM (:mod:`repro.metrics`),
* the paper's experiment harness (:mod:`repro.experiments`).
"""

__version__ = "1.0.0"

from repro.errors import (
    ReproError,
    BoxError,
    HierarchyError,
    CompressionError,
    DecompressionError,
    FormatError,
    VisualizationError,
    MetricError,
    ExperimentError,
)

__all__ = [
    "__version__",
    "ReproError",
    "BoxError",
    "HierarchyError",
    "CompressionError",
    "DecompressionError",
    "FormatError",
    "VisualizationError",
    "MetricError",
    "ExperimentError",
]
