"""Pluggable byte backends for container and series I/O.

Every reader/writer in :mod:`repro.compression.container` and
:mod:`repro.insitu` ultimately needs four byte operations: open a named
object for reading, for writing, or for in-place append, and ask whether /
how large it is. This module extracts that surface into a
:class:`StorageBackend` interface so a campaign can target something other
than the local filesystem without the formats knowing:

* :class:`LocalFileBackend` — plain files under a root directory; the
  default, byte-identical to the historical direct-``Path`` paths.
* :class:`MemoryBackend` — an in-process object store (``name -> bytes``).
  Handy for tests and for staging a shard before upload; write handles
  have no file descriptor, so durability degrades explicitly (see
  :attr:`repro.insitu.StreamingWriter.degraded`).
* :class:`RangedBackend` — a read-path decorator modeling an object store:
  every read becomes a *ranged GET* against the wrapped backend, with
  readahead (requests are rounded up to a window, so footer+index parsing
  costs a handful of GETs instead of hundreds) and retry/backoff on
  :class:`~repro.errors.TransientStorageError`. Write/append/metadata
  calls pass straight through.

Readers and writers take ``backend=`` at their ``open``/``create`` entry
points (:meth:`ContainerReader.open`, :meth:`SeriesReader.open`,
:meth:`StreamingWriter.create` / :meth:`append_to`, and the sharded
campaign API in :mod:`repro.insitu.sharded`). Object *names* are plain
strings; :class:`LocalFileBackend` resolves relative names against its
root, and backends are free to treat them as flat keys.
"""

from __future__ import annotations

import io
import os
import random
import time
from pathlib import Path
from typing import BinaryIO, Callable, Iterable

from repro.errors import StorageError, TransientStorageError

__all__ = [
    "StorageBackend",
    "LocalFileBackend",
    "MemoryBackend",
    "RangedBackend",
    "StorageError",
    "TransientStorageError",
]


class StorageBackend:
    """Abstract byte backend: named objects with read/write/append access.

    Implementations must provide seekable binary handles. ``open_read``
    handles may be plain file objects or any object with ``seek`` /
    ``tell`` / ``read`` / ``close``; the readers never write through them.
    ``open_write`` truncates/creates; ``open_append`` opens an existing
    object positioned at 0 with read+write access (the resume path seeks
    itself). Callers own the returned handles and must close them.
    """

    def open_read(self, name: str) -> BinaryIO:
        """Open an existing object for reading."""
        raise NotImplementedError

    def open_write(self, name: str) -> BinaryIO:
        """Create (or truncate) an object and open it for writing."""
        raise NotImplementedError

    def open_append(self, name: str) -> BinaryIO:
        """Open an existing object read+write without truncating it."""
        raise NotImplementedError

    def exists(self, name: str) -> bool:
        """Whether an object of that name is stored."""
        raise NotImplementedError

    def size(self, name: str) -> int:
        """Byte size of a stored object."""
        raise NotImplementedError

    def delete(self, name: str) -> None:
        """Remove an object (missing objects raise :class:`StorageError`)."""
        raise NotImplementedError

    def list(self, prefix: str = "") -> list[str]:
        """Names of stored objects starting with ``prefix``, sorted."""
        raise NotImplementedError


class LocalFileBackend(StorageBackend):
    """Plain local files; relative names resolve against ``root``.

    This is the default backend everywhere a ``backend=`` parameter is
    accepted — passing ``LocalFileBackend()`` explicitly is byte-identical
    to passing nothing. Absolute names bypass the root.
    """

    def __init__(self, root: str | Path = "."):
        self._root = Path(root)

    def _resolve(self, name: str) -> Path:
        p = Path(name)
        return p if p.is_absolute() else self._root / p

    def open_read(self, name: str) -> BinaryIO:
        try:
            return self._resolve(name).open("rb")
        except OSError as exc:
            raise StorageError(f"cannot open {name!r} for reading: {exc}") from exc

    def open_write(self, name: str) -> BinaryIO:
        target = self._resolve(name)
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            return target.open("wb")
        except OSError as exc:
            raise StorageError(f"cannot open {name!r} for writing: {exc}") from exc

    def open_append(self, name: str) -> BinaryIO:
        try:
            return self._resolve(name).open("r+b")
        except OSError as exc:
            raise StorageError(f"cannot open {name!r} for append: {exc}") from exc

    def exists(self, name: str) -> bool:
        return self._resolve(name).exists()

    def size(self, name: str) -> int:
        try:
            return self._resolve(name).stat().st_size
        except OSError as exc:
            raise StorageError(f"cannot stat {name!r}: {exc}") from exc

    def delete(self, name: str) -> None:
        try:
            self._resolve(name).unlink()
        except OSError as exc:
            raise StorageError(f"cannot delete {name!r}: {exc}") from exc

    def list(self, prefix: str = "") -> list[str]:
        """Objects under the *directory part* of ``prefix`` whose names
        start with ``prefix`` (how the sharded reader discovers shard
        files when a campaign's manifest is lost)."""
        directory = self._resolve(os.path.dirname(prefix)) if prefix else self._root
        if not directory.is_dir():
            return []
        absolute = bool(prefix) and Path(prefix).is_absolute()
        out = []
        for entry in directory.iterdir():
            if not entry.is_file():
                continue
            name = str(entry) if absolute else str(entry.relative_to(self._root))
            if name.startswith(prefix):
                out.append(name)
        return sorted(out)


class _MemoryFile(io.BytesIO):
    """A BytesIO whose contents publish back to the owning store.

    ``flush`` snapshots the buffer into the backend (so a writer's
    two-phase index/footer commit is observable mid-write), and ``close``
    publishes one final time. There is no file descriptor: ``fileno()``
    raises, which the streaming writer reports as degraded durability.
    """

    def __init__(self, store: dict, name: str, initial: bytes = b""):
        super().__init__()
        self._store = store
        self._name = name
        if initial:
            self.write(initial)
            self.seek(0)

    def flush(self) -> None:
        super().flush()
        self._store[self._name] = self.getvalue()

    def close(self) -> None:
        if not self.closed:
            self._store[self._name] = self.getvalue()
        super().close()


class MemoryBackend(StorageBackend):
    """An in-process object store mapping names to immutable byte strings.

    Reads serve :class:`io.BytesIO` copies; writes go through a buffer
    that publishes to the store on ``flush``/``close``. Useful for tests,
    for modeling remote stores (wrap it in :class:`RangedBackend`), and
    for staging campaign shards without touching disk.
    """

    def __init__(self):
        self._objects: dict[str, bytes] = {}

    def open_read(self, name: str) -> BinaryIO:
        try:
            return io.BytesIO(self._objects[name])
        except KeyError:
            raise StorageError(f"no stored object {name!r}") from None

    def open_write(self, name: str) -> BinaryIO:
        return _MemoryFile(self._objects, name)

    def open_append(self, name: str) -> BinaryIO:
        try:
            return _MemoryFile(self._objects, name, self._objects[name])
        except KeyError:
            raise StorageError(f"no stored object {name!r}") from None

    def exists(self, name: str) -> bool:
        return name in self._objects

    def size(self, name: str) -> int:
        try:
            return len(self._objects[name])
        except KeyError:
            raise StorageError(f"no stored object {name!r}") from None

    def delete(self, name: str) -> None:
        try:
            del self._objects[name]
        except KeyError:
            raise StorageError(f"no stored object {name!r}") from None

    def list(self, prefix: str = "") -> list[str]:
        return sorted(n for n in self._objects if n.startswith(prefix))


class _RangedReader:
    """Seekable read handle that fetches via retried, readahead ranged GETs.

    Serves ``read`` calls from a single readahead window; a miss issues one
    GET of ``max(requested, readahead)`` bytes through
    :meth:`RangedBackend._fetch` (which retries transient faults). The
    container/series readers' access pattern — footer, then index, then a
    few streams — therefore costs a handful of GETs, not one per ``read``.
    """

    closed = False

    def __init__(self, backend: "RangedBackend", name: str, size: int):
        self._backend = backend
        self._name = name
        self._size = size
        self._pos = 0
        self._buf = b""
        self._buf_start = 0

    def seek(self, offset: int, whence: int = io.SEEK_SET) -> int:
        if whence == io.SEEK_SET:
            pos = offset
        elif whence == io.SEEK_CUR:
            pos = self._pos + offset
        elif whence == io.SEEK_END:
            pos = self._size + offset
        else:  # pragma: no cover - mirrors io semantics
            raise ValueError(f"invalid whence {whence}")
        if pos < 0:
            raise ValueError("negative seek position")
        self._pos = pos
        return pos

    def tell(self) -> int:
        return self._pos

    def read(self, size: int = -1) -> bytes:
        if self._pos >= self._size:
            return b""
        budget = self._size - self._pos
        n = budget if size is None or size < 0 else min(size, budget)
        lo = self._pos - self._buf_start
        if not (0 <= lo and lo + n <= len(self._buf)):
            want = max(n, self._backend.readahead)
            want = min(want, self._size - self._pos)
            self._buf = self._backend._fetch(self._name, self._pos, want)
            self._buf_start = self._pos
            lo = 0
        out = self._buf[lo : lo + n]
        self._pos += len(out)
        return out

    def close(self) -> None:
        self.closed = True
        self._buf = b""


class RangedBackend(StorageBackend):
    """Read-path decorator modeling an object store's ranged-GET protocol.

    Wraps any backend; ``open_read`` returns a handle whose reads become
    bounded byte-range requests with *readahead* (each GET fetches at
    least ``readahead`` bytes) and *retry with exponentially backed-off,
    jittered sleeps*: a GET that raises
    :class:`~repro.errors.TransientStorageError` (from the inner backend
    or an injected ``fault`` hook) is retried up to ``max_retries``
    times before the error propagates as-is. Retry ``attempt`` (1-based)
    sleeps ``backoff * 2**(attempt-1)`` seconds — with ``jitter=True``
    (the default) the actual sleep is drawn uniformly from ``[0, that]``
    ("full jitter"), so a herd of clients retrying the same outage
    decorrelates instead of hammering the backend in lockstep.
    ``max_elapsed`` is a wall-clock retry *budget*: once the time already
    spent plus the next planned sleep would exceed it, retrying stops and
    the failure surfaces — worst-case added latency per GET is bounded
    regardless of ``max_retries``. All other operations delegate to the
    wrapped backend unchanged.

    ``stats`` counts ``requests`` (GETs issued), ``bytes_fetched``, and
    ``retries`` — what the benchmarks assert readahead against. ``fault``
    is a test hook called as ``fault(name, offset, length, attempt)``
    before every GET attempt (a :class:`repro.faults.FaultPlan` slots in
    directly); ``sleep``, ``clock``, and ``rng`` are injectable so retry
    tests need no wall clock and jitter is seedable.
    """

    def __init__(
        self,
        inner: StorageBackend,
        readahead: int = 1 << 16,
        max_retries: int = 3,
        backoff: float = 0.01,
        jitter: bool = True,
        max_elapsed: float | None = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        rng: random.Random | None = None,
        fault: Callable[[str, int, int, int], None] | None = None,
    ):
        if readahead < 1:
            raise StorageError(f"readahead must be >= 1 byte, got {readahead}")
        if max_retries < 0:
            raise StorageError(f"max_retries must be >= 0, got {max_retries}")
        if max_elapsed is not None and max_elapsed < 0:
            raise StorageError(f"max_elapsed must be >= 0, got {max_elapsed}")
        self._inner = inner
        self.readahead = int(readahead)
        self._max_retries = int(max_retries)
        self._backoff = float(backoff)
        self._jitter = bool(jitter)
        self._max_elapsed = None if max_elapsed is None else float(max_elapsed)
        self._sleep = sleep
        self._clock = clock
        self._rng = rng if rng is not None else random.Random()
        self._fault = fault
        self.stats = {"requests": 0, "bytes_fetched": 0, "retries": 0}

    def _fetch(self, name: str, offset: int, length: int) -> bytes:
        """One ranged GET, retried with jittered exponential backoff
        under the ``max_elapsed`` wall-clock budget."""
        start = self._clock()
        last: Exception | None = None
        budget = "budget"
        for attempt in range(self._max_retries + 1):
            if attempt:
                delay = self._backoff * (2 ** (attempt - 1))
                if self._jitter:
                    delay = self._rng.uniform(0.0, delay)
                if (
                    self._max_elapsed is not None
                    and (self._clock() - start) + delay > self._max_elapsed
                ):
                    budget = f"{self._max_elapsed}s retry budget"
                    break
                self.stats["retries"] += 1
                self._sleep(delay)
            try:
                if self._fault is not None:
                    self._fault(name, offset, length, attempt)
                handle = self._inner.open_read(name)
                try:
                    handle.seek(offset)
                    blob = handle.read(length)
                finally:
                    handle.close()
            except TransientStorageError as exc:
                last = exc
                continue
            self.stats["requests"] += 1
            self.stats["bytes_fetched"] += len(blob)
            return blob
        else:
            budget = f"{self._max_retries + 1} attempts"
        raise StorageError(
            f"ranged read of {name!r} [{offset}:{offset + length}] failed "
            f"after {budget}: {last}"
        ) from last

    def open_read(self, name: str) -> BinaryIO:
        return _RangedReader(self, name, self._inner.size(name))  # type: ignore[return-value]

    def open_write(self, name: str) -> BinaryIO:
        return self._inner.open_write(name)

    def open_append(self, name: str) -> BinaryIO:
        return self._inner.open_append(name)

    def exists(self, name: str) -> bool:
        return self._inner.exists(name)

    def size(self, name: str) -> int:
        return self._inner.size(name)

    def delete(self, name: str) -> None:
        self._inner.delete(name)

    def list(self, prefix: str = "") -> list[str]:
        return self._inner.list(prefix)
