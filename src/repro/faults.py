"""Seeded, deterministic fault injection for storage and decode paths.

Resilience properties — retries, circuit breakers, degraded reads,
deadline handling — are only real if something keeps breaking the system
on purpose. This module is that something: a :class:`FaultPlan` is a
small, seeded schedule of injected failures that plugs into the hooks the
I/O layers already expose, so every "what if the backend dies here?"
scenario is reproducible from a seed instead of depending on luck:

* :class:`~repro.storage.RangedBackend` takes a plan directly as its
  ``fault=`` hook (the plan is callable with the hook's
  ``(name, offset, length, attempt)`` signature) — faults then hit every
  ranged GET, inside the retry loop.
* :class:`FaultyBackend` wraps **any** :class:`~repro.storage.StorageBackend`
  (including a plain :class:`~repro.storage.LocalFileBackend`) and injects
  the plan's faults/latency on every read, with no retry layer in between.
* :class:`FaultyPool` wraps a :class:`~repro.parallel.WorkerPool` and
  makes scheduled decode tasks fail (typed or as a raw crash) — the
  "decode worker died mid-query" scenario.

A plan is a list of **rules**. Each rule has a *match* (an
``fnmatch``-style glob over the object/site name, or a predicate over
``(name, offset, length)``), a *kind* (what to inject), and a *schedule*
(when to fire):

====================  ====================================================
schedule              fires on
====================  ====================================================
``always()``          every matching call (a hard outage)
``flake()``           first attempt of every matching GET (retry succeeds)
``nth(n)``            exactly the n-th matching call (0-based)
``first(k)``          the first ``k`` matching calls, then recovers —
                      the fail-then-recover outage window
``probability(p)``    each matching call with seeded probability ``p``
``latency(seconds)``  never fails; sleeps before the call proceeds
====================  ====================================================

Schedules count *calls* (retry attempts of the same GET do not advance
``nth``/``first``/``probability`` — attempt 0 counts), so a schedule's
firing pattern is independent of the retry policy layered above it.
Injected errors default to :class:`~repro.errors.TransientStorageError`
(``kind="transient"``); ``kind="storage"`` injects a permanent
:class:`~repro.errors.StorageError`, and ``kind="crash"`` raises a bare
``RuntimeError`` — the shape of a genuinely dead worker, which the
serving layer must convert to a typed error rather than leak.

``tools/chaossim.py`` sweeps plans built from these rules against an
oracle over the whole serving stack; ``tests/serve/test_faults.py`` uses
them for targeted scenarios.
"""

from __future__ import annotations

import random
import threading
import time
from fnmatch import fnmatchcase
from typing import BinaryIO, Callable, Iterable

from repro.errors import ReproError, StorageError, TransientStorageError
from repro.parallel.pool import WorkerPool
from repro.storage import StorageBackend

__all__ = ["FaultRule", "FaultPlan", "FaultyBackend", "FaultyPool"]

#: Injected-error kinds a rule may carry.
FAULT_KINDS = ("transient", "storage", "crash")

Matcher = Callable[[str, int, int], bool]


def _compile_match(match) -> Matcher:
    if callable(match):
        return match
    pattern = str(match)
    return lambda name, offset, length: fnmatchcase(name, pattern)


def _make_error(kind: str, site: str, detail: str) -> BaseException:
    if kind == "transient":
        return TransientStorageError(f"injected transient fault: {site} {detail}")
    if kind == "storage":
        return StorageError(f"injected storage fault: {site} {detail}")
    return RuntimeError(f"injected crash: {site} {detail}")


class FaultRule:
    """One schedule entry of a :class:`FaultPlan` (build via the plan)."""

    def __init__(
        self,
        match: Matcher,
        kind: str,
        *,
        nth: int | None = None,
        first: int | None = None,
        probability: float | None = None,
        always: bool = False,
        flake: bool = False,
        latency: float | None = None,
        rng: random.Random | None = None,
        label: str = "",
    ):
        if kind not in FAULT_KINDS:
            raise ReproError(f"unknown fault kind {kind!r} (have {FAULT_KINDS})")
        self.match = match
        self.kind = kind
        self.nth = nth
        self.first = first
        self.probability = probability
        self.always = always
        self.flake = flake
        self.latency = latency
        self.rng = rng
        self.label = label
        self.calls = 0
        self.fired = 0

    def decide(self, name: str, offset: int, length: int, attempt: int) -> bool:
        """Whether this rule fires for one call (advances its counters)."""
        if not self.match(name, offset, length):
            return False
        if attempt == 0:
            call = self.calls
            self.calls += 1
        else:
            # A retry of the same logical call: only per-attempt rules
            # (always) re-evaluate; scheduled rules keep their verdict
            # tied to attempt 0 so the pattern is retry-policy-invariant.
            call = self.calls - 1
        if self.always:
            fire = True
        elif self.flake:
            fire = attempt == 0
        elif self.nth is not None:
            fire = call == self.nth
        elif self.first is not None:
            fire = call < self.first
        elif self.probability is not None:
            if attempt != 0:
                return False
            fire = self.rng.random() < self.probability
        elif self.latency is not None:
            fire = attempt == 0
        else:  # pragma: no cover - constructor always sets one schedule
            fire = False
        if fire:
            self.fired += 1
        return fire


class FaultPlan:
    """A seeded, deterministic set of fault rules.

    Callable with :class:`~repro.storage.RangedBackend`'s ``fault`` hook
    signature, so a plan *is* a fault hook::

        from repro.faults import FaultPlan
        from repro.storage import LocalFileBackend, RangedBackend

        plan = FaultPlan(seed=7)
        plan.flake()                       # every GET's first attempt 503s
        backend = RangedBackend(LocalFileBackend(), fault=plan,
                                sleep=lambda s: None)

    ``sleep`` is the hook latency rules use (injectable so tests control
    the clock); ``seed`` drives every probabilistic rule. All rule state
    is behind one lock — plans are safe to consult from executor threads.
    """

    def __init__(self, seed: int = 0, sleep: Callable[[float], None] = time.sleep):
        self._seed = int(seed)
        self._sleep = sleep
        self._lock = threading.Lock()
        self._rules: list[FaultRule] = []

    # -- rule builders -------------------------------------------------
    def _add(self, rule: FaultRule) -> FaultRule:
        with self._lock:
            self._rules.append(rule)
        return rule

    def always(self, match="*", kind: str = "transient", label: str = "") -> FaultRule:
        """Hard outage: every matching call (every attempt) fails."""
        return self._add(
            FaultRule(_compile_match(match), kind, always=True, label=label)
        )

    def flake(self, match="*", kind: str = "transient", label: str = "") -> FaultRule:
        """Fail only attempt 0 of each matching GET — one retry heals it."""
        return self._add(
            FaultRule(_compile_match(match), kind, flake=True, label=label)
        )

    def nth(self, n: int, match="*", kind: str = "transient", label: str = "") -> FaultRule:
        """Fail exactly the ``n``-th matching call (0-based)."""
        return self._add(
            FaultRule(_compile_match(match), kind, nth=int(n), label=label)
        )

    def first(self, k: int, match="*", kind: str = "transient", label: str = "") -> FaultRule:
        """Fail-then-recover: the first ``k`` matching calls fail (every
        attempt — an outage window), later calls succeed."""
        return self._add(
            FaultRule(_compile_match(match), kind, first=int(k), label=label)
        )

    def probability(
        self, p: float, match="*", kind: str = "transient", label: str = ""
    ) -> FaultRule:
        """Fail each matching call with seeded probability ``p``."""
        if not 0.0 <= p <= 1.0:
            raise ReproError(f"fault probability must be in [0, 1], got {p}")
        rng = random.Random(self._seed + len(self._rules) * 7919)
        return self._add(
            FaultRule(
                _compile_match(match), kind, probability=float(p), rng=rng,
                label=label,
            )
        )

    def latency(self, seconds: float, match="*", label: str = "") -> FaultRule:
        """Inject a delay (through the plan's ``sleep`` hook) before each
        matching call proceeds; the call itself succeeds."""
        return self._add(
            FaultRule(
                _compile_match(match), "transient", latency=float(seconds),
                label=label,
            )
        )

    # -- lifecycle / stats ---------------------------------------------
    def clear(self) -> None:
        """Drop every rule (the plan keeps working, injecting nothing)."""
        with self._lock:
            self._rules.clear()

    @property
    def rules(self) -> tuple[FaultRule, ...]:
        with self._lock:
            return tuple(self._rules)

    @property
    def fired(self) -> int:
        """Total faults fired across all rules (latency rules included)."""
        with self._lock:
            return sum(r.fired for r in self._rules)

    @property
    def faults(self) -> int:
        """Error faults fired (excludes latency rules) — what retry
        accounting reconciles against."""
        with self._lock:
            return sum(r.fired for r in self._rules if r.latency is None)

    def stats(self) -> list[dict]:
        """Per-rule counters, JSON-safe."""
        with self._lock:
            return [
                {
                    "label": r.label,
                    "kind": "latency" if r.latency is not None else r.kind,
                    "calls": r.calls,
                    "fired": r.fired,
                }
                for r in self._rules
            ]

    # -- injection entry point -----------------------------------------
    def __call__(self, name: str, offset: int, length: int, attempt: int = 0) -> None:
        """Consult the plan for one call; sleeps for latency rules and
        raises for firing error rules (the ``RangedBackend`` hook shape)."""
        naps = 0.0
        error: BaseException | None = None
        with self._lock:
            for rule in self._rules:
                if not rule.decide(name, offset, length, attempt):
                    continue
                if rule.latency is not None:
                    naps += rule.latency
                elif error is None:
                    error = _make_error(
                        rule.kind, name, f"[{offset}:{offset + length}] "
                        f"attempt {attempt}" + (f" ({rule.label})" if rule.label else "")
                    )
        if naps:
            self._sleep(naps)
        if error is not None:
            raise error


class _FaultyReader:
    """Read handle that consults a plan on every ``read``."""

    closed = False

    def __init__(self, plan: FaultPlan, name: str, inner: BinaryIO):
        self._plan = plan
        self._name = name
        self._inner = inner

    def seek(self, offset: int, whence: int = 0) -> int:
        return self._inner.seek(offset, whence)

    def tell(self) -> int:
        return self._inner.tell()

    def read(self, size: int = -1) -> bytes:
        pos = self._inner.tell()
        self._plan(self._name, pos, max(0, size), 0)
        return self._inner.read(size)

    def close(self) -> None:
        self.closed = True
        self._inner.close()


class _FaultyWriter:
    """Write handle that consults a plan on every ``write``.

    Only ``write`` is injected: ``seek`` / ``truncate`` / ``flush`` /
    ``close`` delegate untouched, so a writer's *rollback* path (truncate
    back to the sealed prefix after a failed append) can never itself be
    blocked by the plan — matching real storage, where undoing a buffered
    write is a metadata operation, not another data write.
    """

    closed = False

    def __init__(self, plan: FaultPlan, name: str, inner: BinaryIO):
        self._plan = plan
        self._name = name
        self._inner = inner

    def write(self, data) -> int:
        pos = self._inner.tell()
        self._plan(self._name, pos, len(data), 0)
        return self._inner.write(data)

    def seek(self, offset: int, whence: int = 0) -> int:
        return self._inner.seek(offset, whence)

    def tell(self) -> int:
        return self._inner.tell()

    def truncate(self, size: int | None = None) -> int:
        return self._inner.truncate(size)

    def flush(self) -> None:
        self._inner.flush()

    def fileno(self) -> int:
        return self._inner.fileno()

    def close(self) -> None:
        self.closed = True
        self._inner.close()


class FaultyBackend(StorageBackend):
    """Inject a :class:`FaultPlan` into any backend's read *and write* paths.

    Unlike wiring the plan into :class:`~repro.storage.RangedBackend`'s
    hook, there is no retry layer here: a firing rule's error surfaces
    directly from ``read`` / ``write`` — what a dead local disk or NFS
    stall looks like to :class:`~repro.storage.LocalFileBackend` users.
    Write-side sites are the same object names (match on ``*.rph2s`` etc.);
    ``seek``/``truncate``/``flush`` are never injected, so rollback and
    two-phase-commit machinery stays exercisable under faults. Metadata
    operations delegate untouched.
    """

    def __init__(self, inner: StorageBackend, plan: FaultPlan):
        self._inner = inner
        self.plan = plan

    def open_read(self, name: str) -> BinaryIO:
        return _FaultyReader(self.plan, name, self._inner.open_read(name))  # type: ignore[return-value]

    def open_write(self, name: str) -> BinaryIO:
        return _FaultyWriter(self.plan, name, self._inner.open_write(name))  # type: ignore[return-value]

    def open_append(self, name: str) -> BinaryIO:
        return _FaultyWriter(self.plan, name, self._inner.open_append(name))  # type: ignore[return-value]

    def exists(self, name: str) -> bool:
        return self._inner.exists(name)

    def size(self, name: str) -> int:
        return self._inner.size(name)

    def delete(self, name: str) -> None:
        self._inner.delete(name)

    def list(self, prefix: str = "") -> list[str]:
        return self._inner.list(prefix)


def _raise_task(exc: BaseException):
    raise exc


class FaultyPool:
    """Inject decode-task faults into a :class:`~repro.parallel.WorkerPool`.

    The plan is consulted **at submit time in the submitting process**
    (site name ``pool:<function name>``, offset/length 0) so counters and
    seeded schedules stay deterministic even for process pools; a firing
    rule replaces the task with one that raises the injected error —
    byte-for-byte the future shape of a task that died in the worker.
    Satisfies the slice of the pool API the serving layer uses
    (``submit`` / ``map`` / ``mode`` / ``close``).
    """

    def __init__(self, inner: WorkerPool, plan: FaultPlan):
        self._inner = inner
        self.plan = plan

    @property
    def mode(self) -> str:
        return self._inner.mode

    @property
    def workers(self) -> int:
        return self._inner.workers

    @property
    def closed(self) -> bool:
        return self._inner.closed

    @property
    def broken(self) -> bool:
        return self._inner.broken

    def _site(self, fn: Callable) -> str:
        return f"pool:{getattr(fn, '__name__', 'task')}"

    def submit(self, fn: Callable, *args):
        try:
            self.plan(self._site(fn), 0, 0, 0)
        except BaseException as exc:
            return self._inner.submit(_raise_task, exc)
        return self._inner.submit(fn, *args)

    def map(self, fn: Callable, items: Iterable) -> list:
        return [self.submit(fn, item).result() for item in items]

    def close(self) -> None:
        self._inner.close()

    def __enter__(self) -> "FaultyPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
