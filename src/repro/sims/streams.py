"""Step generators: lazily evolving synthetic campaigns for in-situ runs.

The in-situ writer (:mod:`repro.insitu`) consumes timesteps one at a time;
these generators play the role of the solver, yielding one
:class:`SimStep` per iteration and materializing **only the current
hierarchy** — the property that keeps a streaming campaign's peak memory
at O(snapshot) instead of O(campaign).

Evolution follows the physics each generator already models:

* :func:`nyx_step_stream` sweeps the linear growth factor, so structure
  sharpens and the refined region tracks it (paper Figure 2);
* :func:`warpx_step_stream` sweeps the smooth broadband perturbation
  (texture accumulating over the run) while the wakefield morphology
  stays fixed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.amr.hierarchy import AMRHierarchy
from repro.errors import ReproError
from repro.sims.nyx import NyxConfig, nyx_hierarchy
from repro.sims.warpx import WarpXConfig, warpx_hierarchy

__all__ = ["SimStep", "nyx_step_stream", "warpx_step_stream"]


@dataclass(frozen=True)
class SimStep:
    """One timestep emitted by a (simulated) solver."""

    #: Monotonically increasing step number.
    index: int
    #: Simulation time (the growth factor for Nyx; step phase for WarpX).
    time: float
    #: The hierarchy for this step; not retained by the generator.
    hierarchy: AMRHierarchy


def _step_fractions(n_steps: int) -> list[float]:
    if n_steps < 1:
        raise ReproError(f"n_steps must be >= 1, got {n_steps}")
    if n_steps == 1:
        return [1.0]
    return [i / (n_steps - 1) for i in range(n_steps)]


def nyx_step_stream(
    n_steps: int,
    config: NyxConfig | None = None,
    growth_range: tuple[float, float] = (0.3, 1.0),
) -> Iterator[SimStep]:
    """Yield ``n_steps`` Nyx-like snapshots with rising growth factor.

    Same random phases every step (the universe evolves, the realization
    does not), growth swept linearly over ``growth_range`` — the Figure 2
    campaign generalized to arbitrary length. Lazy: each hierarchy is
    built when its step is requested and dropped when the caller drops it.
    """
    base = config if config is not None else NyxConfig()
    g0, g1 = float(growth_range[0]), float(growth_range[1])
    for i, frac in enumerate(_step_fractions(n_steps)):
        growth = g0 + (g1 - g0) * frac
        cfg = NyxConfig(
            coarse_n=base.coarse_n,
            ref_ratio=base.ref_ratio,
            seed=base.seed,
            fine_fraction=base.fine_fraction,
            bias=base.bias,
            growth=growth,
            spectral_index=base.spectral_index,
        )
        yield SimStep(index=i, time=growth, hierarchy=nyx_hierarchy(cfg))


def warpx_step_stream(
    n_steps: int,
    config: WarpXConfig | None = None,
    noise_range: tuple[float, float] = (0.005, 0.02),
) -> Iterator[SimStep]:
    """Yield ``n_steps`` WarpX-like snapshots with accumulating texture.

    The analytic wakefield stays fixed while the smooth broadband
    perturbation grows over ``noise_range`` and re-seeds per step — a
    smooth-data campaign whose compressibility slowly degrades.
    """
    base = config if config is not None else WarpXConfig()
    lo, hi = float(noise_range[0]), float(noise_range[1])
    for i, frac in enumerate(_step_fractions(n_steps)):
        cfg = WarpXConfig(
            nx=base.nx,
            nz=base.nz,
            ref_ratio=base.ref_ratio,
            seed=base.seed + i,
            fine_fraction=base.fine_fraction,
            laser_cells=base.laser_cells,
            plasma_cells=base.plasma_cells,
            noise_level=lo + (hi - lo) * frac,
        )
        yield SimStep(index=i, time=float(i), hierarchy=warpx_hierarchy(cfg))
