"""Synthetic AMR simulation workloads (Nyx- and WarpX-like generators)."""

from repro.sims.spectral import (
    gaussian_random_field,
    smooth_field,
    wavenumber_grid,
    zeldovich_velocity,
)
from repro.sims.amr_build import average_pool, calibrated_boxes, two_level_hierarchy
from repro.sims.nyx import NyxConfig, nyx_hierarchy, nyx_timesteps, NYX_FIELDS
from repro.sims.warpx import WarpXConfig, warpx_hierarchy, WARPX_FIELDS, WARPX_B_FIELDS
from repro.sims.streams import SimStep, nyx_step_stream, warpx_step_stream

__all__ = [
    "gaussian_random_field",
    "smooth_field",
    "wavenumber_grid",
    "zeldovich_velocity",
    "average_pool",
    "calibrated_boxes",
    "two_level_hierarchy",
    "NyxConfig",
    "nyx_hierarchy",
    "nyx_timesteps",
    "NYX_FIELDS",
    "WarpXConfig",
    "warpx_hierarchy",
    "WARPX_FIELDS",
    "WARPX_B_FIELDS",
    "SimStep",
    "nyx_step_stream",
    "warpx_step_stream",
]
