"""Spectral field synthesis (FFT-based Gaussian random fields).

Substrate for the synthetic Nyx/WarpX generators: periodic Gaussian random
fields with a prescribed isotropic power spectrum, plus Fourier-space
helpers (Gaussian smoothing, inverse-Laplacian for Zel'dovich velocities).
All functions are deterministic in the seed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.util.rng import make_rng

__all__ = ["wavenumber_grid", "gaussian_random_field", "smooth_field", "zeldovich_velocity"]


def wavenumber_grid(shape: tuple[int, ...], box_size: float = 1.0) -> np.ndarray:
    """Isotropic wavenumber magnitude |k| on the FFT lattice."""
    if any(s < 2 for s in shape):
        raise ReproError(f"shape {shape} too small for spectral synthesis")
    axes = [np.fft.fftfreq(n, d=box_size / n) * 2.0 * np.pi for n in shape]
    grids = np.meshgrid(*axes, indexing="ij")
    k2 = np.zeros(shape, dtype=np.float64)
    for g in grids:
        k2 += g * g
    return np.sqrt(k2)


def gaussian_random_field(
    shape: tuple[int, ...],
    spectral_index: float = -2.5,
    seed: int | np.random.Generator | None = 0,
    box_size: float = 1.0,
) -> np.ndarray:
    """Periodic GRF with power spectrum ``P(k) ~ k**spectral_index``.

    Normalized to zero mean, unit variance. Negative spectral indices give
    large-scale-dominated fields (CDM-like for indices around -2.5).
    """
    rng = make_rng(seed)
    white = rng.normal(size=shape)
    k = wavenumber_grid(shape, box_size)
    amp = np.zeros_like(k)
    nonzero = k > 0
    amp[nonzero] = k[nonzero] ** (spectral_index / 2.0)
    fourier = np.fft.fftn(white) * amp
    field = np.fft.ifftn(fourier).real
    std = field.std()
    if std == 0.0:
        raise ReproError("degenerate random field (zero variance)")
    return (field - field.mean()) / std


def smooth_field(field: np.ndarray, sigma_cells: float) -> np.ndarray:
    """Gaussian smoothing with periodic boundaries (Fourier multiplier)."""
    if sigma_cells <= 0:
        return np.asarray(field, dtype=np.float64).copy()
    shape = field.shape
    k = wavenumber_grid(shape, box_size=float(shape[0]))  # cell units
    kernel = np.exp(-0.5 * (k * sigma_cells) ** 2)
    return np.fft.ifftn(np.fft.fftn(field) * kernel).real


def zeldovich_velocity(delta: np.ndarray, box_size: float = 1.0) -> list[np.ndarray]:
    """Zel'dovich-approximation velocity components from an overdensity.

    Solves ``laplacian(phi) = delta`` spectrally and returns ``-grad(phi)``
    per axis — the standard way cosmology initial-condition generators
    produce velocities consistent with a density field.
    """
    shape = delta.shape
    axes = [np.fft.fftfreq(n, d=box_size / n) * 2.0 * np.pi for n in shape]
    grids = np.meshgrid(*axes, indexing="ij")
    k2 = np.zeros(shape, dtype=np.float64)
    for g in grids:
        k2 += g * g
    k2[k2 == 0.0] = np.inf  # kill the DC mode
    dhat = np.fft.fftn(delta)
    phi_hat = -dhat / k2
    return [np.fft.ifftn(-1j * g * phi_hat).real for g in grids]
