"""Synthetic Nyx-like cosmology workload (paper §3.2, Table 1).

Nyx couples compressible hydrodynamics with dark-matter particles; its
snapshots carry six fields (baryon density, dark-matter density,
temperature, and three velocity components) whose spatial statistics are
*irregular* — filaments and halos from gravitational collapse. The paper
leans on exactly that irregularity: block-local predictors (SZ-L/R) beat
global interpolation on Nyx.

This generator reproduces those statistics with a standard lognormal-mock
recipe: a CDM-like Gaussian random field is grown by a timestep-dependent
factor and exponentiated (lognormal collapse), yielding spiky
filament/halo structure; velocities follow the Zel'dovich approximation;
temperature follows a polytropic density--temperature relation with
scatter. The AMR hierarchy refines the densest regions, calibrated to the
paper's per-level densities (59.3% coarse / 40.7% fine).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.amr.hierarchy import AMRHierarchy
from repro.errors import ReproError
from repro.sims.amr_build import average_pool, calibrated_boxes, two_level_hierarchy
from repro.sims.spectral import gaussian_random_field, smooth_field, zeldovich_velocity
from repro.util.rng import make_rng

__all__ = ["NyxConfig", "nyx_hierarchy", "nyx_timesteps", "nyx_multilevel_hierarchy", "NYX_FIELDS"]

#: The six Nyx fields named in the paper.
NYX_FIELDS = (
    "baryon_density",
    "dark_matter_density",
    "temperature",
    "velocity_x",
    "velocity_y",
    "velocity_z",
)


@dataclass(frozen=True)
class NyxConfig:
    """Generation parameters for the Nyx-like dataset.

    Defaults give a 64^3 + 128^3 two-level dataset — the paper's geometry
    (256^3 + 512^3, Table 1) scaled by 1/4 per dimension for pure-Python
    throughput; ``coarse_n`` scales it back up.
    """

    coarse_n: int = 64
    ref_ratio: int = 2
    seed: int = 42
    #: Table 1: fine level holds 40.7% of the domain.
    fine_fraction: float = 0.407
    #: lognormal bias: larger -> spikier collapse.
    bias: float = 1.8
    #: linear growth factor of the realized timestep (1.0 = "today").
    growth: float = 1.0
    spectral_index: float = -2.4


def _nyx_fine_fields(config: NyxConfig) -> dict[str, np.ndarray]:
    if config.coarse_n < 8:
        raise ReproError(f"coarse_n must be >= 8, got {config.coarse_n}")
    n = config.coarse_n * config.ref_ratio
    shape = (n, n, n)
    rng = make_rng(config.seed)
    delta = gaussian_random_field(shape, config.spectral_index, rng)
    grown = config.growth * delta
    # Lognormal mock: spiky, strictly positive, mean-normalized density.
    baryon = np.exp(config.bias * grown)
    baryon /= baryon.mean()
    # Dark matter traces the same structure, slightly more clustered and
    # with small-scale shot-noise-like texture from a second field.
    texture = gaussian_random_field(shape, -1.5, rng)
    dm = np.exp(config.bias * 1.15 * grown + 0.2 * config.growth * texture)
    dm /= dm.mean()
    # Polytropic temperature--density relation with lognormal scatter
    # (IGM-like; exponents of order 0.5-0.6).
    scatter = gaussian_random_field(shape, -1.0, rng)
    temperature = 1.0e4 * baryon**0.55 * np.exp(0.1 * scatter)
    # Zel'dovich velocities from the *smoothed* grown field (bulk flows).
    vel = zeldovich_velocity(smooth_field(grown, 1.5))
    scale = 3.0e2 / max(np.abs(vel[0]).max(), 1e-12)
    return {
        "baryon_density": baryon,
        "dark_matter_density": dm,
        "temperature": temperature,
        "velocity_x": vel[0] * scale,
        "velocity_y": vel[1] * scale,
        "velocity_z": vel[2] * scale,
    }


def nyx_hierarchy(config: NyxConfig | None = None) -> AMRHierarchy:
    """Generate the Nyx-like two-level AMR dataset.

    Refinement tags follow the baryon density (refine-on-overdensity, the
    criterion sketched in the paper's Figure 2), calibrated so the fine
    level covers ``config.fine_fraction`` of the domain.
    """
    cfg = config if config is not None else NyxConfig()
    fields = _nyx_fine_fields(cfg)
    score = average_pool(fields["baryon_density"], cfg.ref_ratio)
    boxes = calibrated_boxes(score, cfg.fine_fraction, blocking_factor=4)
    return two_level_hierarchy(fields, boxes, dx_coarse=1.0 / cfg.coarse_n, ref_ratio=cfg.ref_ratio)


def nyx_timesteps(
    growths: tuple[float, ...] = (0.35, 0.65, 1.0),
    config: NyxConfig | None = None,
) -> list[AMRHierarchy]:
    """Three pivotal timesteps (paper Figure 2): same random phases, rising
    growth factor — structure sharpens and the refined region tracks it."""
    base = config if config is not None else NyxConfig()
    out = []
    for g in growths:
        cfg = NyxConfig(
            coarse_n=base.coarse_n,
            ref_ratio=base.ref_ratio,
            seed=base.seed,
            fine_fraction=base.fine_fraction,
            bias=base.bias,
            growth=g,
            spectral_index=base.spectral_index,
        )
        out.append(nyx_hierarchy(cfg))
    return out


def nyx_multilevel_hierarchy(
    config: NyxConfig | None = None,
    levels: int = 3,
    fractions: tuple[float, ...] = (0.4, 0.12),
) -> AMRHierarchy:
    """Nyx-like dataset with ``levels`` refinement levels (Figure 2 shows
    "finer and finest" regions; this generalizes the Table 1 two-level
    setup).

    Parameters
    ----------
    config:
        Base configuration; ``coarse_n`` is the level-0 grid size and the
        finest level is ``coarse_n * ref_ratio**(levels-1)``.
    levels:
        Total level count (>= 2).
    fractions:
        Domain fraction covered by each refined level, outermost first;
        must be decreasing (finer levels nest inside coarser ones).
    """
    from repro.amr.boxarray import BoxArray
    from repro.sims.amr_build import multi_level_hierarchy, nested_calibrated_boxes

    cfg = config if config is not None else NyxConfig(coarse_n=32)
    if levels < 2:
        raise ReproError(f"levels must be >= 2, got {levels}")
    if len(fractions) != levels - 1:
        raise ReproError(f"need {levels - 1} fractions, got {len(fractions)}")
    if any(b >= a for a, b in zip(fractions, fractions[1:])):
        raise ReproError("fractions must strictly decrease (nesting)")
    ratio = cfg.ref_ratio
    # Generate at the finest resolution by treating the finest grid as the
    # "fine" grid of a scaled config.
    scaled = NyxConfig(
        coarse_n=cfg.coarse_n * ratio ** (levels - 2),
        ref_ratio=ratio,
        seed=cfg.seed,
        fine_fraction=cfg.fine_fraction,
        bias=cfg.bias,
        growth=cfg.growth,
        spectral_index=cfg.spectral_index,
    )
    fields = _nyx_fine_fields(scaled)
    density = fields["baryon_density"]
    level_boxes: list[BoxArray] = []
    outer: BoxArray | None = None
    for lev in range(1, levels):
        pool = ratio ** (levels - 1 - lev)
        # Score in level-`lev`'s own index space... built from the coarser
        # space where the clustering happens (level lev-1), then refined.
        score = average_pool(density, pool * ratio) if pool * ratio > 1 else density
        if outer is None:
            boxes_coarse = calibrated_boxes(score, fractions[0], blocking_factor=4)
        else:
            # `score` and `outer` both live in level (lev-1)'s index space.
            boxes_coarse = nested_calibrated_boxes(
                score, outer, fractions[lev - 1], blocking_factor=2
            )
        refined = boxes_coarse.refine(ratio)
        level_boxes.append(refined)
        outer = refined
    return multi_level_hierarchy(fields, level_boxes, dx_coarse=1.0 / cfg.coarse_n, ref_ratio=ratio)
