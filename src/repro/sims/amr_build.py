"""Build two-level patch-based hierarchies from full-resolution fields.

The synthetic simulations synthesize every field at the *fine* resolution,
then this module:

1. derives the coarse level by conservative averaging (so coarse data under
   refined regions is exactly what AMReX's ``average_down`` would store —
   the "redundant" data of Figure 3),
2. chooses the refined region by clustering a tag mask whose tagged
   fraction is calibrated (bisection) so the fine level's share of the
   domain matches the Table 1 density target,
3. cuts the fine fields into patches over the clustered boxes.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.amr.box import Box
from repro.amr.boxarray import BoxArray
from repro.amr.hierarchy import AMRHierarchy
from repro.amr.level import AMRLevel
from repro.amr.patch import Patch
from repro.amr.regrid import cluster_tags
from repro.errors import ReproError

__all__ = [
    "average_pool",
    "calibrated_boxes",
    "two_level_hierarchy",
    "nested_calibrated_boxes",
    "multi_level_hierarchy",
]


def average_pool(fine: np.ndarray, ratio: int) -> np.ndarray:
    """Conservative block-mean downsampling by an integer ratio."""
    if any(s % ratio for s in fine.shape):
        raise ReproError(f"shape {fine.shape} not divisible by ratio {ratio}")
    shp = []
    for s in fine.shape:
        shp.extend((s // ratio, ratio))
    view = fine.reshape(shp)
    return view.mean(axis=tuple(range(1, 2 * fine.ndim, 2)))


def calibrated_boxes(
    score: np.ndarray,
    target_fraction: float,
    *,
    tolerance: float = 0.02,
    max_iter: int = 24,
    blocking_factor: int = 4,
    efficiency: float = 0.7,
) -> BoxArray:
    """Boxes covering ~``target_fraction`` of the domain, highest score first.

    Bisection on the tag quantile: clustering inflates coverage (boxes are
    rectangular, tags are not), so the tagged fraction that produces the
    desired *covered* fraction is found iteratively — mirroring how one
    would tune an AMR refinement threshold to hit a storage budget.
    """
    if not 0.0 < target_fraction < 1.0:
        raise ReproError(f"target_fraction must be in (0, 1), got {target_fraction}")
    domain = Box.from_shape(score.shape)
    lo_q, hi_q = 0.0, 1.0  # tagged-fraction bisection bracket
    best: BoxArray | None = None
    best_err = np.inf
    for _ in range(max_iter):
        frac = 0.5 * (lo_q + hi_q)
        if frac <= 0.0 or frac >= 1.0:
            break
        cut = np.quantile(score, 1.0 - frac)
        tags = score > cut
        if not tags.any():
            lo_q = frac
            continue
        boxes = cluster_tags(
            tags, efficiency=efficiency, blocking_factor=blocking_factor
        ).clamped(domain)
        covered = boxes.mask(domain).sum() / domain.size
        err = abs(covered - target_fraction)
        if err < best_err:
            best, best_err = boxes, err
        if err <= tolerance:
            break
        if covered > target_fraction:
            hi_q = frac
        else:
            lo_q = frac
    if best is None or len(best) == 0:
        raise ReproError("refinement calibration produced no boxes")
    return best


def two_level_hierarchy(
    fine_fields: Mapping[str, np.ndarray],
    fine_boxes_coarse_space: BoxArray,
    dx_coarse: float,
    ref_ratio: int = 2,
) -> AMRHierarchy:
    """Assemble a two-level hierarchy from fine-resolution fields.

    Parameters
    ----------
    fine_fields:
        Field name -> array at fine resolution over the whole domain.
    fine_boxes_coarse_space:
        Refined region as boxes in coarse index space.
    dx_coarse:
        Coarse cell spacing (isotropic).
    ref_ratio:
        Refinement ratio (fine arrays must be ``ratio *`` coarse shape).
    """
    names = list(fine_fields)
    if not names:
        raise ReproError("need at least one field")
    fine_shape = fine_fields[names[0]].shape
    for name in names:
        if fine_fields[name].shape != fine_shape:
            raise ReproError("all fine fields must share a shape")
    coarse_shape = tuple(s // ref_ratio for s in fine_shape)
    domain = Box.from_shape(coarse_shape)
    coarse_level = AMRLevel(0, BoxArray([domain]), (dx_coarse,) * len(coarse_shape))
    for name in names:
        coarse_level.add_field(name, [Patch(domain, average_pool(fine_fields[name], ref_ratio))])
    fine_boxes = fine_boxes_coarse_space.clamped(domain).refine(ref_ratio)
    dx_fine = dx_coarse / ref_ratio
    fine_level = AMRLevel(1, fine_boxes, (dx_fine,) * len(coarse_shape))
    for name in names:
        arr = fine_fields[name]
        fine_level.add_field(name, [Patch(b, arr[b.slices()].copy()) for b in fine_boxes])
    return AMRHierarchy(domain, [coarse_level, fine_level], ref_ratio)


def nested_calibrated_boxes(
    score: np.ndarray,
    outer: BoxArray,
    target_fraction: float,
    *,
    tolerance: float = 0.03,
    blocking_factor: int = 4,
) -> BoxArray:
    """Boxes covering ~``target_fraction`` of the domain *inside* ``outer``.

    ``score`` and ``outer`` live in the same index space. Candidate boxes
    are clipped piecewise against the outer boxes, so the result nests
    properly (the requirement for a third AMR level).
    """
    domain = Box.from_shape(score.shape)
    outer_mask = outer.mask(domain)
    masked = np.where(outer_mask, score, -np.inf)
    if not np.isfinite(masked).any():
        raise ReproError("outer region is empty")
    raw = calibrated_boxes(
        np.where(outer_mask, score, score.min() - 1.0),
        target_fraction,
        tolerance=tolerance,
        blocking_factor=blocking_factor,
    )
    pieces: list[Box] = []
    for candidate in raw:
        for ob in outer:
            ov = candidate.intersection(ob)
            if ov is not None:
                pieces.append(ov)
    if not pieces:
        raise ReproError("nested calibration produced no boxes")
    return BoxArray(pieces)


def multi_level_hierarchy(
    fine_fields: Mapping[str, np.ndarray],
    level_boxes: Sequence[BoxArray],
    dx_coarse: float,
    ref_ratio: int = 2,
) -> AMRHierarchy:
    """Assemble an n-level hierarchy from finest-resolution fields.

    Parameters
    ----------
    fine_fields:
        Field name -> array at the *finest* level's resolution.
    level_boxes:
        Refined regions for levels ``1 .. n-1``; ``level_boxes[k]`` is the
        box array of level ``k+1`` expressed in level ``k+1``'s own index
        space (i.e. already refined). Must nest under the previous level.
    dx_coarse:
        Level-0 cell spacing.
    ref_ratio:
        Uniform refinement ratio between consecutive levels.
    """
    names = list(fine_fields)
    if not names:
        raise ReproError("need at least one field")
    n_levels = len(level_boxes) + 1
    finest_shape = fine_fields[names[0]].shape
    ndim = len(finest_shape)
    total_ratio = ref_ratio ** (n_levels - 1)
    if any(s % total_ratio for s in finest_shape):
        raise ReproError(
            f"finest shape {finest_shape} not divisible by ratio^{n_levels - 1}"
        )
    coarse_shape = tuple(s // total_ratio for s in finest_shape)
    levels = []
    for lev_idx in range(n_levels):
        pool = ref_ratio ** (n_levels - 1 - lev_idx)
        dx = dx_coarse / (ref_ratio**lev_idx)
        if lev_idx == 0:
            boxes = BoxArray([Box.from_shape(coarse_shape)])
        else:
            boxes = level_boxes[lev_idx - 1]
        level = AMRLevel(lev_idx, boxes, (dx,) * ndim)
        for name in names:
            data = fine_fields[name] if pool == 1 else average_pool(fine_fields[name], pool)
            level.add_field(name, [Patch(b, data[b.slices()].copy()) for b in boxes])
        levels.append(level)
    return AMRHierarchy(Box.from_shape(coarse_shape), levels, ref_ratio)
