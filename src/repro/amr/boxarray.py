"""Collections of boxes (AMReX-style ``BoxArray``).

A :class:`BoxArray` is the set of boxes that make up one AMR level. It
answers coverage questions ("is this cell inside the level?"), computes the
union cell count (used for the per-level *density* reported in Table 1 of
the paper), and checks the non-overlap invariant AMReX levels maintain.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.amr.box import Box
from repro.errors import BoxError

__all__ = ["BoxArray"]


class BoxArray:
    """Immutable ordered collection of same-dimension boxes."""

    def __init__(self, boxes: Iterable[Box]):
        self._boxes: tuple[Box, ...] = tuple(boxes)
        if self._boxes:
            ndim = self._boxes[0].ndim
            for b in self._boxes:
                if b.ndim != ndim:
                    raise BoxError("all boxes in a BoxArray must share dimensionality")

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._boxes)

    def __iter__(self) -> Iterator[Box]:
        return iter(self._boxes)

    def __getitem__(self, i: int) -> Box:
        return self._boxes[i]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BoxArray):
            return NotImplemented
        return self._boxes == other._boxes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BoxArray({len(self._boxes)} boxes, {self.cell_count()} cells)"

    # ------------------------------------------------------------------
    # Geometry queries
    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        """Dimensionality of the member boxes (0 boxes -> error)."""
        if not self._boxes:
            raise BoxError("empty BoxArray has no dimensionality")
        return self._boxes[0].ndim

    def bounding_box(self) -> Box:
        """Smallest box containing every member box."""
        if not self._boxes:
            raise BoxError("empty BoxArray has no bounding box")
        lo = tuple(min(b.lo[d] for b in self._boxes) for d in range(self.ndim))
        hi = tuple(max(b.hi[d] for b in self._boxes) for d in range(self.ndim))
        return Box(lo, hi)

    def cell_count(self) -> int:
        """Total number of cells in the *union* of the boxes.

        Uses a sweep over the bounding box mask for exactness; boxes in an
        AMR level normally do not overlap, but this method is correct either
        way and is what Table 1's per-level density is derived from.
        """
        if not self._boxes:
            return 0
        if self.is_disjoint():
            return sum(b.size for b in self._boxes)
        return int(self.mask(self.bounding_box()).sum())

    def is_disjoint(self) -> bool:
        """Whether no two boxes overlap (AMReX level invariant)."""
        boxes = self._boxes
        for i in range(len(boxes)):
            for j in range(i + 1, len(boxes)):
                if boxes[i].intersects(boxes[j]):
                    return False
        return True

    def contains_point(self, point: Sequence[int]) -> bool:
        """Whether the union covers an index point."""
        return any(b.contains_point(point) for b in self._boxes)

    def mask(self, window: Box) -> np.ndarray:
        """Boolean occupancy mask of the union restricted to ``window``.

        The returned array has shape ``window.shape``; entry ``True`` means
        that cell belongs to some box in the array.
        """
        out = np.zeros(window.shape, dtype=bool)
        for b in self._boxes:
            ov = b.intersection(window)
            if ov is not None:
                out[ov.slices(window.lo)] = True
        return out

    def intersecting(self, target: Box) -> "BoxArray":
        """Sub-array of boxes that intersect ``target``."""
        return BoxArray(b for b in self._boxes if b.intersects(target))

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def refine(self, ratio: int | Sequence[int]) -> "BoxArray":
        """Refine every box (map to finer index space)."""
        return BoxArray(b.refine(ratio) for b in self._boxes)

    def coarsen(self, ratio: int | Sequence[int]) -> "BoxArray":
        """Coarsen every box (map to coarser index space)."""
        return BoxArray(b.coarsen(ratio) for b in self._boxes)

    def grow(self, n: int | Sequence[int]) -> "BoxArray":
        """Grow every box by ``n`` cells per face."""
        return BoxArray(b.grow(n) for b in self._boxes)

    def clamped(self, domain: Box) -> "BoxArray":
        """Intersect every box with ``domain``, dropping the disjoint ones."""
        clipped = (b.intersection(domain) for b in self._boxes)
        return BoxArray(b for b in clipped if b is not None)
