"""Integer index-space boxes (AMReX-style ``Box``).

A :class:`Box` describes a rectangular region of cell indices
``[lo, hi]`` (inclusive on both ends, matching AMReX convention). Boxes are
the unit of domain decomposition in patch-based AMR: every level stores its
data as a set of boxes, refinement maps boxes between levels, and coverage
queries intersect boxes.

All coordinates are integer cell indices; physical geometry (cell spacing,
origin) lives on :class:`repro.amr.level.AMRLevel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.errors import BoxError
from repro.util.validation import as_tuple

__all__ = ["Box"]


@dataclass(frozen=True)
class Box:
    """Closed integer box ``[lo, hi]`` in index space.

    Parameters
    ----------
    lo:
        Inclusive lower corner (one int per dimension).
    hi:
        Inclusive upper corner; must satisfy ``hi >= lo`` component-wise.

    Examples
    --------
    >>> b = Box((0, 0, 0), (7, 7, 7))
    >>> b.shape
    (8, 8, 8)
    >>> b.refine(2).shape
    (16, 16, 16)
    """

    lo: tuple[int, ...]
    hi: tuple[int, ...]

    def __post_init__(self) -> None:
        lo = tuple(int(v) for v in self.lo)
        hi = tuple(int(v) for v in self.hi)
        if len(lo) != len(hi):
            raise BoxError(f"lo has {len(lo)} dims but hi has {len(hi)}")
        if len(lo) == 0:
            raise BoxError("box must have at least one dimension")
        if any(h < l for l, h in zip(lo, hi)):
            raise BoxError(f"empty box: lo={lo} hi={hi}")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_shape(cls, shape: Sequence[int], lo: Sequence[int] | None = None) -> "Box":
        """Box with the given ``shape`` anchored at ``lo`` (default origin)."""
        shp = tuple(int(s) for s in shape)
        if any(s <= 0 for s in shp):
            raise BoxError(f"shape must be positive, got {shp}")
        anchor = tuple(int(v) for v in lo) if lo is not None else (0,) * len(shp)
        if len(anchor) != len(shp):
            raise BoxError("lo and shape dimensionality mismatch")
        return cls(anchor, tuple(a + s - 1 for a, s in zip(anchor, shp)))

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        """Number of spatial dimensions."""
        return len(self.lo)

    @property
    def shape(self) -> tuple[int, ...]:
        """Number of cells along each dimension."""
        return tuple(h - l + 1 for l, h in zip(self.lo, self.hi))

    @property
    def size(self) -> int:
        """Total cell count."""
        out = 1
        for s in self.shape:
            out *= s
        return out

    def contains_point(self, point: Sequence[int]) -> bool:
        """Whether an index tuple lies inside this box."""
        if len(point) != self.ndim:
            raise BoxError(f"point dim {len(point)} != box dim {self.ndim}")
        return all(l <= int(p) <= h for l, p, h in zip(self.lo, point, self.hi))

    def contains_box(self, other: "Box") -> bool:
        """Whether ``other`` is fully inside this box."""
        self._check_dim(other)
        return all(sl <= ol and oh <= sh for sl, ol, oh, sh in zip(self.lo, other.lo, other.hi, self.hi))

    def intersects(self, other: "Box") -> bool:
        """Whether the two boxes share at least one cell."""
        self._check_dim(other)
        return all(max(a, c) <= min(b, d) for a, b, c, d in zip(self.lo, self.hi, other.lo, other.hi))

    def intersection(self, other: "Box") -> "Box | None":
        """Overlap box, or ``None`` if disjoint."""
        self._check_dim(other)
        lo = tuple(max(a, c) for a, c in zip(self.lo, other.lo))
        hi = tuple(min(b, d) for b, d in zip(self.hi, other.hi))
        if any(h < l for l, h in zip(lo, hi)):
            return None
        return Box(lo, hi)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def refine(self, ratio: int | Sequence[int]) -> "Box":
        """Map this box to the next finer level.

        Each cell becomes a ``ratio**ndim`` block of fine cells, so the
        refined box is ``[lo*r, (hi+1)*r - 1]`` — AMReX ``Box::refine``.
        """
        r = as_tuple(ratio, self.ndim, "ratio")
        if any(v < 1 for v in r):
            raise BoxError(f"refinement ratio must be >= 1, got {r}")
        return Box(
            tuple(l * v for l, v in zip(self.lo, r)),
            tuple((h + 1) * v - 1 for h, v in zip(self.hi, r)),
        )

    def coarsen(self, ratio: int | Sequence[int]) -> "Box":
        """Map to the next coarser level (floor division, AMReX semantics)."""
        r = as_tuple(ratio, self.ndim, "ratio")
        if any(v < 1 for v in r):
            raise BoxError(f"refinement ratio must be >= 1, got {r}")

        def fdiv(a: int, b: int) -> int:
            return a // b  # Python floor-div already matches AMReX coarsen

        return Box(
            tuple(fdiv(l, v) for l, v in zip(self.lo, r)),
            tuple(fdiv(h, v) for h, v in zip(self.hi, r)),
        )

    def shift(self, offset: Sequence[int]) -> "Box":
        """Translate by an integer offset."""
        off = as_tuple(offset, self.ndim, "offset")
        return Box(
            tuple(l + o for l, o in zip(self.lo, off)),
            tuple(h + o for h, o in zip(self.hi, off)),
        )

    def grow(self, n: int | Sequence[int]) -> "Box":
        """Grow (or shrink for negative ``n``) by ``n`` cells on every face."""
        g = as_tuple(n, self.ndim, "n")
        lo = tuple(l - v for l, v in zip(self.lo, g))
        hi = tuple(h + v for h, v in zip(self.hi, g))
        if any(b < a for a, b in zip(lo, hi)):
            raise BoxError(f"grow({g}) empties box {self}")
        return Box(lo, hi)

    def clamp(self, domain: "Box") -> "Box | None":
        """Intersection with ``domain`` (alias with intent-revealing name)."""
        return self.intersection(domain)

    # ------------------------------------------------------------------
    # Indexing helpers
    # ------------------------------------------------------------------
    def slices(self, origin: Sequence[int] | None = None) -> tuple[slice, ...]:
        """Slices selecting this box out of an array anchored at ``origin``.

        ``origin`` defaults to the box's own ``lo`` of the *enclosing* array
        being ``(0, ...)``; pass the enclosing box's ``lo`` to index into a
        patch array.
        """
        org = tuple(int(v) for v in origin) if origin is not None else (0,) * self.ndim
        return tuple(slice(l - o, h - o + 1) for l, o, h in zip(self.lo, org, self.hi))

    def split(self, axis: int, index: int) -> tuple["Box", "Box"]:
        """Split into two boxes along ``axis`` at cell ``index``.

        The first box ends at ``index`` (inclusive); the second starts at
        ``index + 1``. Used by the Berger–Rigoutsos clustering algorithm.
        """
        if not (0 <= axis < self.ndim):
            raise BoxError(f"axis {axis} out of range for {self.ndim}-D box")
        if not (self.lo[axis] <= index < self.hi[axis]):
            raise BoxError(f"split index {index} outside [{self.lo[axis]}, {self.hi[axis]})")
        hi1 = list(self.hi)
        hi1[axis] = index
        lo2 = list(self.lo)
        lo2[axis] = index + 1
        return Box(self.lo, tuple(hi1)), Box(tuple(lo2), self.hi)

    def chunk(self, max_shape: int | Sequence[int]) -> Iterator["Box"]:
        """Yield sub-boxes tiling this box with at most ``max_shape`` cells
        per dimension. Tiles on the high edge may be smaller."""
        ms = as_tuple(max_shape, self.ndim, "max_shape")
        if any(v < 1 for v in ms):
            raise BoxError(f"max_shape must be >= 1, got {ms}")
        starts = [range(l, h + 1, m) for l, h, m in zip(self.lo, self.hi, ms)]
        grids = np.meshgrid(*[np.asarray(list(s)) for s in starts], indexing="ij")
        for corner in zip(*[g.ravel() for g in grids]):
            lo = tuple(int(c) for c in corner)
            hi = tuple(min(int(c) + m - 1, h) for c, m, h in zip(corner, ms, self.hi))
            yield Box(lo, hi)

    def _check_dim(self, other: "Box") -> None:
        if other.ndim != self.ndim:
            raise BoxError(f"box dim mismatch: {self.ndim} vs {other.ndim}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Box(lo={self.lo}, hi={self.hi})"
