"""Patch-based AMR substrate (AMReX-style boxes, levels, hierarchies)."""

from repro.amr.box import Box
from repro.amr.boxarray import BoxArray
from repro.amr.patch import Patch
from repro.amr.level import AMRLevel
from repro.amr.hierarchy import AMRHierarchy
from repro.amr.tagging import tag_gradient, tag_threshold, tag_fraction, dilate_tags
from repro.amr.regrid import cluster_tags, boxes_from_mask
from repro.amr.coverage import patch_covered_mask, level_covered_masks, exposed_fraction
from repro.amr.uniform import flatten_to_uniform, upsample_nearest, upsample_linear
from repro.amr.io import (
    write_plotfile,
    read_plotfile,
    write_container,
    read_container,
    open_container,
    write_series,
    append_step,
    open_series,
)
from repro.amr.ghost import fill_ghosts
from repro.amr.iostats import CampaignCost, snapshot_bytes, campaign_cost

__all__ = [
    "Box",
    "BoxArray",
    "Patch",
    "AMRLevel",
    "AMRHierarchy",
    "tag_gradient",
    "tag_threshold",
    "tag_fraction",
    "dilate_tags",
    "cluster_tags",
    "boxes_from_mask",
    "patch_covered_mask",
    "level_covered_masks",
    "exposed_fraction",
    "flatten_to_uniform",
    "upsample_nearest",
    "upsample_linear",
    "write_plotfile",
    "read_plotfile",
    "write_container",
    "read_container",
    "open_container",
    "write_series",
    "append_step",
    "open_series",
    "fill_ghosts",
    "CampaignCost",
    "snapshot_bytes",
    "campaign_cost",
]
