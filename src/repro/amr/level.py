"""A single AMR refinement level.

An :class:`AMRLevel` owns the level's :class:`~repro.amr.boxarray.BoxArray`,
its physical cell spacing, and one list of :class:`~repro.amr.patch.Patch`
objects per named field (aligned with the box array). Levels are assembled
into an :class:`~repro.amr.hierarchy.AMRHierarchy`.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.amr.box import Box
from repro.amr.boxarray import BoxArray
from repro.amr.patch import Patch
from repro.errors import HierarchyError

__all__ = ["AMRLevel"]


class AMRLevel:
    """One refinement level of a patch-based AMR dataset.

    Parameters
    ----------
    index:
        Level number; 0 is the coarsest.
    boxes:
        The level's box array (disjoint boxes in this level's index space).
    dx:
        Physical cell spacing per dimension at this level.
    fields:
        Mapping from field name to a list of patches, one per box and in the
        same order as ``boxes``.
    """

    def __init__(
        self,
        index: int,
        boxes: BoxArray,
        dx: Sequence[float],
        fields: Mapping[str, Iterable[Patch]] | None = None,
    ):
        if index < 0:
            raise HierarchyError(f"level index must be >= 0, got {index}")
        if len(boxes) == 0:
            raise HierarchyError(f"level {index} has no boxes")
        if not boxes.is_disjoint():
            raise HierarchyError(f"level {index} boxes overlap")
        self.index = int(index)
        self.boxes = boxes
        self.dx = tuple(float(v) for v in dx)
        if len(self.dx) != boxes.ndim:
            raise HierarchyError(f"dx has {len(self.dx)} entries for {boxes.ndim}-D boxes")
        self._fields: dict[str, list[Patch]] = {}
        if fields:
            for name, patches in fields.items():
                self.add_field(name, patches)

    # ------------------------------------------------------------------
    # Field management
    # ------------------------------------------------------------------
    @property
    def field_names(self) -> tuple[str, ...]:
        """Names of the fields stored on this level."""
        return tuple(self._fields)

    def add_field(self, name: str, patches: Iterable[Patch]) -> None:
        """Attach a field; patches must align 1:1 with the box array."""
        plist = list(patches)
        if len(plist) != len(self.boxes):
            raise HierarchyError(
                f"field {name!r}: {len(plist)} patches for {len(self.boxes)} boxes"
            )
        for patch, box in zip(plist, self.boxes):
            if patch.box != box:
                raise HierarchyError(f"field {name!r}: patch box {patch.box} != level box {box}")
        self._fields[name] = plist

    def patches(self, field: str) -> list[Patch]:
        """Patches of ``field`` in box-array order."""
        try:
            return self._fields[field]
        except KeyError:
            raise HierarchyError(
                f"level {self.index} has no field {field!r} (have {self.field_names})"
            ) from None

    def map_field(self, field: str, fn, name: str | None = None) -> None:
        """Store ``fn(data)`` of every patch of ``field`` as field ``name``.

        With ``name=None`` the field is replaced in place.
        """
        out = [Patch(p.box, np.asarray(fn(p.data))) for p in self.patches(field)]
        self._fields[name if name is not None else field] = out

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def to_array(self, field: str, window: Box | None = None, fill: float = np.nan) -> np.ndarray:
        """Assemble the field over ``window`` (default: bounding box).

        Cells not covered by any box get ``fill`` — the standard way to feed
        a partially-covered level into masked marching cubes.
        """
        win = window if window is not None else self.boxes.bounding_box()
        out = np.full(win.shape, fill, dtype=np.float64)
        for patch in self.patches(field):
            ov = patch.box.intersection(win)
            if ov is not None:
                out[ov.slices(win.lo)] = patch.view(ov)
        return out

    def cell_count(self) -> int:
        """Cells stored on this level (union of boxes)."""
        return self.boxes.cell_count()

    @property
    def ndim(self) -> int:
        """Spatial dimensionality."""
        return self.boxes.ndim

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AMRLevel(index={self.index}, boxes={len(self.boxes)}, "
            f"cells={self.cell_count()}, fields={list(self._fields)})"
        )
