"""Multi-level patch-based AMR datasets.

:class:`AMRHierarchy` is the central data structure of the reproduction: the
simulation generators produce one, the compressors consume and rebuild one,
and both visualization pipelines traverse one. It mirrors the AMReX layout
sketched in Figure 3 of the paper — per-level groups of patches, with the
coarse level retaining data under refined regions ("redundant" coarse data).
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.amr.box import Box
from repro.amr.boxarray import BoxArray
from repro.amr.level import AMRLevel
from repro.errors import HierarchyError
from repro.util.validation import as_tuple

__all__ = ["AMRHierarchy"]


class AMRHierarchy:
    """A patch-based AMR dataset (AMReX-style).

    Parameters
    ----------
    domain:
        Problem domain as a box in *level-0* index space.
    levels:
        Levels ordered coarse to fine; level 0 must tile ``domain``.
    ref_ratios:
        Refinement ratio between level ``i`` and ``i+1`` (one per gap).
        Scalars broadcast across dimensions.

    Invariants (checked at construction):

    * level 0 covers the domain exactly;
    * every finer-level box, coarsened by the refinement ratio, lies inside
      the union of the next coarser level's boxes (patch-based nesting);
    * all levels carry the same field names.
    """

    def __init__(
        self,
        domain: Box,
        levels: Sequence[AMRLevel],
        ref_ratios: Sequence[int | tuple[int, ...]] | int = 2,
    ):
        if not levels:
            raise HierarchyError("hierarchy needs at least one level")
        self.domain = domain
        self.levels = list(levels)
        ndim = domain.ndim
        n_gaps = len(self.levels) - 1
        if np.isscalar(ref_ratios):
            ratios = [as_tuple(ref_ratios, ndim, "ref_ratio")] * n_gaps
        else:
            seq = list(ref_ratios)  # type: ignore[arg-type]
            if len(seq) != n_gaps:
                raise HierarchyError(f"need {n_gaps} ref ratios, got {len(seq)}")
            ratios = [as_tuple(r, ndim, "ref_ratio") for r in seq]
        self.ref_ratios: tuple[tuple[int, ...], ...] = tuple(ratios)
        self._validate()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        base = self.levels[0]
        if base.index != 0:
            raise HierarchyError("first level must have index 0")
        if base.cell_count() != self.domain.size:
            raise HierarchyError(
                f"level 0 covers {base.cell_count()} cells but domain has {self.domain.size}"
            )
        if not base.boxes.bounding_box() == self.domain and not self.domain.contains_box(
            base.boxes.bounding_box()
        ):
            raise HierarchyError("level 0 boxes exceed domain")
        names = set(base.field_names)
        for lev_idx, (coarse, fine) in enumerate(zip(self.levels, self.levels[1:])):
            if fine.index != coarse.index + 1:
                raise HierarchyError("level indices must be consecutive")
            if set(fine.field_names) != names:
                raise HierarchyError(
                    f"level {fine.index} fields {fine.field_names} != level 0 fields {tuple(names)}"
                )
            ratio = self.ref_ratios[lev_idx]
            for fbox in fine.boxes:
                cbox = fbox.coarsen(ratio)
                covered = coarse.boxes.mask(cbox)
                if not covered.all():
                    raise HierarchyError(
                        f"fine box {fbox} (level {fine.index}) not nested in level {coarse.index}"
                    )

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def n_levels(self) -> int:
        """Number of refinement levels."""
        return len(self.levels)

    @property
    def ndim(self) -> int:
        """Spatial dimensionality."""
        return self.domain.ndim

    @property
    def field_names(self) -> tuple[str, ...]:
        """Field names (identical across levels)."""
        return self.levels[0].field_names

    def __iter__(self) -> Iterator[AMRLevel]:
        return iter(self.levels)

    def __getitem__(self, i: int) -> AMRLevel:
        return self.levels[i]

    def cumulative_ratio(self, level: int) -> tuple[int, ...]:
        """Refinement ratio from level 0 up to ``level`` (per dimension)."""
        out = (1,) * self.ndim
        for r in self.ref_ratios[:level]:
            out = tuple(a * b for a, b in zip(out, r))
        return out

    def domain_at(self, level: int) -> Box:
        """The problem domain expressed in ``level``'s index space."""
        return self.domain.refine(self.cumulative_ratio(level))

    def grid_shape(self, level: int) -> tuple[int, ...]:
        """Full-domain grid shape at ``level``'s resolution (Table 1 col 3)."""
        return self.domain_at(level).shape

    # ------------------------------------------------------------------
    # Coverage / density (Table 1)
    # ------------------------------------------------------------------
    def covered_mask(self, level: int) -> np.ndarray:
        """Mask over level ``level``'s domain: True where a finer level
        exists (the "redundant" coarse region of Figure 3)."""
        dom = self.domain_at(level)
        if level + 1 >= self.n_levels:
            return np.zeros(dom.shape, dtype=bool)
        fine = self.levels[level + 1]
        coarse_boxes = fine.boxes.coarsen(self.ref_ratios[level])
        return coarse_boxes.mask(dom)

    def level_fraction(self, level: int) -> float:
        """Fraction of the physical domain whose *finest available* data
        lives on ``level`` — the per-level "density" of Table 1."""
        dom = self.domain_at(level)
        lev_mask = self.levels[level].boxes.mask(dom)
        exposed = lev_mask & ~self.covered_mask(level)
        return float(exposed.sum()) / float(dom.size)

    def densities(self) -> tuple[float, ...]:
        """Per-level densities, coarse to fine (sums to 1 for full nesting)."""
        return tuple(self.level_fraction(l) for l in range(self.n_levels))

    def stored_cells(self) -> int:
        """Total cells stored across all levels for one field."""
        return sum(lev.cell_count() for lev in self.levels)

    def nbytes(self, field: str | None = None) -> int:
        """Raw byte size of one field (or all fields with ``None``)."""
        names = [field] if field is not None else list(self.field_names)
        total = 0
        for lev in self.levels:
            for name in names:
                total += sum(p.nbytes for p in lev.patches(name))
        return total

    # ------------------------------------------------------------------
    # Derived hierarchies
    # ------------------------------------------------------------------
    def map_fields(self, fn, fields: Sequence[str] | None = None) -> "AMRHierarchy":
        """New hierarchy with ``fn(level_index, field, data) -> data`` applied
        to every patch of the selected fields (all by default)."""
        names = list(fields) if fields is not None else list(self.field_names)
        new_levels = []
        for lev in self.levels:
            new = AMRLevel(lev.index, lev.boxes, lev.dx)
            for name in self.field_names:
                patches = lev.patches(name)
                if name in names:
                    # Copy unconditionally: fn may return its input array,
                    # and mapped hierarchies must never alias the source.
                    patches = [
                        type(p)(p.box, np.array(fn(lev.index, name, p.data), dtype=np.float64))
                        for p in patches
                    ]
                else:
                    patches = [p.copy() for p in patches]
                new.add_field(name, patches)
            new_levels.append(new)
        return AMRHierarchy(self.domain, new_levels, self.ref_ratios)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        shapes = " + ".join("x".join(map(str, self.grid_shape(l))) for l in range(self.n_levels))
        return f"AMRHierarchy({self.n_levels} levels, {shapes}, fields={list(self.field_names)})"
