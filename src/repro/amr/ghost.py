"""Ghost-cell filling (AMReX ``FillPatch``-style).

Stencil operations on a patch need a halo of "ghost" cells around its box.
This module fills them, in AMReX priority order:

1. **same-level copy** — ghost cells covered by a sibling patch copy its
   values;
2. **coarse interpolation** — remaining ghosts inside the domain are
   piecewise-constant-interpolated from the next coarser level;
3. **domain boundary** — ghosts outside the domain replicate the nearest
   interior value (first-order extrapolation).

Used by analysis passes that need gradients on patch data (e.g. gradient
tagging per patch rather than on the uniform composite).
"""

from __future__ import annotations

import numpy as np

from repro.amr.box import Box
from repro.amr.hierarchy import AMRHierarchy
from repro.amr.uniform import upsample_nearest
from repro.errors import HierarchyError

__all__ = ["fill_ghosts"]


def fill_ghosts(
    hierarchy: AMRHierarchy,
    level: int,
    patch_index: int,
    fld: str,
    n_ghost: int = 1,
) -> np.ndarray:
    """Return patch data extended by ``n_ghost`` filled ghost layers.

    Parameters
    ----------
    hierarchy:
        Source dataset.
    level:
        Level of the target patch.
    patch_index:
        Index of the patch within the level's box array.
    fld:
        Field name.
    n_ghost:
        Halo width in cells.

    Returns
    -------
    numpy.ndarray
        Array of shape ``patch.shape + 2 * n_ghost`` per axis.
    """
    if n_ghost < 1:
        raise HierarchyError(f"n_ghost must be >= 1, got {n_ghost}")
    lev = hierarchy[level]
    if not 0 <= patch_index < len(lev.boxes):
        raise HierarchyError(f"patch index {patch_index} out of range")
    patch = lev.patches(fld)[patch_index]
    grown = patch.box.grow(n_ghost)
    out = np.full(grown.shape, np.nan, dtype=np.float64)
    out[patch.box.slices(grown.lo)] = patch.data

    # 1. Same-level copies from sibling patches.
    for j, sibling in enumerate(lev.patches(fld)):
        if j == patch_index:
            continue
        overlap = sibling.box.intersection(grown)
        if overlap is not None:
            out[overlap.slices(grown.lo)] = sibling.view(overlap)

    # 2. Coarse interpolation for ghosts still unfilled, inside the domain.
    domain = hierarchy.domain_at(level)
    if level > 0 and np.isnan(out).any():
        ratio = hierarchy.ref_ratios[level - 1]
        coarse = hierarchy[level - 1]
        need = grown.intersection(domain)
        if need is not None:
            cbox = need.coarsen(ratio)
            for cpatch in coarse.patches(fld):
                covered = cpatch.box.intersection(cbox)
                if covered is None:
                    continue
                fine_vals = upsample_nearest(cpatch.view(covered), ratio)
                fine_box = covered.refine(ratio).intersection(grown)
                if fine_box is None:
                    continue
                dest = out[fine_box.slices(grown.lo)]
                src_origin = covered.refine(ratio)
                src = fine_vals[fine_box.slices(src_origin.lo)]
                np.copyto(dest, src, where=np.isnan(dest))

    # 3. Domain-boundary replication: clamp indices into the valid region.
    if np.isnan(out).any():
        valid = np.isfinite(out)
        if not valid.any():
            raise HierarchyError("patch has no valid data to extrapolate from")
        idx = []
        for axis, n in enumerate(grown.shape):
            coords = np.arange(n)
            # Valid extent along this axis (bounding range of finite data).
            axis_has = valid.any(axis=tuple(a for a in range(valid.ndim) if a != axis))
            lo_v = int(np.argmax(axis_has))
            hi_v = int(n - 1 - np.argmax(axis_has[::-1]))
            idx.append(np.clip(coords, lo_v, hi_v))
        grids = np.meshgrid(*idx, indexing="ij")
        clamped = out[tuple(grids)]
        out = np.where(np.isnan(out), clamped, out)
    if np.isnan(out).any():
        # Corner ghosts can clamp onto still-NaN cells when the valid
        # region is not a full box; fall back to nearest finite value.
        finite_mean = float(out[np.isfinite(out)].mean())
        out = np.where(np.isnan(out), finite_mean, out)
    return out
