"""Cell-centered data patches (AMReX ``FArrayBox`` analogue).

A :class:`Patch` couples a :class:`~repro.amr.box.Box` with an ndarray of
cell-centered values of the same shape. Patches are the unit of storage,
compression, and per-patch parallelism.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.amr.box import Box
from repro.errors import BoxError

__all__ = ["Patch"]


class Patch:
    """A box plus its cell-centered data.

    Parameters
    ----------
    box:
        Index-space extent of the patch.
    data:
        Array with ``data.shape == box.shape``. Stored as ``float64`` by
        default (scientific simulation output); integer arrays are kept
        as-is for mask-like patches.
    """

    __slots__ = ("box", "data")

    def __init__(self, box: Box, data: np.ndarray):
        arr = np.asarray(data)
        if arr.shape != box.shape:
            raise BoxError(f"data shape {arr.shape} != box shape {box.shape}")
        self.box = box
        self.data = arr

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def full(cls, box: Box, fill: float = 0.0, dtype: np.dtype | type = np.float64) -> "Patch":
        """Patch filled with a constant."""
        return cls(box, np.full(box.shape, fill, dtype=dtype))

    @classmethod
    def from_function(cls, box: Box, fn, dx: Sequence[float] | float = 1.0) -> "Patch":
        """Sample ``fn(x, y, ...)`` at cell centers.

        ``fn`` receives one coordinate array per dimension (cell centers in
        physical units: ``(index + 0.5) * dx``) and must broadcast.
        """
        ndim = box.ndim
        if np.isscalar(dx):
            dxs = (float(dx),) * ndim
        else:
            dxs = tuple(float(v) for v in dx)  # type: ignore[union-attr]
            if len(dxs) != ndim:
                raise BoxError(f"dx must have length {ndim}")
        axes = [
            (np.arange(box.lo[d], box.hi[d] + 1, dtype=np.float64) + 0.5) * dxs[d]
            for d in range(ndim)
        ]
        coords = np.meshgrid(*axes, indexing="ij")
        return cls(box, np.asarray(fn(*coords), dtype=np.float64))

    # ------------------------------------------------------------------
    # Views and extraction
    # ------------------------------------------------------------------
    def view(self, sub: Box) -> np.ndarray:
        """NumPy *view* of the data restricted to sub-box ``sub``.

        Raises if ``sub`` is not fully contained (views never allocate).
        """
        if not self.box.contains_box(sub):
            raise BoxError(f"{sub} not contained in patch box {self.box}")
        return self.data[sub.slices(self.box.lo)]

    def copy(self) -> "Patch":
        """Deep copy."""
        return Patch(self.box, self.data.copy())

    @property
    def nbytes(self) -> int:
        """Raw payload size in bytes."""
        return int(self.data.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Patch(box={self.box}, dtype={self.data.dtype})"
