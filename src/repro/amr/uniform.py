"""Compositing an AMR hierarchy onto a uniform grid.

This is the standard post-analysis transform of Figure 3 (right): coarse
levels are up-sampled to the finest resolution and overwritten by finer data
wherever it exists, discarding the redundant coarse values. It is also the
front half of the paper's *re-sampling* visualization path when one wants a
single uniform volume.
"""

from __future__ import annotations

import numpy as np

from repro.amr.hierarchy import AMRHierarchy
from repro.errors import HierarchyError

__all__ = ["upsample_nearest", "upsample_linear", "flatten_to_uniform"]


def upsample_nearest(arr: np.ndarray, ratio: tuple[int, ...]) -> np.ndarray:
    """Piecewise-constant (injection) up-sampling by integer ``ratio``.

    Each coarse cell becomes a ``ratio`` block of identical fine cells —
    exactly how AMReX's ``pc_interp`` fills fine cells from coarse ones.
    """
    if len(ratio) != arr.ndim:
        raise HierarchyError(f"ratio {ratio} does not match array rank {arr.ndim}")
    out = arr
    for axis, r in enumerate(ratio):
        if r > 1:
            out = np.repeat(out, r, axis=axis)
    return out


def upsample_linear(arr: np.ndarray, ratio: tuple[int, ...]) -> np.ndarray:
    """Cell-centered multilinear up-sampling by integer ``ratio``.

    Fine cell centers land at fractional positions between coarse centers;
    values are obtained by separable linear interpolation with clamped
    (edge-replicated) boundaries. Shape grows exactly by ``ratio`` per axis.
    """
    if len(ratio) != arr.ndim:
        raise HierarchyError(f"ratio {ratio} does not match array rank {arr.ndim}")
    out = np.asarray(arr, dtype=np.float64)
    for axis, r in enumerate(ratio):
        if r == 1:
            continue
        n = out.shape[axis]
        # Fine-cell center j maps to coarse coordinate (j + 0.5)/r - 0.5.
        pos = (np.arange(n * r, dtype=np.float64) + 0.5) / r - 0.5
        lo = np.clip(np.floor(pos).astype(np.int64), 0, n - 1)
        hi = np.clip(lo + 1, 0, n - 1)
        w = np.clip(pos - lo, 0.0, 1.0)
        a = np.take(out, lo, axis=axis)
        b = np.take(out, hi, axis=axis)
        shape = [1] * out.ndim
        shape[axis] = n * r
        w = w.reshape(shape)
        out = a * (1.0 - w) + b * w
    return out


def flatten_to_uniform(
    hierarchy: AMRHierarchy,
    field: str,
    method: str = "nearest",
) -> np.ndarray:
    """Composite ``field`` onto the finest-level uniform grid.

    Parameters
    ----------
    hierarchy:
        Source AMR dataset.
    field:
        Field name present on every level.
    method:
        ``"nearest"`` (piecewise-constant injection) or ``"linear"``.

    Returns
    -------
    numpy.ndarray
        Array of shape ``hierarchy.grid_shape(finest)`` where each cell holds
        the finest available data (finer levels overwrite coarser ones).
    """
    if method not in ("nearest", "linear"):
        raise HierarchyError(f"unknown upsampling method {method!r}")
    up = upsample_nearest if method == "nearest" else upsample_linear
    finest = hierarchy.n_levels - 1
    out_dom = hierarchy.domain_at(finest)
    out = np.full(out_dom.shape, np.nan, dtype=np.float64)
    for lev_idx, lev in enumerate(hierarchy):
        # Ratio from this level up to the finest level.
        ratio = tuple(
            f // c
            for f, c in zip(hierarchy.cumulative_ratio(finest), hierarchy.cumulative_ratio(lev_idx))
        )
        for patch in lev.patches(field):
            fine_box = patch.box.refine(ratio)
            data = up(patch.data, ratio)
            ov = fine_box.intersection(out_dom)
            if ov is None:
                continue
            src = ov.slices(fine_box.lo)
            out[ov.slices(out_dom.lo)] = data[src]
    if np.isnan(out).any():
        raise HierarchyError("uniform composite has holes; level 0 must tile the domain")
    return out
