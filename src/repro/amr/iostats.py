"""Storage / I/O cost model (the paper's introductory motivation).

The paper opens with the arithmetic that motivates everything else: a
4096³-resolution AMR run produces ~8 TB per snapshot with all fields
dumped, i.e. ~1 PB for a five-member ensemble with 25 snapshots each.
This module reproduces that bookkeeping for any hierarchy and projects the
effect of a compression ratio on storage and write time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.amr.hierarchy import AMRHierarchy
from repro.errors import ReproError

__all__ = ["CampaignCost", "snapshot_bytes", "campaign_cost"]


def snapshot_bytes(hierarchy: AMRHierarchy, bytes_per_value: int = 8) -> int:
    """Raw size of one snapshot (all fields, all levels)."""
    if bytes_per_value <= 0:
        raise ReproError("bytes_per_value must be positive")
    return hierarchy.stored_cells() * len(hierarchy.field_names) * bytes_per_value


@dataclass(frozen=True)
class CampaignCost:
    """Projected storage/IO cost of a simulation campaign."""

    snapshot_bytes: int
    snapshots: int
    ensemble: int
    compression_ratio: float
    bandwidth_gbps: float

    @property
    def total_raw_bytes(self) -> int:
        """Uncompressed campaign volume."""
        return self.snapshot_bytes * self.snapshots * self.ensemble

    @property
    def total_compressed_bytes(self) -> float:
        """Campaign volume after compression."""
        return self.total_raw_bytes / self.compression_ratio

    @property
    def raw_write_seconds(self) -> float:
        """Time to write the raw campaign at the given bandwidth."""
        return self.total_raw_bytes / (self.bandwidth_gbps * 1e9)

    @property
    def compressed_write_seconds(self) -> float:
        """Time to write the compressed campaign (ignoring codec time —
        in-situ codecs overlap compute, the AMRIC argument)."""
        return self.total_compressed_bytes / (self.bandwidth_gbps * 1e9)

    @property
    def saved_bytes(self) -> float:
        """Bytes avoided by compressing."""
        return self.total_raw_bytes - self.total_compressed_bytes


def campaign_cost(
    hierarchy: AMRHierarchy,
    compression_ratio: float = 1.0,
    snapshots: int = 25,
    ensemble: int = 5,
    bandwidth_gbps: float = 10.0,
    bytes_per_value: int = 8,
) -> CampaignCost:
    """Project campaign cost for ``hierarchy`` (paper defaults: 25 dumps ×
    5 ensemble members, the §1 example)."""
    if compression_ratio <= 0:
        raise ReproError("compression_ratio must be positive")
    if snapshots <= 0 or ensemble <= 0:
        raise ReproError("snapshots and ensemble must be positive")
    if bandwidth_gbps <= 0:
        raise ReproError("bandwidth_gbps must be positive")
    return CampaignCost(
        snapshot_bytes=snapshot_bytes(hierarchy, bytes_per_value),
        snapshots=snapshots,
        ensemble=ensemble,
        compression_ratio=compression_ratio,
        bandwidth_gbps=bandwidth_gbps,
    )
