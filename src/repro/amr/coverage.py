"""Coverage masks: which coarse cells are shadowed by finer data.

Patch-based AMR keeps coarse data underneath refined regions (the "0D" point
in Figure 3 of the paper). These helpers compute, per patch, the boolean
mask of such *redundant* cells — used by the AMR-aware codec to optionally
exclude them from compression (paper §2.2) and by the dual-cell pipeline's
"switching cells" gap fix (paper §2.4, Figure 8 top).
"""

from __future__ import annotations

import numpy as np

from repro.amr.box import Box
from repro.amr.boxarray import BoxArray
from repro.amr.hierarchy import AMRHierarchy

__all__ = ["patch_covered_mask", "level_covered_masks", "exposed_fraction"]


def patch_covered_mask(
    patch_box: Box,
    fine_boxes: BoxArray,
    ref_ratio: tuple[int, ...] | int,
) -> np.ndarray:
    """Mask (shape ``patch_box.shape``) of cells covered by ``fine_boxes``.

    ``fine_boxes`` are in the finer level's index space; they are coarsened
    by ``ref_ratio`` before intersecting the patch.
    """
    coarse = fine_boxes.coarsen(ref_ratio)
    return coarse.mask(patch_box)


def level_covered_masks(hierarchy: AMRHierarchy, level: int) -> list[np.ndarray]:
    """Per-patch redundant-cell masks for ``level`` of a hierarchy.

    Returns one boolean array per box of the level, aligned with the level's
    box array. The finest level always gets all-``False`` masks.
    """
    lev = hierarchy[level]
    if level + 1 >= hierarchy.n_levels:
        return [np.zeros(b.shape, dtype=bool) for b in lev.boxes]
    fine_boxes = hierarchy[level + 1].boxes
    ratio = hierarchy.ref_ratios[level]
    return [patch_covered_mask(b, fine_boxes, ratio) for b in lev.boxes]


def exposed_fraction(hierarchy: AMRHierarchy, level: int) -> float:
    """Fraction of ``level``'s stored cells *not* shadowed by finer data."""
    masks = level_covered_masks(hierarchy, level)
    total = sum(m.size for m in masks)
    covered = sum(int(m.sum()) for m in masks)
    if total == 0:
        return 0.0
    return 1.0 - covered / total
