"""Berger–Rigoutsos tagged-cell clustering.

The standard grid-generation algorithm of block-structured AMR (and the one
AMReX uses): recursively split the bounding box of the tagged cells at
signature holes or inflection points until every box is "efficient" (tagged
cells / box cells above a target) or minimal. Produces the disjoint set of
boxes that becomes a refinement level.

Reference: Berger & Rigoutsos, "An algorithm for point clustering and grid
generation", IEEE Trans. SMC 21(5), 1991.
"""

from __future__ import annotations

import numpy as np

from repro.amr.box import Box
from repro.amr.boxarray import BoxArray
from repro.errors import ReproError

__all__ = ["cluster_tags", "boxes_from_mask"]


def _bounding_box(tags: np.ndarray) -> Box | None:
    """Tight bounding box of the ``True`` region, or ``None`` if empty."""
    coords = np.nonzero(tags)
    if coords[0].size == 0:
        return None
    lo = tuple(int(c.min()) for c in coords)
    hi = tuple(int(c.max()) for c in coords)
    return Box(lo, hi)


def _signatures(tags: np.ndarray) -> list[np.ndarray]:
    """Per-axis tag counts (the Berger–Rigoutsos "signatures")."""
    sigs = []
    for axis in range(tags.ndim):
        other = tuple(a for a in range(tags.ndim) if a != axis)
        sigs.append(tags.sum(axis=other, dtype=np.int64))
    return sigs


def _find_hole(sig: np.ndarray) -> int | None:
    """Index of a zero entry strictly inside the signature, or None."""
    inside = np.nonzero(sig[1:-1] == 0)[0]
    if inside.size == 0:
        return None
    # Prefer the hole closest to the center for balanced splits.
    center = (len(sig) - 2) / 2.0
    best = inside[np.argmin(np.abs(inside - center))]
    return int(best) + 1


def _find_inflection(sig: np.ndarray) -> int | None:
    """Split index from the largest zero-crossing jump of the Laplacian."""
    if len(sig) < 4:
        return None
    lap = sig[:-2] - 2 * sig[1:-1] + sig[2:]  # second difference, len n-2
    # Zero crossings between consecutive Laplacian entries.
    sign_change = np.nonzero(lap[:-1] * lap[1:] < 0)[0]
    if sign_change.size == 0:
        return None
    jumps = np.abs(lap[sign_change + 1] - lap[sign_change])
    best = sign_change[np.argmax(jumps)]
    # lap[i] corresponds to sig index i+1; split between i+1 and i+2.
    return int(best) + 1


def cluster_tags(
    tags: np.ndarray,
    *,
    efficiency: float = 0.7,
    max_boxes: int = 1024,
    min_width: int = 2,
    blocking_factor: int = 1,
) -> BoxArray:
    """Cluster a boolean tag mask into boxes (Berger–Rigoutsos).

    Parameters
    ----------
    tags:
        Boolean mask in the *coarse* level's index space; ``True`` cells must
        be covered by the returned boxes.
    efficiency:
        Minimum fraction of tagged cells per accepted box.
    max_boxes:
        Safety cap on recursion breadth.
    min_width:
        Boxes narrower than this along any axis are accepted as-is.
    blocking_factor:
        Round accepted boxes outward so ``lo`` and ``shape`` are multiples of
        this factor (AMReX ``blocking_factor``), clipped to the mask domain.

    Returns
    -------
    BoxArray
        Disjoint boxes covering every tagged cell.
    """
    mask = np.asarray(tags, dtype=bool)
    if mask.ndim < 1:
        raise ReproError("tags must be an array")
    if not 0.0 < efficiency <= 1.0:
        raise ReproError(f"efficiency must be in (0, 1], got {efficiency}")
    bbox = _bounding_box(mask)
    if bbox is None:
        return BoxArray([])
    accepted: list[Box] = []
    stack = [bbox]
    while stack:
        if len(accepted) + len(stack) > max_boxes:
            accepted.extend(stack)
            break
        box = stack.pop()
        sub = mask[box.slices()]
        n_tag = int(sub.sum())
        if n_tag == 0:
            continue
        tight = _bounding_box(sub)
        assert tight is not None
        box = tight.shift(box.lo)
        sub = mask[box.slices()]
        eff = sub.sum() / box.size
        small = any(s <= min_width for s in box.shape)
        if eff >= efficiency or small:
            accepted.append(box)
            continue
        split = _choose_split(sub)
        if split is None:
            accepted.append(box)
            continue
        axis, local_idx = split
        left, right = box.split(axis, box.lo[axis] + local_idx)
        stack.append(left)
        stack.append(right)
    if blocking_factor > 1:
        domain = Box.from_shape(mask.shape)
        accepted = _apply_blocking(accepted, blocking_factor, domain)
    boxes = _make_disjoint(accepted)
    return BoxArray(boxes)


def _choose_split(sub: np.ndarray) -> tuple[int, int] | None:
    """Pick (axis, local split index) for a tag sub-mask, or None."""
    sigs = _signatures(sub)
    # 1) Holes, longest axis first.
    axes = sorted(range(sub.ndim), key=lambda a: -sub.shape[a])
    for axis in axes:
        hole = _find_hole(sigs[axis])
        if hole is not None and 0 < hole < sub.shape[axis]:
            return axis, hole - 1
    # 2) Inflection points.
    best: tuple[int, int] | None = None
    for axis in axes:
        idx = _find_inflection(sigs[axis])
        if idx is not None and 0 < idx < sub.shape[axis]:
            best = (axis, idx - 1)
            break
    if best is not None:
        return best
    # 3) Bisect the longest axis if it is splittable.
    axis = axes[0]
    if sub.shape[axis] >= 2:
        return axis, sub.shape[axis] // 2 - 1
    return None


def _apply_blocking(boxes: list[Box], factor: int, domain: Box) -> list[Box]:
    """Round boxes outward to the blocking factor, clipped to ``domain``."""
    out = []
    for b in boxes:
        lo = tuple((l // factor) * factor for l in b.lo)
        hi = tuple(((h // factor) + 1) * factor - 1 for h in b.hi)
        rounded = Box(lo, hi).intersection(domain)
        if rounded is not None:
            out.append(rounded)
    return out


def _make_disjoint(boxes: list[Box]) -> list[Box]:
    """Remove overlaps between boxes by rasterize-and-recluster.

    Splitting during Berger–Rigoutsos keeps boxes disjoint, but blocking
    rounding can reintroduce overlaps; rebuilding from the union mask is a
    simple, always-correct fix at the modest sizes used here.
    """
    if not boxes:
        return []
    probe = BoxArray(boxes)
    if probe.is_disjoint():
        return boxes
    window = probe.bounding_box()
    mask = probe.mask(window)
    rebuilt = _greedy_boxes(mask)
    return [b.shift(window.lo) for b in rebuilt]


def _greedy_boxes(mask: np.ndarray) -> list[Box]:
    """Greedy maximal-run decomposition of a boolean mask into boxes."""
    remaining = mask.copy()
    out: list[Box] = []
    while remaining.any():
        seed = tuple(int(c[0]) for c in np.nonzero(remaining))
        lo = list(seed)
        hi = list(seed)
        # Grow greedily along each axis while the slab stays fully tagged.
        for axis in range(mask.ndim):
            while hi[axis] + 1 < mask.shape[axis]:
                probe = [slice(l, h + 1) for l, h in zip(lo, hi)]
                probe[axis] = slice(hi[axis] + 1, hi[axis] + 2)
                if remaining[tuple(probe)].all():
                    hi[axis] += 1
                else:
                    break
        box = Box(tuple(lo), tuple(hi))
        out.append(box)
        remaining[box.slices()] = False
    return out


def boxes_from_mask(mask: np.ndarray) -> BoxArray:
    """Exact disjoint box decomposition of a boolean mask (greedy runs)."""
    return BoxArray(_greedy_boxes(np.asarray(mask, dtype=bool)))
