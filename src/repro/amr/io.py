"""Plotfile I/O: a self-contained on-disk format for AMR hierarchies.

The paper's datasets are AMReX plotfiles / HDF5 groups with one group per
level (Figure 3 left). HDF5 is unavailable offline, so this module provides
an equivalent directory layout:

.. code-block:: text

    myplt/
      Header.json                     # domain, ratios, boxes, fields
      level_0/density_00000.npy       # one array per (field, patch)
      level_0/density_00001.npy
      level_1/density_00000.npy
      ...

Arrays are stored as ``.npy`` (no pickling), so any NumPy can read them.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.amr.box import Box
from repro.amr.boxarray import BoxArray
from repro.amr.hierarchy import AMRHierarchy
from repro.amr.level import AMRLevel
from repro.amr.patch import Patch
from repro.errors import FormatError

__all__ = [
    "write_plotfile",
    "read_plotfile",
    "write_container",
    "read_container",
    "open_container",
    "write_series",
    "write_sharded_series",
    "append_step",
    "open_series",
    "recover_series",
]

_FORMAT_NAME = "repro-amr-plotfile"
_FORMAT_VERSION = 1


def write_plotfile(path: str | Path, hierarchy: AMRHierarchy, overwrite: bool = False) -> Path:
    """Serialize ``hierarchy`` to directory ``path``.

    Parameters
    ----------
    path:
        Target directory (created; must not exist unless ``overwrite``).
    hierarchy:
        Dataset to store.
    overwrite:
        Allow writing into an existing directory.

    Returns
    -------
    pathlib.Path
        The plotfile directory.
    """
    root = Path(path)
    if root.exists() and not overwrite:
        raise FormatError(f"plotfile path {root} already exists (pass overwrite=True)")
    root.mkdir(parents=True, exist_ok=True)
    header = {
        "format": _FORMAT_NAME,
        "version": _FORMAT_VERSION,
        "ndim": hierarchy.ndim,
        "domain": {"lo": list(hierarchy.domain.lo), "hi": list(hierarchy.domain.hi)},
        "ref_ratios": [list(r) for r in hierarchy.ref_ratios],
        "fields": list(hierarchy.field_names),
        "levels": [],
    }
    for lev in hierarchy:
        lev_dir = root / f"level_{lev.index}"
        lev_dir.mkdir(exist_ok=True)
        header["levels"].append(
            {
                "index": lev.index,
                "dx": list(lev.dx),
                "boxes": [{"lo": list(b.lo), "hi": list(b.hi)} for b in lev.boxes],
            }
        )
        for field in hierarchy.field_names:
            for i, patch in enumerate(lev.patches(field)):
                np.save(lev_dir / f"{field}_{i:05d}.npy", patch.data, allow_pickle=False)
    (root / "Header.json").write_text(json.dumps(header, indent=2))
    return root


def read_plotfile(path: str | Path) -> AMRHierarchy:
    """Load a hierarchy previously written by :func:`write_plotfile`."""
    root = Path(path)
    header_path = root / "Header.json"
    if not header_path.is_file():
        raise FormatError(f"{root} is not a plotfile (missing Header.json)")
    try:
        header = json.loads(header_path.read_text())
    except json.JSONDecodeError as exc:
        raise FormatError(f"corrupt plotfile header: {exc}") from exc
    if header.get("format") != _FORMAT_NAME:
        raise FormatError(f"unrecognized plotfile format {header.get('format')!r}")
    if header.get("version") != _FORMAT_VERSION:
        raise FormatError(f"unsupported plotfile version {header.get('version')!r}")
    fields = list(header["fields"])
    domain = Box(tuple(header["domain"]["lo"]), tuple(header["domain"]["hi"]))
    levels = []
    for lev_hdr in header["levels"]:
        idx = int(lev_hdr["index"])
        boxes = BoxArray(Box(tuple(b["lo"]), tuple(b["hi"])) for b in lev_hdr["boxes"])
        level = AMRLevel(idx, boxes, tuple(lev_hdr["dx"]))
        lev_dir = root / f"level_{idx}"
        for field in fields:
            patches = []
            for i, box in enumerate(boxes):
                file = lev_dir / f"{field}_{i:05d}.npy"
                if not file.is_file():
                    raise FormatError(f"plotfile missing patch file {file}")
                data = np.load(file, allow_pickle=False)
                if data.shape != box.shape:
                    raise FormatError(
                        f"{file}: stored shape {data.shape} != box shape {box.shape}"
                    )
                patches.append(Patch(box, data))
            level.add_field(field, patches)
        levels.append(level)
    ratios = [tuple(r) for r in header["ref_ratios"]]
    if not ratios:
        return AMRHierarchy(domain, levels, 2)
    return AMRHierarchy(domain, levels, ratios)


# ----------------------------------------------------------------------
# Compressed containers (.rprh): the seekable RPH2 patch-indexed format.
# The compression imports stay inside the functions — repro.compression
# imports this package's submodules, so a module-level import would cycle.
# ----------------------------------------------------------------------
def write_container(path: str | Path, container, overwrite: bool = False) -> Path:
    """Write a :class:`~repro.compression.amr_codec.CompressedHierarchy`
    to ``path`` in the seekable ``RPH2`` container format."""
    target = Path(path)
    if target.exists() and not overwrite:
        raise FormatError(f"container path {target} already exists (pass overwrite=True)")
    target.write_bytes(container.tobytes())
    return target


def read_container(path: str | Path):
    """Load a full :class:`~repro.compression.amr_codec.CompressedHierarchy`
    from an ``RPH2`` container at ``path``."""
    from repro.compression.amr_codec import CompressedHierarchy

    return CompressedHierarchy.frombytes(Path(path).read_bytes())


def open_container(path: str | Path):
    """Open ``path`` for random access and return a
    :class:`~repro.compression.container.ContainerReader`.

    Only the footer and index are read eagerly; use the reader's
    :meth:`~repro.compression.container.ContainerReader.select` /
    :meth:`~repro.compression.container.ContainerReader.read_patch` for
    O(patch)-byte selective decompression.
    """
    from repro.compression.container import ContainerReader

    return ContainerReader.open(path)


# ----------------------------------------------------------------------
# Time-series containers (.rph2s): streaming in-situ campaigns.
# ----------------------------------------------------------------------
def write_series(
    path: str | Path,
    steps,
    codec: str = "sz-lr",
    error_bound: float = 1e-3,
    mode: str = "rel",
    fields=None,
    exclude_covered: bool = False,
    overwrite: bool = False,
    parallel: str = "serial",
    workers: int | None = 2,
    durability: str = "close",
) -> Path:
    """Stream an iterable of timesteps into an ``RPH2S`` series at ``path``.

    ``steps`` yields either bare hierarchies (step number = position, time =
    step number) or objects with ``hierarchy`` / ``index`` / ``time``
    attributes (e.g. :class:`repro.sims.streams.SimStep`). The iterable is
    consumed lazily — pass a generator and peak memory stays O(snapshot).
    ``durability="step"`` fsyncs every sealed step (crash loses at most the
    step in flight); the default syncs at close only.
    """
    from repro.insitu.writer import StreamingWriter

    with StreamingWriter.create(
        path, codec, error_bound, mode=mode, fields=fields,
        exclude_covered=exclude_covered, parallel=parallel, workers=workers,
        overwrite=overwrite, durability=durability,
    ) as writer:
        for item in steps:
            if hasattr(item, "hierarchy"):
                writer.append_step(
                    item.hierarchy,
                    time=getattr(item, "time", None),
                    step=getattr(item, "index", None),
                )
            else:
                writer.append_step(item)
    return Path(path)


def write_sharded_series(
    path: str | Path,
    steps,
    codec: str = "sz-lr",
    error_bound: float = 1e-3,
    mode: str = "rel",
    n_shards: int = 4,
    fields=None,
    exclude_covered: bool = False,
    overwrite: bool = False,
    parallel: str = "thread",
    durability="close",
    backend=None,
    parity: int = 0,
) -> Path:
    """Stream timesteps into an N-shard campaign behind an RPHM manifest.

    Same ``steps`` contract as :func:`write_series`, but the campaign fans
    out across ``n_shards`` shard files written concurrently (one writer
    lane per shard); ``path`` is the manifest, and :func:`open_series` on
    it reads the union transparently. ``durability`` may be one mode or a
    per-shard sequence; ``backend`` redirects all bytes through a
    :class:`repro.storage.StorageBackend`. ``parity=p`` additionally
    writes ``p`` XOR parity shards at close, making the finished campaign
    repairable after shard damage or loss
    (:func:`repro.integrity.repair_sharded`, and self-healing reads in
    :mod:`repro.serve`).
    """
    from repro.insitu.sharded import ShardedSeriesWriter

    with ShardedSeriesWriter.create(
        path, codec, error_bound, mode=mode, n_shards=n_shards, fields=fields,
        exclude_covered=exclude_covered, parallel=parallel,
        durability=durability, overwrite=overwrite, backend=backend,
        parity=parity,
    ) as writer:
        for item in steps:
            if hasattr(item, "hierarchy"):
                writer.append_step(
                    item.hierarchy,
                    time=getattr(item, "time", None),
                    step=getattr(item, "index", None),
                )
            else:
                writer.append_step(item)
    return Path(path)


def append_step(path: str | Path, hierarchy, time: float | None = None,
                step: int | None = None, parallel: str = "serial",
                workers: int | None = 2, durability: str = "close"):
    """Append one timestep to an existing ``RPH2S`` series file.

    Reopens the series (its recorded codec/bound/fields are authoritative),
    appends the hierarchy as the next step, rewrites the timestep index,
    and returns the new :class:`~repro.insitu.series.SeriesStepEntry`.
    """
    from repro.insitu.writer import StreamingWriter

    with StreamingWriter.append_to(path, parallel=parallel, workers=workers,
                                   durability=durability) as writer:
        return writer.append_step(hierarchy, time=time, step=step)


def open_series(path: str | Path, backend=None):
    """Open an ``RPH2S`` series for random access and return a
    :class:`~repro.insitu.series.SeriesReader`.

    Only the series footer and timestep index are read eagerly; use the
    reader's :meth:`~repro.insitu.series.SeriesReader.select` /
    :meth:`~repro.insitu.series.SeriesReader.read_patch` for
    O(selection)-byte access to ``(step, level, field, patch)``.

    A path holding a sharded campaign's ``RPHM`` manifest is opened
    transparently as a :class:`~repro.insitu.sharded.ShardedSeriesReader`
    serving the union of its shards; ``backend`` redirects reads through
    a :class:`repro.storage.StorageBackend`.
    """
    from repro.insitu.series import SeriesReader

    return SeriesReader.open(path, backend=backend)


def recover_series(path: str | Path, commit: bool = False,
                   output: str | Path | None = None):
    """Diagnose (and optionally repair) an interrupted ``RPH2S`` write.

    Dry run by default: returns a
    :class:`~repro.insitu.recovery.RecoveryReport` describing every
    fully-sealed step still salvageable from ``path`` without modifying the
    file. With ``commit=True`` trailing garbage is truncated and a fresh
    timestep index + footer appended, after which the series opens
    normally; ``output`` redirects the rewrite to a new file. See
    :mod:`repro.insitu.recovery` for the scan semantics.

    A sharded campaign's ``RPHM`` manifest routes to
    :func:`repro.insitu.sharded.recover_sharded`: every shard is salvaged
    independently and the manifest rebuilt from the surviving indexes
    (``output`` is not supported there — recovery is per shard, in place).
    """
    from repro.insitu.recovery import recover_series as _recover
    from repro.insitu.sharded import MANIFEST_MAGIC, recover_sharded

    try:
        with Path(path).open("rb") as probe:
            head = probe.read(len(MANIFEST_MAGIC))
    except OSError:
        head = b""
    if head == MANIFEST_MAGIC:
        if output is not None:
            raise FormatError(
                "recover_series(output=...) is not supported for sharded "
                "manifests; shards are recovered in place"
            )
        return recover_sharded(path, commit=commit)
    return _recover(path, commit=commit, output=output)
