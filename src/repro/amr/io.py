"""Plotfile I/O: a self-contained on-disk format for AMR hierarchies.

The paper's datasets are AMReX plotfiles / HDF5 groups with one group per
level (Figure 3 left). HDF5 is unavailable offline, so this module provides
an equivalent directory layout:

.. code-block:: text

    myplt/
      Header.json                     # domain, ratios, boxes, fields
      level_0/density_00000.npy       # one array per (field, patch)
      level_0/density_00001.npy
      level_1/density_00000.npy
      ...

Arrays are stored as ``.npy`` (no pickling), so any NumPy can read them.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.amr.box import Box
from repro.amr.boxarray import BoxArray
from repro.amr.hierarchy import AMRHierarchy
from repro.amr.level import AMRLevel
from repro.amr.patch import Patch
from repro.errors import FormatError

__all__ = [
    "write_plotfile",
    "read_plotfile",
    "write_container",
    "read_container",
    "open_container",
]

_FORMAT_NAME = "repro-amr-plotfile"
_FORMAT_VERSION = 1


def write_plotfile(path: str | Path, hierarchy: AMRHierarchy, overwrite: bool = False) -> Path:
    """Serialize ``hierarchy`` to directory ``path``.

    Parameters
    ----------
    path:
        Target directory (created; must not exist unless ``overwrite``).
    hierarchy:
        Dataset to store.
    overwrite:
        Allow writing into an existing directory.

    Returns
    -------
    pathlib.Path
        The plotfile directory.
    """
    root = Path(path)
    if root.exists() and not overwrite:
        raise FormatError(f"plotfile path {root} already exists (pass overwrite=True)")
    root.mkdir(parents=True, exist_ok=True)
    header = {
        "format": _FORMAT_NAME,
        "version": _FORMAT_VERSION,
        "ndim": hierarchy.ndim,
        "domain": {"lo": list(hierarchy.domain.lo), "hi": list(hierarchy.domain.hi)},
        "ref_ratios": [list(r) for r in hierarchy.ref_ratios],
        "fields": list(hierarchy.field_names),
        "levels": [],
    }
    for lev in hierarchy:
        lev_dir = root / f"level_{lev.index}"
        lev_dir.mkdir(exist_ok=True)
        header["levels"].append(
            {
                "index": lev.index,
                "dx": list(lev.dx),
                "boxes": [{"lo": list(b.lo), "hi": list(b.hi)} for b in lev.boxes],
            }
        )
        for field in hierarchy.field_names:
            for i, patch in enumerate(lev.patches(field)):
                np.save(lev_dir / f"{field}_{i:05d}.npy", patch.data, allow_pickle=False)
    (root / "Header.json").write_text(json.dumps(header, indent=2))
    return root


def read_plotfile(path: str | Path) -> AMRHierarchy:
    """Load a hierarchy previously written by :func:`write_plotfile`."""
    root = Path(path)
    header_path = root / "Header.json"
    if not header_path.is_file():
        raise FormatError(f"{root} is not a plotfile (missing Header.json)")
    try:
        header = json.loads(header_path.read_text())
    except json.JSONDecodeError as exc:
        raise FormatError(f"corrupt plotfile header: {exc}") from exc
    if header.get("format") != _FORMAT_NAME:
        raise FormatError(f"unrecognized plotfile format {header.get('format')!r}")
    if header.get("version") != _FORMAT_VERSION:
        raise FormatError(f"unsupported plotfile version {header.get('version')!r}")
    fields = list(header["fields"])
    domain = Box(tuple(header["domain"]["lo"]), tuple(header["domain"]["hi"]))
    levels = []
    for lev_hdr in header["levels"]:
        idx = int(lev_hdr["index"])
        boxes = BoxArray(Box(tuple(b["lo"]), tuple(b["hi"])) for b in lev_hdr["boxes"])
        level = AMRLevel(idx, boxes, tuple(lev_hdr["dx"]))
        lev_dir = root / f"level_{idx}"
        for field in fields:
            patches = []
            for i, box in enumerate(boxes):
                file = lev_dir / f"{field}_{i:05d}.npy"
                if not file.is_file():
                    raise FormatError(f"plotfile missing patch file {file}")
                data = np.load(file, allow_pickle=False)
                if data.shape != box.shape:
                    raise FormatError(
                        f"{file}: stored shape {data.shape} != box shape {box.shape}"
                    )
                patches.append(Patch(box, data))
            level.add_field(field, patches)
        levels.append(level)
    ratios = [tuple(r) for r in header["ref_ratios"]]
    if not ratios:
        return AMRHierarchy(domain, levels, 2)
    return AMRHierarchy(domain, levels, ratios)


# ----------------------------------------------------------------------
# Compressed containers (.rprh): the seekable RPH2 patch-indexed format.
# The compression imports stay inside the functions — repro.compression
# imports this package's submodules, so a module-level import would cycle.
# ----------------------------------------------------------------------
def write_container(path: str | Path, container, overwrite: bool = False) -> Path:
    """Write a :class:`~repro.compression.amr_codec.CompressedHierarchy`
    to ``path`` in the seekable ``RPH2`` container format."""
    target = Path(path)
    if target.exists() and not overwrite:
        raise FormatError(f"container path {target} already exists (pass overwrite=True)")
    target.write_bytes(container.tobytes())
    return target


def read_container(path: str | Path):
    """Load a full :class:`~repro.compression.amr_codec.CompressedHierarchy`
    from ``path`` (accepts both ``RPH2`` and legacy ``RPRH`` containers)."""
    from repro.compression.amr_codec import CompressedHierarchy

    return CompressedHierarchy.frombytes(Path(path).read_bytes())


def open_container(path: str | Path):
    """Open ``path`` for random access and return a
    :class:`~repro.compression.container.ContainerReader`.

    Only the footer and index are read eagerly; use the reader's
    :meth:`~repro.compression.container.ContainerReader.select` /
    :meth:`~repro.compression.container.ContainerReader.read_patch` for
    O(patch)-byte selective decompression.
    """
    from repro.compression.container import ContainerReader

    return ContainerReader.open(path)
