"""Refinement-criterion tagging (paper §2.2, Figure 2).

AMR simulations mark ("tag") cells that need refinement when a local
criterion exceeds a threshold — the paper names the gradient norm and the
maximum value as typical criteria. These functions produce boolean tag masks
on a uniform array; :mod:`repro.amr.regrid` clusters the tags into boxes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.util.validation import check_array

__all__ = ["tag_gradient", "tag_threshold", "tag_fraction", "dilate_tags"]


def tag_gradient(field: np.ndarray, threshold: float) -> np.ndarray:
    """Tag cells whose centered-difference gradient norm exceeds ``threshold``.

    One-sided differences are used on the boundary so the mask has the same
    shape as ``field``.
    """
    arr = check_array("field", field, dtype_kind="f")
    sq = np.zeros(arr.shape, dtype=np.float64)
    for axis in range(arr.ndim):
        grad = np.gradient(arr, axis=axis)
        sq += grad * grad
    return np.sqrt(sq, out=sq) > float(threshold)


def tag_threshold(field: np.ndarray, threshold: float) -> np.ndarray:
    """Tag cells whose value exceeds ``threshold`` (max-value criterion)."""
    arr = check_array("field", field)
    return np.asarray(arr) > float(threshold)


def tag_fraction(field: np.ndarray, fraction: float, criterion: str = "value") -> np.ndarray:
    """Tag approximately the top ``fraction`` of cells.

    The threshold is chosen as the ``1 - fraction`` quantile of the
    criterion; used by the dataset builders to hit the per-level density
    targets of Table 1.

    Parameters
    ----------
    field:
        Input array.
    fraction:
        Target tagged fraction in ``(0, 1]``.
    criterion:
        ``"value"`` or ``"gradient"``.
    """
    if not 0.0 < fraction <= 1.0:
        raise ReproError(f"fraction must be in (0, 1], got {fraction}")
    arr = check_array("field", field).astype(np.float64, copy=False)
    if criterion == "value":
        score = arr
    elif criterion == "gradient":
        sq = np.zeros(arr.shape, dtype=np.float64)
        for axis in range(arr.ndim):
            grad = np.gradient(arr, axis=axis)
            sq += grad * grad
        score = np.sqrt(sq)
    else:
        raise ReproError(f"unknown criterion {criterion!r}")
    if fraction >= 1.0:
        return np.ones(arr.shape, dtype=bool)
    cut = np.quantile(score, 1.0 - fraction)
    return score > cut


def dilate_tags(tags: np.ndarray, n: int = 1) -> np.ndarray:
    """Grow the tagged region by ``n`` cells per face (buffer cells).

    AMReX buffers tags before clustering so refined patches extend past the
    feature; implemented as ``n`` sweeps of axis-aligned dilation.
    """
    out = np.asarray(tags, dtype=bool).copy()
    for _ in range(int(n)):
        grown = out.copy()
        for axis in range(out.ndim):
            lo = [slice(None)] * out.ndim
            hi = [slice(None)] * out.ndim
            lo[axis] = slice(1, None)
            hi[axis] = slice(None, -1)
            grown[tuple(hi)] |= out[tuple(lo)]
            grown[tuple(lo)] |= out[tuple(hi)]
        out = grown
    return out
