"""Resilience primitives for the serving layer: deadlines, admission
control, and circuit breakers.

These are small, clock-injectable, loop-confined state machines; the
:class:`~repro.serve.service.QueryService` wires them into the query
path (it only ever touches them from its event loop, which is the
synchronization — none of them take locks):

* :class:`Deadline` — a monotonic-clock budget shared by every await a
  query makes; ``remaining()`` is what gets handed to ``wait_for``.
* :class:`AdmissionGate` — a bounded in-flight budget (query count plus
  estimated plan bytes) with a FIFO wait queue. When both the budget and
  the queue are full, the gate *sheds load*: the caller gets
  :class:`~repro.errors.Overloaded` immediately (with a retry-after
  hint) instead of piling onto the event loop and thrashing the cache.
* :class:`CircuitBreaker` — per-backend/shard failure isolation.
  ``threshold`` consecutive storage faults trip it open; while open,
  requests fast-fail with :class:`~repro.errors.CircuitOpenError` for
  ``cooldown`` seconds instead of re-paying timeouts against a dead
  backend; after the cooldown one *probe* request is let through
  (half-open) — its outcome closes the breaker or re-opens it.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Callable

from repro.errors import CircuitOpenError, DeadlineExceeded, Overloaded

__all__ = ["Deadline", "AdmissionGate", "CircuitBreaker"]


class Deadline:
    """An absolute monotonic-clock deadline for one query.

    Build with :meth:`of` from the user-facing ``timeout=`` (seconds
    from now) / ``deadline=`` (absolute ``time.monotonic()`` value)
    pair; ``None`` from both means no deadline.
    """

    __slots__ = ("at", "_clock")

    def __init__(self, at: float, clock: Callable[[], float] = time.monotonic):
        self.at = float(at)
        self._clock = clock

    @classmethod
    def of(
        cls,
        timeout: float | None,
        deadline: float | None,
        clock: Callable[[], float] = time.monotonic,
    ) -> "Deadline | None":
        if timeout is None and deadline is None:
            return None
        if timeout is not None and timeout < 0:
            raise DeadlineExceeded(f"timeout must be >= 0, got {timeout}")
        at = clock() + float(timeout) if timeout is not None else float(deadline)
        if deadline is not None:
            at = min(at, float(deadline))
        return cls(at, clock)

    def remaining(self) -> float:
        """Seconds left (clamped at 0)."""
        return max(0.0, self.at - self._clock())

    def expired(self) -> bool:
        return self._clock() >= self.at

    def exceeded(self, what: str = "query") -> DeadlineExceeded:
        return DeadlineExceeded(f"{what} deadline expired")


class AdmissionGate:
    """Bounded in-flight work with a FIFO wait queue and load shedding.

    Two budgets share one queue discipline: a *slot* budget
    (``max_inflight`` concurrently admitted queries) acquired at query
    entry, and a *byte* budget (``max_bytes`` of estimated fetched
    bytes, from the :class:`~repro.serve.planner.QueryPlan`) reserved
    once the query is planned. Waiters park on a FIFO queue of futures;
    when the queue holds ``max_queue`` entries, further arrivals are shed
    with :class:`~repro.errors.Overloaded` carrying a ``retry_after``
    hint (an EWMA of recent query durations scaled by the backlog). A
    reservation larger than the whole byte budget is admitted only when
    nothing else holds bytes — oversize queries serialize rather than
    deadlock. Waiting respects the query's :class:`Deadline`.
    """

    def __init__(
        self,
        max_inflight: int | None = 64,
        max_queue: int = 256,
        max_bytes: int | None = None,
    ):
        if max_inflight is not None and max_inflight < 1:
            raise Overloaded(f"max_inflight must be >= 1, got {max_inflight}")
        if max_queue < 0:
            raise Overloaded(f"max_queue must be >= 0, got {max_queue}")
        if max_bytes is not None and max_bytes < 1:
            raise Overloaded(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_inflight = max_inflight
        self.max_queue = int(max_queue)
        self.max_bytes = max_bytes
        self.inflight = 0
        self.bytes_held = 0
        self._slot_queue: deque[asyncio.Future] = deque()
        self._byte_queue: deque[tuple[asyncio.Future, int]] = deque()
        #: EWMA of completed-query durations (seconds), the retry-after basis.
        self.ewma_seconds = 0.0
        self.admitted = 0
        self.shed = 0
        self.peak_queued = 0

    # -- hints ----------------------------------------------------------
    def retry_after(self) -> float:
        backlog = self.inflight + len(self._slot_queue) + 1
        return max(0.01, self.ewma_seconds * backlog) if self.ewma_seconds else 0.05

    def note_duration(self, seconds: float) -> None:
        """Feed one completed query's duration into the EWMA."""
        self.ewma_seconds = (
            seconds if self.ewma_seconds == 0.0
            else 0.8 * self.ewma_seconds + 0.2 * seconds
        )

    async def _park(self, queue: deque, entry, deadline: Deadline | None) -> None:
        queue.append(entry)
        self.peak_queued = max(
            self.peak_queued, len(self._slot_queue) + len(self._byte_queue)
        )
        fut = entry if isinstance(entry, asyncio.Future) else entry[0]
        try:
            if deadline is None:
                await fut
            else:
                await asyncio.wait_for(asyncio.shield(fut), deadline.remaining())
        except (asyncio.TimeoutError, asyncio.CancelledError):
            if fut.done() and not fut.cancelled():
                # Woken and abandoned in the same tick: hand the grant on.
                self._abandon(queue, entry)
            else:
                try:
                    queue.remove(entry)
                except ValueError:
                    pass
                fut.cancel()
            if deadline is not None and deadline.expired():
                raise deadline.exceeded("admission wait") from None
            raise

    def _abandon(self, queue: deque, entry) -> None:
        """A granted waiter went away before using its grant: release."""
        if queue is self._slot_queue:
            self.inflight += 1  # it was granted; release symmetrically
            self.release_slot()
        else:
            _, nbytes = entry
            self.bytes_held += nbytes
            self.release_bytes(nbytes)

    # -- slot budget -----------------------------------------------------
    async def acquire_slot(self, deadline: Deadline | None = None) -> None:
        """Admit one query, waiting FIFO; sheds with ``Overloaded`` when
        the queue is full."""
        if self.max_inflight is None:
            self.inflight += 1
            self.admitted += 1
            return
        if self.inflight < self.max_inflight and not self._slot_queue:
            self.inflight += 1
            self.admitted += 1
            return
        if len(self._slot_queue) >= self.max_queue:
            self.shed += 1
            raise Overloaded(
                f"service overloaded: {self.inflight} queries in flight and "
                f"{len(self._slot_queue)} queued (budget {self.max_inflight}"
                f"/{self.max_queue})",
                retry_after=self.retry_after(),
            )
        fut = asyncio.get_running_loop().create_future()
        await self._park(self._slot_queue, fut, deadline)
        self.admitted += 1

    def release_slot(self) -> None:
        self.inflight -= 1
        while self._slot_queue and (
            self.max_inflight is None or self.inflight < self.max_inflight
        ):
            fut = self._slot_queue.popleft()
            if fut.done():
                continue
            self.inflight += 1
            fut.set_result(None)

    # -- byte budget -----------------------------------------------------
    async def reserve_bytes(
        self, nbytes: int, deadline: Deadline | None = None
    ) -> int:
        """Reserve a planned query's estimated fetch bytes (FIFO). Returns
        the reserved amount (to pass back to :meth:`release_bytes`).
        Oversize reservations wait until the budget is idle."""
        if self.max_bytes is None or nbytes <= 0:
            return 0
        nbytes = int(nbytes)
        if self._fits(nbytes) and not self._byte_queue:
            self.bytes_held += nbytes
            return nbytes
        fut = asyncio.get_running_loop().create_future()
        await self._park(self._byte_queue, (fut, nbytes), deadline)
        return nbytes

    def _fits(self, nbytes: int) -> bool:
        if self.bytes_held + nbytes <= self.max_bytes:
            return True
        # Oversize: admit alone so it cannot deadlock behind itself.
        return nbytes > self.max_bytes and self.bytes_held == 0

    def release_bytes(self, nbytes: int) -> None:
        if not nbytes:
            return
        self.bytes_held -= nbytes
        while self._byte_queue:
            fut, want = self._byte_queue[0]
            if fut.done():
                self._byte_queue.popleft()
                continue
            if not self._fits(want):
                break
            self._byte_queue.popleft()
            self.bytes_held += want
            fut.set_result(None)

    # -- stats -----------------------------------------------------------
    @property
    def stats(self) -> dict:
        return {
            "inflight": self.inflight,
            "queued": len(self._slot_queue) + len(self._byte_queue),
            "bytes_held": self.bytes_held,
            "admitted": self.admitted,
            "shed": self.shed,
            "peak_queued": self.peak_queued,
            "max_inflight": self.max_inflight,
            "max_queue": self.max_queue,
            "max_bytes": self.max_bytes,
            "ewma_ms": round(self.ewma_seconds * 1e3, 3),
        }


class CircuitBreaker:
    """Consecutive-failure circuit breaker for one backend/shard/file.

    States: *closed* (healthy — requests pass), *open* (``threshold``
    consecutive failures seen — requests fast-fail until ``cooldown``
    seconds pass), *half-open* (cooldown over — exactly one probe
    request passes; its success closes the breaker, its failure re-opens
    it for another cooldown). ``clock`` is injectable for tests.
    """

    def __init__(
        self,
        threshold: int = 5,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if threshold < 1:
            raise CircuitOpenError(f"threshold must be >= 1, got {threshold}")
        if cooldown < 0:
            raise CircuitOpenError(f"cooldown must be >= 0, got {cooldown}")
        self.threshold = int(threshold)
        self.cooldown = float(cooldown)
        self._clock = clock
        self.state = "closed"
        self.failures = 0
        self._opened_at = 0.0
        self._probing = False
        self.trips = 0
        self.fast_fails = 0
        self.probes = 0

    def remaining(self) -> float:
        """Seconds of cooldown left (0 when not open)."""
        if self.state != "open":
            return 0.0
        return max(0.0, self._opened_at + self.cooldown - self._clock())

    def allow(self) -> bool:
        """Whether a request may proceed right now. The transition out of
        *open* happens here: the first caller after the cooldown becomes
        the half-open probe."""
        if self.state == "closed":
            return True
        if self.state == "open" and self.remaining() <= 0.0:
            self.state = "half_open"
            self._probing = False
        if self.state == "half_open" and not self._probing:
            self._probing = True
            self.probes += 1
            return True
        self.fast_fails += 1
        return False

    def check(self, what: str) -> None:
        """Raise :class:`~repro.errors.CircuitOpenError` unless allowed."""
        if not self.allow():
            raise CircuitOpenError(
                f"{what}: circuit breaker open after {self.failures} "
                f"consecutive storage faults; fast-failing for another "
                f"{self.remaining():.2f}s (query with partial=True to "
                "serve around it)"
            )

    def record_success(self) -> None:
        self.state = "closed"
        self.failures = 0
        self._probing = False

    def record_failure(self) -> None:
        self.failures += 1
        if self.state == "half_open" or self.failures >= self.threshold:
            if self.state != "open":
                self.trips += 1
            self.state = "open"
            self._opened_at = self._clock()
            self._probing = False

    @property
    def stats(self) -> dict:
        return {
            "state": self.state,
            "failures": self.failures,
            "trips": self.trips,
            "fast_fails": self.fast_fails,
            "probes": self.probes,
            "cooldown_remaining": round(self.remaining(), 3),
        }
