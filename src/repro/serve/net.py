"""TCP front end for the query service: JSON-line control, raw-byte data.

The wire protocol is deliberately minimal — one JSON object per request
line, one JSON header line per response, followed (for ``query``) by the
selected patches' raw array bytes back to back in header order:

.. code-block:: text

    -> {"op": "query", "steps": [3], "levels": 1, "fields": "f"}\\n
    <- {"ok": true, "patches": [{"key": [3, 1, "f", 0],
        "dtype": "<f8", "shape": [16, 16, 16], "nbytes": 32768}, ...],
        "info": {...}}\\n
    <- <raw little-endian array bytes, concatenated in header order>

Arrays travel as C-order ``tobytes()`` — the concurrency suite asserts
byte-identity across the socket, not just value-identity. Other ops are
pure JSON lines: ``meta`` (what is being served), ``stats`` (service
counters), ``plan`` (the byte plan a query would execute, for
inspection), ``ping``, and ``shutdown`` (drains and stops the server —
how the CLI's process is remote-controlled in tests). Errors come back
as ``{"ok": false, "error": ..., "type": <exception class>}`` and never
tear down the connection or the server; one bad query leaves every other
in-flight client untouched.

:class:`QueryServer` is the asyncio side (used by ``python -m
repro.compression serve``); :class:`TCPClient` is a small blocking
client for tests, scripts, and tools — one request per call, safe to use
from one thread at a time.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import asdict
from typing import Any

import numpy as np

from repro.errors import (
    DeadlineExceeded,
    Overloaded,
    ReproError,
    ServeError,
    StorageError,
)
from repro.serve.service import QueryService

__all__ = ["QueryServer", "TCPClient", "MAX_REQUEST_BYTES"]

#: Requests are single JSON lines; anything longer than this is refused
#: (a malformed or hostile client, not a real selection).
MAX_REQUEST_BYTES = 1 << 20

_SELECTOR_KEYS = ("steps", "levels", "fields", "patches")


def _selectors(req: dict) -> dict:
    """Pull the query selectors out of a request object."""
    out: dict[str, Any] = {k: req.get(k) for k in _SELECTOR_KEYS}
    region = req.get("region")
    if region is not None:
        out["region"] = [tuple(pair) for pair in region]
    out["verify"] = bool(req.get("verify", True))
    timeout = req.get("timeout")
    if timeout is not None:
        out["timeout"] = float(timeout)
    if req.get("partial"):
        out["partial"] = True
    return out


class QueryServer:
    """Serve one :class:`~repro.serve.service.QueryService` over TCP.

    ``idle_timeout`` (seconds) drops a connection whose client stays
    silent between requests — a stalled or vanished client cannot hold a
    connection slot forever. ``max_connections`` caps concurrently open
    connections; clients over the cap get a typed ``Overloaded`` refusal
    (with ``retry_after``) instead of an unexplained hang. Both default
    to unlimited.

    .. code-block:: python

        service = QueryService("run.rph2s")
        server = QueryServer(service, idle_timeout=300, max_connections=64)
        await server.start()          # binds (host, port); port 0 = pick
        print(server.address)
        await server.serve_until_shutdown()
    """

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        idle_timeout: float | None = None,
        max_connections: int | None = None,
    ):
        if idle_timeout is not None and idle_timeout <= 0:
            raise ServeError(f"idle_timeout must be > 0, got {idle_timeout}")
        if max_connections is not None and max_connections < 1:
            raise ServeError(
                f"max_connections must be >= 1, got {max_connections}"
            )
        self._service = service
        self._host = host
        self._port = port
        self._idle_timeout = idle_timeout
        self._max_connections = max_connections
        self._connections = 0
        self._refused = 0
        self._idle_drops = 0
        self._server: asyncio.base_events.Server | None = None
        self._shutdown = asyncio.Event()

    @property
    def connections(self) -> int:
        """Currently open client connections."""
        return self._connections

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — call after :meth:`start`."""
        if self._server is None:
            raise ServeError("server is not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def start(self) -> "QueryServer":
        if self._server is not None:
            raise ServeError("server is already started")
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port
        )
        return self

    async def serve_until_shutdown(self) -> None:
        """Run until a client sends ``{"op": "shutdown"}`` or :meth:`stop`."""
        if self._server is None:
            raise ServeError("server is not started")
        await self._shutdown.wait()
        await self.stop()

    async def stop(self) -> None:
        """Stop accepting, close the listener and the service."""
        self._shutdown.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._service.close()

    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if (
            self._max_connections is not None
            and self._connections >= self._max_connections
        ):
            # Over the cap: refuse with a typed reply rather than letting
            # idle sockets starve the server, then drop the connection.
            self._refused += 1
            await self._reply(
                writer,
                {"ok": False, "type": "Overloaded",
                 "error": f"server at its {self._max_connections}-connection "
                          "cap; retry shortly", "retry_after": 0.1},
            )
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            return
        self._connections += 1
        try:
            while not self._shutdown.is_set():
                try:
                    if self._idle_timeout is None:
                        line = await reader.readline()
                    else:
                        line = await asyncio.wait_for(
                            reader.readline(), self._idle_timeout
                        )
                except asyncio.TimeoutError:
                    # Idle past the per-connection read timeout: reclaim
                    # the slot (the client can reconnect).
                    self._idle_drops += 1
                    break
                except (ConnectionError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                if len(line) > MAX_REQUEST_BYTES:
                    await self._reply(
                        writer,
                        {"ok": False, "type": "ServeError",
                         "error": f"request exceeds {MAX_REQUEST_BYTES} bytes"},
                    )
                    break
                stop = await self._dispatch(writer, line)
                if stop:
                    break
        finally:
            self._connections -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # client already gone
                pass

    async def _dispatch(self, writer: asyncio.StreamWriter, line: bytes) -> bool:
        """Run one request; returns True when the connection should end."""
        try:
            req = json.loads(line)
            if not isinstance(req, dict):
                raise ServeError("request must be a JSON object")
            op = req.get("op")
            if op == "query":
                results, info = await self._service.query_info(
                    **_selectors(req)
                )
                header = {
                    "ok": True,
                    "patches": [
                        {
                            "key": list(key),
                            "dtype": arr.dtype.str,
                            "shape": list(arr.shape),
                            "nbytes": int(arr.nbytes),
                        }
                        for key, arr in results.items()
                    ],
                    "info": asdict(info),
                    # Degraded-serving health flags, lifted out of info
                    # so thin clients need not parse the accounting.
                    "partial": bool(info.partial),
                    "missing": list(info.missing),
                }
                await self._reply(
                    writer, header,
                    payload=[np.ascontiguousarray(a) for a in results.values()],
                )
                return False
            if op == "plan":
                plan = await self._service.plan(
                    **{
                        k: v
                        for k, v in _selectors(req).items()
                        if k != "region"
                    }
                )
                await self._reply(
                    writer,
                    {
                        "ok": True,
                        "extent_bytes": plan.extent_bytes,
                        "fetched_bytes": plan.fetched_bytes,
                        "slack_bytes": plan.slack_bytes,
                        "n_reads": plan.n_reads,
                        "n_group_batches": plan.n_group_batches,
                        "steps": [s.step for s in plan.steps],
                    },
                )
                return False
            if op == "stats":
                stats = self._service.stats
                stats["server"] = {
                    "connections": self._connections,
                    "max_connections": self._max_connections,
                    "idle_timeout": self._idle_timeout,
                    "refused": self._refused,
                    "idle_drops": self._idle_drops,
                }
                await self._reply(writer, {"ok": True, "stats": stats})
                return False
            if op == "meta":
                svc = self._service
                await self._reply(
                    writer,
                    {
                        "ok": True,
                        "path": svc.path,
                        "steps": list(svc.steps),
                        "fields": list(svc.fields),
                        "codec": svc.codec,
                        "error_bound": svc.error_bound,
                        "mode": svc.mode,
                        "sharded": svc.is_sharded,
                        "recovered": svc.recovered,
                    },
                )
                return False
            if op == "ping":
                await self._reply(writer, {"ok": True})
                return False
            if op == "shutdown":
                await self._reply(writer, {"ok": True})
                self._shutdown.set()
                return True
            raise ServeError(f"unknown op {op!r}")
        except Overloaded as exc:
            await self._reply(
                writer,
                {"ok": False, "type": "Overloaded", "error": str(exc),
                 "retry_after": exc.retry_after},
            )
            return False
        except ReproError as exc:
            await self._reply(
                writer,
                {"ok": False, "type": type(exc).__name__, "error": str(exc)},
            )
            return False
        except json.JSONDecodeError as exc:
            await self._reply(
                writer,
                {"ok": False, "type": "ServeError",
                 "error": f"request is not valid JSON: {exc}"},
            )
            return False
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            # Defensive: an unexpected bug must fail the request, never
            # the connection (other in-flight clients are untouched).
            await self._reply(
                writer,
                {"ok": False, "type": type(exc).__name__,
                 "error": f"unexpected server error: {exc}"},
            )
            return False

    @staticmethod
    async def _reply(
        writer: asyncio.StreamWriter, header: dict, payload=None
    ) -> None:
        try:
            writer.write(json.dumps(header).encode() + b"\n")
            for arr in payload or ():
                writer.write(arr.tobytes())
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # client went away mid-reply; nothing to salvage


class TCPClient:
    """Blocking client for :class:`QueryServer` (tests/scripts/tools).

    .. code-block:: python

        with TCPClient("127.0.0.1", port) as client:
            arrays = client.query(steps=3, levels=1, fields="f")
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        import socket

        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("rb")

    def _request(self, obj: dict) -> dict:
        self._sock.sendall(json.dumps(obj).encode() + b"\n")
        line = self._rfile.readline()
        if not line:
            raise ServeError("server closed the connection")
        header = json.loads(line)
        if not header.get("ok"):
            etype = header.get("type", "unknown")
            msg = header.get("error", "?")
            # Resilience errors come back typed so callers can react
            # (retry after a hint, extend a deadline) without parsing.
            if etype == "Overloaded":
                raise Overloaded(
                    f"server error (Overloaded): {msg}",
                    retry_after=header.get("retry_after"),
                )
            if etype == "DeadlineExceeded":
                raise DeadlineExceeded(
                    f"server error (DeadlineExceeded): {msg}"
                )
            if etype in (
                "StorageError", "TransientStorageError", "CircuitOpenError"
            ):
                raise StorageError(f"server error ({etype}): {msg}")
            raise ServeError(f"server error ({etype}): {msg}")
        return header

    def _read_exact(self, n: int) -> bytes:
        out = bytearray()
        while len(out) < n:
            chunk = self._rfile.read(n - len(out))
            if not chunk:
                raise ServeError(
                    f"server closed mid-payload ({len(out)} of {n} bytes)"
                )
            out += chunk
        return bytes(out)

    def query_info(self, **selectors) -> tuple[dict, dict]:
        """Run a query; returns ``(arrays, info-dict)`` with arrays keyed
        ``(step, level, field, patch)``, read-only, byte-identical to the
        server's."""
        header = self._request({"op": "query", **selectors})
        out: dict[tuple, np.ndarray] = {}
        for spec in header["patches"]:
            blob = self._read_exact(int(spec["nbytes"]))
            arr = np.frombuffer(blob, dtype=np.dtype(spec["dtype"])).reshape(
                spec["shape"]
            )
            arr.setflags(write=False)
            step, level, field, patch = spec["key"]
            out[(int(step), int(level), str(field), int(patch))] = arr
        return out, header["info"]

    def query(self, **selectors) -> dict:
        """Synchronous selective read over the socket."""
        return self.query_info(**selectors)[0]

    def plan(self, **selectors) -> dict:
        """Byte plan the server would execute for these selectors."""
        header = self._request({"op": "plan", **selectors})
        return {k: v for k, v in header.items() if k != "ok"}

    def stats(self) -> dict:
        """Server-side cumulative counters."""
        return self._request({"op": "stats"})["stats"]

    def meta(self) -> dict:
        """What the server is serving (path/steps/fields/codec/...)."""
        return {
            k: v for k, v in self._request({"op": "meta"}).items() if k != "ok"
        }

    def ping(self) -> bool:
        return bool(self._request({"op": "ping"})["ok"])

    def shutdown(self) -> None:
        """Ask the server to drain and exit (it replies before stopping)."""
        self._request({"op": "shutdown"})

    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "TCPClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
