"""Asyncio query service over series, sharded-campaign, and snapshot files.

:class:`QueryService` is the serving layer the in-situ pipeline writes
*for*: it answers selective ``(step, level, field, patch[, region])``
queries from many concurrent clients over one opened source — an RPH2S
series, an RPHM sharded campaign (each step routed to its owning shard),
or a standalone RPH2 snapshot (served as step 0). Three properties hold
end to end:

* **O(selection) bytes per query.** Every query is planned
  (:mod:`repro.serve.planner`): the needed payload extents are coalesced
  into minimal ranged reads under an explicit slack budget, and all byte
  access goes through a :mod:`repro.storage` backend — so a
  :class:`~repro.storage.RangedBackend`'s readahead, retry, and request
  accounting apply to the serving path unchanged.
* **The event loop never blocks on decode.** Entropy decode runs on a
  :class:`~repro.parallel.WorkerPool` (``asyncio`` futures wrap the pool's
  ``concurrent.futures`` ones), and byte fetches run on the loop's default
  executor behind a per-file lock; the loop only plans, slices, and
  assembles. Grouped (RPGB) members requested together decode as **one
  shared-codebook batch** per group.
* **Warm queries touch zero payload bytes.** Decoded patches, parsed
  segment catalogs, and group headers/codebooks live in one byte-budgeted
  :class:`~repro.serve.cache.ServeCache`; a repeat query is served
  entirely from it (the benchmarks gate this at exactly 0 bytes).

Results are read-only ``ndarray`` views — the same object may serve many
clients, so mutation is refused by numpy rather than corrupting the cache.
Per-query accounting comes back through :class:`QueryInfo`
(``extent_bytes`` / ``fetched_bytes`` / ``meta_bytes`` / cache hits), and
cumulative counters through :attr:`QueryService.stats`.

A service instance binds to one event loop (locks are created lazily on
first use); drive it either from your own ``asyncio`` code or through
:class:`InProcessClient`, which runs the service on a dedicated loop
thread and exposes a synchronous facade — what the tests, benchmarks, and
multi-threaded callers use. The TCP front end lives in
:mod:`repro.serve.net`.
"""

from __future__ import annotations

import asyncio
import io
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.compression.base import SharedEntropy
from repro.compression.container import (
    CONTAINER_MAGIC,
    ContainerReader,
    PatchIndexEntry,
    _decode_entry_stream,
    _normalize_selector,
)
from repro.errors import (
    DeadlineExceeded,
    FormatError,
    ReproError,
    ServeError,
    StorageError,
)
from repro.insitu.series import SEAL_SIZE, SERIES_MAGIC, SeriesReader
from repro.insitu.sharded import MANIFEST_MAGIC
from repro.parallel.pool import WorkerPool
from repro.serve.cache import ServeCache
from repro.serve.planner import (
    DEFAULT_GAP_CAP,
    DEFAULT_SLACK,
    QueryPlan,
    StepPlan,
    plan_step,
)
from repro.serve.resilience import AdmissionGate, CircuitBreaker, Deadline
from repro.storage import LocalFileBackend, StorageBackend

__all__ = ["QueryService", "QueryInfo", "InProcessClient"]

#: Default decoded-patch + catalog cache budget (bytes).
DEFAULT_CACHE_BYTES = 64 << 20


@dataclass
class QueryInfo:
    """Per-query accounting, returned by :meth:`QueryService.query_info`.

    ``extent_bytes`` is the sum of payload extents the query *needed*
    (the O(selection) floor); ``fetched_bytes`` is what the coalesced
    reads actually touched (``<= (1 + slack) * extent_bytes`` by planner
    construction, and 0 for a fully warm query); ``meta_bytes`` counts
    segment footers/indexes and group headers read on this query's
    behalf.
    """

    keys: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    extent_bytes: int = 0
    fetched_bytes: int = 0
    meta_bytes: int = 0
    ranged_reads: int = 0
    group_batches: int = 0
    #: Segments reconstructed from parity on this query's behalf
    #: (self-healing reads over a damaged shard).
    repairs: int = 0
    #: Whether the query ran in degraded (``partial=True``) mode.
    partial: bool = False
    #: Degraded-mode report: one ``{"step", "file", "error", "detail"}``
    #: dict per selected step whose shard/segment could not be served.
    missing: list = field(default_factory=list)


@dataclass
class _StepCatalog:
    """One step's parsed segment index plus its counting byte window."""

    file: str
    step: int
    base: int
    reader: ContainerReader
    window: "_CatalogWindow"


class _CatalogWindow:
    """Seekable read-only view of one segment, fetched through the
    service's backend handle and counting every byte it reads (the
    ``meta_bytes`` accounting surface). The
    :class:`~repro.compression.container.ContainerReader` built over it
    reads the segment footer, index, and group headers this way — never
    payload (payload extents go through the planner's coalesced reads).
    """

    def __init__(self, service: "QueryService", file: str, base: int, length: int):
        self._service = service
        self._file = file
        self._base = base
        self._length = length
        self._pos = 0
        self.bytes_read = 0

    def seek(self, offset: int, whence: int = io.SEEK_SET) -> int:
        if whence == io.SEEK_SET:
            pos = offset
        elif whence == io.SEEK_CUR:
            pos = self._pos + offset
        elif whence == io.SEEK_END:
            pos = self._length + offset
        else:  # pragma: no cover - mirrors io semantics
            raise ValueError(f"invalid whence {whence}")
        if pos < 0:
            raise ValueError("negative seek position")
        self._pos = pos
        return pos

    def tell(self) -> int:
        return self._pos

    def read(self, size: int = -1) -> bytes:
        if self._pos >= self._length:
            return b""
        budget = self._length - self._pos
        n = budget if size is None or size < 0 else min(size, budget)
        out = self._service._fetch_sync(self._file, self._base + self._pos, n)
        self._pos += len(out)
        self.bytes_read += len(out)
        return out


def _check_extent(blob, length: int, crc: int, what: str, verify: bool):
    if len(blob) != length:
        raise FormatError(
            f"{what}: fetched {len(blob)} of {length} extent bytes (truncated?)"
        )
    if verify and zlib.crc32(blob) != crc:
        raise FormatError(f"checksum mismatch in {what}")


def _decode_single_task(task) -> list[np.ndarray]:
    """Decode one self-contained stream (runs on the worker pool)."""
    entry, blob, verify = task
    _check_extent(blob, entry.length, entry.crc32,
                  f"patch stream {entry.describe()}", verify)
    return [_decode_entry_stream(entry, blob)]

def _decode_group_task(task) -> list[np.ndarray]:
    """Decode all requested members of one RPGB group against its shared
    codebook in a single worker task — the codebook's decode tables are
    built once for the whole batch (``SharedEntropy`` resolves raw
    codebook bytes through a memo for process-mode workers)."""
    codebook, items, verify = task
    out = []
    for entry, blob, payload, payload_crc in items:
        _check_extent(blob, entry.length, entry.crc32,
                      f"patch stream {entry.describe()}", verify)
        _check_extent(payload, len(payload), payload_crc,
                      f"group payload of {entry.describe()}", verify)
        out.append(
            _decode_entry_stream(entry, blob, SharedEntropy(codebook, payload))
        )
    return out


def _reap_future(fut: asyncio.Future) -> None:
    """Mark a doomed decode future's exception retrieved (or swallow its
    cancellation) so abandoning it is warning-free."""
    if not fut.cancelled():
        fut.exception()


def _apply_region(arr: np.ndarray, region, key) -> np.ndarray:
    """Slice one decoded patch by per-axis ``(lo, hi)`` pairs."""
    if len(region) != arr.ndim:
        raise ServeError(
            f"region has {len(region)} axis ranges but patch {key} is "
            f"{arr.ndim}-dimensional"
        )
    slices = []
    for axis, pair in enumerate(region):
        try:
            lo, hi = pair
            lo, hi = int(lo), int(hi)
        except (TypeError, ValueError):
            raise ServeError(
                f"region axis {axis} must be a (lo, hi) pair, got {pair!r}"
            ) from None
        if lo < 0 or hi < lo:
            raise ServeError(
                f"region axis {axis} range ({lo}, {hi}) is invalid"
            )
        slices.append(slice(lo, hi))
    return arr[tuple(slices)]


class QueryService:
    """Concurrent selective-read service over one series/snapshot source.

    Parameters
    ----------
    path:
        An RPH2S series file, an RPHM sharded-campaign manifest, or a
        standalone RPH2 snapshot container (served as step 0).
    backend:
        A :class:`repro.storage.StorageBackend` routing **all** byte
        access (index harvest, catalog parses, payload reads). Default:
        local files.
    recover:
        Passed through to :meth:`SeriesReader.open` — serve the
        fully-sealed steps of a crash-interrupted series/campaign.
    cache_bytes:
        Byte budget of the LRU over decoded patches, segment catalogs,
        and group headers; ``None`` disables caching (catalogs are then
        kept in a plain per-step table so repeated queries still skip
        re-parsing, but every payload byte is re-fetched and re-decoded).
    pool:
        A persistent :class:`~repro.parallel.WorkerPool` for entropy
        decode. Without one the service creates (and owns) a pool of
        ``decode_mode`` workers. A ``"serial"`` pool decodes inline on
        the event loop — the deterministic test mode. If an *owned*
        process pool breaks (a worker died), the service converts the
        failure to a typed :class:`~repro.errors.ServeError` and
        rebuilds the pool, so the query after the failure succeeds.
    workers:
        Size of the owned pool (``None``/0 = one per core).
    decode_mode:
        Mode of the owned pool (``"serial"``/``"thread"``/``"process"``);
        ignored when ``pool`` is given.
    gap_cap, slack:
        Planner coalescing knobs (see
        :func:`repro.serve.planner.coalesce_extents`).
    max_inflight, max_queue, max_bytes:
        Admission control (:class:`~repro.serve.resilience.AdmissionGate`):
        at most ``max_inflight`` queries run concurrently, ``max_queue``
        more wait FIFO, and beyond that arrivals are shed with
        :class:`~repro.errors.Overloaded` (carrying a ``retry_after``
        hint). ``max_bytes`` additionally bounds the summed *planned*
        fetch bytes of executing queries. ``max_inflight=None`` /
        ``max_bytes=None`` disable the respective budget.
    breaker_threshold, breaker_cooldown:
        Per-backend-file circuit breakers
        (:class:`~repro.serve.resilience.CircuitBreaker`):
        ``breaker_threshold`` consecutive storage faults against one
        file/shard fast-fail further access to it with
        :class:`~repro.errors.CircuitOpenError` for ``breaker_cooldown``
        seconds (then one probe is let through).
        ``breaker_threshold=None`` disables breakers.
    heal:
        Self-healing reads: when a shard of a parity-carrying campaign
        (``ShardedSeriesWriter(parity=p)``) fails with a
        :class:`~repro.errors.StorageError` / ``FormatError``, reconstruct
        the needed segment from the surviving shards
        (:class:`repro.integrity.SegmentHealer`) instead of failing the
        query (or, under ``partial=True``, instead of reporting the step
        ``missing``). Each reconstruction counts in ``stats["repairs"]``
        and :attr:`QueryInfo.repairs`.
    heal_write_back:
        Additionally patch each reconstruction back into the damaged
        shard file, best-effort (a deleted shard still needs
        :func:`repro.integrity.repair_sharded`).
    clock:
        Monotonic clock used by deadlines, breakers, and the admission
        EWMA — injectable for tests.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        backend: StorageBackend | None = None,
        recover: bool = False,
        cache_bytes: int | None = DEFAULT_CACHE_BYTES,
        pool: WorkerPool | None = None,
        workers: int | None = 2,
        decode_mode: str = "thread",
        gap_cap: int = DEFAULT_GAP_CAP,
        slack: float = DEFAULT_SLACK,
        max_inflight: int | None = 64,
        max_queue: int = 256,
        max_bytes: int | None = None,
        breaker_threshold: int | None = 5,
        breaker_cooldown: float = 30.0,
        heal: bool = True,
        heal_write_back: bool = False,
        clock=time.monotonic,
    ):
        self._path = str(path)
        self._given_backend = backend
        self._backend = backend if backend is not None else LocalFileBackend()
        self._gap_cap = int(gap_cap)
        self._slack = float(slack)
        self._cache = ServeCache(cache_bytes) if cache_bytes is not None else None
        self._plain_catalogs: dict[tuple, _StepCatalog] = {}
        self._owns_pool = pool is None
        self._decode_mode = decode_mode if pool is None else pool.mode
        self._workers_arg = workers
        self._pool = (
            pool if pool is not None
            else WorkerPool(decode_mode, workers=workers)
        )
        self._clock = clock
        self._admission = AdmissionGate(max_inflight, max_queue, max_bytes)
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown = float(breaker_cooldown)
        self._breakers: dict[str, CircuitBreaker] = {}
        self._heal = bool(heal)
        self._heal_write_back = bool(heal_write_back)
        #: Parity accounting rows from the campaign manifest (sharded
        #: sources only); the lazy SegmentHealer is built from them.
        self._parity_rows: tuple = ()
        self._healer = None
        self._handles: dict[str, tuple[Any, threading.Lock]] = {}
        self._locks: dict[tuple, asyncio.Lock] = {}
        #: Single-flight table: patch cache key -> future of the decode a
        #: concurrent query already started (thundering-herd protection).
        self._inflight: dict[tuple, asyncio.Future] = {}
        self._closed = False
        self._stats = {
            "queries": 0,
            "patches_served": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "extent_bytes": 0,
            "payload_bytes": 0,
            "meta_bytes": 0,
            "ranged_reads": 0,
            "group_batches": 0,
            "deadline_exceeded": 0,
            "partial_queries": 0,
            "pool_rebuilds": 0,
            "repairs": 0,
        }
        #: step -> (file, segment offset, segment length)
        self._segments: dict[int, tuple[str, int, int]] = {}
        self.is_sharded = False
        self.recovered = False
        try:
            self._harvest(recover)
        except BaseException:
            self._release()
            raise

    def _harvest(self, recover: bool) -> None:
        """Read the source's step table and metadata once, then let go of
        the reader — the service does its own (planned, counted) reads."""
        probe = self._backend.open_read(self._path)
        try:
            head = probe.read(len(SERIES_MAGIC))
        finally:
            probe.close()
        if head == SERIES_MAGIC or head[: len(MANIFEST_MAGIC)] == MANIFEST_MAGIC:
            try:
                reader = SeriesReader.open(
                    self._path, recover=recover, backend=self._given_backend
                )
            except (StorageError, FormatError, OSError) as exc:
                # A campaign with a dead shard cannot federate the normal
                # way — but if it carries parity, the missing shard's step
                # table is recorded in the parity stripe indexes and its
                # payload is reconstructible on demand.
                if not (
                    self._heal
                    and head[: len(MANIFEST_MAGIC)] == MANIFEST_MAGIC
                ):
                    raise
                self._harvest_degraded(recover, exc)
                self._step_order = sorted(self._segments)
                return
            try:
                self.is_sharded = bool(reader.is_sharded)
                self.recovered = bool(reader.recovered)
                self._parity_rows = tuple(getattr(reader, "parity", ()) or ())
                self._meta = reader.meta()
                for e in reader.step_entries:
                    file = (
                        reader.shard_of(e.step) if self.is_sharded else self._path
                    )
                    self._segments[e.step] = (file, e.offset, e.length)
            finally:
                reader.close()
        elif head[: len(CONTAINER_MAGIC)] == CONTAINER_MAGIC:
            snap = ContainerReader.open(self._path, backend=self._given_backend)
            try:
                self._meta = {
                    k: snap.meta()[k]
                    for k in ("codec", "error_bound", "mode", "fields",
                              "exclude_covered")
                }
            finally:
                snap.close()
            self._segments[0] = (self._path, 0, self._backend.size(self._path))
        else:
            raise FormatError(
                f"{self._path}: not an RPH2 container, RPH2S series, or RPHM "
                f"manifest (magic {head!r})"
            )
        self._step_order = sorted(self._segments)

    def _harvest_degraded(self, recover: bool, cause: BaseException) -> None:
        """Manifest-driven harvest for a campaign whose federated open
        failed: live shards contribute their own step tables, and a dead
        shard's segment extents come from the parity shards' stripe
        indexes (its bytes are reconstructed on first touch). Re-raises
        the original open failure when the campaign carries no parity or
        a dead shard is outside parity coverage."""
        from repro.insitu.sharded import _shard_path, parse_manifest
        from repro.integrity.parity import ParityReader

        handle = self._backend.open_read(self._path)
        try:
            man = parse_manifest(handle.read())
        finally:
            handle.close()
        rows = list(man.get("parity") or [])
        if not rows:
            raise cause
        self.is_sharded = True
        self._parity_rows = tuple(rows)
        self._meta = {
            k: man[k]
            for k in ("codec", "error_bound", "mode", "fields",
                      "exclude_covered")
        }
        dead: list[str] = []
        for base in (str(row["name"]) for row in man["shards"]):
            full = _shard_path(self._path, base)
            try:
                sub = SeriesReader.open(
                    full, recover=recover, backend=self._given_backend
                )
            except (StorageError, FormatError, OSError):
                dead.append(base)
                continue
            try:
                self.recovered = self.recovered or bool(sub.recovered)
                for e in sub.step_entries:
                    self._segments[e.step] = (full, e.offset, e.length)
            finally:
                sub.close()
        for base in dead:
            covered = False
            for row in rows:
                if base not in row["members"]:
                    continue
                try:
                    pr = ParityReader(
                        _shard_path(self._path, str(row["name"])),
                        backend=self._backend,
                    )
                except (StorageError, FormatError):
                    continue
                try:
                    covered = True
                    full = _shard_path(self._path, base)
                    for stripe in pr.stripes:
                        for m in stripe.members:
                            if m.shard == base and m.step not in self._segments:
                                # Stripe members span segment + seal; the
                                # step table records the bare segment.
                                self._segments[m.step] = (
                                    full, m.offset, m.length - SEAL_SIZE
                                )
                finally:
                    pr.close()
            if not covered:
                raise cause

    # ------------------------------------------------------------------
    # Lifecycle / metadata
    # ------------------------------------------------------------------
    def _release(self) -> None:
        for handle, _ in self._handles.values():
            try:
                handle.close()
            except Exception:
                pass
        self._handles.clear()
        if self._healer is not None:
            try:
                self._healer.close()
            except Exception:
                pass
            self._healer = None
        if self._owns_pool:
            self._pool.close()

    def close(self) -> None:
        """Release file handles and the owned worker pool (idempotent).
        Call from the loop the service ran on, after in-flight queries
        drain — :class:`InProcessClient` does this for you."""
        if self._closed:
            return
        self._closed = True
        self._release()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def path(self) -> str:
        """The served series/manifest/snapshot path."""
        return self._path

    @property
    def steps(self) -> tuple[int, ...]:
        """Served timestep numbers, ascending (``(0,)`` for a snapshot)."""
        return tuple(self._step_order)

    @property
    def fields(self) -> tuple[str, ...]:
        """Field names recorded at write time."""
        return tuple(self._meta["fields"])

    @property
    def codec(self) -> str:
        """Default codec name recorded at write time."""
        return str(self._meta["codec"])

    @property
    def error_bound(self) -> float:
        """Error bound the source was compressed under."""
        return float(self._meta["error_bound"])

    @property
    def mode(self) -> str:
        """Error-bound mode (``"abs"`` or ``"rel"``)."""
        return str(self._meta["mode"])

    @property
    def stats(self) -> dict:
        """Cumulative counter snapshot (plus cache, admission-control,
        and per-file circuit-breaker stats)."""
        out = dict(self._stats)
        out["cache"] = self._cache.stats if self._cache is not None else None
        out["admission"] = self._admission.stats
        out["shed"] = self._admission.shed
        out["breakers"] = {
            file: b.stats for file, b in sorted(self._breakers.items())
        }
        return out

    # ------------------------------------------------------------------
    # Byte access (executor side)
    # ------------------------------------------------------------------
    def _handle(self, file: str):
        """The (handle, lock) pair for one file — loop-thread only; the
        executor jobs receive the pair, never the dict."""
        pair = self._handles.get(file)
        if pair is None:
            pair = (self._backend.open_read(file), threading.Lock())
            self._handles[file] = pair
        return pair

    def _fetch_sync(self, file: str, offset: int, length: int) -> bytes:
        """One ranged fetch through the per-file handle (executor side)."""
        handle, lock = self._handles[file]
        with lock:
            handle.seek(offset)
            blob = handle.read(length)
        return blob

    # ------------------------------------------------------------------
    # Failure isolation
    # ------------------------------------------------------------------
    def _breaker(self, file: str) -> CircuitBreaker | None:
        """This file's circuit breaker (lazily created; ``None`` when
        breakers are disabled). Only :class:`~repro.errors.StorageError`
        counts as a failure — a :class:`~repro.errors.FormatError` means
        the *data* is bad, not the backend."""
        if self._breaker_threshold is None:
            return None
        b = self._breakers.get(file)
        if b is None:
            b = CircuitBreaker(
                self._breaker_threshold, self._breaker_cooldown, self._clock
            )
            self._breakers[file] = b
        return b

    def _note_pool_failure(self) -> bool:
        """Rebuild the owned decode pool after a worker death poisoned it
        (``BrokenProcessPool`` fails every future on a broken pool until
        it is replaced). Returns whether a rebuild happened."""
        if not (self._owns_pool and self._pool.broken and not self._closed):
            return False
        try:
            self._pool.close()
        except Exception:
            pass
        self._pool = WorkerPool(self._decode_mode, workers=self._workers_arg)
        self._stats["pool_rebuilds"] += 1
        return True

    def _pool_failure_error(self, exc: BaseException) -> ServeError:
        """Typed error for a decode-pool death (e.g. a killed process
        worker); replaces an owned broken pool so the *next* query
        succeeds."""
        rebuilt = self._note_pool_failure()
        hint = "; the pool was rebuilt — retry the query" if rebuilt else ""
        return ServeError(
            f"decode worker pool failed ({type(exc).__name__}: {exc}){hint}"
        )

    # ------------------------------------------------------------------
    # Parity self-healing
    # ------------------------------------------------------------------
    def _get_healer(self):
        """The lazy :class:`~repro.integrity.SegmentHealer` over this
        campaign's parity shards, or ``None`` when healing is off or the
        source is not a parity-carrying sharded campaign."""
        if not (self._heal and self.is_sharded and self._parity_rows):
            return None
        if self._healer is None:
            # Lazy import: repro.serve must stay importable without the
            # integrity subsystem loaded (and most services never heal).
            from repro.integrity.repair import SegmentHealer

            self._healer = SegmentHealer(
                self._path, self._parity_rows, backend=self._backend
            )
        return self._healer

    def _heal_step_sync(
        self, step, want_levels, want_fields, want_patches, verify
    ) -> dict[tuple, np.ndarray]:
        """Reconstruct one step's segment from parity and decode the
        selected patches out of it (executor side). The reconstruction is
        checksum-proven by :meth:`SegmentHealer.heal` before any decode.
        Returns arrays keyed ``(level, field, patch)``."""
        healer = self._healer
        file = self._segments[step][0]
        member, blob = healer.heal(file, step)
        if self._heal_write_back:
            healer.write_back(file, member, blob)
        # The stripe member spans segment + seal; the RPH2 container ends
        # at the seal boundary.
        reader = ContainerReader(bytes(blob[: member.length - SEAL_SIZE]))
        return reader.select(
            levels=want_levels, fields=want_fields, patches=want_patches,
            verify=verify,
        )

    async def _heal_step(
        self, step, want_levels, want_fields, want_patches, verify,
        info: QueryInfo,
    ) -> dict[tuple, np.ndarray] | None:
        """Try to serve one unservable step by parity reconstruction.
        Returns the decoded ``(level, field, patch) -> array`` map, or
        ``None`` when the step cannot be healed (no parity, multi-loss
        stripe, a survivor failed its checksum) — the caller then falls
        back to the ordinary failure path."""
        if self._get_healer() is None:
            return None
        loop = asyncio.get_running_loop()
        try:
            healed = await loop.run_in_executor(
                None, self._heal_step_sync, step,
                want_levels, want_fields, want_patches, verify,
            )
        except (ReproError, OSError):
            return None
        self._stats["repairs"] += 1
        info.repairs += 1
        return healed

    def _absorb_healed(
        self, step: int, file: str, healed: dict, verify: bool,
        hits: dict, owned: dict | None,
    ) -> None:
        """Install one healed step's patches: cache them, resolve any
        single-flight futures this query registered for the step, and
        merge them into the hit map."""
        for (lvl, fld, p), arr in healed.items():
            arr.setflags(write=False)
            key = (step, lvl, fld, p)
            # Mirrors _patch_key (which takes a PatchIndexEntry).
            pkey = ("patch", file, step, lvl, fld, p, verify)
            if self._cache is not None:
                self._cache.put(pkey, arr, arr.nbytes)
            if owned is not None and key in owned:
                opkey, fut = owned.pop(key)
                self._inflight.pop(opkey, None)
                if not fut.done():
                    fut.set_result(arr)
            hits.setdefault(key, arr)

    # ------------------------------------------------------------------
    # Catalogs and group headers
    # ------------------------------------------------------------------
    def _catalog_key(self, file: str, step: int) -> tuple:
        return ("catalog", file, step)

    def _catalog_cached(self, file: str, step: int) -> _StepCatalog | None:
        if self._cache is not None:
            return self._cache.get(self._catalog_key(file, step))
        return self._plain_catalogs.get((file, step))

    async def _catalog(self, step: int, info: QueryInfo) -> _StepCatalog:
        file, base, length = self._segments[step]
        cat = self._catalog_cached(file, step)
        if cat is not None:
            return cat
        breaker = self._breaker(file)
        if breaker is not None:
            breaker.check(f"step {step} catalog ({file})")
        lock = self._locks.setdefault((file, step), asyncio.Lock())
        async with lock:
            cat = self._catalog_cached(file, step)
            if cat is not None:
                return cat
            self._handle(file)  # open before entering the executor
            window = _CatalogWindow(self, file, base, length)
            loop = asyncio.get_running_loop()
            try:
                reader = await loop.run_in_executor(None, ContainerReader, window)
            except FormatError as exc:
                raise FormatError(f"step {step} segment: {exc}") from exc
            except StorageError:
                if breaker is not None:
                    breaker.record_failure()
                raise
            if breaker is not None:
                breaker.record_success()
            cat = _StepCatalog(file, step, base, reader, window)
            self._stats["meta_bytes"] += window.bytes_read
            info.meta_bytes += window.bytes_read
            if self._cache is not None:
                self._cache.put(self._catalog_key(file, step), cat,
                                window.bytes_read)
            else:
                self._plain_catalogs[(file, step)] = cat
            return cat

    async def _load_groups(
        self, cat: _StepCatalog, gids: Sequence[int], verify: bool, info: QueryInfo
    ) -> None:
        """Ensure every needed group header (codebook + extent table) is
        parsed on the catalog, counting header bytes as metadata."""
        if not gids:
            return
        lock = self._locks.setdefault((cat.file, cat.step), asyncio.Lock())
        async with lock:
            before = cat.window.bytes_read

            def load() -> None:
                for gid in gids:
                    handle = cat.reader.group(gid, verify=verify)
                    handle.codebook  # parse the decode tables now,
                    # immutable afterwards: worker threads only read them

            loop = asyncio.get_running_loop()
            try:
                await loop.run_in_executor(None, load)
            except StorageError:
                breaker = self._breaker(cat.file)
                if breaker is not None:
                    breaker.record_failure()
                raise
            delta = cat.window.bytes_read - before
            if delta:
                self._stats["meta_bytes"] += delta
                info.meta_bytes += delta
                if self._cache is not None:
                    self._cache.inflate(self._catalog_key(cat.file, cat.step), delta)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def _patch_key(self, file: str, step: int, e: PatchIndexEntry, verify: bool):
        return ("patch", file, step, e.level, e.field, e.patch, verify)

    def _plan_for(self, cat: _StepCatalog, misses: list[PatchIndexEntry]) -> StepPlan:
        gids = sorted({e.group for e in misses if e.group is not None})
        return plan_step(
            cat.file,
            cat.step,
            cat.base,
            misses,
            {g: cat.reader.group_entry(g).offset for g in gids},
            {g: cat.reader.group(g, verify=False) for g in gids},
            gap_cap=self._gap_cap,
            slack_frac=self._slack,
        )

    @staticmethod
    def _note_missing(info: QueryInfo, step: int, file: str,
                      exc: BaseException) -> None:
        """Record one unservable step in the query's degraded-mode report
        (idempotent per step)."""
        if any(m["step"] == step for m in info.missing):
            return
        info.missing.append({
            "step": step,
            "file": file,
            "error": type(exc).__name__,
            "detail": str(exc),
        })

    async def _gather(
        self, want_steps, want_levels, want_fields, want_patches, verify: bool,
        info: QueryInfo, owned: dict | None = None, partial: bool = False,
    ) -> tuple[dict, list, list[tuple[_StepCatalog, StepPlan]]]:
        """Walk the selection: serve cache hits, join in-flight decodes
        another query already started (recorded in ``waits``; counted as
        hits — they cost this query no bytes), and plan the true misses.
        When ``owned`` is given, each planned patch registers a
        single-flight future there (and in ``_inflight``) that the caller
        MUST resolve or fail; ``owned=None`` (the ``plan()`` path) skips
        the single-flight table entirely. With ``partial=True``, a step
        whose catalog cannot be loaded (dead shard, tripped breaker,
        corrupt segment) is reported in ``info.missing`` instead of
        failing the query."""
        hits: dict[tuple, np.ndarray] = {}
        waits: list[tuple[tuple, asyncio.Future]] = []
        work: list[tuple[_StepCatalog, StepPlan]] = []
        for s in self._step_order:
            if want_steps is not None and s not in want_steps:
                continue
            try:
                cat = await self._catalog(s, info)
            except (StorageError, FormatError) as exc:
                file = self._segments[s][0]
                healed = await self._heal_step(
                    s, want_levels, want_fields, want_patches, verify, info
                )
                if healed is not None:
                    # The catalog never loaded, so this step's patches
                    # were never enumerated: count them here.
                    info.keys += len(healed)
                    info.cache_misses += len(healed)
                    self._absorb_healed(s, file, healed, verify, hits, owned)
                    continue
                if not partial:
                    raise
                self._note_missing(info, s, file, exc)
                continue
            chosen = [
                e
                for e in cat.reader.entries
                if (want_levels is None or e.level in want_levels)
                and (want_fields is None or e.field in want_fields)
                and (want_patches is None or e.patch in want_patches)
            ]
            misses: list[PatchIndexEntry] = []
            for e in chosen:
                info.keys += 1
                key = (s, e.level, e.field, e.patch)
                pkey = self._patch_key(cat.file, s, e, verify)
                cached = (
                    self._cache.get(pkey) if self._cache is not None else None
                )
                if cached is not None:
                    hits[key] = cached
                    info.cache_hits += 1
                    continue
                if owned is not None:
                    pending = self._inflight.get(pkey)
                    if pending is not None:
                        waits.append((key, pending))
                        info.cache_hits += 1
                        continue
                    fut = asyncio.get_running_loop().create_future()
                    self._inflight[pkey] = fut
                    owned[key] = (pkey, fut)
                misses.append(e)
                info.cache_misses += 1
            if misses:
                try:
                    await self._load_groups(
                        cat,
                        sorted({e.group for e in misses if e.group is not None}),
                        verify, info,
                    )
                    plan = self._plan_for(cat, misses)
                except (StorageError, FormatError) as exc:
                    healed = await self._heal_step(
                        s, want_levels, want_fields, want_patches, verify,
                        info,
                    )
                    if healed is not None:
                        self._absorb_healed(
                            s, cat.file, healed, verify, hits, owned
                        )
                        continue
                    if not partial:
                        raise
                    self._note_missing(info, s, cat.file, exc)
                    if owned is not None:
                        self._fail_step_owned(owned, s, exc)
                    continue
                info.extent_bytes += plan.extent_bytes
                info.fetched_bytes += plan.fetched_bytes
                info.ranged_reads += len(plan.reads)
                info.group_batches += sum(
                    1 for b in plan.batches if b.group is not None
                )
                work.append((cat, plan))
        return hits, waits, work

    async def plan(
        self, steps=None, levels=None, fields=None, patches=None,
        verify: bool = True,
    ) -> QueryPlan:
        """The :class:`~repro.serve.planner.QueryPlan` the next ``query``
        with these selectors would execute — cache-hit patches are
        excluded (they cost no bytes). Loads (and caches) the needed
        segment catalogs and group headers, but fetches no payload."""
        self._check_open()
        info = QueryInfo()
        _, _, work = await self._gather(
            _normalize_selector(steps, "step"),
            _normalize_selector(levels, "level"),
            _normalize_selector(fields, "field"),
            _normalize_selector(patches, "patch"),
            verify,
            info,
        )
        return QueryPlan(steps=[plan for _, plan in work])

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    async def _execute(
        self, cat: _StepCatalog, plan: StepPlan, verify: bool
    ) -> dict[tuple, np.ndarray]:
        loop = asyncio.get_running_loop()
        breaker = self._breaker(plan.file)
        if breaker is not None:
            breaker.check(f"step {plan.step} payload ({plan.file})")
        self._handle(plan.file)  # open before entering the executor
        try:
            blobs = await asyncio.gather(
                *[
                    loop.run_in_executor(
                        None, self._fetch_sync, plan.file, r.offset, r.length
                    )
                    for r in plan.reads
                ]
            )
        except StorageError:
            if breaker is not None:
                breaker.record_failure()
            raise
        if breaker is not None:
            breaker.record_success()
        copy = self._pool.mode == "process"
        data: dict[tuple, Any] = {
            (e.key, e.kind): b"" for e in plan.extents
        }
        for r, blob in zip(plan.reads, blobs):
            if len(blob) != r.length:
                raise FormatError(
                    f"{plan.file}: ranged read at {r.offset} returned "
                    f"{len(blob)} of {r.length} bytes (truncated?)"
                )
            view = blob if copy else memoryview(blob)
            for ext in r.extents:
                lo = ext.offset - r.offset
                data[(ext.key, ext.kind)] = view[lo : lo + ext.length]
        futures = []
        key_lists: list[list[tuple]] = []
        try:
            for batch in plan.batches:
                if batch.group is None:
                    e = batch.entries[0]
                    key = (plan.step, e.level, e.field, e.patch)
                    task = (e, data[(key, "stream")], verify)
                    futures.append(
                        asyncio.wrap_future(
                            self._pool.submit(_decode_single_task, task)
                        )
                    )
                    key_lists.append([key])
                else:
                    handle = cat.reader.group(batch.group, verify=False)
                    codebook = handle.codebook_bytes if copy else handle.codebook
                    items, keys = [], []
                    for e in batch.entries:
                        key = (plan.step, e.level, e.field, e.patch)
                        _, _, payload_crc = handle.member_extent(e.member)
                        items.append(
                            (e, data[(key, "stream")],
                             data[(key, "group_payload")], payload_crc)
                        )
                        keys.append(key)
                    futures.append(
                        asyncio.wrap_future(
                            self._pool.submit(
                                _decode_group_task, (codebook, items, verify)
                            )
                        )
                    )
                    key_lists.append(keys)
        except ReproError:
            raise
        except Exception as exc:
            # A broken pool fails synchronously at submit time; siblings
            # already submitted are doomed too — consume their errors so
            # nothing surfaces as an unretrieved-exception warning.
            for fut in futures:
                fut.add_done_callback(_reap_future)
            raise self._pool_failure_error(exc) from exc
        # return_exceptions so every worker future is retrieved even when
        # one fails (a broken process pool fails them all at once).
        decoded = await asyncio.gather(*futures, return_exceptions=True)
        first = next(
            (r for r in decoded if isinstance(r, BaseException)), None
        )
        if first is not None:
            if isinstance(first, (ReproError, asyncio.CancelledError)):
                raise first
            raise self._pool_failure_error(first) from first
        out: dict[tuple, np.ndarray] = {}
        for keys, arrays in zip(key_lists, decoded):
            for key, arr in zip(keys, arrays):
                out[key] = arr
        return out

    def _check_open(self) -> None:
        if self._closed:
            raise ServeError("query service is closed")

    def _fail_owned(self, owned: dict, exc: BaseException) -> None:
        """Fail every single-flight future this query registered, so
        queries waiting on a shared decode see the error instead of
        hanging; the cache is never populated on this path."""
        for pkey, fut in owned.values():
            self._inflight.pop(pkey, None)
            if not fut.done():
                fut.set_exception(exc)
                fut.exception()  # mark retrieved: waiters may be gone
        owned.clear()

    def _fail_step_owned(self, owned: dict, step: int, exc: BaseException) -> None:
        """Degraded mode: fail only the single-flight futures of one
        unservable step, leaving the surviving steps' futures to resolve
        normally."""
        for key in [k for k in owned if k[0] == step]:
            pkey, fut = owned.pop(key)
            self._inflight.pop(pkey, None)
            if not fut.done():
                fut.set_exception(exc)
                fut.exception()  # mark retrieved: waiters may be gone

    async def query_info(
        self,
        steps=None,
        levels=None,
        fields=None,
        patches=None,
        region=None,
        verify: bool = True,
        timeout: float | None = None,
        deadline: float | None = None,
        partial: bool = False,
    ) -> tuple[dict[tuple, np.ndarray], QueryInfo]:
        """:meth:`query`, plus this query's :class:`QueryInfo` accounting."""
        self._check_open()
        dl = Deadline.of(timeout, deadline, self._clock)
        try:
            await self._admission.acquire_slot(dl)
        except DeadlineExceeded:
            self._stats["deadline_exceeded"] += 1
            raise
        start = self._clock()
        try:
            coro = self._query_admitted(
                steps, levels, fields, patches, region, verify, dl, partial
            )
            if dl is None:
                return await coro
            try:
                return await asyncio.wait_for(coro, dl.remaining())
            except asyncio.TimeoutError:
                self._stats["deadline_exceeded"] += 1
                what = (
                    f"its {timeout}s timeout" if timeout is not None
                    else "its deadline"
                )
                raise DeadlineExceeded(
                    f"query exceeded {what}; outstanding work was "
                    "cancelled — an immediate retry is safe"
                ) from None
        finally:
            self._admission.release_slot()
            self._admission.note_duration(self._clock() - start)

    async def _query_admitted(
        self, steps, levels, fields, patches, region, verify,
        dl: Deadline | None, partial: bool,
    ) -> tuple[dict[tuple, np.ndarray], QueryInfo]:
        """The admitted query body; runs under the deadline's ``wait_for``
        (cancellation lands at any await — catalog loads, planner fetches,
        decode waits — and is converted to ``DeadlineExceeded`` by the
        caller)."""
        info = QueryInfo(partial=partial)
        owned: dict[tuple, tuple[tuple, asyncio.Future]] = {}
        want_levels = _normalize_selector(levels, "level")
        want_fields = _normalize_selector(fields, "field")
        want_patches = _normalize_selector(patches, "patch")
        try:
            hits, waits, work = await self._gather(
                _normalize_selector(steps, "step"),
                want_levels,
                want_fields,
                want_patches,
                verify,
                info,
                owned,
                partial,
            )
            # Reserve the planned fetch bytes against the admission
            # byte budget for the duration of execution.
            reserved = await self._admission.reserve_bytes(
                sum(plan.fetched_bytes for _, plan in work), dl
            )
            try:
                executed = await asyncio.gather(
                    *[self._execute(cat, plan, verify) for cat, plan in work],
                    # Collect every step's outcome so a failed shard can
                    # be healed from parity (or reported in degraded
                    # mode) without abandoning the surviving steps.
                    return_exceptions=True,
                )
            finally:
                self._admission.release_bytes(reserved)
            kept = []
            for (cat, plan), res in zip(work, executed):
                if isinstance(res, BaseException):
                    storageish = isinstance(res, (StorageError, FormatError))
                    if storageish:
                        healed = await self._heal_step(
                            plan.step, want_levels, want_fields,
                            want_patches, verify, info,
                        )
                        if healed is not None:
                            self._absorb_healed(
                                plan.step, plan.file, healed, verify,
                                hits, owned,
                            )
                            continue
                    if not partial or not storageish:
                        raise res
                    self._fail_step_owned(owned, plan.step, res)
                    self._note_missing(info, plan.step, plan.file, res)
                    continue
                kept.append(res)
            executed = kept
        except BaseException as exc:
            fail = exc
            if (
                isinstance(exc, asyncio.CancelledError)
                and dl is not None
                and dl.expired()
            ):
                # Waiters sharing our single-flight decodes get a typed,
                # retry-safe error instead of a bare cancellation.
                fail = DeadlineExceeded(
                    "owning query's deadline expired before the shared "
                    "decode finished; retry to restart it"
                )
            self._fail_owned(owned, fail)
            raise
        results = dict(hits)
        for sub in executed:
            for key, arr in sub.items():
                arr.setflags(write=False)
                pkey, fut = owned.pop(key)
                self._inflight.pop(pkey, None)
                if self._cache is not None:
                    self._cache.put(pkey, arr, arr.nbytes)
                if not fut.done():
                    fut.set_result(arr)
                results[key] = arr
        # Anything still owned was planned but never decoded (can't
        # happen in a healthy plan; never leave waiters wedged on it).
        if owned:
            self._fail_owned(
                owned, ServeError("planned patch was not decoded")
            )
        if waits:
            # shield: our cancellation (deadline) must not cancel the
            # owning query's decode out from under its other waiters.
            joined = await asyncio.gather(
                *[asyncio.shield(fut) for _, fut in waits],
                return_exceptions=partial,
            )
            for (key, _), arr in zip(waits, joined):
                if partial and isinstance(arr, BaseException):
                    if not isinstance(arr, (StorageError, FormatError)):
                        raise arr
                    self._note_missing(
                        info, key[0], self._segments[key[0]][0], arr
                    )
                    continue
                results[key] = arr
        self._stats["queries"] += 1
        self._stats["patches_served"] += len(results)
        self._stats["cache_hits"] += info.cache_hits
        self._stats["cache_misses"] += info.cache_misses
        self._stats["extent_bytes"] += info.extent_bytes
        self._stats["payload_bytes"] += info.fetched_bytes
        self._stats["ranged_reads"] += info.ranged_reads
        self._stats["group_batches"] += info.group_batches
        if partial:
            self._stats["partial_queries"] += 1
        out: dict[tuple, np.ndarray] = {}
        for key in sorted(results):
            arr = results[key]
            out[key] = arr if region is None else _apply_region(arr, region, key)
        return out, info

    async def query(
        self,
        steps=None,
        levels=None,
        fields=None,
        patches=None,
        region=None,
        verify: bool = True,
        timeout: float | None = None,
        deadline: float | None = None,
        partial: bool = False,
    ) -> dict[tuple, np.ndarray]:
        """Decompress the selection; results keyed ``(step, level, field,
        patch)`` and byte-identical to
        :func:`repro.compression.amr_codec.decompress_selection` on the
        same source. ``region`` is an optional per-axis ``(lo, hi)`` tuple
        sliced out of every selected patch after decode. Arrays are
        read-only (shared with the cache); ``.copy()`` to mutate.

        ``timeout`` (seconds from now) / ``deadline`` (absolute
        ``time.monotonic()`` value) bound the whole query — expiry raises
        :class:`~repro.errors.DeadlineExceeded` and cancels the query's
        outstanding work without poisoning the cache or the single-flight
        table. ``partial=True`` serves *around* dead shards: surviving
        steps come back normally and the per-step failures are reported
        in :class:`QueryInfo` ``.missing`` (use :meth:`query_info` to see
        it). When the campaign carries parity (and ``heal=True``), a dead
        or corrupt shard is first reconstructed from the surviving shards
        — the query then completes *without* degrading, and the
        reconstruction shows up in ``stats["repairs"]`` /
        :attr:`QueryInfo.repairs`. Under overload, admission control may
        shed the query with :class:`~repro.errors.Overloaded` before any
        work happens.
        """
        out, _ = await self.query_info(
            steps=steps, levels=levels, fields=fields, patches=patches,
            region=region, verify=verify, timeout=timeout, deadline=deadline,
            partial=partial,
        )
        return out


class InProcessClient:
    """Synchronous facade running a :class:`QueryService` on its own
    event-loop thread — the in-process client tests, benchmarks, and
    plain multi-threaded callers use. Thread-safe: any thread may call
    :meth:`query` concurrently; coroutines are marshalled to the service
    loop, which is where all shared state lives.

    .. code-block:: python

        from repro.serve import InProcessClient

        with InProcessClient("run.rph2s") as client:
            patch = client.query(steps=3, levels=1, fields="f", patches=0)
    """

    def __init__(self, source: str | Path | QueryService, **kwargs):
        if isinstance(source, QueryService):
            if kwargs:
                raise ServeError(
                    "pass service options only when the client builds the "
                    "service (got a QueryService plus keyword options)"
                )
            self._service = source
            self._owns = False
        else:
            self._service = QueryService(source, **kwargs)
            self._owns = True
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-serve-client", daemon=True
        )
        self._thread.start()
        self._closed = False

    @property
    def service(self) -> QueryService:
        """The underlying service (read its ``steps``/``fields``/...)."""
        return self._service

    def _run(self, coro):
        if self._closed:
            raise ServeError("in-process client is closed")
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    def query(self, **selectors) -> dict[tuple, np.ndarray]:
        """Synchronous :meth:`QueryService.query`."""
        return self._run(self._service.query(**selectors))

    def query_info(self, **selectors):
        """Synchronous :meth:`QueryService.query_info`."""
        return self._run(self._service.query_info(**selectors))

    def plan(self, **selectors) -> QueryPlan:
        """Synchronous :meth:`QueryService.plan`."""
        return self._run(self._service.plan(**selectors))

    def stats(self) -> dict:
        """Service counter snapshot, taken on the service loop."""

        async def snap() -> dict:
            return self._service.stats

        return self._run(snap())

    def close(self) -> None:
        """Drain, close the service (if owned), and stop the loop thread."""
        if self._closed:
            return

        async def shutdown() -> None:
            if self._owns:
                self._service.close()

        try:
            asyncio.run_coroutine_threadsafe(shutdown(), self._loop).result()
        finally:
            self._closed = True
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join()
            self._loop.close()

    def __enter__(self) -> "InProcessClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
