"""Concurrent selective-read serving over series/snapshot containers.

The serving layer of the pipeline: :class:`QueryService` answers
``(step, level, field, patch[, region])`` queries concurrently over one
RPH2S series, RPHM sharded campaign, or RPH2 snapshot, planning each
query into minimal coalesced ranged reads (:mod:`repro.serve.planner`),
batching same-group members into one shared-codebook decode on a
:class:`~repro.parallel.WorkerPool`, and keeping hot catalogs, group
headers/codebooks, and decoded patches in a byte-budgeted LRU
(:mod:`repro.serve.cache`). :class:`InProcessClient` is the synchronous
in-process facade; :class:`QueryServer`/:class:`TCPClient`
(:mod:`repro.serve.net`) put the same service on a socket — also exposed
as ``python -m repro.compression serve``.

Resilience (:mod:`repro.serve.resilience`) is built in: queries take
``timeout=``/``deadline=`` (expiry raises
:class:`~repro.errors.DeadlineExceeded`), admission control sheds load
with :class:`~repro.errors.Overloaded` when the in-flight budget and
queue fill, per-backend-file circuit breakers fast-fail a dead
shard/backend with :class:`~repro.errors.CircuitOpenError`, and
``partial=True`` serves around dead shards, reporting what is missing in
:class:`QueryInfo`. Deterministic fault injection for all of it lives in
:mod:`repro.faults`.
"""

from repro.serve.cache import ServeCache
from repro.serve.resilience import AdmissionGate, CircuitBreaker, Deadline
from repro.serve.planner import (
    DEFAULT_GAP_CAP,
    DEFAULT_SLACK,
    DecodeBatch,
    Extent,
    QueryPlan,
    RangedRead,
    StepPlan,
    coalesce_extents,
    plan_step,
)
from repro.serve.service import (
    DEFAULT_CACHE_BYTES,
    InProcessClient,
    QueryInfo,
    QueryService,
)
from repro.serve.net import QueryServer, TCPClient

__all__ = [
    "QueryService",
    "QueryInfo",
    "InProcessClient",
    "QueryServer",
    "TCPClient",
    "ServeCache",
    "Extent",
    "RangedRead",
    "DecodeBatch",
    "StepPlan",
    "QueryPlan",
    "coalesce_extents",
    "plan_step",
    "DEFAULT_GAP_CAP",
    "DEFAULT_SLACK",
    "DEFAULT_CACHE_BYTES",
    "Deadline",
    "AdmissionGate",
    "CircuitBreaker",
]
