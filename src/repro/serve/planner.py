"""Selection planning: minimal ranged reads for a selective query.

A selective query names a set of ``(step, level, field, patch)`` keys; the
container layout maps each key to one or two *payload extents* — the
patch's own codec stream, plus (for grouped streams) its member payload in
the owning ``RPGB`` group section. Serving the query therefore reduces to
fetching a set of byte extents from the series/snapshot file and decoding
them. This module turns that extent set into a **plan**:

* :func:`coalesce_extents` merges adjacent extents into the minimal set of
  ranged reads under an explicit *slack budget*: the bytes fetched beyond
  the extents themselves (the merged gaps) never exceed
  ``slack_frac * sum(extent lengths)``, and no single merged gap exceeds
  ``gap_cap``. That is what keeps a selective query at O(selection) bytes
  by construction — the 1.25x cold-cache gate in
  ``benchmarks/bench_serve.py`` is ``slack_frac=0.25`` restated.
* :func:`plan_step` builds the per-step plan: extents for every requested
  entry (stream + grouped payload), the coalesced reads, and the *decode
  batches* — grouped members of the same ``RPGB`` group are batched into
  one shared-codebook decode unit, so the codebook's decode tables are
  constructed once per group per query, not once per patch.

Planning is pure: these functions touch no file and do no I/O. The
:class:`~repro.serve.service.QueryService` feeds them index/group-header
data (cached across queries) and executes the returned reads through a
:mod:`repro.storage` backend.

Accounting surface: a :class:`QueryPlan` knows its ``extent_bytes`` (sum
of required extents), ``fetched_bytes`` (sum of coalesced read lengths,
i.e. bytes the query will actually touch), and ``slack_bytes`` (their
difference) — the bytes-touched-per-query metric the benchmarks gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.compression.container import GroupHandle, PatchIndexEntry
from repro.errors import ServeError

__all__ = [
    "Extent",
    "RangedRead",
    "DecodeBatch",
    "StepPlan",
    "QueryPlan",
    "coalesce_extents",
    "plan_step",
]

#: Default cap on a single merged gap (bytes). Coalescing across a larger
#: hole costs more than the seek/request it saves on every backend.
DEFAULT_GAP_CAP = 1 << 16
#: Default slack fraction: fetched bytes never exceed
#: ``(1 + DEFAULT_SLACK) * extent_bytes``.
DEFAULT_SLACK = 0.25


@dataclass(frozen=True)
class Extent:
    """One required byte span of the underlying file.

    ``kind`` is ``"stream"`` (a patch's own codec stream) or
    ``"group_payload"`` (a grouped member's entropy payload); ``key`` is
    the requesting ``(step, level, field, patch)``; ``crc32`` is the
    checksum the fetched bytes must match under ``verify``; ``group``
    names the owning RPGB group for payload extents (``None`` for plain
    streams).
    """

    offset: int
    length: int
    kind: str
    key: tuple
    crc32: int
    group: int | None = None

    @property
    def end(self) -> int:
        return self.offset + self.length


@dataclass(frozen=True)
class RangedRead:
    """One coalesced read: fetch ``[offset, offset + length)`` and slice
    out the member extents (all fully contained in the span)."""

    offset: int
    length: int
    extents: tuple[Extent, ...]

    @property
    def end(self) -> int:
        return self.offset + self.length


@dataclass(frozen=True)
class DecodeBatch:
    """One decode unit: either a single self-contained stream
    (``group is None``, one entry) or all requested members of one RPGB
    group decoded against the group's shared codebook in one task."""

    group: int | None
    entries: tuple[PatchIndexEntry, ...]


@dataclass
class StepPlan:
    """The plan for one ``(file, step)``: extents, coalesced reads, and
    decode batches. ``base`` is the segment's absolute offset in ``file``
    (0 for a standalone snapshot container)."""

    file: str
    step: int
    base: int
    extents: list[Extent] = field(default_factory=list)
    reads: list[RangedRead] = field(default_factory=list)
    batches: list[DecodeBatch] = field(default_factory=list)

    @property
    def extent_bytes(self) -> int:
        return sum(e.length for e in self.extents)

    @property
    def fetched_bytes(self) -> int:
        return sum(r.length for r in self.reads)


@dataclass
class QueryPlan:
    """A whole query's plan: one :class:`StepPlan` per selected step that
    missed the decoded-patch cache."""

    steps: list[StepPlan] = field(default_factory=list)

    @property
    def extent_bytes(self) -> int:
        """Sum of required payload extents — the O(selection) floor."""
        return sum(s.extent_bytes for s in self.steps)

    @property
    def fetched_bytes(self) -> int:
        """Bytes the coalesced reads will actually touch."""
        return sum(s.fetched_bytes for s in self.steps)

    @property
    def slack_bytes(self) -> int:
        """Gap bytes fetched beyond the extents (coalescing overhead)."""
        return self.fetched_bytes - self.extent_bytes

    @property
    def n_reads(self) -> int:
        return sum(len(s.reads) for s in self.steps)

    @property
    def n_group_batches(self) -> int:
        return sum(
            1 for s in self.steps for b in s.batches if b.group is not None
        )


def coalesce_extents(
    extents: Sequence[Extent],
    gap_cap: int = DEFAULT_GAP_CAP,
    slack_frac: float = DEFAULT_SLACK,
) -> list[RangedRead]:
    """Merge extents into the minimal ranged reads under a slack budget.

    The rules, in order:

    1. Extents are sorted by offset; overlapping extents are a planner
       contract violation (container spans are disjoint by construction)
       and raise :class:`~repro.errors.ServeError`.
    2. Touching extents (gap 0) always merge — that is free.
    3. Remaining inter-run gaps are merged greedily, smallest first,
       while (a) the gap is at most ``gap_cap`` bytes and (b) the running
       total of merged gap bytes stays within
       ``floor(slack_frac * sum(extent lengths))``.

    The result is deterministic, sorted, pairwise disjoint, and satisfies
    ``sum(read lengths) <= (1 + slack_frac) * sum(extent lengths)`` — the
    property ``tests/serve/test_planner.py`` checks exhaustively.
    """
    if gap_cap < 0:
        raise ServeError(f"gap_cap must be >= 0, got {gap_cap}")
    if slack_frac < 0:
        raise ServeError(f"slack_frac must be >= 0, got {slack_frac}")
    # Zero-length extents need no bytes (and would confuse gap math).
    ordered = sorted(
        (e for e in extents if e.length > 0), key=lambda e: (e.offset, e.end)
    )
    if not ordered:
        return []
    runs: list[list[Extent]] = [[ordered[0]]]
    for ext in ordered[1:]:
        prev = runs[-1][-1]
        if ext.offset < prev.end:
            raise ServeError(
                f"overlapping extents in plan: {prev.kind} {prev.key} "
                f"[{prev.offset}, {prev.end}) and {ext.kind} {ext.key} "
                f"[{ext.offset}, {ext.end}) — corrupt index?"
            )
        if ext.offset == prev.end:
            runs[-1].append(ext)  # touching: free merge
        else:
            runs.append([ext])
    # Greedy gap merging, smallest gaps first, under the slack budget.
    budget = int(slack_frac * sum(e.length for e in ordered))
    gaps = []  # (gap, run_index) — gap between runs[i] and runs[i+1]
    for i in range(len(runs) - 1):
        gaps.append((runs[i + 1][0].offset - runs[i][-1].end, i))
    merge_after = set()
    spent = 0
    for gap, i in sorted(gaps):
        if gap > gap_cap or spent + gap > budget:
            break
        merge_after.add(i)
        spent += gap
    reads: list[RangedRead] = []
    current: list[Extent] = []
    for i, run in enumerate(runs):
        current.extend(run)
        if i < len(runs) - 1 and i in merge_after:
            continue
        reads.append(
            RangedRead(
                offset=current[0].offset,
                length=current[-1].end - current[0].offset,
                extents=tuple(current),
            )
        )
        current = []
    return reads


def plan_step(
    file: str,
    step: int,
    base: int,
    entries: Iterable[PatchIndexEntry],
    group_offsets: Mapping[int, int],
    group_handles: Mapping[int, GroupHandle],
    gap_cap: int = DEFAULT_GAP_CAP,
    slack_frac: float = DEFAULT_SLACK,
) -> StepPlan:
    """Plan one step's requested entries into extents, reads, and batches.

    ``group_offsets`` maps gid -> the group section's offset *relative to
    the segment start*; ``group_handles`` maps gid -> the parsed
    :class:`~repro.compression.container.GroupHandle` (header + extent
    table), which the service caches across queries. Every grouped entry
    contributes two extents — its codec stream and its member payload —
    and joins its group's shared-codebook :class:`DecodeBatch`; plain
    entries contribute one extent and decode alone.
    """
    plan = StepPlan(file=file, step=step, base=base)
    by_group: dict[int, list[PatchIndexEntry]] = {}
    for e in entries:
        key = (step, e.level, e.field, e.patch)
        plan.extents.append(
            Extent(base + e.offset, e.length, "stream", key, e.crc32)
        )
        if e.group is None:
            plan.batches.append(DecodeBatch(group=None, entries=(e,)))
            continue
        try:
            handle = group_handles[e.group]
            group_off = group_offsets[e.group]
        except KeyError:
            raise ServeError(
                f"plan_step: group {e.group} of entry {e.describe()} has "
                "no loaded header; load group headers before planning"
            ) from None
        rel, length, crc = handle.member_extent(e.member)
        plan.extents.append(
            Extent(
                base + group_off + handle.header_len + rel,
                length,
                "group_payload",
                key,
                crc,
                group=e.group,
            )
        )
        by_group.setdefault(e.group, []).append(e)
    for gid in sorted(by_group):
        plan.batches.append(
            DecodeBatch(group=gid, entries=tuple(by_group[gid]))
        )
    plan.reads = coalesce_extents(plan.extents, gap_cap, slack_frac)
    return plan
