"""Bounded LRU cache for the query service's hot read-path state.

One cache, three kinds of entry, one byte budget:

* ``"catalog"`` — a parsed segment index (the per-step
  :class:`~repro.compression.container.ContainerReader` over a counting
  window), charged at the bytes read to parse it. Group headers loaded
  later through the same catalog *inflate* its charge in place.
* ``"patch"`` — a decoded, read-only ``ndarray``, charged at ``nbytes``.
  This is what makes a warm repeat query touch **zero** payload bytes.

(The RPGB shared codebooks and extent tables live inside their catalog's
group-handle cache, so evicting a catalog drops its headers and codebooks
with it — one lifetime, one charge.)

Eviction is strict LRU over all kinds: whenever the charged total exceeds
``max_bytes``, least-recently-used entries are dropped until it fits. A
single value larger than the whole budget is never stored (it would evict
everything and still not fit); the put is counted under ``rejected``.

The cache is not thread-safe by itself — the service only touches it from
its event loop, which is the synchronization. :attr:`stats` exposes
``hits`` / ``misses`` / ``evictions`` / ``puts`` / ``rejected`` /
``current_bytes`` / ``max_bytes``, the counters the cache-correctness
tests reconcile against observed backend request counts.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable

from repro.errors import ServeError

__all__ = ["ServeCache"]

#: Sentinel distinguishing "not cached" from a cached falsy value.
_MISS = object()


class ServeCache:
    """Byte-budgeted LRU over ``(kind, *key)`` tuples."""

    def __init__(self, max_bytes: int):
        if max_bytes < 1:
            raise ServeError(f"cache max_bytes must be >= 1, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self._entries: OrderedDict[Hashable, tuple[Any, int]] = OrderedDict()
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.puts = 0
        self.rejected = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable):
        """The cached value (refreshing its recency), or ``None`` on miss.

        ``None`` is never a stored value — entries are catalogs and
        arrays — so the sentinel collapses to ``None`` for callers.
        """
        entry = self._entries.get(key, _MISS)
        if entry is _MISS:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        return entry[0]

    def peek_charge(self, key: Hashable) -> int | None:
        """Charged size of an entry without touching recency (tests)."""
        entry = self._entries.get(key, _MISS)
        return None if entry is _MISS else entry[1]

    def put(self, key: Hashable, value: Any, nbytes: int) -> bool:
        """Store ``value`` charged at ``nbytes``; returns False when the
        value alone exceeds the budget (not stored, counted rejected)."""
        if nbytes < 0:
            raise ServeError(f"cache charge must be >= 0, got {nbytes}")
        if nbytes > self.max_bytes:
            self.rejected += 1
            return False
        old = self._entries.pop(key, _MISS)
        if old is not _MISS:
            self.current_bytes -= old[1]
        self._entries[key] = (value, int(nbytes))
        self.current_bytes += int(nbytes)
        self.puts += 1
        self._evict()
        return True

    def inflate(self, key: Hashable, delta: int) -> None:
        """Grow an entry's charge in place (a catalog that just loaded a
        group header). Missing keys are a no-op — the entry may have been
        evicted while its loader ran."""
        entry = self._entries.get(key, _MISS)
        if entry is _MISS:
            return
        self._entries[key] = (entry[0], entry[1] + int(delta))
        self.current_bytes += int(delta)
        self._evict()

    def pop(self, key: Hashable) -> None:
        """Drop one entry without counting an eviction (invalidation)."""
        entry = self._entries.pop(key, _MISS)
        if entry is not _MISS:
            self.current_bytes -= entry[1]

    def _evict(self) -> None:
        while self.current_bytes > self.max_bytes and self._entries:
            _, (_, nbytes) = self._entries.popitem(last=False)
            self.current_bytes -= nbytes
            self.evictions += 1

    @property
    def stats(self) -> dict:
        """Counter snapshot (plain ints; safe to serialize)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "puts": self.puts,
            "rejected": self.rejected,
            "entries": len(self._entries),
            "current_bytes": self.current_bytes,
            "max_bytes": self.max_bytes,
        }
