"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so that callers
can catch everything from this package with a single ``except`` clause while
still being able to distinguish the failure domain.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "BoxError",
    "HierarchyError",
    "CompressionError",
    "DecompressionError",
    "FormatError",
    "TruncatedSeriesError",
    "StorageError",
    "TransientStorageError",
    "ServeError",
    "VisualizationError",
    "MetricError",
    "ExperimentError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class BoxError(ReproError):
    """Invalid index-space box operation (empty box, dim mismatch, ...)."""


class HierarchyError(ReproError):
    """Inconsistent AMR hierarchy (nesting violation, bad refinement ratio)."""


class CompressionError(ReproError):
    """Failure while compressing data (bad parameters, unsupported dtype)."""


class DecompressionError(ReproError):
    """Failure while decompressing a stream (corruption, truncation)."""


class FormatError(ReproError):
    """Malformed on-disk or in-memory container (plotfile, codec stream)."""


class TruncatedSeriesError(FormatError):
    """An RPH2S series whose footer or timestep index is missing or damaged
    — the signature of an interrupted write. Sealed segments are usually
    salvageable: open with ``SeriesReader.open(..., recover=True)`` or run
    ``python -m repro.compression recover``."""


class StorageError(ReproError):
    """Failure in a :mod:`repro.storage` byte backend (missing object,
    exhausted retries, backend-specific I/O fault)."""


class TransientStorageError(StorageError):
    """A retryable backend fault (timeout, throttle, connection reset).
    :class:`repro.storage.RangedBackend` retries these with backoff before
    giving up and re-raising."""


class ServeError(ReproError):
    """Invalid query-service request or configuration (bad selection plan,
    malformed region, use after close). Data-integrity failures on the
    serving path stay :class:`FormatError`; backend faults stay
    :class:`StorageError`."""


class VisualizationError(ReproError):
    """Failure in the iso-surface / rendering pipeline."""


class MetricError(ReproError):
    """Invalid metric computation request (shape mismatch, empty input)."""


class ExperimentError(ReproError):
    """Failure while running a paper experiment."""
