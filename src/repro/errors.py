"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so that callers
can catch everything from this package with a single ``except`` clause while
still being able to distinguish the failure domain.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "BoxError",
    "HierarchyError",
    "CompressionError",
    "DecompressionError",
    "FormatError",
    "TruncatedSeriesError",
    "IntegrityError",
    "StorageError",
    "TransientStorageError",
    "CircuitOpenError",
    "ServeError",
    "DeadlineExceeded",
    "Overloaded",
    "VisualizationError",
    "MetricError",
    "ExperimentError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class BoxError(ReproError):
    """Invalid index-space box operation (empty box, dim mismatch, ...)."""


class HierarchyError(ReproError):
    """Inconsistent AMR hierarchy (nesting violation, bad refinement ratio)."""


class CompressionError(ReproError):
    """Failure while compressing data (bad parameters, unsupported dtype)."""


class DecompressionError(ReproError):
    """Failure while decompressing a stream (corruption, truncation)."""


class FormatError(ReproError):
    """Malformed on-disk or in-memory container (plotfile, codec stream)."""


class TruncatedSeriesError(FormatError):
    """An RPH2S series whose footer or timestep index is missing or damaged
    — the signature of an interrupted write. Sealed segments are usually
    salvageable: open with ``SeriesReader.open(..., recover=True)`` or run
    ``python -m repro.compression recover``."""


class IntegrityError(FormatError):
    """Damage that parity-based repair cannot undo: more lost members than
    the parity scheme covers, or reconstructed bytes that fail their
    recorded checksum. Scrub findings themselves are *reported*, not
    raised — this error marks the repair path giving up."""


class StorageError(ReproError):
    """Failure in a :mod:`repro.storage` byte backend (missing object,
    exhausted retries, backend-specific I/O fault)."""


class TransientStorageError(StorageError):
    """A retryable backend fault (timeout, throttle, connection reset).
    :class:`repro.storage.RangedBackend` retries these with backoff before
    giving up and re-raising."""


class CircuitOpenError(StorageError):
    """A circuit breaker is open for a backend/shard: recent consecutive
    storage faults tripped it, so requests fast-fail for a cooldown
    instead of hammering a dead backend. Retry after the cooldown, or
    query with ``partial=True`` to serve around the dead shard."""


class ServeError(ReproError):
    """Invalid query-service request or configuration (bad selection plan,
    malformed region, use after close). Data-integrity failures on the
    serving path stay :class:`FormatError`; backend faults stay
    :class:`StorageError`."""


class DeadlineExceeded(ServeError):
    """A query's ``deadline=``/``timeout=`` expired before it completed.
    The query's outstanding I/O is cancelled; the service's cache and
    single-flight table stay clean, so an immediate retry is safe."""


class Overloaded(ServeError):
    """Load shed by admission control: the service's in-flight budget and
    wait queue are both full. ``retry_after`` (seconds, or ``None``) is
    the server's estimate of when capacity frees up."""

    def __init__(self, message: str, retry_after: float | None = None):
        super().__init__(message)
        self.retry_after = retry_after


class VisualizationError(ReproError):
    """Failure in the iso-surface / rendering pipeline."""


class MetricError(ReproError):
    """Invalid metric computation request (shape mismatch, empty input)."""


class ExperimentError(ReproError):
    """Failure while running a paper experiment."""
