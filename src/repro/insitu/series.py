"""RPH2S: a seekable time-series container of RPH2 snapshot segments.

The paper compresses patch-based AMR data *in situ* — timestep after
timestep as the solver emits it. A campaign therefore needs a container
that (a) can be appended to while the simulation runs and (b) still gives
random access to ``(step, level, field, patch)`` afterwards. RPH2S does
both by reusing the RPH2 snapshot container as its segment type:

.. code-block:: text

    offset 0   magic    b"RPH2S"                                (5 bytes)
    offset 5   u8       series version (currently 1)
    offset 6   segments, back to back; each segment is a complete,
               self-contained RPH2 container (internal offsets relative
               to the segment start), immediately followed by a 64-byte
               crc-protected *seal record* (magic b"RPH2SEAL") restating
               the step's index row — the durability anchor crash
               recovery rebuilds the timestep index from
    ...        series index: JSON document (see below)
    EOF-28     footer: u64 index_offset, u64 index_length,
               u32 crc32(index bytes), footer magic b"RPH2SIDX"

The 4-byte prefix of the magic is deliberately ``b"RPH2"``: a snapshot
reader handed a series file sees "version" ``0x53`` (``"S"``) and raises a
pointer to this module instead of a cryptic failure.

Series index schema (JSON)::

    {
      "format": "rph2s", "version": 1,
      "codec": str, "error_bound": float, "mode": str,
      "fields": [str, ...], "exclude_covered": bool,
      "steps": [[step, offset, length, crc32, container_version,
                 time, n_levels, n_patches, original_bytes], ...]
    }

Each row maps a timestep number to its segment's absolute byte ``offset``
and ``length``, the crc32 of the whole segment, the segment's own RPH2
format version (all rows must agree — mixed-version series are rejected at
open), the simulation ``time``, and size accounting. Random access to one
patch of one step costs O(series footer + series index + segment footer +
segment index + that stream) bytes, never O(file).

A file whose footer is missing or damaged (a killed writer) raises
:class:`~repro.errors.TruncatedSeriesError`; every fully-sealed step is
still recoverable through :meth:`SeriesReader.open` with ``recover=True``
or :mod:`repro.insitu.recovery`.

Written by :class:`repro.insitu.writer.StreamingWriter`; the format spec
lives in ``docs/container_format.md``.
"""

from __future__ import annotations

import io
import json
import mmap as _mmap
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, BinaryIO

import numpy as np

from repro.compression.container import (
    CONTAINER_VERSION,
    ContainerReader,
    _normalize_selector,
)
from repro.errors import CompressionError, FormatError, TruncatedSeriesError

__all__ = [
    "SERIES_MAGIC",
    "SERIES_FOOTER_MAGIC",
    "SERIES_VERSION",
    "SEAL_MAGIC",
    "SEAL_SIZE",
    "SeriesStepEntry",
    "SeriesReader",
    "pack_seal",
    "unpack_seal",
    "build_series_index_bytes",
]

SERIES_MAGIC = b"RPH2S"
SERIES_FOOTER_MAGIC = b"RPH2SIDX"
SERIES_VERSION = 1
_SERIES_HEADER = struct.Struct("<5sB")
_SERIES_FOOTER = struct.Struct("<QQI8s")

#: Magic prefix of a step seal record (written right after each segment).
SEAL_MAGIC = b"RPH2SEAL"
#: Seal record body: magic, step (i64), time (f64), absolute segment offset
#: (u64), segment length (u64), crc32 of the segment bytes (u32), segment
#: container version (u16), n_levels (u16), n_patches (u32),
#: original_bytes (u64). A crc32 of the body (u32) follows.
_SEAL_BODY = struct.Struct("<8sqdQQIHHIQ")
_SEAL_CRC = struct.Struct("<I")
#: Total on-disk size of one seal record.
SEAL_SIZE = _SEAL_BODY.size + _SEAL_CRC.size

#: Series-level meta keys serialized into the index besides the step rows.
_SERIES_META_KEYS = ("codec", "error_bound", "mode", "fields", "exclude_covered")


def extract_series_meta(source) -> dict:
    """Pull the series meta keys (plus optional per-field bounds) out of a
    parsed index / segment meta / manifest mapping.

    The one place the optional ``field_bounds`` key is resolved, shared by
    the footer parser, the recovery scanner, and the sharded manifest
    reader — files written before per-field bounds existed simply lack the
    key and yield no entry.
    """
    meta = {k: source[k] for k in _SERIES_META_KEYS}
    if source.get("field_bounds"):
        meta["field_bounds"] = {
            str(k): float(v) for k, v in source["field_bounds"].items()
        }
    return meta

#: Appended to truncation/damage errors so an interrupted campaign points
#: straight at the salvage path.
_RECOVERY_HINT = (
    "; fully-sealed steps are recoverable: run `python -m repro.compression "
    "recover <file>` or open with SeriesReader.open(..., recover=True)"
)


@dataclass(frozen=True)
class SeriesStepEntry:
    """One row of the timestep index: where a segment lives, how to check
    it, and what it holds."""

    step: int
    offset: int
    length: int
    crc32: int
    container_version: int
    time: float
    n_levels: int
    n_patches: int
    original_bytes: int

    def describe(self) -> str:
        """Human-readable step identifier for error messages."""
        return f"(step={self.step}, time={self.time:g})"

    def row(self) -> list:
        """The JSON-index row representation of this entry."""
        return [
            self.step, self.offset, self.length, self.crc32,
            self.container_version, self.time, self.n_levels,
            self.n_patches, self.original_bytes,
        ]


def pack_seal(entry: SeriesStepEntry) -> bytes:
    """Serialize one step's 64-byte seal record.

    The seal restates the step's timestep-index row (plus the whole-segment
    crc32) in a fixed-size, crc-protected record written *immediately after*
    the segment it describes. It is what makes a killed writer survivable:
    the series footer may never be written, but every sealed step can be
    found, validated, and re-indexed by :mod:`repro.insitu.recovery`.
    """
    body = _SEAL_BODY.pack(
        SEAL_MAGIC, entry.step, entry.time, entry.offset, entry.length,
        entry.crc32, entry.container_version, entry.n_levels,
        entry.n_patches, entry.original_bytes,
    )
    return body + _SEAL_CRC.pack(zlib.crc32(body))


def unpack_seal(blob: bytes) -> SeriesStepEntry | None:
    """Parse a candidate seal record; ``None`` unless it is bit-perfect.

    Recovery scans treat any magic hit whose record crc does not validate
    as a payload coincidence or a torn write, so this returns ``None``
    instead of raising.
    """
    if len(blob) != SEAL_SIZE or blob[:8] != SEAL_MAGIC:
        return None
    (crc,) = _SEAL_CRC.unpack_from(blob, _SEAL_BODY.size)
    if zlib.crc32(blob[: _SEAL_BODY.size]) != crc:
        return None
    magic, step, time, offset, length, seg_crc, cver, n_levels, n_patches, ob = (
        _SEAL_BODY.unpack_from(blob, 0)
    )
    return SeriesStepEntry(
        step=step, offset=offset, length=length, crc32=seg_crc,
        container_version=cver, time=time, n_levels=n_levels,
        n_patches=n_patches, original_bytes=ob,
    )


def build_series_index_bytes(
    meta: dict, steps: "list[SeriesStepEntry]"
) -> bytes:
    """Serialize the series timestep index JSON (canonical key order).

    Shared by :meth:`StreamingWriter.close` and the recovery committer so a
    recovered-and-committed file carries an index byte-identical to what an
    uninterrupted writer would have produced for the same steps.
    """
    index = {
        "format": "rph2s",
        "version": SERIES_VERSION,
        "codec": str(meta["codec"]),
        "error_bound": float(meta["error_bound"]),
        "mode": str(meta["mode"]),
        "fields": list(meta["fields"]),
        "exclude_covered": bool(meta["exclude_covered"]),
        "steps": [e.row() for e in steps],
    }
    # Optional per-field bounds: emitted only when non-empty so
    # single-bound series stay byte-identical to the pre-override format.
    if meta.get("field_bounds"):
        index["field_bounds"] = {
            str(k): float(v) for k, v in sorted(meta["field_bounds"].items())
        }
    return json.dumps(index, separators=(",", ":")).encode()


class _SegmentWindow:
    """Seekable read-only view of ``[start, start + length)`` of a base file.

    Lets :class:`~repro.compression.container.ContainerReader` operate on an
    embedded segment unchanged: the segment's internal offsets are relative
    to the segment start, and this window translates them to absolute seeks
    on the shared handle.
    """

    def __init__(self, base: BinaryIO, start: int, length: int):
        self._base = base
        self._start = start
        self._length = length
        self._pos = 0

    def seek(self, offset: int, whence: int = io.SEEK_SET) -> int:
        if whence == io.SEEK_SET:
            pos = offset
        elif whence == io.SEEK_CUR:
            pos = self._pos + offset
        elif whence == io.SEEK_END:
            pos = self._length + offset
        else:  # pragma: no cover - mirrors io semantics
            raise ValueError(f"invalid whence {whence}")
        if pos < 0:
            raise ValueError("negative seek position")
        self._pos = pos
        return pos

    def tell(self) -> int:
        return self._pos

    def read(self, size: int = -1) -> bytes:
        if self._pos >= self._length:
            return b""
        budget = self._length - self._pos
        n = budget if size is None or size < 0 else min(size, budget)
        self._base.seek(self._start + self._pos)
        out = self._base.read(n)
        self._pos += len(out)
        return out


class SeriesReader:
    """Random access over a seekable ``RPH2S`` time-series container.

    Reads the series footer and timestep index eagerly (a few hundred bytes
    for typical campaigns); individual segments are opened lazily through
    windowed :class:`~repro.compression.container.ContainerReader` views, so
    a single-patch fetch consumes O(selection) bytes of the payload.

    Parameters
    ----------
    source:
        Either a seekable binary file-like object positioned anywhere, or
        any byte buffer (``bytes``, ``memoryview``, ``mmap`` — the
        zero-copy mode: segments are opened as buffer-mode
        :class:`~repro.compression.container.ContainerReader` views, so
        patch streams reach the codecs as ``memoryview`` slices with no
        intermediate copy). :meth:`open` with ``mmap=True`` builds the
        zero-copy mode over a memory-mapped file. The reader does not own
        a file-like source unless constructed through :meth:`open`.
    _recovery:
        A :class:`repro.insitu.recovery.RecoveryReport` to serve instead of
        parsing the series footer — the salvage path behind
        ``open(..., recover=True)``. The reader then exposes the report on
        :attr:`recovery` and sets :attr:`recovered`.
    """

    def __init__(self, source, _recovery=None):
        self._owns = False
        self._mmap: _mmap.mmap | None = None
        #: True when this reader was built from a recovery scan instead of
        #: the series footer (``None``-footer salvage path).
        self.recovered = _recovery is not None
        #: The :class:`~repro.insitu.recovery.RecoveryReport` this reader
        #: was built from, or ``None`` for a normal footer-indexed open.
        self.recovery = _recovery
        # mmap objects are file-likes too (they grow seek/read), so the
        # buffer check must come first or zero-copy mode silently degrades
        # to the copying file path.
        if not isinstance(source, _mmap.mmap) and (
            hasattr(source, "seek") and hasattr(source, "read")
        ):
            self._file: BinaryIO | None = source
            self._view: memoryview | None = None
            source.seek(0, io.SEEK_END)
            total = source.tell()
        else:
            self._file = None
            try:
                self._view = memoryview(source).cast("B")
            except TypeError:
                raise CompressionError(
                    f"cannot read a series from {type(source).__name__}; "
                    "pass a seekable file or a byte buffer"
                ) from None
            total = self._view.nbytes
        # Release the view if parsing fails: a failing constructor must not
        # leave an exported buffer alive, or ``open(mmap=True)``'s cleanup
        # ``mapping.close()`` raises BufferError and masks the real error
        # (the in-flight traceback pins this frame's ``self``).
        try:
            if _recovery is not None:
                self._install_recovery(_recovery)
            else:
                self._parse_index(total)
        except BaseException:
            if self._view is not None:
                self._view.release()
                self._view = None
            raise

    def _parse_index(self, total: int) -> None:
        if total < _SERIES_HEADER.size + _SERIES_FOOTER.size:
            # A valid magic on a too-short file is an interrupted write,
            # not an alien format — keep the two failure classes distinct.
            if total >= len(SERIES_MAGIC) and (
                self._read_at(0, len(SERIES_MAGIC)) == SERIES_MAGIC
            ):
                raise TruncatedSeriesError(
                    f"series truncated to {total} bytes, shorter than the "
                    f"RPH2S framing{_RECOVERY_HINT}"
                )
            raise FormatError(f"series too short ({total} bytes) for RPH2S framing")
        magic, version = _SERIES_HEADER.unpack(self._read_at(0, _SERIES_HEADER.size))
        if magic != SERIES_MAGIC:
            raise FormatError(
                f"not an RPH2S series (magic {magic!r}, expected {SERIES_MAGIC!r})"
            )
        if version != SERIES_VERSION:
            raise FormatError(f"unsupported series version {version}")
        footer_blob = self._read_at(total - _SERIES_FOOTER.size, _SERIES_FOOTER.size)
        index_offset, index_length, index_crc, footer_magic = _SERIES_FOOTER.unpack(
            footer_blob
        )
        if footer_magic != SERIES_FOOTER_MAGIC:
            raise TruncatedSeriesError(
                f"bad series footer magic {footer_magic!r}: the file was "
                f"truncated mid-write or never finalized{_RECOVERY_HINT}"
            )
        if index_offset + index_length > total - _SERIES_FOOTER.size:
            raise TruncatedSeriesError(
                f"series index extends past end of file (truncated?){_RECOVERY_HINT}"
            )
        index_bytes = self._read_at(index_offset, index_length)
        if len(index_bytes) != index_length or zlib.crc32(index_bytes) != index_crc:
            raise TruncatedSeriesError(
                "series index checksum mismatch (corrupt timestep index)"
                f"{_RECOVERY_HINT}"
            )
        try:
            index = json.loads(index_bytes.decode())
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise TruncatedSeriesError(
                f"corrupt series index: {exc}{_RECOVERY_HINT}"
            ) from exc
        try:
            if index["format"] != "rph2s":
                raise FormatError(f"unexpected index format {index['format']!r}")
            meta = extract_series_meta(index)
            entries = [
                SeriesStepEntry(
                    int(s), int(off), int(ln), int(crc), int(cver),
                    float(t), int(nl), int(np_), int(ob),
                )
                for s, off, ln, crc, cver, t, nl, np_, ob in index["steps"]
            ]
        except (KeyError, ValueError, TypeError) as exc:
            raise FormatError(f"malformed series index: {exc!r}") from exc
        self._install(meta, index_offset, entries)

    def _install(
        self, meta: dict, index_offset: int, entries: list[SeriesStepEntry]
    ) -> None:
        """Validate and adopt a timestep index (footer-parsed or rebuilt)."""
        self._meta = dict(meta)
        self._index_offset = index_offset
        self.step_entries: list[SeriesStepEntry] = list(entries)
        versions = {e.container_version for e in self.step_entries}
        if len(versions) > 1:
            raise FormatError(
                f"mixed segment container versions {sorted(versions)}: an RPH2S "
                "series must carry one container version end to end"
            )
        if versions and versions != {CONTAINER_VERSION}:
            raise FormatError(
                f"unsupported segment container version {versions.pop()}"
            )
        last = None
        for e in self.step_entries:
            if e.step < 0 or last is not None and e.step <= last:
                raise FormatError(
                    f"series index steps must be strictly increasing; entry "
                    f"{e.describe()} follows step {last}"
                )
            last = e.step
            if e.offset < _SERIES_HEADER.size or e.offset + e.length > index_offset:
                raise TruncatedSeriesError(
                    f"series segment {e.describe()} points outside the payload "
                    f"(truncated segment?){_RECOVERY_HINT}"
                )
        self._by_step = {e.step: e for e in self.step_entries}

    def _install_recovery(self, report) -> None:
        """Adopt a :class:`~repro.insitu.recovery.RecoveryReport` as this
        reader's timestep index (the ``recover=True`` salvage path)."""
        if report.meta is None or not report.entries:
            raise TruncatedSeriesError(
                "recovery scan found no fully-sealed steps; nothing to serve"
            )
        meta = extract_series_meta(report.meta)
        self._install(meta, report.data_end, report.entries)

    # ------------------------------------------------------------------
    # Construction / lifecycle
    # ------------------------------------------------------------------
    def _read_at(self, offset: int, length: int) -> bytes:
        """Read exactly one span (used for header/footer/index parsing)."""
        if self._view is not None:
            return bytes(self._view[offset : offset + length])
        self._file.seek(offset)
        return self._file.read(length)

    @property
    def mapped(self) -> bool:
        """True when the reader serves zero-copy views of a byte buffer."""
        return self._view is not None

    #: Overridden by :class:`repro.insitu.sharded.ShardedSeriesReader`;
    #: lets callers (and the append path) tell a federated manifest reader
    #: from a single-file series without importing the sharded module.
    is_sharded = False

    @classmethod
    def open(
        cls,
        path: str | Path,
        *,
        mmap: bool = False,
        recover: bool = False,
        backend=None,
    ) -> "SeriesReader":
        """Open a series file for random access (reader owns the handle).

        With ``mmap=True`` the file is memory-mapped and every segment is
        opened as a buffer-mode
        :class:`~repro.compression.container.ContainerReader`, so patch
        streams reach the codecs as zero-copy ``memoryview`` slices.

        With ``recover=True``, a series whose footer or timestep index is
        missing or damaged (a killed writer) is salvaged instead of raising:
        the file is scanned for sealed segments
        (:func:`repro.insitu.recovery.scan_segments`) and the reader serves
        every fully-sealed step, read-only, without modifying the file. An
        intact series takes the normal footer path — no rebuild is
        triggered — so ``recover=True`` is always safe to pass.

        ``backend`` (a :class:`repro.storage.StorageBackend`) redirects all
        byte reads through the backend instead of the local filesystem;
        mutually exclusive with ``mmap``.

        A path holding an ``RPHM`` sharded-campaign manifest
        (:mod:`repro.insitu.sharded`) is opened transparently: the returned
        reader federates every shard's timestep index and serves the union
        through this same API (its :attr:`is_sharded` is True).
        """
        if backend is not None and mmap:
            raise CompressionError("backend= and mmap=True are mutually exclusive")
        # Sharded-manifest dispatch: sniff the magic before committing to
        # the single-file parse. Lazy import — sharded imports this module.
        from repro.insitu.sharded import MANIFEST_MAGIC, ShardedSeriesReader

        if backend is not None:
            probe = backend.open_read(str(path))
            try:
                head = probe.read(len(MANIFEST_MAGIC))
            finally:
                probe.close()
        else:
            with Path(path).open("rb") as probe:
                head = probe.read(len(MANIFEST_MAGIC))
        if head == MANIFEST_MAGIC:
            return ShardedSeriesReader.open(
                path, mmap=mmap, recover=recover, backend=backend
            )
        try:
            return cls._open(path, mmap=mmap, backend=backend)
        except TruncatedSeriesError:
            if not recover:
                raise
        from repro.insitu.recovery import scan_segments

        if backend is not None:
            handle = backend.open_read(str(path))
            try:
                report = scan_segments(handle)
            finally:
                handle.close()
        else:
            report = scan_segments(path)
        if not report.entries:
            raise TruncatedSeriesError(
                f"{path}: damaged series holds no fully-sealed steps; "
                "nothing to recover"
            )
        return cls._open(path, mmap=mmap, _recovery=report, backend=backend)

    @classmethod
    def _open(
        cls, path: str | Path, *, mmap: bool = False, _recovery=None, backend=None
    ) -> "SeriesReader":
        if backend is not None:
            fileobj = backend.open_read(str(path))
            try:
                reader = cls(fileobj, _recovery=_recovery)
            except Exception:
                fileobj.close()
                raise
            reader._owns = True
            return reader
        fileobj = Path(path).open("rb")
        try:
            if mmap:
                try:
                    mapping = _mmap.mmap(fileobj.fileno(), 0, access=_mmap.ACCESS_READ)
                except (ValueError, OSError) as exc:
                    raise FormatError(f"cannot memory-map {path}: {exc}") from exc
                try:
                    reader = cls(mapping, _recovery=_recovery)
                except Exception:
                    mapping.close()
                    raise
                reader._mmap = mapping
                reader._file = fileobj
            else:
                reader = cls(fileobj, _recovery=_recovery)
        except Exception:
            fileobj.close()
            raise
        reader._owns = True
        return reader

    def close(self) -> None:
        """Close the underlying file/mapping if this reader opened it."""
        if self._view is not None:
            self._view.release()
            self._view = None
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
        if self._owns and self._file is not None:
            self._file.close()

    def __enter__(self) -> "SeriesReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    @property
    def codec(self) -> str:
        """Default codec name recorded at write time."""
        return str(self._meta["codec"])

    @property
    def error_bound(self) -> float:
        """Error bound the series was compressed under."""
        return float(self._meta["error_bound"])

    @property
    def mode(self) -> str:
        """Error-bound mode (``"abs"`` or ``"rel"``)."""
        return str(self._meta["mode"])

    @property
    def fields(self) -> tuple[str, ...]:
        """Compressed field names (identical across steps)."""
        return tuple(self._meta["fields"])

    @property
    def exclude_covered(self) -> bool:
        """Whether the §2.2 covered-cell optimization was applied."""
        return bool(self._meta["exclude_covered"])

    @property
    def field_bounds(self) -> dict[str, float]:
        """Per-field error-bound overrides (empty when single-bound)."""
        return dict(self._meta.get("field_bounds", {}))

    @property
    def n_steps(self) -> int:
        """Number of timesteps in the series."""
        return len(self.step_entries)

    @property
    def steps(self) -> tuple[int, ...]:
        """Stored timestep numbers, ascending."""
        return tuple(e.step for e in self.step_entries)

    @property
    def times(self) -> tuple[float, ...]:
        """Simulation times, one per stored step."""
        return tuple(e.time for e in self.step_entries)

    @property
    def original_bytes(self) -> int:
        """Uncompressed size of the stored fields across all steps."""
        return sum(e.original_bytes for e in self.step_entries)

    @property
    def compressed_bytes(self) -> int:
        """Total segment size across all steps (payload + per-step indexes)."""
        return sum(e.length for e in self.step_entries)

    def meta(self) -> dict[str, Any]:
        """Copy of the series-level metadata."""
        return dict(self._meta)

    # ------------------------------------------------------------------
    # Random access
    # ------------------------------------------------------------------
    def entry(self, step: int) -> SeriesStepEntry:
        """Look up the timestep-index entry for one step."""
        try:
            return self._by_step[int(step)]
        except KeyError:
            raise FormatError(
                f"series has no step {step} (have {list(self.steps)})"
            ) from None

    def open_step(self, step: int) -> ContainerReader:
        """Open one timestep's embedded RPH2 segment for random access.

        Only the segment's footer and index are read eagerly; streams are
        fetched lazily through the shared file handle. In zero-copy mode
        the segment is a buffer-mode
        :class:`~repro.compression.container.ContainerReader` over a
        ``memoryview`` slice of the series buffer, so its patch streams
        stay zero-copy all the way into the codecs.
        """
        e = self.entry(step)
        try:
            if self._view is not None:
                return ContainerReader(self._view[e.offset : e.offset + e.length])
            return ContainerReader(_SegmentWindow(self._file, e.offset, e.length))
        except FormatError as exc:
            raise FormatError(f"series step {e.describe()}: {exc}") from exc

    def verify_step(self, step: int) -> None:
        """Check a whole segment's crc32 against the timestep index.

        Reads the full segment — O(segment) bytes — so it is an explicit
        integrity sweep, not part of the random-access path (stream-level
        crcs already guard individual reads). In zero-copy mode the crc
        runs over the segment's ``memoryview`` without a copy.
        """
        e = self.entry(step)
        if self._view is not None:
            blob = self._view[e.offset : e.offset + e.length]
        else:
            self._file.seek(e.offset)
            blob = self._file.read(e.length)
        if len(blob) != e.length or zlib.crc32(blob) != e.crc32:
            raise FormatError(f"segment checksum mismatch at step {e.describe()}")

    def read_patch(
        self, step: int, level: int, field: str, patch: int, verify: bool = True
    ) -> np.ndarray:
        """Decompress a single patch identified by ``(step, level, field,
        patch)`` — the series-extended random-access primitive."""
        return self.open_step(step).read_patch(level, field, patch, verify=verify)

    def select(
        self,
        steps=None,
        levels=None,
        fields=None,
        patches=None,
        verify: bool = True,
        parallel: str = "serial",
        workers: int = 2,
        pool=None,
    ) -> dict[tuple[int, int, str, int], np.ndarray]:
        """Decompress the subset of patches matching the selectors.

        ``steps`` / ``levels`` / ``fields`` / ``patches`` accept a scalar,
        an iterable, or ``None`` (no restriction); results are keyed by
        ``(step, level, field, patch)``. Only the selected steps' segment
        indexes are ever read — unselected segments cost zero payload
        bytes. ``pool`` (a persistent :class:`repro.parallel.WorkerPool`)
        is reused across every selected segment's decode map.
        """
        want_steps = _normalize_selector(steps, "step")
        out: dict[tuple[int, int, str, int], np.ndarray] = {}
        for e in self.step_entries:
            if want_steps is not None and e.step not in want_steps:
                continue
            sub = self.open_step(e.step).select(
                levels=levels, fields=fields, patches=patches, verify=verify,
                parallel=parallel, workers=workers, pool=pool,
            )
            for (lev, field, p_idx), arr in sub.items():
                out[(e.step, lev, field, p_idx)] = arr
        return out
