"""Crash recovery for interrupted RPH2S series writes.

A killed in-situ campaign (node failure, preemption, OOM) leaves an RPH2S
file without its series footer — historically unreadable, even though every
already-compressed timestep is sitting intact on disk. This module is the
salvage path:

* :func:`scan_segments` walks the file from offset 0 and rebuilds the
  timestep index from the per-step **seal records**
  (:data:`~repro.insitu.series.SEAL_MAGIC`) the
  :class:`~repro.insitu.writer.StreamingWriter` writes after every
  segment. A sealed step is recovered when its 64-byte seal record
  crc-validates *and* the whole-segment crc32 it restates matches the
  bytes on disk. When a segment's seal itself was destroyed, the scanner
  falls back to locating the segment's own RPH2 footer and validates
  every per-stream crc before trusting it (step number and time are then
  synthesized, monotonically). Damage in the middle of the file is
  skipped by resyncing on the next valid seal.
* :func:`recover_series` wraps the scan as a dry-run report and, with
  ``commit=True``, truncates trailing garbage and appends a fresh
  timestep index + footer (byte-identical to what an uninterrupted
  writer would have emitted for the surviving steps).
* :meth:`SeriesReader.open(..., recover=True)
  <repro.insitu.series.SeriesReader.open>` serves a damaged file
  read-only through the same scan, without modifying it.

Every path reads O(scan) bytes — a bounded constant number of passes over
the file, independent of the number of steps — never O(steps x file).
"""

from __future__ import annotations

import io
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import BinaryIO, Iterator

from repro.compression.container import (
    CONTAINER_MAGIC,
    CONTAINER_VERSION,
    FOOTER_MAGIC,
    FOOTER_SIZE,
    HEADER_SIZE,
    ContainerReader,
    unpack_footer,
)
from repro.errors import FormatError, TruncatedSeriesError
from repro.insitu.series import (
    SEAL_MAGIC,
    SEAL_SIZE,
    SERIES_FOOTER_MAGIC,
    SERIES_MAGIC,
    SERIES_VERSION,
    _SERIES_FOOTER,
    _SERIES_HEADER,
    SeriesReader,
    extract_series_meta,
    SeriesStepEntry,
    build_series_index_bytes,
    unpack_seal,
)

__all__ = [
    "RecoveredStep",
    "DamagedExtent",
    "RecoveryReport",
    "scan_segments",
    "recover_series",
    "commit_recovery",
]

#: Chunk size for the forward magic scans.
_SCAN_CHUNK = 1 << 20


@dataclass(frozen=True)
class RecoveredStep:
    """One salvaged timestep.

    ``sealed`` is True when the step was validated through its seal record
    (whole-segment crc); False when it was reconstructed from the segment's
    own footer (per-stream crcs validated, step number/time synthesized).
    """

    entry: SeriesStepEntry
    sealed: bool


@dataclass(frozen=True)
class DamagedExtent:
    """A byte range the scan had to drop, and why."""

    offset: int
    length: int
    reason: str


@dataclass
class RecoveryReport:
    """Outcome of a recovery scan over one series file.

    ``intact`` is True when the series footer and timestep index parsed
    cleanly (nothing to do); otherwise ``reason`` names the failure that
    triggered the scan. ``data_end`` is the commit truncation point: the
    end of the last recovered seal (or segment), with ``tail_bytes`` of
    unrecoverable bytes after it.
    """

    total_bytes: int
    intact: bool
    reason: str | None
    meta: dict | None
    steps: list[RecoveredStep] = field(default_factory=list)
    damaged: list[DamagedExtent] = field(default_factory=list)
    data_end: int = _SERIES_HEADER.size
    tail_bytes: int = 0

    @property
    def entries(self) -> list[SeriesStepEntry]:
        """The recovered timestep-index rows, ascending."""
        return [s.entry for s in self.steps]

    def describe(self) -> str:
        """Multi-line human-readable summary (the CLI dry-run report)."""
        lines = []
        if self.intact:
            lines.append(
                f"series intact: footer and timestep index valid, "
                f"{len(self.steps)} step(s); nothing to recover"
            )
            return "\n".join(lines)
        lines.append(
            f"series damaged: {self.reason or 'footer/timestep index missing or unreadable'}"
        )
        lines.append(
            f"recovered {len(self.steps)} fully-sealed step(s), "
            f"{self.tail_bytes} trailing byte(s) unrecoverable"
        )
        for s in self.steps:
            e = s.entry
            how = "seal" if s.sealed else "segment footer (step renumbered)"
            lines.append(
                f"  step {e.step:>5} t={e.time:<10.4g} offset {e.offset:>10} "
                f"length {e.length:>10} via {how}"
            )
        for d in self.damaged:
            lines.append(
                f"  dropped [{d.offset}, {d.offset + d.length}): {d.reason}"
            )
        return "\n".join(lines)


class _Source:
    """Uniform ``read_at`` access over a path, file-like, or byte buffer."""

    def __init__(self, source):
        self._owned: BinaryIO | None = None
        if isinstance(source, (str, Path)):
            self._owned = Path(source).open("rb")
            source = self._owned
        if hasattr(source, "seek") and hasattr(source, "read"):
            source.seek(0, io.SEEK_END)
            self.total = source.tell()
            self._file = source
            self._buf = None
        else:
            self._buf = memoryview(source).cast("B")
            self._file = None
            self.total = self._buf.nbytes

    def read_at(self, offset: int, length: int) -> bytes:
        if self._buf is not None:
            return bytes(self._buf[offset : offset + length])
        self._file.seek(offset)
        return self._file.read(length)

    def close(self) -> None:
        if self._buf is not None:
            self._buf.release()
        if self._owned is not None:
            self._owned.close()


def _find_magic(
    src: _Source, start: int, end: int, magic: bytes
) -> Iterator[int]:
    """Yield absolute offsets of ``magic`` in ``[start, end)``, forward
    order, reading in bounded chunks with overlap."""
    overlap = len(magic) - 1
    pos = start
    while pos < end:
        chunk_end = min(pos + _SCAN_CHUNK, end)
        blob = src.read_at(pos, chunk_end - pos + overlap)
        blob = blob[: chunk_end - pos + overlap]
        at = blob.find(magic)
        while at != -1:
            hit = pos + at
            if hit + len(magic) <= end:
                yield hit
            at = blob.find(magic, at + 1)
        pos = chunk_end


def _entry_from_seal(src: _Source, pos: int) -> SeriesStepEntry | None:
    return unpack_seal(src.read_at(pos, SEAL_SIZE))


def _segment_magic_at(src: _Source, pos: int) -> bool:
    head = src.read_at(pos, HEADER_SIZE)
    return (
        len(head) == HEADER_SIZE
        and head[:4] == CONTAINER_MAGIC
        and head[4] == CONTAINER_VERSION
    )


def _recover_in_gap(
    src: _Source, start: int, end: int, next_step: int, max_candidates: int = 32
) -> tuple[int, SeriesStepEntry, int] | None:
    """Probe a damaged byte range for an intact, footer-recoverable segment.

    Used by the resync path so that a segment whose *seal* was destroyed is
    still salvaged (the fallback guarantee) instead of being skipped along
    with the surrounding damage. ``max_candidates`` bounds the work on
    adversarial payloads full of fake segment-magic bytes, keeping the
    whole scan O(scan)."""
    probe = CONTAINER_MAGIC + bytes([CONTAINER_VERSION])
    for tried, c in enumerate(_find_magic(src, start, end, probe)):
        if tried >= max_candidates:
            break
        got = _recover_by_inner_footer(src, c, end, next_step)
        if got is not None:
            entry, seg_end = got
            return c, entry, seg_end
    return None


def _recover_by_inner_footer(
    src: _Source, pos: int, limit: int, next_step: int
) -> tuple[SeriesStepEntry, int] | None:
    """Reconstruct the segment starting at ``pos`` from its own RPH2 footer
    (the seal-destroyed fallback). Validates the segment index crc and every
    per-stream crc before trusting the bytes; step number and time are
    synthesized as ``next_step``."""
    for m in _find_magic(src, pos + HEADER_SIZE, limit, FOOTER_MAGIC):
        f_start = m + len(FOOTER_MAGIC) - FOOTER_SIZE
        if f_start < pos + HEADER_SIZE:
            continue
        try:
            idx_off, idx_len, idx_crc = unpack_footer(src.read_at(f_start, FOOTER_SIZE))
        except FormatError:
            continue
        # The footer sits directly after the index it locates; offsets are
        # relative to the segment start. Anything else is a payload
        # coincidence.
        if idx_off + idx_len != f_start - pos:
            continue
        idx_bytes = src.read_at(pos + idx_off, idx_len)
        if len(idx_bytes) != idx_len or zlib.crc32(idx_bytes) != idx_crc:
            continue
        length = f_start + FOOTER_SIZE - pos
        seg = src.read_at(pos, length)
        try:
            reader = ContainerReader(seg)
            for e in reader.entries:
                reader.read_stream(e, verify=True)
                if e.group is not None:
                    handle = reader.group(e.group, verify=True)
                    handle.read_payload(e.member, verify=True)
            meta = reader.meta()
        except FormatError:
            continue
        entry = SeriesStepEntry(
            step=next_step,
            offset=pos,
            length=length,
            crc32=zlib.crc32(seg),
            container_version=seg[4],
            time=float(next_step),
            n_levels=int(meta["n_levels"]),
            n_patches=len(reader.entries),
            original_bytes=int(meta["original_bytes"]),
        )
        return entry, pos + length
    return None


def _next_step(
    src: _Source, pos: int, next_step: int, damaged: list[DamagedExtent]
) -> tuple[RecoveredStep | None, int] | None:
    """Recover the next step at-or-after ``pos``.

    Returns ``(step_or_None, end)`` — ``step_or_None`` is ``None`` when an
    extent had to be dropped but the scan can continue at ``end`` — or
    ``None`` when nothing recoverable remains (trailing garbage).
    """
    total = src.total
    if pos + HEADER_SIZE > total:
        return None
    if _segment_magic_at(src, pos):
        # Fast path: the segment's own seal. Seals are ordered, so the
        # first crc-valid seal at-or-after pos either belongs to this
        # segment (offset/length agree) or proves this segment's seal is
        # gone — which bounds the fallback footer search.
        for s in _find_magic(src, pos + HEADER_SIZE, total, SEAL_MAGIC):
            seal = _entry_from_seal(src, s)
            if seal is None:
                continue
            if seal.offset == pos and seal.length == s - pos:
                seg = src.read_at(pos, seal.length)
                if len(seg) == seal.length and zlib.crc32(seg) == seal.crc32:
                    return RecoveredStep(seal, sealed=True), s + SEAL_SIZE
                damaged.append(
                    DamagedExtent(
                        pos, s + SEAL_SIZE - pos,
                        f"sealed step {seal.step}: segment crc mismatch "
                        "(corrupt payload)",
                    )
                )
                return None, s + SEAL_SIZE
            if seal.offset + seal.length == s and seal.offset > pos:
                # A later segment's seal: this segment's seal is gone.
                # Try its inner footer within the bounded window.
                got = _recover_by_inner_footer(src, pos, s, next_step)
                if got is not None:
                    entry, end = got
                    return RecoveredStep(entry, sealed=False), end
                break
        else:
            # No valid seal anywhere after pos: last segment of a killed
            # writer. Its inner footer decides whether the step completed.
            got = _recover_by_inner_footer(src, pos, total, next_step)
            if got is not None:
                entry, end = got
                return RecoveredStep(entry, sealed=False), end
            return None
    # Resync: skip damage by trusting the next seal whose record and
    # segment both crc-validate — but first probe the gap for an intact
    # segment whose own seal was destroyed (two adjacent broken seals must
    # not cost the intact segment between them).
    for s in _find_magic(src, pos, total, SEAL_MAGIC):
        seal = _entry_from_seal(src, s)
        if seal is None:
            continue
        if seal.offset < pos or seal.offset + seal.length != s:
            continue
        if not _segment_magic_at(src, seal.offset):
            continue
        seg = src.read_at(seal.offset, seal.length)
        if len(seg) != seal.length or zlib.crc32(seg) != seal.crc32:
            continue
        got = _recover_in_gap(src, pos, seal.offset, next_step)
        if got is not None:
            c, entry, end = got
            if c > pos:
                damaged.append(
                    DamagedExtent(pos, c - pos, "unreadable bytes (skipped)")
                )
            return RecoveredStep(entry, sealed=False), end
        damaged.append(
            DamagedExtent(pos, seal.offset - pos, "unreadable bytes (skipped)")
        )
        return RecoveredStep(seal, sealed=True), s + SEAL_SIZE
    # No trustworthy seal left at all: the tail may still hold one final
    # footer-recoverable segment (its seal torn by the crash).
    got = _recover_in_gap(src, pos, total, next_step)
    if got is not None:
        c, entry, end = got
        if c > pos:
            damaged.append(
                DamagedExtent(pos, c - pos, "unreadable bytes (skipped)")
            )
        return RecoveredStep(entry, sealed=False), end
    return None


def scan_segments(source) -> RecoveryReport:
    """Walk a series file from offset 0 and rebuild its timestep index.

    ``source`` is a path, a seekable binary file, or a byte buffer. The
    scan never modifies the file; it returns a :class:`RecoveryReport`
    whose ``entries`` hold every fully-sealed (or footer-validated) step in
    ascending order. Raises :class:`FormatError` when the file is not an
    RPH2S series at all (recovery cannot conjure a format).
    """
    src = _Source(source)
    try:
        return _scan(src)
    finally:
        src.close()


def _scan(src: _Source) -> RecoveryReport:
    total = src.total
    head = src.read_at(0, _SERIES_HEADER.size)
    if len(head) < _SERIES_HEADER.size or head[:5] != SERIES_MAGIC:
        raise FormatError(
            f"not an RPH2S series (magic {head[:5]!r}); nothing to recover"
        )
    if head[5] != SERIES_VERSION:
        raise FormatError(
            f"unsupported series version {head[5]}; nothing to recover"
        )
    steps: list[RecoveredStep] = []
    damaged: list[DamagedExtent] = []
    pos = _SERIES_HEADER.size
    data_end = pos
    while pos < total:
        nxt = max((s.entry.step for s in steps), default=-1) + 1
        got = _next_step(src, pos, nxt, damaged)
        if got is None:
            break
        step, end = got
        if step is not None:
            if steps and step.entry.step <= steps[-1].entry.step:
                damaged.append(
                    DamagedExtent(
                        step.entry.offset, step.entry.length,
                        f"step {step.entry.step} out of order after "
                        f"{steps[-1].entry.step}",
                    )
                )
            else:
                steps.append(step)
                data_end = end
        pos = end
    meta = None
    if steps:
        last = steps[-1].entry
        seg_meta = ContainerReader(src.read_at(last.offset, last.length)).meta()
        meta = extract_series_meta(seg_meta)
    return RecoveryReport(
        total_bytes=total,
        intact=False,
        reason=None,
        meta=meta,
        steps=steps,
        damaged=damaged,
        data_end=data_end,
        tail_bytes=total - data_end,
    )


def _copy_prefix(src: Path, dst: Path, end: int) -> None:
    """Copy ``src[:end]`` to ``dst`` in bounded chunks (campaign files can
    be tens of GB; recovery must not slurp them into memory)."""
    with src.open("rb") as fin, dst.open("wb") as fout:
        remaining = end
        while remaining > 0:
            chunk = fin.read(min(_SCAN_CHUNK, remaining))
            if not chunk:
                break
            fout.write(chunk)
            remaining -= len(chunk)


def recover_series(
    path: str | Path,
    commit: bool = False,
    output: str | Path | None = None,
) -> RecoveryReport:
    """Diagnose (and optionally repair) an interrupted series write.

    Dry run by default: opens ``path``, reports whether the footer/index
    are intact, and — when they are not — scans for sealed segments and
    returns the rebuilt index as a :class:`RecoveryReport` without touching
    the file.

    With ``commit=True`` a damaged series is rewritten: trailing
    unrecoverable bytes are truncated and a fresh timestep index + footer
    are appended (fsynced, index before footer), after which the file opens
    normally. ``output`` redirects the rewrite to a new file, leaving the
    damaged original untouched; an intact series is never rewritten in
    place (with ``output`` it is simply copied).
    """
    path = Path(path)
    try:
        with SeriesReader.open(path) as reader:
            report = RecoveryReport(
                total_bytes=path.stat().st_size,
                intact=True,
                reason=None,
                meta=reader.meta(),
                steps=[RecoveredStep(e, sealed=True) for e in reader.step_entries],
                data_end=reader._index_offset,
                tail_bytes=0,
            )
        if commit and output is not None:
            _copy_prefix(path, Path(output), report.total_bytes)
        return report
    except TruncatedSeriesError as exc:
        reason = str(exc)
    report = scan_segments(path)
    report.reason = reason
    if commit:
        target = path
        if output is not None:
            target = Path(output)
            _copy_prefix(path, target, report.data_end)
        commit_recovery(target, report)
    return report


def commit_recovery(path: str | Path, report: RecoveryReport) -> None:
    """Apply a :class:`RecoveryReport` to ``path``: truncate after the last
    recovered step and append a fresh timestep index + footer.

    The index bytes come from
    :func:`~repro.insitu.series.build_series_index_bytes`, so the committed
    file is byte-identical to what an uninterrupted writer would have
    produced for the surviving steps. The index is fsynced before the
    footer that points at it (the same two-phase commit the writer uses).
    """
    if report.meta is None or not report.steps:
        raise TruncatedSeriesError(
            f"{path}: no fully-sealed steps recovered; refusing to commit "
            "an empty series"
        )
    index_bytes = build_series_index_bytes(report.meta, report.entries)
    with Path(path).open("r+b") as f:
        f.truncate(report.data_end)
        f.seek(report.data_end)
        f.write(index_bytes)
        f.flush()
        try:
            os.fsync(f.fileno())
        except OSError:
            pass
        f.write(
            _SERIES_FOOTER.pack(
                report.data_end,
                len(index_bytes),
                zlib.crc32(index_bytes),
                SERIES_FOOTER_MAGIC,
            )
        )
        f.flush()
        try:
            os.fsync(f.fileno())
        except OSError:
            pass
