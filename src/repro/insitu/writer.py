"""In-situ streaming writer for RPH2S time-series containers.

:class:`StreamingWriter` accepts patches incrementally — in the order a
(simulated) solver produces them — and compresses them *while the step is
still accumulating*: each ``add_patch`` submits the array to the
:mod:`repro.parallel` pool and the writer drains finished blobs straight to
disk in submission order. Memory stays bounded by the in-flight window
(``max_pending`` raw patches plus their compressed blobs), never by the
hierarchy or the campaign:

.. code-block:: python

    from repro.insitu import StreamingWriter
    from repro.sims import nyx_step_stream

    with StreamingWriter.create("run.rph2s", codec="sz-lr",
                                error_bound=1e-3, parallel="thread") as w:
        for s in nyx_step_stream(16):                 # lazy generator
            w.append_step(s.hierarchy, time=s.time, step=s.index)

Each finished step becomes a complete, self-contained RPH2 segment; the
timestep index and series footer are written at :meth:`StreamingWriter.close`.
When patches are fed in the canonical layout order (level ascending, field
sorted, patch ascending — what :meth:`append_step` does), a segment is
byte-identical to the batch :func:`repro.compression.amr_codec.compress_hierarchy`
output for the same data.
"""

from __future__ import annotations

import io
import os
import warnings
import zlib
from collections import deque
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from pathlib import Path
from typing import BinaryIO, Sequence

import numpy as np

from repro.amr.coverage import level_covered_masks
from repro.amr.hierarchy import AMRHierarchy
from repro.compression.amr_codec import (
    _compress_task,
    _fill_covered,
    resolve_patch_codec,
    validate_field_bounds as _validate_field_bounds,
)
from repro.compression.base import Compressor
from repro.compression.container import (
    CONTAINER_VERSION,
    build_index_bytes,
    pack_footer,
    pack_header,
)
from repro.errors import CompressionError, FormatError
from repro.insitu.series import (
    SERIES_FOOTER_MAGIC,
    SERIES_MAGIC,
    SERIES_VERSION,
    _SERIES_FOOTER,
    _SERIES_HEADER,
    SeriesReader,
    SeriesStepEntry,
    build_series_index_bytes,
    pack_seal,
)
from repro.parallel.pool import EXECUTION_MODES, WorkerPool, resolve_workers

__all__ = ["StreamingWriter", "DURABILITY_MODES"]

#: How aggressively the writer pushes sealed bytes to stable storage.
#: ``"step"`` fsyncs on every segment boundary (each sealed step survives a
#: crash), ``"close"`` fsyncs only around the final index/footer commit,
#: ``"none"`` never fsyncs (benchmarks, tmpfs, tests).
DURABILITY_MODES = ("step", "close", "none")


class StreamingWriter:
    """Append-only RPH2S writer with pipelined, bounded-memory compression.

    Parameters
    ----------
    fileobj:
        Writable binary file positioned at the start of a fresh file (or at
        the resume point when reopened through :meth:`append_to`). Prefer
        the :meth:`create` / :meth:`append_to` constructors, which own the
        handle.
    codec:
        Registry name or codec instance; resolved through
        :func:`repro.compression.amr_codec.resolve_patch_codec` so streams
        match the batch compressor byte for byte.
    error_bound, mode:
        Series-wide error-bound spec (individual patches may override via
        :meth:`add_patch`, e.g. for the covered-cell optimization).
    field_bounds:
        Optional ``{field: bound}`` overrides of ``error_bound`` — the
        mixed-physics campaign knob (e.g. WarpX E fields at one bound, B
        fields at a tighter one). Overridden fields resolve their bound
        under the same ``mode``; fields not named keep ``error_bound``.
        Recorded in the segment indexes and the series footer
        (``SeriesReader.field_bounds``) and restored by
        :meth:`append_to`.
    fields:
        Field names the series carries. ``None`` infers them from the first
        finished step; every later step must carry the same fields.
    exclude_covered:
        Recorded in the metadata; :meth:`append_step` applies the §2.2
        covered-cell fill when set.
    parallel, workers:
        Execution mode for the per-patch compression pipeline
        (``"serial"``, ``"thread"``, or ``"process"``).
    max_pending:
        In-flight patch limit for the parallel modes (default
        ``2 * workers``): the hard bound on buffered raw arrays.
    pool:
        Optional persistent :class:`repro.parallel.WorkerPool`. The writer
        then pipelines through the pool's executor — which survives across
        timesteps *and across writers* — instead of building its own, and
        leaves it running at :meth:`close` (the caller's ``with`` block
        owns it). Overrides ``parallel``/``workers``.
    durability:
        Crash-durability mode (see :data:`DURABILITY_MODES`). Every mode
        seals each finished segment with a crc-protected seal record — the
        structural guarantee recovery relies on; ``durability`` only
        controls *fsync* placement: ``"step"`` syncs every segment
        boundary, ``"close"`` (default) syncs only the final index/footer
        commit, ``"none"`` never syncs.
    """

    def __init__(
        self,
        fileobj: BinaryIO,
        codec: str | Compressor,
        error_bound: float,
        mode: str = "rel",
        fields: Sequence[str] | None = None,
        exclude_covered: bool = False,
        parallel: str = "serial",
        workers: int | None = 2,
        max_pending: int | None = None,
        pool: WorkerPool | None = None,
        durability: str = "close",
        field_bounds=None,
        _resume: tuple[int, list[SeriesStepEntry]] | None = None,
    ):
        if mode not in ("abs", "rel"):
            raise CompressionError(f"unknown error-bound mode {mode!r}")
        self._field_bounds = _validate_field_bounds(
            field_bounds, tuple(fields) if fields is not None else None
        )
        if durability not in DURABILITY_MODES:
            raise CompressionError(
                f"unknown durability mode {durability!r} (have {DURABILITY_MODES})"
            )
        self._durability = durability
        if parallel not in EXECUTION_MODES:
            raise CompressionError(
                f"unknown execution mode {parallel!r} (have {EXECUTION_MODES})"
            )
        self._comp = resolve_patch_codec(codec)
        self._eb = float(error_bound)
        self._mode = mode
        self._fields: tuple[str, ...] | None = tuple(fields) if fields is not None else None
        self._exclude_covered = bool(exclude_covered)
        self._file = fileobj
        self._owns = False
        self._closed = False
        self._degraded = False
        self._in_step = False
        self._owns_pool = False
        self._pool: Executor | WorkerPool | None = None
        if pool is not None:
            if pool.closed:
                raise CompressionError("worker pool is closed")
            # A serial pool runs inline — same as no pool at all.
            self._pool = pool if pool.mode != "serial" else None
            n = pool.workers
        elif parallel != "serial":
            n = resolve_workers(workers)
            pool_cls = ThreadPoolExecutor if parallel == "thread" else ProcessPoolExecutor
            self._pool = pool_cls(max_workers=n)
            self._owns_pool = True
        if self._pool is not None:
            self._max_pending = int(max_pending) if max_pending else 2 * n
            if self._max_pending < 1:
                raise CompressionError(f"max_pending must be >= 1, got {max_pending}")
        else:
            self._max_pending = 1
        if _resume is None:
            self._steps: list[SeriesStepEntry] = []
            self._pos = 0
            self._write(_SERIES_HEADER.pack(SERIES_MAGIC, SERIES_VERSION))
        else:
            self._pos, self._steps = _resume
        # End of the last durable prefix (header or last sealed step):
        # rollback_step() may truncate back to here, never past it.
        self._data_end = self._pos

    # ------------------------------------------------------------------
    # Construction / lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        path: str | Path,
        codec: str | Compressor,
        error_bound: float,
        mode: str = "rel",
        fields: Sequence[str] | None = None,
        exclude_covered: bool = False,
        parallel: str = "serial",
        workers: int | None = 2,
        max_pending: int | None = None,
        overwrite: bool = False,
        pool: WorkerPool | None = None,
        durability: str = "close",
        backend=None,
        field_bounds=None,
    ) -> "StreamingWriter":
        """Create a fresh series file (writer owns the handle).

        ``backend`` (a :class:`repro.storage.StorageBackend`) redirects the
        byte sink: the series is written through ``backend.open_write``
        instead of the local filesystem. Backends without a file
        descriptor (e.g. :class:`repro.storage.MemoryBackend`) cannot
        fsync; the writer then reports :attr:`degraded`.
        """
        if backend is not None:
            name = str(path)
            if backend.exists(name) and not overwrite:
                raise FormatError(
                    f"series object {name!r} already exists (pass overwrite=True)"
                )
            fileobj = backend.open_write(name)
        else:
            target = Path(path)
            if target.exists() and not overwrite:
                raise FormatError(
                    f"series path {target} already exists (pass overwrite=True)"
                )
            fileobj = target.open("wb")
        try:
            writer = cls(
                fileobj, codec, error_bound, mode=mode, fields=fields,
                exclude_covered=exclude_covered, parallel=parallel,
                workers=workers, max_pending=max_pending, pool=pool,
                durability=durability, field_bounds=field_bounds,
            )
        except Exception:
            fileobj.close()
            raise
        writer._owns = True
        return writer

    @classmethod
    def append_to(
        cls,
        path: str | Path,
        parallel: str = "serial",
        workers: int | None = 2,
        max_pending: int | None = None,
        pool: WorkerPool | None = None,
        durability: str = "close",
        backend=None,
    ) -> "StreamingWriter":
        """Reopen an existing series for appending more timesteps.

        The file's own metadata (codec, bound, fields) is authoritative;
        existing segments are left untouched and the timestep index is
        rewritten on :meth:`close`. This is the in-situ restart path: a
        resumed simulation keeps extending the same container.

        The old index/footer bytes beyond the resume point are truncated
        *eagerly*, before the first new byte is written: the on-disk state
        between truncation and the next sealed step is exactly the
        footerless-but-fully-sealed shape crash recovery is built for, so
        a writer killed at any point during the append session loses at
        most the step in flight (``tools/crashsim.py`` injects this as the
        ``append-resume`` class).
        """
        with SeriesReader.open(path, backend=backend) as reader:
            if getattr(reader, "is_sharded", False):
                raise CompressionError(
                    f"{path} is a sharded-campaign manifest; append through "
                    "repro.insitu.sharded.ShardedSeriesWriter, not append_to"
                )
            meta = reader.meta()
            rows = list(reader.step_entries)
            resume_pos = reader._index_offset
        if backend is not None:
            fileobj = backend.open_append(str(path))
        else:
            fileobj = Path(path).open("r+b")
        writer = None
        try:
            # Construct (and validate every argument) BEFORE truncating: a
            # bad parallel/workers value must not destroy a valid series.
            writer = cls(
                fileobj,
                str(meta["codec"]),
                float(meta["error_bound"]),
                mode=str(meta["mode"]),
                fields=tuple(meta["fields"]) or None,
                exclude_covered=bool(meta["exclude_covered"]),
                parallel=parallel,
                workers=workers,
                max_pending=max_pending,
                pool=pool,
                durability=durability,
                field_bounds=meta.get("field_bounds"),
                _resume=(resume_pos, rows),
            )
            fileobj.seek(resume_pos)
            fileobj.truncate()
        except Exception:
            if writer is not None:
                writer.abort()  # releases an owned executor, not just the fd
            fileobj.close()
            raise
        writer._owns = True
        return writer

    def __enter__(self) -> "StreamingWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            try:
                self.close()
            except BaseException:
                self.abort()
                raise
        else:
            self.abort()

    # ------------------------------------------------------------------
    # Low-level byte accounting
    # ------------------------------------------------------------------
    def _write(self, blob: bytes) -> None:
        self._file.write(blob)
        self._pos += len(blob)
        if self._in_step:
            self._seg_crc = zlib.crc32(blob, self._seg_crc)

    def _write_stream(self, level: int, field: str, p_idx: int, blob: bytes) -> None:
        rel = self._pos - self._seg_start
        self._entries.append(
            [level, field, p_idx, rel, len(blob), self._comp.name, zlib.crc32(blob)]
        )
        self._write(blob)

    def _sync(self) -> None:
        """Flush and fsync the underlying file.

        Non-file sinks (BytesIO, memory backends, pipes) have no fd to
        sync; those mark the writer :attr:`degraded` — the durability
        contract is only as strong as the sink allows. A *failing* fsync
        on a real fd is different: the kernel refused to make sealed bytes
        stable, so under ``durability="step"`` swallowing it would silently
        void the per-step crash guarantee. That raises
        :class:`~repro.errors.CompressionError`; other modes degrade with
        a warning instead.
        """
        self._file.flush()
        try:
            # io.UnsupportedOperation subclasses OSError, so the no-fd
            # cases must be separated out BEFORE fsync-failure handling.
            fd = self._file.fileno()
        except (AttributeError, io.UnsupportedOperation):
            self._degraded = True
            return
        try:
            os.fsync(fd)
        except OSError as exc:
            self._degraded = True
            if self._durability == "step":
                raise CompressionError(
                    f"fsync failed under durability='step': {exc}; sealed "
                    "bytes may not be stable — the per-step crash guarantee "
                    "does not hold for this writer"
                ) from exc
            warnings.warn(
                f"fsync failed; writer durability degraded: {exc}",
                RuntimeWarning,
                stacklevel=3,
            )

    def _drain(self, down_to: int) -> None:
        """Retire finished compression futures (FIFO keeps disk order
        deterministic) until at most ``down_to`` remain in flight."""
        while len(self._pending) > down_to:
            level, field, p_idx, fut = self._pending.popleft()
            self._write_stream(level, field, p_idx, fut.result())

    # ------------------------------------------------------------------
    # Step protocol
    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """True once a requested fsync could not be performed (sink has no
        file descriptor, or fsync failed under a non-``"step"`` mode): the
        bytes written are intact, but the crash-durability contract no
        longer holds for this writer."""
        return self._degraded

    @property
    def field_bounds(self) -> dict[str, float]:
        """Per-field error-bound overrides (empty when single-bound)."""
        return dict(self._field_bounds)

    def _bound_for(self, field: str) -> float:
        """The error bound patches of ``field`` compress under."""
        return self._field_bounds.get(field, self._eb)

    def _adopt_fields(self, names: tuple[str, ...]) -> None:
        """Fix the series field set (first finished step infers it)."""
        unknown = sorted(set(self._field_bounds) - set(names))
        if unknown:
            raise CompressionError(
                f"field_bounds name unknown fields {unknown} "
                f"(series fields: {sorted(names)})"
            )
        self._fields = tuple(names)

    @property
    def n_steps(self) -> int:
        """Timesteps recorded so far (including any resumed from disk)."""
        return len(self._steps)

    @property
    def next_step(self) -> int:
        """Step number :meth:`begin_step` will assign by default."""
        return self._steps[-1].step + 1 if self._steps else 0

    def begin_step(self, step: int | None = None, time: float | None = None) -> int:
        """Open a new timestep segment and return its step number.

        Step numbers must be strictly increasing but need not be contiguous
        (a solver may emit every Nth snapshot).
        """
        if self._closed:
            raise CompressionError("writer is closed")
        if self._in_step:
            raise CompressionError("previous step still open; call end_step() first")
        n = self.next_step if step is None else int(step)
        if self._steps and n <= self._steps[-1].step:
            raise CompressionError(
                f"step numbers must be strictly increasing: got {n} after "
                f"{self._steps[-1].step}"
            )
        self._in_step = True
        self._cur_step = n
        self._step_time = float(n) if time is None else float(time)
        self._seg_start = self._pos
        self._seg_crc = 0
        self._entries: list[list] = []
        self._counts: dict[tuple[int, str], int] = {}
        self._orig_bytes = 0
        self._pending: deque = deque()
        self._write(pack_header())
        return n

    def add_patch(
        self,
        level: int,
        field: str,
        data: np.ndarray,
        error_bound: float | None = None,
        mode: str | None = None,
    ) -> None:
        """Feed one patch of the open step into the compression pipeline.

        Patch indices are assigned per ``(level, field)`` in arrival order.
        ``error_bound`` / ``mode`` override the series-wide bound for this
        patch only (used by the covered-cell optimization, which fixes an
        absolute bound before filling).
        """
        if not self._in_step:
            raise CompressionError("no open step; call begin_step() first")
        level = int(level)
        if level < 0:
            raise CompressionError(f"level must be >= 0, got {level}")
        if self._fields is not None and field not in self._fields:
            raise CompressionError(
                f"field {field!r} is not part of this series (have {list(self._fields)})"
            )
        arr = np.asarray(data)
        self._orig_bytes += arr.nbytes
        p_idx = self._counts.get((level, field), 0)
        self._counts[(level, field)] = p_idx + 1
        eb = self._bound_for(field) if error_bound is None else float(error_bound)
        md = self._mode if mode is None else mode
        task = (self._comp, arr, eb, md)
        if self._pool is None:
            self._write_stream(level, field, p_idx, _compress_task(task))
        else:
            self._pending.append((level, field, p_idx, self._pool.submit(_compress_task, task)))
            self._drain(self._max_pending - 1)

    def end_step(self) -> SeriesStepEntry:
        """Finish the open step: flush the pipeline, write the segment's
        index and footer, and record the step in the timestep index."""
        if not self._in_step:
            raise CompressionError("no open step to end")
        self._drain(0)
        if not self._entries:
            self._in_step = False
            raise CompressionError("empty timestep: add at least one patch before end_step()")
        step_fields = []
        for _, field, *_ in self._entries:
            if field not in step_fields:
                step_fields.append(field)
        if self._fields is None:
            self._adopt_fields(tuple(step_fields))
        elif set(step_fields) != set(self._fields):
            self._in_step = False
            raise CompressionError(
                f"step {self._cur_step} carries fields {step_fields}, but the "
                f"series carries {list(self._fields)}"
            )
        self._entries.sort(key=lambda e: (e[0], e[1], e[2]))
        n_levels = self._entries[-1][0] + 1
        meta = {
            "codec": self._comp.name,
            "error_bound": self._eb,
            "mode": self._mode,
            "fields": list(self._fields),
            "exclude_covered": self._exclude_covered,
            "original_bytes": self._orig_bytes,
            "field_bounds": self._field_bounds,
        }
        index_bytes = build_index_bytes(meta, n_levels, self._entries)
        rel_index_offset = self._pos - self._seg_start
        self._write(index_bytes)
        self._write(pack_footer(rel_index_offset, len(index_bytes), zlib.crc32(index_bytes)))
        entry = SeriesStepEntry(
            step=self._cur_step,
            offset=self._seg_start,
            length=self._pos - self._seg_start,
            crc32=self._seg_crc,
            container_version=CONTAINER_VERSION,
            time=self._step_time,
            n_levels=n_levels,
            n_patches=len(self._entries),
            original_bytes=self._orig_bytes,
        )
        # Seal the step before advancing: the seal record restates the
        # index row after the segment bytes it describes, so a crash at any
        # later point can rebuild this step without the series footer. The
        # seal is not part of the segment (entry.length excludes it), which
        # keeps segments byte-identical to batch compress_hierarchy output.
        self._in_step = False
        self._write(pack_seal(entry))
        self._data_end = self._pos
        if self._durability == "step":
            self._sync()
        self._steps.append(entry)
        return entry

    def rollback_step(self) -> None:
        """Abandon the step in flight and truncate its partial bytes.

        After an append failed mid-step (e.g. a
        :class:`~repro.errors.TransientStorageError` from the byte sink),
        the file holds a partial, unsealed segment. This discards any
        in-flight compression futures and truncates back to the end of the
        last *sealed* step, leaving the writer exactly where it was before
        the failed ``begin_step`` — the same step number can be appended
        again. A no-op when nothing was written past the sealed prefix.
        """
        if self._closed:
            raise CompressionError("writer is closed")
        self._in_step = False
        pending = getattr(self, "_pending", None)
        while pending:
            *_, fut = pending.popleft()
            try:
                fut.result()  # retire, discard (and swallow its failure)
            except Exception:
                pass
        if self._pos > self._data_end:
            self._file.seek(self._data_end)
            self._file.truncate()
            self._pos = self._data_end

    def append_step(
        self,
        hierarchy: AMRHierarchy,
        time: float | None = None,
        step: int | None = None,
        fields: Sequence[str] | None = None,
    ) -> SeriesStepEntry:
        """Append one whole hierarchy as the next timestep.

        Convenience wrapper over the ``begin_step`` / ``add_patch`` /
        ``end_step`` protocol that feeds patches in the canonical layout
        order (level ascending, field sorted, patch ascending), so the
        resulting segment is byte-identical to
        :func:`~repro.compression.amr_codec.compress_hierarchy` +
        ``tobytes()`` on the same data. Applies the covered-cell fill when
        the writer was created with ``exclude_covered=True``.
        """
        if fields is not None:
            names = tuple(fields)
        elif self._fields is not None:
            names = self._fields
        else:
            names = hierarchy.field_names
        for name in names:
            if name not in hierarchy.field_names:
                raise CompressionError(f"hierarchy has no field {name!r}")
        # Reject a field-set mismatch BEFORE compressing anything: end_step
        # would catch it too, but only after the whole rejected segment's
        # bytes had been written (and permanently orphaned) in the file.
        if self._fields is not None and set(names) != set(self._fields):
            raise CompressionError(
                f"step carries fields {sorted(names)}, but the series "
                f"carries {sorted(self._fields)}"
            )
        if self._fields is None:
            self._adopt_fields(names)
        self.begin_step(step=step, time=time)
        try:
            for lev_idx, lev in enumerate(hierarchy):
                masks = (
                    level_covered_masks(hierarchy, lev_idx)
                    if self._exclude_covered
                    else None
                )
                for name in sorted(names):
                    for p_idx, patch in enumerate(lev.patches(name)):
                        data = patch.data
                        if masks is not None and masks[p_idx].any():
                            # Mirror the batch path: resolve the bound
                            # against the original values, then fill.
                            eb_abs = self._comp.resolve_error_bound(
                                data, self._bound_for(name), self._mode
                            )
                            data = _fill_covered(data, masks[p_idx])
                            self.add_patch(lev_idx, name, data, error_bound=eb_abs, mode="abs")
                        else:
                            self.add_patch(lev_idx, name, data)
        except Exception:
            self._in_step = False
            raise
        return self.end_step()

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Write the timestep index and series footer, then release
        resources. The file is not a valid RPH2S container until this runs."""
        if self._closed:
            return
        if self._in_step:
            raise CompressionError("cannot close with an open step; call end_step() first")
        meta = {
            "codec": self._comp.name,
            "error_bound": self._eb,
            "mode": self._mode,
            "fields": list(self._fields) if self._fields is not None else [],
            "exclude_covered": self._exclude_covered,
            "field_bounds": self._field_bounds,
        }
        index_bytes = build_series_index_bytes(meta, self._steps)
        index_offset = self._pos
        self._write(index_bytes)
        # Two-phase commit: make the index (and every sealed segment before
        # it) durable *before* the footer that points at it goes out. A
        # crash between the syncs leaves a footerless file, which recovery
        # rebuilds from the seals; a torn footer write is caught by the
        # footer magic / index crc checks at open.
        if self._durability != "none":
            self._sync()
        self._write(
            _SERIES_FOOTER.pack(
                index_offset, len(index_bytes), zlib.crc32(index_bytes), SERIES_FOOTER_MAGIC
            )
        )
        if self._durability != "none":
            self._sync()
        else:
            self._file.flush()
        self.abort()

    def abort(self) -> None:
        """Release the executor and file handle without finalizing the
        index. A shared :class:`~repro.parallel.WorkerPool` is left
        running — its owning ``with`` block decides its lifetime."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None and self._owns_pool:
            self._pool.shutdown(wait=True)
        if self._owns:
            self._file.close()
