"""Sharded multi-writer campaigns: N shard files + one RPHM manifest.

The paper's in-situ setting is many ranks compressing and writing
*concurrently*. A single :class:`~repro.insitu.writer.StreamingWriter`
serializes every segment through one file handle; this module fans a
campaign out across ``N`` shard files — one serial ``StreamingWriter`` and
one single-worker :class:`~repro.parallel.WorkerPool` lane per shard, so
steps on different shards compress and hit storage concurrently while each
shard stays strictly append-ordered — and federates them behind a small
crc-protected **RPHM manifest**:

.. code-block:: text

    offset 0   magic    b"RPHM"                                  (4 bytes)
    offset 4   u8       manifest version (currently 1)
    offset 5   u32      body length
    offset 9   body: JSON document (see below)
    ...        u32      crc32(body)

Manifest body schema (JSON)::

    {
      "format": "rphm", "version": 1, "final": bool,
      "codec": str, "error_bound": float, "mode": str,
      "fields": [str, ...], "exclude_covered": bool,
      "shards": [{"name": str, "durability": str,
                  "steps": [int, ...]}, ...],
      "parity": [{"name": str, "group": int, "members": [str, ...],
                  "stripes": int, "bytes": int}, ...]   # optional
    }

The optional ``parity`` list (written by campaigns created with
``parity=p`` > 0) records the XOR parity shards
(:mod:`repro.integrity.parity`) protecting the data shards, with
byte-overhead accounting (``bytes`` is each parity file's total size).
Readers ignore it; :func:`repro.integrity.repair_sharded` and the
self-healing serving path use it to locate redundancy.

Shard ``name`` is a basename; shards always live next to the manifest
(``<stem>.shard<k:03d>.rph2s``). The manifest is written twice: once at
:meth:`ShardedSeriesWriter.create` with ``final=false`` (so a killed
campaign still names its shards for recovery) and once at
:meth:`~ShardedSeriesWriter.close` with ``final=true`` and the full step
routing. Each shard is an ordinary, self-contained RPH2S series — every
durability/seal/recovery property of the single-writer format holds
per shard.

Reading is transparent: :meth:`SeriesReader.open` sniffs the RPHM magic
and returns a :class:`ShardedSeriesReader`, which exposes the
single-series API over the union of the per-shard timestep indexes and
routes each step to its owning shard — ``decompress_selection(steps=...)``
still reads O(selection) bytes. Crash recovery runs *per shard*
(:func:`recover_sharded`): ``scan_segments`` salvages each shard
independently and the manifest is rebuilt from the surviving indexes, so
killing one shard's writer mid-step cannot touch the other shards' steps.
"""

from __future__ import annotations

import io
import json
import os
import struct
import time as _time
import zlib
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.compression.container import ContainerReader, _normalize_selector
from repro.errors import (
    CompressionError,
    FormatError,
    StorageError,
    TransientStorageError,
    TruncatedSeriesError,
)
from repro.insitu.series import (
    _SERIES_META_KEYS,
    SEAL_SIZE,
    SeriesReader,
    SeriesStepEntry,
    extract_series_meta,
)
from repro.insitu.writer import (
    DURABILITY_MODES,
    StreamingWriter,
    _validate_field_bounds,
)
from repro.parallel.pool import WorkerPool
from repro.storage import LocalFileBackend, StorageBackend

__all__ = [
    "MANIFEST_MAGIC",
    "MANIFEST_VERSION",
    "ShardedSeriesWriter",
    "ShardedSeriesReader",
    "ShardedRecoveryReport",
    "pack_manifest",
    "parse_manifest",
    "shard_names",
    "recover_sharded",
]

MANIFEST_MAGIC = b"RPHM"
MANIFEST_VERSION = 1
_MANIFEST_HEAD = struct.Struct("<4sBI")
_MANIFEST_CRC = struct.Struct("<I")

_RECOVERY_HINT = (
    "; surviving shards are recoverable: run `python -m repro.compression "
    "recover <manifest>` or open with SeriesReader.open(..., recover=True)"
)


def shard_names(manifest: str | Path, n_shards: int) -> list[str]:
    """Full shard object names for a manifest name (same directory)."""
    root, _ = os.path.splitext(str(manifest))
    return [f"{root}.shard{k:03d}.rph2s" for k in range(n_shards)]


def pack_manifest(
    meta: dict,
    shards: list[dict],
    final: bool,
    parity: list[dict] | None = None,
) -> bytes:
    """Serialize an RPHM manifest (head + JSON body + body crc)."""
    doc = {
        "format": "rphm",
        "version": MANIFEST_VERSION,
        "final": bool(final),
        "codec": str(meta["codec"]),
        "error_bound": float(meta["error_bound"]),
        "mode": str(meta["mode"]),
        "fields": list(meta["fields"]),
        "exclude_covered": bool(meta["exclude_covered"]),
    }
    if meta.get("field_bounds"):
        doc["field_bounds"] = {
            str(k): float(v) for k, v in sorted(meta["field_bounds"].items())
        }
    doc.update({
        "shards": [
            {
                "name": str(s["name"]),
                "durability": str(s["durability"]),
                "steps": [int(n) for n in s["steps"]],
            }
            for s in shards
        ],
    })
    if parity:
        doc["parity"] = [
            {
                "name": str(p["name"]),
                "group": int(p["group"]),
                "members": [str(m) for m in p["members"]],
                "stripes": int(p["stripes"]),
                "bytes": int(p["bytes"]),
            }
            for p in parity
        ]
    body = json.dumps(doc, separators=(",", ":")).encode()
    return (
        _MANIFEST_HEAD.pack(MANIFEST_MAGIC, MANIFEST_VERSION, len(body))
        + body
        + _MANIFEST_CRC.pack(zlib.crc32(body))
    )


def parse_manifest(blob: bytes) -> dict:
    """Parse and validate an RPHM manifest; returns the JSON body.

    Alien bytes raise :class:`~repro.errors.FormatError`; a manifest that
    is too short or fails its crc is classified as
    :class:`~repro.errors.TruncatedSeriesError` — the shards it referenced
    are still recoverable by discovery.
    """
    if blob[: len(MANIFEST_MAGIC)] != MANIFEST_MAGIC:
        raise FormatError(
            f"not an RPHM manifest (magic {blob[:4]!r}, expected {MANIFEST_MAGIC!r})"
        )
    if len(blob) < _MANIFEST_HEAD.size:
        raise TruncatedSeriesError(
            f"manifest truncated to {len(blob)} bytes{_RECOVERY_HINT}"
        )
    _, version, body_len = _MANIFEST_HEAD.unpack_from(blob, 0)
    if version != MANIFEST_VERSION:
        raise FormatError(f"unsupported RPHM manifest version {version}")
    end = _MANIFEST_HEAD.size + body_len
    if len(blob) < end + _MANIFEST_CRC.size:
        raise TruncatedSeriesError(
            f"manifest body truncated ({len(blob)} bytes, need "
            f"{end + _MANIFEST_CRC.size}){_RECOVERY_HINT}"
        )
    body = blob[_MANIFEST_HEAD.size : end]
    (crc,) = _MANIFEST_CRC.unpack_from(blob, end)
    if zlib.crc32(body) != crc:
        raise TruncatedSeriesError(
            f"manifest checksum mismatch{_RECOVERY_HINT}"
        )
    try:
        man = json.loads(body.decode())
        if man["format"] != "rphm":
            raise FormatError(f"unexpected manifest format {man['format']!r}")
        for key in ("final", "shards", *_SERIES_META_KEYS):
            man[key]  # noqa: B018 - presence check
    except (json.JSONDecodeError, UnicodeDecodeError, KeyError, TypeError) as exc:
        raise TruncatedSeriesError(
            f"corrupt manifest body: {exc!r}{_RECOVERY_HINT}"
        ) from exc
    return man


def _shard_path(manifest: str | Path, basename: str) -> str:
    base_dir = os.path.dirname(str(manifest))
    return os.path.join(base_dir, basename) if base_dir else basename


class ShardedSeriesWriter:
    """Fan an in-situ campaign out across N shard files.

    Each shard gets a serial :class:`~repro.insitu.writer.StreamingWriter`
    plus (in ``parallel="thread"`` mode) a dedicated single-worker
    :class:`~repro.parallel.WorkerPool` lane, so appends on different
    shards overlap — compression and storage writes run concurrently
    across shards — while each shard file stays strictly append-ordered.
    Step numbers are globally strictly increasing; arrival order assigns
    shards round-robin unless the caller pins a shard (``shard=rank``),
    the MPI-style placement.

    Use :meth:`create`; the campaign is finalized by :meth:`close`, which
    drains every lane, closes every shard (writing its index/footer), and
    rewrites the RPHM manifest with ``final=true``.

    .. code-block:: python

        from repro.insitu.sharded import ShardedSeriesWriter

        with ShardedSeriesWriter.create("run.rphm", "sz-lr", 1e-3,
                                        n_shards=4) as w:
            for s in nyx_step_stream(16):
                w.append_step(s.hierarchy, time=s.time, step=s.index)
    """

    def __init__(
        self,
        path: str | Path,
        writers: list[StreamingWriter],
        lanes: list[WorkerPool] | None,
        durabilities: list[str],
        meta: dict,
        backend: StorageBackend,
        max_pending_steps: int,
        parity: int = 0,
        retries: int = 2,
        retry_delay: float = 0.05,
        sleep=None,
    ):
        self._path = str(path)
        self._writers = writers
        self._lanes = lanes
        self._durabilities = durabilities
        self._meta = meta
        self._backend = backend
        self._max_pending = max_pending_steps
        self._parity = int(parity)
        self._retries = int(retries)
        self._retry_delay = float(retry_delay)
        self._sleep = sleep if sleep is not None else _time.sleep
        self._inflight: deque = deque()
        self._route: dict[int, int] = {}
        self._rr = 0
        self._next = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Construction / lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        path: str | Path,
        codec: str,
        error_bound: float,
        mode: str = "rel",
        n_shards: int = 4,
        fields: Sequence[str] | None = None,
        exclude_covered: bool = False,
        parallel: str = "thread",
        durability: str | Sequence[str] = "close",
        max_pending_steps: int | None = None,
        overwrite: bool = False,
        backend: StorageBackend | None = None,
        parity: int = 0,
        retries: int = 2,
        retry_delay: float = 0.05,
        sleep=None,
        field_bounds=None,
    ) -> "ShardedSeriesWriter":
        """Create a fresh sharded campaign at manifest ``path``.

        ``field_bounds`` maps field names to per-field error bounds
        overriding ``error_bound`` (mixed-physics campaigns compress e.g.
        E and B fields at different tolerances); it is recorded in the
        manifest and every shard's series footer.

        ``durability`` is one mode for every shard, or a per-shard
        sequence (rank 0 can run ``"step"`` while bulk ranks run
        ``"none"``). ``parallel`` is ``"thread"`` (one lane per shard,
        concurrent appends) or ``"serial"`` (inline appends, deterministic
        — what the value-identity tests use). ``max_pending_steps`` bounds
        in-flight appends across all lanes (default ``2 * n_shards``).

        ``parity=p`` (0 ≤ p ≤ n_shards) writes ``p`` XOR parity shards at
        :meth:`close` (:mod:`repro.integrity.parity`): data shard ``k``
        joins parity group ``k % p``, and any single lost or damaged
        segment per group is reconstructible bit-exactly
        (:func:`repro.integrity.repair_sharded`, or transparently by
        ``repro.serve``). Parity protects *finalized* campaigns; a
        campaign killed before close has no parity files and falls back
        to plain crash recovery.

        A :class:`~repro.errors.TransientStorageError` raised while
        appending a step is retried on that shard's lane — partial
        segment bytes are rolled back and the append re-runs, up to
        ``retries`` extra attempts with exponential backoff starting at
        ``retry_delay`` seconds (``sleep`` is injectable for tests) —
        instead of failing the whole campaign.
        """
        n_shards = int(n_shards)
        if n_shards < 1:
            raise CompressionError(f"n_shards must be >= 1, got {n_shards}")
        parity = int(parity)
        if not 0 <= parity <= n_shards:
            raise CompressionError(
                f"parity must be between 0 and n_shards={n_shards}, got {parity}"
            )
        retries = int(retries)
        if retries < 0:
            raise CompressionError(f"retries must be >= 0, got {retries}")
        if parallel not in ("serial", "thread"):
            raise CompressionError(
                f"sharded parallel mode must be 'serial' or 'thread', got {parallel!r}"
            )
        if isinstance(durability, str):
            durabilities = [durability] * n_shards
        else:
            durabilities = [str(d) for d in durability]
            if len(durabilities) != n_shards:
                raise CompressionError(
                    f"per-shard durability needs {n_shards} entries, got "
                    f"{len(durabilities)}"
                )
        for d in durabilities:
            if d not in DURABILITY_MODES:
                raise CompressionError(
                    f"unknown durability mode {d!r} (have {DURABILITY_MODES})"
                )
        pending = int(max_pending_steps) if max_pending_steps else 2 * n_shards
        if pending < 1:
            raise CompressionError(
                f"max_pending_steps must be >= 1, got {max_pending_steps}"
            )
        backend = backend or LocalFileBackend()
        manifest_name = str(path)
        if backend.exists(manifest_name) and not overwrite:
            raise FormatError(
                f"campaign manifest {manifest_name!r} already exists "
                "(pass overwrite=True)"
            )
        names = shard_names(manifest_name, n_shards)
        meta = {
            "codec": str(codec),
            "error_bound": float(error_bound),
            "mode": str(mode),
            "fields": list(fields) if fields is not None else [],
            "exclude_covered": bool(exclude_covered),
        }
        field_bounds = _validate_field_bounds(field_bounds, fields)
        if field_bounds:
            meta["field_bounds"] = field_bounds
        # Write the non-final manifest BEFORE any shard exists: a campaign
        # killed at any later point still names its shards for recovery.
        rows = [
            {"name": os.path.basename(n), "durability": d, "steps": []}
            for n, d in zip(names, durabilities)
        ]
        _write_manifest(backend, manifest_name, meta, rows, final=False)
        writers: list[StreamingWriter] = []
        lanes: list[WorkerPool] | None = (
            [] if parallel == "thread" else None
        )
        try:
            for name, dur in zip(names, durabilities):
                writers.append(
                    StreamingWriter.create(
                        name, codec, error_bound, mode=mode, fields=fields,
                        exclude_covered=exclude_covered, parallel="serial",
                        overwrite=overwrite, durability=dur, backend=backend,
                        field_bounds=field_bounds,
                    )
                )
                if lanes is not None:
                    lanes.append(WorkerPool("thread", workers=1))
        except Exception:
            for w in writers:
                w.abort()
            for lane in lanes or []:
                lane.close()
            raise
        return cls(
            manifest_name, writers, lanes, durabilities, meta, backend,
            pending, parity=parity, retries=retries, retry_delay=retry_delay,
            sleep=sleep,
        )

    def __enter__(self) -> "ShardedSeriesWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            try:
                self.close()
            except BaseException:
                self.abort()
                raise
        else:
            self.abort()

    # ------------------------------------------------------------------
    # Step protocol
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        """Number of shard files this campaign fans out across."""
        return len(self._writers)

    @property
    def n_steps(self) -> int:
        """Steps appended so far (including any still in flight)."""
        return len(self._route)

    @property
    def shards(self) -> tuple[str, ...]:
        """Full shard object names, in shard order."""
        return shard_names(self._path, self.n_shards)  # type: ignore[return-value]

    def append_step(
        self,
        hierarchy,
        time: float | None = None,
        step: int | None = None,
        shard: int | None = None,
    ) -> int:
        """Append one hierarchy as the next timestep; returns its number.

        ``shard`` pins the step to a shard (a rank id); otherwise arrival
        order assigns shards round-robin. In ``"thread"`` mode the append
        runs on the shard's lane and this returns as soon as the in-flight
        window has room — a failed append surfaces on the next
        ``append_step`` / :meth:`flush` / :meth:`close`.
        """
        if self._closed:
            raise CompressionError("sharded writer is closed")
        n = self._next if step is None else int(step)
        if n < self._next:
            raise CompressionError(
                f"step numbers must be strictly increasing across the "
                f"campaign: got {n} after {self._next - 1}"
            )
        self._next = n + 1
        if shard is None:
            k = self._rr
            self._rr = (self._rr + 1) % self.n_shards
        else:
            k = int(shard)
            if not 0 <= k < self.n_shards:
                raise CompressionError(
                    f"shard {k} out of range (campaign has {self.n_shards})"
                )
        self._route[n] = k
        t = float(n) if time is None else float(time)
        if self._lanes is None:
            self._append_with_retry(k, hierarchy, t, n)
        else:
            self._drain(self._max_pending - 1)
            self._inflight.append(
                self._lanes[k].submit(self._append_with_retry, k, hierarchy, t, n)
            )
        return n

    def _append_with_retry(self, k: int, hierarchy, t: float, n: int):
        """Append step ``n`` on shard ``k``, retrying transient storage
        faults with bounded exponential backoff. Each failed attempt's
        partial segment bytes are rolled back first, so the shard file
        never accumulates garbage between attempts. Runs on the shard's
        lane thread (or inline in serial mode) — each writer is only ever
        touched by its own lane."""
        writer = self._writers[k]
        attempt = 0
        while True:
            try:
                return writer.append_step(hierarchy, time=t, step=n)
            except TransientStorageError:
                writer.rollback_step()
                if attempt >= self._retries:
                    raise
                self._sleep(self._retry_delay * (2 ** attempt))
                attempt += 1

    def _drain(self, down_to: int) -> None:
        while len(self._inflight) > down_to:
            self._inflight.popleft().result()

    def flush(self) -> None:
        """Block until every in-flight append has been sealed on its shard
        (raising the first lane failure, if any)."""
        self._drain(0)

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain the lanes, close every shard (index + footer), and write
        the final manifest. The campaign is not readable until this runs
        (except through recovery)."""
        if self._closed:
            return
        self.flush()
        self._closed = True
        fields = self._meta["fields"]
        try:
            for w in self._writers:
                if not fields and w._fields is not None:
                    fields = list(w._fields)
                w.close()
        except BaseException:
            for w in self._writers:
                w.abort()  # idempotent; releases the not-yet-closed shards
            raise
        finally:
            if self._lanes is not None:
                for lane in self._lanes:
                    lane.close()
        meta = dict(self._meta, fields=fields)
        rows = []
        for k, (name, dur) in enumerate(
            zip(self.shards, self._durabilities)
        ):
            rows.append({
                "name": os.path.basename(name),
                "durability": dur,
                "steps": sorted(n for n, kk in self._route.items() if kk == k),
            })
        parity_rows = self._build_parity() if self._parity else None
        _write_manifest(
            self._backend, self._path, meta, rows, final=True,
            parity=parity_rows,
        )

    def _build_parity(self) -> list[dict]:
        """Write the campaign's XOR parity shards (at close, after every
        data shard's index/footer is on storage). Segment extents come
        from each shard writer's own step records; the bytes are read back
        through the backend, so any :class:`~repro.storage.StorageBackend`
        works. Returns the manifest accounting rows."""
        from repro.integrity.parity import build_parity, parity_groups, parity_names

        names = self.shards
        rows: list[dict] = []
        for j, members in enumerate(parity_groups(self.n_shards, self._parity)):
            rows.append(
                build_parity(
                    self._backend,
                    parity_names(self._path, self._parity)[j],
                    j,
                    [names[k] for k in members],
                    [
                        [
                            (e.step, e.offset, e.length + SEAL_SIZE)
                            for e in self._writers[k]._steps
                        ]
                        for k in members
                    ],
                )
            )
        return rows

    def abort(self) -> None:
        """Release every lane and shard writer without finalizing. The
        manifest stays non-final — exactly the on-disk state of a killed
        campaign, which :func:`recover_sharded` repairs."""
        if self._closed:
            return
        self._closed = True
        if self._lanes is not None:
            for lane in self._lanes:
                lane.close()
        for w in self._writers:
            w.abort()


def _write_manifest(
    backend: StorageBackend,
    name: str,
    meta: dict,
    rows: list[dict],
    final: bool,
    parity: list[dict] | None = None,
) -> None:
    handle = backend.open_write(name)
    try:
        handle.write(pack_manifest(meta, rows, final=final, parity=parity))
        handle.flush()
        try:
            os.fsync(handle.fileno())
        except (AttributeError, OSError, io.UnsupportedOperation):
            pass  # manifest is rebuildable from the shards; best effort
    finally:
        handle.close()


@dataclass
class ShardedRecoveryReport:
    """What :func:`recover_sharded` found (and possibly repaired)."""

    #: Manifest object name.
    manifest: str
    #: True when the manifest was final and every shard was intact.
    intact: bool
    #: Per-shard :class:`~repro.insitu.recovery.RecoveryReport`, keyed by
    #: full shard name, in shard order.
    shard_reports: dict[str, Any]
    #: Shards that could not be salvaged at all: ``(name, reason)``.
    dropped: list[tuple[str, str]] = field(default_factory=list)

    @property
    def steps(self) -> tuple[int, ...]:
        """Union of salvageable step numbers across shards, ascending."""
        out: list[int] = []
        for report in self.shard_reports.values():
            out.extend(e.step for e in report.entries)
        return tuple(sorted(out))

    def describe(self) -> str:
        """Human-readable per-shard summary."""
        lines = [
            f"{self.manifest}: campaign "
            + ("intact" if self.intact else "recovered")
            + f", {len(self.shard_reports)} shard(s), "
            f"{len(self.steps)} step(s) salvageable"
        ]
        for name, report in self.shard_reports.items():
            state = "intact" if report.intact else "recovered"
            lines.append(
                f"  {os.path.basename(name)}: {state}, steps "
                f"{[e.step for e in report.entries]}"
            )
        for name, reason in self.dropped:
            lines.append(f"  {os.path.basename(name)}: DROPPED — {reason}")
        return "\n".join(lines)


@dataclass
class _ShardedRecovery:
    """Recovery context a salvaged :class:`ShardedSeriesReader` exposes."""

    #: Per-shard recovery report (``None`` for shards that opened clean).
    shards: dict[str, Any]
    #: Shards dropped entirely: ``(name, reason)``.
    dropped: list[tuple[str, str]]


class ShardedSeriesReader:
    """Random access over a sharded campaign through its RPHM manifest.

    Exposes the :class:`~repro.insitu.series.SeriesReader` API surface
    over the union of the per-shard timestep indexes; every accessor
    routes the step to its owning shard, so selective reads stay
    O(selection) bytes. Step entries come from the shard indexes (their
    ``offset`` is relative to the owning shard file — use
    :meth:`shard_of` to resolve which one).

    Construct through :meth:`open` (or transparently through
    :meth:`SeriesReader.open` on a manifest path). With ``recover=True``,
    damaged shards are salvaged independently — each through its own seal
    scan — and shards with nothing salvageable are dropped (listed on
    :attr:`recovery`).
    """

    is_sharded = True

    def __init__(
        self,
        path: str,
        meta: dict,
        readers: dict[str, SeriesReader],
        recovery: _ShardedRecovery | None = None,
        parity: list[dict] | None = None,
    ):
        self._path = path
        self._meta = dict(meta)
        self._readers = readers
        #: Parity-shard accounting rows from the manifest (empty when the
        #: campaign was written without ``parity=``). The serving layer
        #: uses these to reconstruct damaged segments on the fly.
        self.parity: tuple[dict, ...] = tuple(parity or [])
        #: True when any shard (or the manifest) needed the salvage path.
        self.recovered = recovery is not None
        #: Per-shard recovery context, or ``None`` for a clean open.
        self.recovery = recovery
        entries: list[tuple[SeriesStepEntry, str]] = []
        by_step: dict[int, str] = {}
        for name, reader in readers.items():
            for e in reader.step_entries:
                if e.step in by_step:
                    raise FormatError(
                        f"step {e.step} appears in both "
                        f"{os.path.basename(by_step[e.step])} and "
                        f"{os.path.basename(name)}: shards must partition "
                        "the campaign's steps"
                    )
                by_step[e.step] = name
                entries.append((e, name))
        entries.sort(key=lambda pair: pair[0].step)
        #: Union timestep index, ascending by step (offsets shard-relative).
        self.step_entries = [e for e, _ in entries]
        self._owner = by_step

    @classmethod
    def open(
        cls,
        path: str | Path,
        *,
        mmap: bool = False,
        recover: bool = False,
        backend: StorageBackend | None = None,
    ) -> "ShardedSeriesReader":
        """Open a campaign manifest for federated random access.

        A non-final manifest (killed campaign) raises
        :class:`~repro.errors.TruncatedSeriesError` unless ``recover=True``,
        which opens every shard through its own recovery path and rebuilds
        the union from whatever survived. A damaged or missing manifest is
        itself recoverable: the shards are discovered by name next to the
        manifest.
        """
        if backend is not None and mmap:
            raise CompressionError("backend= and mmap=True are mutually exclusive")
        backend_ = backend or LocalFileBackend()
        manifest_name = str(path)
        man: dict | None = None
        try:
            handle = backend_.open_read(manifest_name)
            try:
                man = parse_manifest(handle.read())
            finally:
                handle.close()
        except (TruncatedSeriesError, StorageError):
            if not recover:
                raise
        if man is not None and not man["final"] and not recover:
            raise TruncatedSeriesError(
                f"{manifest_name}: campaign manifest is not final — the "
                f"writer was killed before close(){_RECOVERY_HINT}"
            )
        if man is not None:
            full_names = [
                _shard_path(manifest_name, row["name"]) for row in man["shards"]
            ]
        else:
            # Manifest unreadable: discover shards by naming convention.
            root, _ = os.path.splitext(manifest_name)
            full_names = [
                n for n in backend_.list(f"{root}.shard")
                if n.endswith(".rph2s")
            ]
            if not full_names:
                raise TruncatedSeriesError(
                    f"{manifest_name}: manifest unreadable and no shard "
                    "files found; nothing to recover"
                )
        readers: dict[str, SeriesReader] = {}
        salvage: dict[str, Any] = {}
        dropped: list[tuple[str, str]] = []
        try:
            for name in full_names:
                try:
                    reader = SeriesReader.open(
                        name, mmap=mmap, recover=recover, backend=backend
                    )
                except TruncatedSeriesError as exc:
                    if recover:
                        dropped.append((name, str(exc)))
                        continue
                    raise TruncatedSeriesError(
                        f"shard {os.path.basename(name)}: {exc}"
                    ) from exc
                except (FormatError, StorageError, OSError) as exc:
                    if recover:
                        dropped.append((name, str(exc)))
                        continue
                    raise
                readers[name] = reader
                if reader.recovered:
                    salvage[name] = reader.recovery
        except BaseException:
            for reader in readers.values():
                reader.close()
            raise
        if not readers:
            raise TruncatedSeriesError(
                f"{manifest_name}: no shard holds any fully-sealed step; "
                "nothing to recover"
            )
        clean = (
            man is not None and man["final"] and not salvage and not dropped
        )
        if man is not None and man["final"] and not recover:
            meta = extract_series_meta(man)
        else:
            # Salvage path: the shard indexes are authoritative (the
            # initial manifest may predate field inference).
            meta = extract_series_meta(next(iter(readers.values())).meta())
        recovery = None if clean else _ShardedRecovery(salvage, dropped)
        parity = list(man.get("parity") or []) if man is not None else []
        return cls(manifest_name, meta, readers, recovery, parity=parity)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close every shard reader."""
        for reader in self._readers.values():
            reader.close()

    def __enter__(self) -> "ShardedSeriesReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Metadata (mirrors SeriesReader)
    # ------------------------------------------------------------------
    @property
    def codec(self) -> str:
        """Default codec name recorded at write time."""
        return str(self._meta["codec"])

    @property
    def error_bound(self) -> float:
        """Error bound the campaign was compressed under."""
        return float(self._meta["error_bound"])

    @property
    def mode(self) -> str:
        """Error-bound mode (``"abs"`` or ``"rel"``)."""
        return str(self._meta["mode"])

    @property
    def fields(self) -> tuple[str, ...]:
        """Compressed field names (identical across steps and shards)."""
        return tuple(self._meta["fields"])

    @property
    def exclude_covered(self) -> bool:
        """Whether the covered-cell optimization was applied."""
        return bool(self._meta["exclude_covered"])

    @property
    def field_bounds(self) -> dict[str, float]:
        """Per-field error-bound overrides (empty when single-bound)."""
        return dict(self._meta.get("field_bounds", {}))

    @property
    def n_shards(self) -> int:
        """Number of shard files serving this campaign."""
        return len(self._readers)

    @property
    def shards(self) -> tuple[str, ...]:
        """Full shard object names, in manifest order."""
        return tuple(self._readers)

    @property
    def n_steps(self) -> int:
        """Total timesteps across all shards."""
        return len(self.step_entries)

    @property
    def steps(self) -> tuple[int, ...]:
        """Stored timestep numbers, ascending, across all shards."""
        return tuple(e.step for e in self.step_entries)

    @property
    def times(self) -> tuple[float, ...]:
        """Simulation times, one per stored step."""
        return tuple(e.time for e in self.step_entries)

    @property
    def original_bytes(self) -> int:
        """Uncompressed size of the stored fields across all steps."""
        return sum(e.original_bytes for e in self.step_entries)

    @property
    def compressed_bytes(self) -> int:
        """Total segment size across all steps and shards."""
        return sum(e.length for e in self.step_entries)

    def meta(self) -> dict[str, Any]:
        """Copy of the campaign-level metadata."""
        return dict(self._meta)

    # ------------------------------------------------------------------
    # Random access (routes each step to its owning shard)
    # ------------------------------------------------------------------
    def shard_of(self, step: int) -> str:
        """Full name of the shard file owning ``step``."""
        return self._owner[self.entry(step).step]

    def _reader_for(self, step: int) -> SeriesReader:
        return self._readers[self._owner[self.entry(step).step]]

    def entry(self, step: int) -> SeriesStepEntry:
        """The owning shard's timestep-index entry for one step (its
        ``offset`` is relative to that shard file)."""
        step = int(step)
        if step not in self._owner:
            raise FormatError(
                f"campaign has no step {step} (have {list(self.steps)})"
            )
        return self._readers[self._owner[step]].entry(step)

    def open_step(self, step: int) -> ContainerReader:
        """Open one timestep's embedded RPH2 segment (on its shard)."""
        return self._reader_for(step).open_step(step)

    def verify_step(self, step: int) -> None:
        """Check a whole segment's crc32 against its shard's index."""
        self._reader_for(step).verify_step(step)

    def read_patch(
        self, step: int, level: int, field: str, patch: int, verify: bool = True
    ) -> np.ndarray:
        """Decompress one ``(step, level, field, patch)`` from its shard."""
        return self._reader_for(step).read_patch(
            step, level, field, patch, verify=verify
        )

    def select(
        self,
        steps=None,
        levels=None,
        fields=None,
        patches=None,
        verify: bool = True,
        parallel: str = "serial",
        workers: int = 2,
        pool=None,
    ) -> dict[tuple[int, int, str, int], np.ndarray]:
        """Decompress the subset of patches matching the selectors.

        Same contract as :meth:`SeriesReader.select`: results are keyed
        ``(step, level, field, patch)``. Each selected step is served by
        its owning shard; unselected shards cost zero bytes.
        """
        want_steps = _normalize_selector(steps, "step")
        per_shard: dict[str, list[int]] = {}
        for e in self.step_entries:
            if want_steps is not None and e.step not in want_steps:
                continue
            per_shard.setdefault(self._owner[e.step], []).append(e.step)
        out: dict[tuple[int, int, str, int], np.ndarray] = {}
        for name, shard_steps in per_shard.items():
            out.update(
                self._readers[name].select(
                    steps=shard_steps, levels=levels, fields=fields,
                    patches=patches, verify=verify, parallel=parallel,
                    workers=workers, pool=pool,
                )
            )
        return dict(sorted(out.items()))

    def select_partial(
        self,
        steps=None,
        levels=None,
        fields=None,
        patches=None,
        verify: bool = True,
        parallel: str = "serial",
        workers: int = 2,
        pool=None,
    ) -> tuple[dict[tuple[int, int, str, int], np.ndarray], list[dict]]:
        """Degraded :meth:`select`: serve what the surviving shards can.

        Instead of failing the whole selection when one shard is dead or
        corrupt, each shard's read is attempted independently; the result
        is ``(results, missing)`` where ``results`` holds every patch the
        healthy shards produced (same keys/bytes as :meth:`select`) and
        ``missing`` holds one ``{"step", "file", "error", "detail"}``
        record per selected step an unservable shard owned. An empty
        ``missing`` list means the result is complete.
        """
        want_steps = _normalize_selector(steps, "step")
        per_shard: dict[str, list[int]] = {}
        for e in self.step_entries:
            if want_steps is not None and e.step not in want_steps:
                continue
            per_shard.setdefault(self._owner[e.step], []).append(e.step)
        out: dict[tuple[int, int, str, int], np.ndarray] = {}
        missing: list[dict] = []
        for name, shard_steps in per_shard.items():
            try:
                out.update(
                    self._readers[name].select(
                        steps=shard_steps, levels=levels, fields=fields,
                        patches=patches, verify=verify, parallel=parallel,
                        workers=workers, pool=pool,
                    )
                )
            except (StorageError, FormatError) as exc:
                missing.extend(
                    {
                        "step": s,
                        "file": name,
                        "error": type(exc).__name__,
                        "detail": str(exc),
                    }
                    for s in shard_steps
                )
        missing.sort(key=lambda m: m["step"])
        return dict(sorted(out.items())), missing


def recover_sharded(
    path: str | Path,
    commit: bool = False,
    backend: StorageBackend | None = None,
) -> ShardedRecoveryReport:
    """Diagnose (and optionally repair) an interrupted sharded campaign.

    Runs single-series recovery (:func:`repro.insitu.recovery.recover_series`)
    *independently on every shard* — one shard's damage cannot affect
    another's steps — then, with ``commit=True``, commits each shard's
    rebuilt index and rewrites the manifest as ``final`` from the
    surviving shard indexes. Shards with nothing salvageable are dropped
    from the rewritten manifest (and listed on the report). Dry-run by
    default: nothing is modified.

    Only the local filesystem backend supports ``commit`` (remote commits
    would need an atomic swap protocol the model backends don't promise).
    """
    from repro.insitu.recovery import recover_series

    if backend is not None and commit and not isinstance(backend, LocalFileBackend):
        raise StorageError(
            "recover_sharded(commit=True) requires a local backend; "
            "open with recover=True for read-only salvage instead"
        )
    backend_ = backend or LocalFileBackend()
    manifest_name = str(path)
    man: dict | None = None
    manifest_final = False
    try:
        handle = backend_.open_read(manifest_name)
        try:
            man = parse_manifest(handle.read())
        finally:
            handle.close()
        manifest_final = bool(man["final"])
    except (TruncatedSeriesError, StorageError):
        man = None
    if man is not None:
        full_names = [
            _shard_path(manifest_name, row["name"]) for row in man["shards"]
        ]
        durabilities = {
            _shard_path(manifest_name, row["name"]): row["durability"]
            for row in man["shards"]
        }
    else:
        root, _ = os.path.splitext(manifest_name)
        full_names = [
            n for n in backend_.list(f"{root}.shard") if n.endswith(".rph2s")
        ]
        durabilities = {}
        if not full_names:
            raise TruncatedSeriesError(
                f"{manifest_name}: manifest unreadable and no shard files "
                "found; nothing to recover"
            )
    reports: dict[str, Any] = {}
    dropped: list[tuple[str, str]] = []
    for name in full_names:
        try:
            reports[name] = recover_series(name, commit=commit)
        except (FormatError, OSError, StorageError) as exc:
            dropped.append((name, str(exc)))
    if not reports:
        raise TruncatedSeriesError(
            f"{manifest_name}: no shard holds any fully-sealed step; "
            "nothing to recover"
        )
    intact = (
        manifest_final
        and not dropped
        and all(r.intact for r in reports.values())
    )
    if commit:
        # Rebuild the manifest from the *surviving* shard indexes: after
        # per-shard commit each shard opens normally, so the routing can
        # be read straight back out. Parity rows (if any) are carried
        # over verbatim — sealed segments keep their offsets through
        # recovery, and repair re-verifies every crc before trusting a
        # stripe, so a stale row is detected, never silently used.
        meta = None
        rows = []
        for name, report in reports.items():
            with SeriesReader.open(name, backend=backend) as reader:
                if meta is None:
                    meta = extract_series_meta(reader.meta())
                rows.append({
                    "name": os.path.basename(name),
                    "durability": durabilities.get(name, "close"),
                    "steps": list(reader.steps),
                })
        parity_rows = list(man.get("parity") or []) if man is not None else []
        _write_manifest(
            backend_, manifest_name, meta, rows, final=True,
            parity=parity_rows or None,
        )
    return ShardedRecoveryReport(
        manifest=manifest_name,
        intact=intact,
        shard_reports=reports,
        dropped=dropped,
    )
