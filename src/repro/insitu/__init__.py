"""In-situ streaming compression: the RPH2S time-series container.

The batch path (:mod:`repro.compression.amr_codec`) compresses one fully
materialized hierarchy; this subsystem compresses a *campaign* as the
solver produces it, timestep after timestep, with bounded memory:

* :class:`~repro.insitu.writer.StreamingWriter` — accepts patches/levels
  incrementally, pipelines compression through the :mod:`repro.parallel`
  pool, and appends each finished step as a self-contained RPH2 segment;
* :class:`~repro.insitu.series.SeriesReader` — footer-located timestep
  index giving ``(step, level, field, patch)`` random access that reads
  O(selection) bytes.

High-level helpers live in :mod:`repro.amr.io` (``write_series`` /
``append_step`` / ``open_series``); the format spec is in
``docs/container_format.md``.
"""

from repro.insitu.series import (
    SERIES_FOOTER_MAGIC,
    SERIES_MAGIC,
    SERIES_VERSION,
    SeriesReader,
    SeriesStepEntry,
)
from repro.insitu.writer import StreamingWriter

__all__ = [
    "SERIES_MAGIC",
    "SERIES_FOOTER_MAGIC",
    "SERIES_VERSION",
    "SeriesReader",
    "SeriesStepEntry",
    "StreamingWriter",
]
