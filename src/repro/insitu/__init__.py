"""In-situ streaming compression: the RPH2S time-series container.

The batch path (:mod:`repro.compression.amr_codec`) compresses one fully
materialized hierarchy; this subsystem compresses a *campaign* as the
solver produces it, timestep after timestep, with bounded memory:

* :class:`~repro.insitu.writer.StreamingWriter` — accepts patches/levels
  incrementally, pipelines compression through the :mod:`repro.parallel`
  pool, and appends each finished step as a self-contained RPH2 segment;
* :class:`~repro.insitu.series.SeriesReader` — footer-located timestep
  index giving ``(step, level, field, patch)`` random access that reads
  O(selection) bytes;
* :mod:`~repro.insitu.sharded` — multi-writer campaigns: a
  :class:`~repro.insitu.sharded.ShardedSeriesWriter` fans steps across N
  shard files behind a crc-protected RPHM manifest, and
  ``SeriesReader.open`` on the manifest reads the union transparently;
* :mod:`~repro.insitu.recovery` — crash recovery for interrupted writes:
  every finished step is sealed on disk before the writer advances, so a
  killed campaign loses at most the step in flight
  (``SeriesReader.open(..., recover=True)``, :func:`recover_series`, and
  the CLI ``recover`` verb rebuild the timestep index from the seals).

High-level helpers live in :mod:`repro.amr.io` (``write_series`` /
``append_step`` / ``open_series`` / ``recover_series``); the format spec
is in ``docs/container_format.md``.
"""

from repro.insitu.recovery import (
    RecoveryReport,
    commit_recovery,
    recover_series,
    scan_segments,
)
from repro.insitu.sharded import (
    MANIFEST_MAGIC,
    ShardedRecoveryReport,
    ShardedSeriesReader,
    ShardedSeriesWriter,
    recover_sharded,
)
from repro.insitu.series import (
    SEAL_MAGIC,
    SEAL_SIZE,
    SERIES_FOOTER_MAGIC,
    SERIES_MAGIC,
    SERIES_VERSION,
    SeriesReader,
    SeriesStepEntry,
)
from repro.insitu.writer import DURABILITY_MODES, StreamingWriter

__all__ = [
    "SERIES_MAGIC",
    "SERIES_FOOTER_MAGIC",
    "SERIES_VERSION",
    "SEAL_MAGIC",
    "SEAL_SIZE",
    "DURABILITY_MODES",
    "SeriesReader",
    "SeriesStepEntry",
    "StreamingWriter",
    "RecoveryReport",
    "scan_segments",
    "recover_series",
    "commit_recovery",
    "MANIFEST_MAGIC",
    "ShardedSeriesWriter",
    "ShardedSeriesReader",
    "ShardedRecoveryReport",
    "recover_sharded",
]
