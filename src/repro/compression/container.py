"""Seekable patch-indexed container for compressed AMR hierarchies.

The paper's central structural observation is that patches are independent:
each (level, field, patch) triple compresses to its own self-describing
codec stream, so a container that *indexes* those streams makes selective
decompression a free by-product of the layout. This module implements that
container (magic ``RPH2``):

.. code-block:: text

    offset 0   magic  b"RPH2"
    offset 4   u8     container version (currently 1)
    offset 5   patch streams, concatenated back to back; each stream is an
               independent self-describing codec blob (``RPRC`` framing)
    ...        group sections (only in level-batched containers; see below)
    ...        index: JSON document (see below)
    EOF-28     footer: u64 index_offset, u64 index_length,
               u32 crc32(index bytes), followed at EOF-8 by the
               footer magic b"RPH2-IDX"

The index is *footer-located*: a reader seeks to the last 28 bytes, checks
the footer magic, then reads exactly the index — so random access to one
patch costs O(footer + index + that patch's stream) bytes, never O(file).

Index schema (JSON)::

    {
      "format": "rph2", "version": 1,
      "codec": str, "error_bound": float, "mode": str,
      "fields": [str, ...], "exclude_covered": bool,
      "original_bytes": int, "n_levels": int,
      "entries": [[level, field, patch, offset, length, codec, crc32], ...],
      "groups": [[gid, offset, length, header_crc32], ...]   # optional
    }

Every stream carries its own crc32 in the index; corruption is detected
per patch and reported with the failing ``(level, field, patch)`` triple.

Grouped streams (level-batched compression)
-------------------------------------------
``compress_hierarchy(..., batch="level")`` entropy-codes all same-shape
patches of one (level, field) against a **shared Huffman codebook**. The
codebook and the per-patch entropy payloads live in a *group section*
(magic ``RPGB``), one per group:

.. code-block:: text

    offset 0   magic  b"RPGB"
    offset 4   u32    n_patches (group members)
    offset 8   u32    codebook_length
    offset 12  u64    payload_length (sum of all member payloads)
    offset 20  shared codebook (HUFB blob, see repro.compression.huffman)
    ...        extents: n_patches rows of
               (u64 payload_offset, u64 payload_length, u32 crc32) —
               offsets relative to the payload region start
    ...        member payloads, concatenated (each a backend-compressed
               HUFS blob)

A grouped patch's index entry grows two columns —
``[..., crc32, gid, member]`` — naming its group and its row in the extent
table; its codec stream keeps every per-patch section (modes,
coefficients, ...) but no codes section. Random access to one patch reads
the group *header* (codebook + extents, small, cached per reader) plus
only that member's payload extent, so ``decompress_selection`` stays
O(selection) payload bytes. The group header carries its own crc32 in the
index row; each payload extent carries one in the extent table.

Containers written without ``batch="level"`` are byte-identical to the
pre-group format (no ``"groups"`` key, 7-column entries); readers older
than the grouped layout cannot open grouped containers.
"""

from __future__ import annotations

import io
import json
import mmap as _mmap
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, BinaryIO, Iterable, Mapping, Sequence

import numpy as np

from repro.compression import huffman
from repro.compression.base import SharedEntropy
from repro.compression.lossless import compress_bytes, decompress_bytes
from repro.compression.registry import available_codecs, make_codec
from repro.errors import CompressionError, DecompressionError, FormatError
from repro.parallel.pool import parallel_map

__all__ = [
    "CONTAINER_MAGIC",
    "CONTAINER_VERSION",
    "FOOTER_MAGIC",
    "GROUP_MAGIC",
    "PatchIndexEntry",
    "GroupIndexEntry",
    "GroupHandle",
    "group_handle_from_bytes",
    "ContainerReader",
    "HEADER_SIZE",
    "FOOTER_SIZE",
    "pack_container",
    "pack_group",
    "pack_header",
    "pack_footer",
    "unpack_footer",
    "build_index_bytes",
]

CONTAINER_MAGIC = b"RPH2"
FOOTER_MAGIC = b"RPH2-IDX"
#: Magic prefix of a shared-codebook group section.
GROUP_MAGIC = b"RPGB"
#: Current container format version (the u8 after the magic).
CONTAINER_VERSION = 1
_VERSION = CONTAINER_VERSION
_HEADER = struct.Struct("<4sB")
_FOOTER = struct.Struct("<QQI8s")
#: Fixed framing sizes, public for tools that walk raw container bytes
#: (the series recovery scanner, crashsim).
HEADER_SIZE = _HEADER.size
FOOTER_SIZE = _FOOTER.size
#: Fixed prefix of a group section: magic, n_patches (u32),
#: codebook_length (u32), payload_length (u64).
_GROUP_HEAD = struct.Struct("<4sIIQ")
#: One extent-table row: payload offset (u64, relative to the payload
#: region), payload length (u64), crc32 (u32).
_GROUP_EXTENT = struct.Struct("<QQI")
#: Version byte a reader sees when handed an RPH2S *series* file: the series
#: magic b"RPH2S" shares the 4-byte RPH2 prefix on purpose, so the byte at
#: offset 4 is ord("S") and snapshot readers can point at the series API.
_SERIES_VERSION_BYTE = 0x53

#: Meta keys serialized into the index besides the patch entries.
_META_KEYS = (
    "codec",
    "error_bound",
    "mode",
    "fields",
    "exclude_covered",
    "original_bytes",
    "n_levels",
)


@dataclass(frozen=True)
class PatchIndexEntry:
    """One row of the patch index: where a stream lives and how to check it.

    ``group``/``member`` are ``None`` for self-contained streams; a grouped
    stream names its shared-codebook group section and its row in that
    group's extent table.
    """

    level: int
    field: str
    patch: int
    offset: int
    length: int
    codec: str
    crc32: int
    group: int | None = None
    member: int | None = None

    @property
    def key(self) -> tuple[int, str, int]:
        """The ``(level, field, patch)`` triple identifying this stream."""
        return (self.level, self.field, self.patch)

    def describe(self) -> str:
        """Human-readable patch identifier for error messages."""
        return f"(level={self.level}, field={self.field!r}, patch={self.patch})"


@dataclass(frozen=True)
class GroupIndexEntry:
    """One row of the group table: where a group section lives and the
    crc32 of its header region (prefix + codebook + extent table)."""

    gid: int
    offset: int
    length: int
    header_crc32: int


def pack_group(codebook: bytes, payloads: Sequence[bytes]) -> bytes:
    """Serialize one shared-codebook group section (``RPGB`` layout).

    ``codebook`` is the group's ``HUFB`` blob — stored DEFLATEd in the
    self-describing :func:`repro.compression.lossless.compress_bytes`
    framing (a sorted int64 alphabet plus a length table compresses ~2x,
    and the cost is one zlib call per *group*); ``payloads`` are the
    members' ``HUFS`` blobs, in member order. See the module docstring
    for the byte layout.
    """
    if not payloads:
        raise CompressionError("a group section needs at least one member payload")
    wrapped = compress_bytes(codebook, "deflate")
    extents = bytearray()
    rel = 0
    for blob in payloads:
        extents += _GROUP_EXTENT.pack(rel, len(blob), zlib.crc32(blob))
        rel += len(blob)
    out = bytearray()
    out += _GROUP_HEAD.pack(GROUP_MAGIC, len(payloads), len(wrapped), rel)
    out += wrapped
    out += extents
    for blob in payloads:
        out += blob
    return bytes(out)


def _group_header_len(n_patches: int, codebook_len: int) -> int:
    return _GROUP_HEAD.size + codebook_len + n_patches * _GROUP_EXTENT.size


def group_handle_from_bytes(gid: int, blob) -> "GroupHandle":
    """Open a :class:`GroupHandle` over one in-memory group section (the
    in-memory :class:`~repro.compression.amr_codec.CompressedHierarchy`
    path; container files go through :meth:`ContainerReader.group`)."""
    if len(blob) < _GROUP_HEAD.size or bytes(blob[:4]) != GROUP_MAGIC:
        raise FormatError(f"group {gid}: not a group section (bad magic)")
    _, n_patches, codebook_len, _ = _GROUP_HEAD.unpack_from(blob, 0)
    header_len = min(_group_header_len(n_patches, codebook_len), len(blob))
    return GroupHandle(
        gid, blob[:header_len], len(blob),
        lambda rel, length: blob[rel : rel + length],
    )


class GroupHandle:
    """Parsed header of one group section plus lazy member-payload access.

    Owned by a :class:`ContainerReader` (or an in-memory
    :class:`~repro.compression.amr_codec.CompressedHierarchy`): the header
    — shared codebook bytes and extent table — is read once; payloads are
    fetched per member through ``read_at`` so a selection touches only its
    members' extents. The decoded
    :class:`~repro.compression.huffman.SharedCodebook` (and with it the
    flat decode tables) is cached, which is what amortizes table
    construction across all members of the group.
    """

    def __init__(self, gid: int, header: bytes, total_length: int, read_at):
        # ``read_at(rel_offset, length)`` must return payload-region bytes
        # relative to the group section start.
        if len(header) < _GROUP_HEAD.size or bytes(header[:4]) != GROUP_MAGIC:
            raise FormatError(f"group {gid}: not a group section (bad magic)")
        magic, n_patches, codebook_len, payload_len = _GROUP_HEAD.unpack_from(header, 0)
        header_len = _group_header_len(n_patches, codebook_len)
        if n_patches < 1:
            raise FormatError(f"group {gid}: empty group section")
        if len(header) < header_len:
            raise FormatError(
                f"group {gid}: truncated shared codebook or extent table "
                f"(header needs {header_len} bytes, section gave {len(header)})"
            )
        if header_len + payload_len > total_length:
            raise FormatError(
                f"group {gid}: recorded payload region ({payload_len} bytes) "
                "extends past the group section end"
            )
        self.gid = gid
        self.n_patches = int(n_patches)
        self.header_len = header_len
        self.payload_len = int(payload_len)
        try:
            self.codebook_bytes = decompress_bytes(
                header[_GROUP_HEAD.size : _GROUP_HEAD.size + codebook_len]
            )
        except DecompressionError as exc:
            raise FormatError(
                f"group {gid}: corrupt shared codebook wrapper: {exc}"
            ) from exc
        ext = header[_GROUP_HEAD.size + codebook_len : header_len]
        self._extents = [
            _GROUP_EXTENT.unpack_from(ext, i * _GROUP_EXTENT.size)
            for i in range(self.n_patches)
        ]
        for m, (rel, ln, _) in enumerate(self._extents):
            if rel + ln > self.payload_len:
                raise FormatError(
                    f"group {gid}: member {m} payload extent "
                    f"[{rel}, {rel + ln}) past the group payload end "
                    f"({self.payload_len} bytes)"
                )
        self._read_at = read_at
        self._codebook: huffman.SharedCodebook | None = None

    @property
    def codebook(self) -> huffman.SharedCodebook:
        """The group's shared codebook, parsed once and cached."""
        if self._codebook is None:
            try:
                self._codebook = huffman.SharedCodebook.frombytes(self.codebook_bytes)
            except Exception as exc:
                raise FormatError(
                    f"group {self.gid}: corrupt shared codebook: {exc}"
                ) from exc
        return self._codebook

    @property
    def extents(self) -> tuple[tuple[int, int, int], ...]:
        """The member extent table: ``(rel_offset, length, crc32)`` per
        member, offsets relative to the payload region start."""
        return tuple(self._extents)

    def member_extent(self, member: int) -> tuple[int, int, int]:
        """One member's ``(rel_offset, length, crc32)`` extent-table row —
        what a selection planner needs to target the payload bytes without
        reading them here."""
        if not 0 <= member < self.n_patches:
            raise FormatError(
                f"group {self.gid} has {self.n_patches} members, not member {member}"
            )
        return self._extents[member]

    def read_payload(self, member: int, verify: bool = True):
        """One member's entropy payload (crc-checked against the extent
        table when ``verify``)."""
        if not 0 <= member < self.n_patches:
            raise FormatError(
                f"group {self.gid} has {self.n_patches} members, not member {member}"
            )
        rel, length, crc = self._extents[member]
        blob = self._read_at(self.header_len + rel, length)
        if len(blob) != length:
            raise FormatError(
                f"group {self.gid}: member {member} payload truncated "
                f"(wanted {length} bytes, got {len(blob)})"
            )
        if verify and zlib.crc32(blob) != crc:
            raise FormatError(
                f"group {self.gid}: checksum mismatch in member {member} payload"
            )
        return blob

    def shared(self, member: int, verify: bool = True, copy: bool = False) -> SharedEntropy:
        """The :class:`~repro.compression.base.SharedEntropy` for one
        member. ``copy=True`` materializes owned ``bytes`` and ships the
        raw codebook (picklable; the process-mode path)."""
        payload = self.read_payload(member, verify=verify)
        if copy:
            return SharedEntropy(self.codebook_bytes, bytes(payload))
        return SharedEntropy(self.codebook, payload)


def _iter_streams(
    streams: Sequence[Mapping[str, Sequence[bytes]]],
) -> Iterable[tuple[int, str, int, bytes]]:
    """Deterministic stream order: level ascending, field sorted, patch
    ascending — the order the bytes are laid out on disk."""
    for lev_idx, level in enumerate(streams):
        for field in sorted(level):
            for p_idx, blob in enumerate(level[field]):
                yield lev_idx, field, p_idx, blob


def pack_header() -> bytes:
    """The 5-byte ``RPH2`` container header (magic + version)."""
    return _HEADER.pack(CONTAINER_MAGIC, _VERSION)


def pack_footer(index_offset: int, index_length: int, index_crc32: int) -> bytes:
    """The 28-byte container footer locating (and checksumming) the index."""
    return _FOOTER.pack(index_offset, index_length, index_crc32, FOOTER_MAGIC)


def unpack_footer(blob: bytes) -> tuple[int, int, int]:
    """Parse a 28-byte container footer into ``(index_offset, index_length,
    index_crc32)``. Raises :class:`FormatError` on a short read or bad
    footer magic — the two signatures of a truncated container."""
    if len(blob) != FOOTER_SIZE:
        raise FormatError(
            f"container footer truncated ({len(blob)} of {FOOTER_SIZE} bytes)"
        )
    index_offset, index_length, index_crc, footer_magic = _FOOTER.unpack(blob)
    if footer_magic != FOOTER_MAGIC:
        raise FormatError(
            f"bad container footer magic {footer_magic!r} (truncated file?)"
        )
    return index_offset, index_length, index_crc


def build_index_bytes(
    meta: Mapping[str, Any],
    n_levels: int,
    entries: Sequence[Sequence],
    groups: Sequence[Sequence] | None = None,
) -> bytes:
    """Serialize the container index JSON (canonical key order).

    Shared by :func:`pack_container` and the streaming series writer so a
    segment written incrementally is byte-identical to a batch-packed
    container given the same streams and layout order. The ``groups``
    table is only emitted when non-empty, keeping per-patch containers
    byte-identical to the pre-group format.
    """
    index = {
        "format": "rph2",
        "version": _VERSION,
        "codec": str(meta["codec"]),
        "error_bound": float(meta["error_bound"]),
        "mode": str(meta["mode"]),
        "fields": list(meta["fields"]),
        "exclude_covered": bool(meta["exclude_covered"]),
        "original_bytes": int(meta["original_bytes"]),
        "n_levels": int(n_levels),
        "entries": [list(e) for e in entries],
    }
    # Per-field error-bound overrides are an optional key: only emitted
    # when non-empty, so single-bound containers stay byte-identical to
    # the pre-override format.
    if meta.get("field_bounds"):
        index["field_bounds"] = {
            str(k): float(v) for k, v in sorted(meta["field_bounds"].items())
        }
    if groups:
        index["groups"] = [list(g) for g in groups]
    return json.dumps(index, separators=(",", ":")).encode()


def pack_container(
    meta: Mapping[str, Any],
    streams: Sequence[Mapping[str, Sequence[bytes]]],
    stream_codecs: Mapping[tuple[int, str, int], str] | None = None,
    groups: Sequence[bytes] | None = None,
    stream_groups: Mapping[tuple[int, str, int], tuple[int, int]] | None = None,
) -> bytes:
    """Serialize per-patch streams plus ``meta`` into an ``RPH2`` container.

    Parameters
    ----------
    meta:
        Container metadata; must provide every key in ``_META_KEYS`` except
        ``n_levels`` (derived from ``streams``).
    streams:
        ``streams[level][field][patch] -> bytes`` layout.
    stream_codecs:
        Optional per-stream codec override; defaults to ``meta["codec"]``.
    groups:
        Shared-codebook group sections (``RPGB`` blobs from
        :func:`pack_group`), indexed by gid; written after the patch
        streams. Omitted entirely for per-patch containers, which keeps
        their bytes identical to the pre-group format.
    stream_groups:
        ``(level, field, patch) -> (gid, member)`` for every grouped
        stream; its index row grows the two extra columns.
    """
    default_codec = str(meta["codec"])
    out = bytearray(pack_header())
    entries: list[list] = []
    for lev_idx, field, p_idx, blob in _iter_streams(streams):
        codec = default_codec
        if stream_codecs is not None:
            codec = stream_codecs.get((lev_idx, field, p_idx), default_codec)
        row = [lev_idx, field, p_idx, len(out), len(blob), codec, zlib.crc32(blob)]
        if stream_groups is not None:
            membership = stream_groups.get((lev_idx, field, p_idx))
            if membership is not None:
                row += [int(membership[0]), int(membership[1])]
        entries.append(row)
        out += blob
    group_rows: list[list] = []
    for gid, blob in enumerate(groups or ()):
        n_patches, codebook_len = struct.unpack_from("<II", blob, 4)
        header_len = _group_header_len(n_patches, codebook_len)
        group_rows.append(
            [gid, len(out), len(blob), zlib.crc32(bytes(blob[:header_len]))]
        )
        out += blob
    index_bytes = build_index_bytes(meta, len(streams), entries, group_rows)
    index_offset = len(out)
    out += index_bytes
    out += pack_footer(index_offset, len(index_bytes), zlib.crc32(index_bytes))
    return bytes(out)


def _normalize_selector(value, kind: str) -> set | None:
    """Turn a scalar-or-iterable selector into a set (``None`` = all).

    ``field`` selectors hold strings; ``level``/``patch`` selectors hold
    ints. Anything else is a caller error worth naming, not a downstream
    TypeError.
    """
    if value is None:
        return None
    if kind == "field":
        if isinstance(value, str):
            return {value}
        try:
            items = set(value)
        except TypeError:
            items = None
        if items is None or not all(isinstance(v, str) for v in items):
            raise CompressionError(
                f"invalid {kind} selector {value!r}: pass a field name, an "
                "iterable of names, or None"
            )
        return items
    if isinstance(value, (int, np.integer)):
        return {int(value)}
    if isinstance(value, str):
        raise CompressionError(
            f"invalid {kind} selector {value!r}: pass an int, an iterable of "
            "ints, or None"
        )
    try:
        return {int(v) for v in value}
    except (TypeError, ValueError):
        raise CompressionError(
            f"invalid {kind} selector {value!r}: pass an int, an iterable of "
            "ints, or None"
        ) from None


class ContainerReader:
    """Random access over a seekable ``RPH2`` container.

    Reads the footer and index eagerly (a few hundred bytes for typical
    hierarchies) and individual patch streams lazily, so a single-patch
    fetch consumes O(patch) bytes of the payload.

    Parameters
    ----------
    source:
        Either a seekable binary file-like object positioned anywhere
        (streams are fetched via seek + read and returned as ``bytes``),
        or any byte buffer — ``bytes``, ``bytearray``, ``memoryview``, or
        an ``mmap`` (the **zero-copy mode**: :meth:`read_stream` returns
        ``memoryview`` slices of the buffer, crc-verified against the
        view, and the codecs decode them without an intermediate ``bytes``
        copy). :meth:`open` with ``mmap=True`` builds the zero-copy mode
        over a memory-mapped file. The reader does not own a file-like
        source unless constructed through :meth:`open`.
    """

    def __init__(self, source):
        self._owns = False
        self._mmap: _mmap.mmap | None = None
        # mmap objects are file-likes too (they grow seek/read), so the
        # buffer check must come first or zero-copy mode silently degrades
        # to the copying file path.
        if not isinstance(source, _mmap.mmap) and (
            hasattr(source, "seek") and hasattr(source, "read")
        ):
            self._file: BinaryIO | None = source
            self._view: memoryview | None = None
            source.seek(0, io.SEEK_END)
            total = source.tell()
        else:
            self._file = None
            try:
                self._view = memoryview(source).cast("B")
            except TypeError:
                raise CompressionError(
                    f"cannot read a container from {type(source).__name__}; "
                    "pass a seekable file or a byte buffer"
                ) from None
            total = self._view.nbytes
        self._total = total
        # Release the view if parsing fails: a failing constructor must not
        # leave an exported buffer alive, or ``open(mmap=True)``'s cleanup
        # ``mapping.close()`` raises BufferError and masks the real error
        # (the in-flight traceback pins this frame's ``self``).
        try:
            self._parse_index(total)
        except BaseException:
            if self._view is not None:
                self._view.release()
                self._view = None
            raise

    def _parse_index(self, total: int) -> None:
        if total < _HEADER.size + _FOOTER.size:
            raise FormatError(f"container too short ({total} bytes) for RPH2 framing")
        magic, version = _HEADER.unpack(self._read_at(0, _HEADER.size))
        if magic == b"RPRH":
            raise FormatError(
                "unsupported legacy magic b'RPRH': the pre-index monolithic "
                "container is no longer readable; re-compress the source data "
                "with the current writer"
            )
        if magic != CONTAINER_MAGIC:
            raise FormatError(
                f"not an RPH2 container (magic {magic!r}, expected {CONTAINER_MAGIC!r})"
            )
        if version == _SERIES_VERSION_BYTE:
            raise FormatError(
                "this is an RPH2S time-series container; open it with "
                "repro.insitu.SeriesReader / repro.amr.io.open_series"
            )
        if version != _VERSION:
            raise FormatError(f"unsupported container version {version}")
        index_offset, index_length, index_crc = unpack_footer(
            self._read_at(total - _FOOTER.size, _FOOTER.size)
        )
        if index_offset + index_length > total - _FOOTER.size:
            raise FormatError("container index extends past end of file (truncated?)")
        index_bytes = self._read_at(index_offset, index_length)
        if len(index_bytes) != index_length or zlib.crc32(index_bytes) != index_crc:
            raise FormatError("container index checksum mismatch (corrupt index)")
        try:
            index = json.loads(index_bytes.decode())
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise FormatError(f"corrupt container index: {exc}") from exc
        try:
            self._meta = {k: index[k] for k in _META_KEYS}
            if "field_bounds" in index:
                self._meta["field_bounds"] = {
                    str(k): float(v) for k, v in index["field_bounds"].items()
                }
            self._payload_end = index_offset
            self.entries: list[PatchIndexEntry] = []
            for row in index["entries"]:
                if len(row) == 7:
                    l, f, p, off, ln, c, crc = row
                    gid = member = None
                elif len(row) == 9:
                    l, f, p, off, ln, c, crc, gid, member = row
                    gid = int(gid)
                    member = int(member)
                else:
                    raise ValueError(f"entry row has {len(row)} columns")
                self.entries.append(
                    PatchIndexEntry(
                        int(l), str(f), int(p), int(off), int(ln), str(c),
                        int(crc), gid, member,
                    )
                )
            self.group_entries: list[GroupIndexEntry] = [
                GroupIndexEntry(int(g), int(off), int(ln), int(crc))
                for g, off, ln, crc in index.get("groups", [])
            ]
            n_levels = int(index["n_levels"])
        except (KeyError, ValueError, TypeError) as exc:
            raise FormatError(f"malformed container index: {exc!r}") from exc
        self._by_gid = {g.gid: g for g in self.group_entries}
        if len(self._by_gid) != len(self.group_entries):
            raise FormatError("container group table has duplicate group ids")
        self._group_members: dict[int, int] = {}
        for g in self.group_entries:
            if g.length < _GROUP_HEAD.size:
                raise FormatError(f"group {g.gid} section too short")
            if g.offset < _HEADER.size or g.offset + g.length > self._payload_end:
                raise FormatError(f"group {g.gid} section points outside the payload")
        for e in self.entries:
            if not 0 <= e.level < n_levels:
                raise FormatError(
                    f"index entry {e.describe()} has out-of-range level "
                    f"(container has {n_levels} levels)"
                )
            if e.patch < 0 or e.length < 0:
                raise FormatError(f"index entry {e.describe()} is malformed")
            if e.offset < _HEADER.size or e.offset + e.length > self._payload_end:
                raise FormatError(
                    f"index entry {e.describe()} points outside the payload"
                )
            if e.group is not None:
                if e.group not in self._by_gid:
                    raise FormatError(
                        f"index entry {e.describe()} references unknown group "
                        f"{e.group}"
                    )
                if e.member is None or e.member < 0:
                    raise FormatError(
                        f"index entry {e.describe()} has a malformed group member"
                    )
                self._group_members[e.group] = self._group_members.get(e.group, 0) + 1
        self._by_key = {e.key: e for e in self.entries}
        self._group_cache: dict[int, GroupHandle] = {}
        self._groups_verified: set[int] = set()

    # ------------------------------------------------------------------
    # Construction / lifecycle
    # ------------------------------------------------------------------
    def _read_at(self, offset: int, length: int) -> bytes:
        """Read exactly one span (used for header/footer/index parsing)."""
        if self._view is not None:
            return bytes(self._view[offset : offset + length])
        self._file.seek(offset)
        return self._file.read(length)

    @property
    def mapped(self) -> bool:
        """True when the reader serves zero-copy views of a byte buffer."""
        return self._view is not None

    @classmethod
    def open(
        cls, path: str | Path, *, mmap: bool = False, backend=None
    ) -> "ContainerReader":
        """Open a container file for random access (reader owns the handle).

        With ``mmap=True`` the file is memory-mapped and the reader runs in
        zero-copy mode: :meth:`read_stream` (and therefore :meth:`select` /
        ``decompress_selection``) hands the codecs ``memoryview`` slices of
        the mapping instead of copied ``bytes``.

        ``backend`` (a :class:`repro.storage.StorageBackend`) redirects all
        byte reads through the backend — e.g. a
        :class:`repro.storage.RangedBackend` serving retried, readahead
        ranged GETs — instead of the local filesystem; mutually exclusive
        with ``mmap``.
        """
        if backend is not None:
            if mmap:
                raise FormatError("backend= and mmap=True are mutually exclusive")
            fileobj = backend.open_read(str(path))
            try:
                reader = cls(fileobj)
            except Exception:
                fileobj.close()
                raise
            reader._owns = True
            return reader
        fileobj = Path(path).open("rb")
        try:
            if mmap:
                try:
                    mapping = _mmap.mmap(fileobj.fileno(), 0, access=_mmap.ACCESS_READ)
                except (ValueError, OSError) as exc:
                    raise FormatError(f"cannot memory-map {path}: {exc}") from exc
                try:
                    reader = cls(mapping)
                except Exception:
                    mapping.close()
                    raise
                reader._mmap = mapping
                reader._file = fileobj
            else:
                reader = cls(fileobj)
        except Exception:
            fileobj.close()
            raise
        reader._owns = True
        return reader

    def close(self) -> None:
        """Close the underlying file/mapping if this reader opened it.

        In zero-copy mode, any ``memoryview`` handed out by
        :meth:`read_stream` must be released before closing — a live view
        pins the mapping and makes this raise ``BufferError``. Decoded
        arrays are fresh allocations and never pin it.
        """
        if self._view is not None:
            self._view.release()
            self._view = None
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
        if self._owns and self._file is not None:
            self._file.close()

    def __enter__(self) -> "ContainerReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    @property
    def codec(self) -> str:
        """Default codec name recorded at compression time."""
        return str(self._meta["codec"])

    @property
    def error_bound(self) -> float:
        """Error bound the container was compressed under."""
        return float(self._meta["error_bound"])

    @property
    def mode(self) -> str:
        """Error-bound mode (``"abs"`` or ``"rel"``)."""
        return str(self._meta["mode"])

    @property
    def fields(self) -> tuple[str, ...]:
        """Compressed field names."""
        return tuple(self._meta["fields"])

    @property
    def exclude_covered(self) -> bool:
        """Whether the §2.2 covered-cell optimization was applied."""
        return bool(self._meta["exclude_covered"])

    @property
    def field_bounds(self) -> dict[str, float]:
        """Per-field error-bound overrides (empty when single-bound)."""
        return dict(self._meta.get("field_bounds", {}))

    @property
    def original_bytes(self) -> int:
        """Uncompressed size of the stored fields."""
        return int(self._meta["original_bytes"])

    @property
    def n_levels(self) -> int:
        """Number of AMR levels in the container."""
        return int(self._meta["n_levels"])

    @property
    def compressed_bytes(self) -> int:
        """Total payload size across all patch streams and group sections."""
        return sum(e.length for e in self.entries) + sum(
            g.length for g in self.group_entries
        )

    def meta(self) -> dict[str, Any]:
        """Copy of the container-level metadata."""
        return dict(self._meta)

    # ------------------------------------------------------------------
    # Random access
    # ------------------------------------------------------------------
    def entry(self, level: int, field: str, patch: int) -> PatchIndexEntry:
        """Look up the index entry for one patch."""
        try:
            return self._by_key[(int(level), str(field), int(patch))]
        except KeyError:
            raise FormatError(
                f"container has no patch (level={level}, field={field!r}, patch={patch})"
            ) from None

    def read_stream(self, entry: PatchIndexEntry, verify: bool = True):
        """Read one patch's raw compressed stream, crc-checked.

        File mode seeks + reads and returns ``bytes``; zero-copy mode
        returns a ``memoryview`` slice of the underlying buffer (the crc
        is computed against the view — no intermediate copy is made, and
        the codecs decode the view directly).
        """
        if self._view is not None:
            blob = self._view[entry.offset : entry.offset + entry.length]
        else:
            self._file.seek(entry.offset)
            blob = self._file.read(entry.length)
        if len(blob) != entry.length:
            raise FormatError(
                f"container truncated in patch stream {entry.describe()}: "
                f"wanted {entry.length} bytes, got {len(blob)}"
            )
        if verify and zlib.crc32(blob) != entry.crc32:
            raise FormatError(f"checksum mismatch in patch stream {entry.describe()}")
        return blob

    # ------------------------------------------------------------------
    # Group sections
    # ------------------------------------------------------------------
    def group_entry(self, gid: int) -> GroupIndexEntry:
        """Look up the group-table row for one group section (its offset
        within the container, section length, and header crc)."""
        try:
            return self._by_gid[gid]
        except KeyError:
            raise FormatError(f"container has no group {gid}") from None

    def group(self, gid: int, verify: bool = True) -> GroupHandle:
        """Open one group section's header (codebook + extents), cached.

        Only the header region is read here — O(codebook + extents) bytes;
        member payloads are fetched lazily through the handle. The header
        crc from the group table is checked on the first *verified* access
        (a handle cached by a ``verify=False`` read does not exempt later
        verified reads from the check); the group's member count must
        match the index's references to it (a "group/index patch-count
        mismatch" is corruption).
        """
        handle = self._group_cache.get(gid)
        if handle is not None:
            if verify and gid not in self._groups_verified:
                g = self._by_gid[gid]
                header = self._read_at(g.offset, handle.header_len)
                if zlib.crc32(header) != g.header_crc32:
                    raise FormatError(
                        f"group {gid}: header checksum mismatch (corrupt "
                        "shared codebook or extent table)"
                    )
                self._groups_verified.add(gid)
            return handle
        try:
            g = self._by_gid[gid]
        except KeyError:
            raise FormatError(f"container has no group {gid}") from None
        prefix = self._read_at(g.offset, _GROUP_HEAD.size)
        if len(prefix) < _GROUP_HEAD.size or bytes(prefix[:4]) != GROUP_MAGIC:
            raise FormatError(f"group {gid}: not a group section (bad magic)")
        _, n_patches, codebook_len, _ = _GROUP_HEAD.unpack_from(prefix, 0)
        header_len = min(_group_header_len(n_patches, codebook_len), g.length)
        header = self._read_at(g.offset, header_len)
        if verify:
            if zlib.crc32(header) != g.header_crc32:
                raise FormatError(
                    f"group {gid}: header checksum mismatch (corrupt shared "
                    "codebook or extent table)"
                )
            self._groups_verified.add(gid)

        def read_at(rel: int, length: int):
            if rel + length > g.length:
                raise FormatError(
                    f"group {gid}: read past the group section end"
                )
            if self._view is not None:
                return self._view[g.offset + rel : g.offset + rel + length]
            self._file.seek(g.offset + rel)
            return self._file.read(length)

        handle = GroupHandle(gid, header, g.length, read_at)
        refs = self._group_members.get(gid, 0)
        if refs != handle.n_patches:
            raise FormatError(
                f"group {gid} records {handle.n_patches} members but the "
                f"index references it from {refs} entries "
                "(group/index patch-count mismatch)"
            )
        self._group_cache[gid] = handle
        return handle

    def read_group_blob(self, gid: int):
        """One group section's full bytes (header + payloads) — used to
        materialize an in-memory :class:`CompressedHierarchy`."""
        try:
            g = self._by_gid[gid]
        except KeyError:
            raise FormatError(f"container has no group {gid}") from None
        blob = self._read_at(g.offset, g.length)
        if len(blob) != g.length:
            raise FormatError(f"group {gid}: section truncated")
        return blob

    def _entry_shared(
        self, entry: PatchIndexEntry, verify: bool = True, copy: bool = False
    ) -> SharedEntropy | None:
        """The shared-entropy pair for a grouped entry (``None`` otherwise)."""
        if entry.group is None:
            return None
        handle = self.group(entry.group, verify=verify)
        if entry.member is None or entry.member >= handle.n_patches:
            raise FormatError(
                f"index entry {entry.describe()} names member {entry.member} "
                f"of group {entry.group}, which has {handle.n_patches} members"
            )
        try:
            return handle.shared(entry.member, verify=verify, copy=copy)
        except FormatError as exc:
            raise FormatError(f"patch stream {entry.describe()}: {exc}") from exc

    def read_patch(self, level: int, field: str, patch: int, verify: bool = True) -> np.ndarray:
        """Decompress a single patch identified by ``(level, field, patch)``."""
        entry = self.entry(level, field, patch)
        blob = self.read_stream(entry, verify=verify)
        return _decode_entry_stream(entry, blob, self._entry_shared(entry, verify=verify))

    def select(
        self,
        levels=None,
        fields=None,
        patches=None,
        verify: bool = True,
        parallel: str = "serial",
        workers: int = 2,
        pool=None,
    ) -> dict[tuple[int, str, int], np.ndarray]:
        """Decompress the subset of patches matching the selectors.

        ``levels`` / ``fields`` / ``patches`` accept a scalar, an iterable,
        or ``None`` (no restriction); results are keyed by the entry's
        ``(level, field, patch)`` triple. Stream reads are serial (one
        seekable handle); decompression fans out through ``parallel_map``
        (or a caller-supplied persistent ``pool``). In zero-copy
        (mmap/buffer) mode the streams reach the codecs as ``memoryview``
        slices — except under ``parallel="process"``, where they are
        copied to ``bytes`` once for pickling. Grouped entries additionally
        carry their member payload and group codebook; only the selected
        members' extents are read, so the byte cost stays O(selection).
        """
        want_levels = _normalize_selector(levels, "level")
        want_fields = _normalize_selector(fields, "field")
        want_patches = _normalize_selector(patches, "patch")
        chosen = [
            e
            for e in self.entries
            if (want_levels is None or e.level in want_levels)
            and (want_fields is None or e.field in want_fields)
            and (want_patches is None or e.patch in want_patches)
        ]
        copy = parallel == "process" or (pool is not None and pool.mode == "process")
        blobs = [self.read_stream(e, verify=verify) for e in chosen]
        if copy:
            blobs = [bytes(b) for b in blobs]
        shareds = [self._entry_shared(e, verify=verify, copy=copy) for e in chosen]
        arrays = parallel_map(
            _decode_task,
            [(e, blob, sh) for e, blob, sh in zip(chosen, blobs, shareds)],
            mode=parallel,
            workers=workers,
            pool=pool,
        )
        return {e.key: arr for e, arr in zip(chosen, arrays)}


def _decode_entry_stream(
    entry: PatchIndexEntry, blob: bytes, shared: SharedEntropy | None = None
) -> np.ndarray:
    """Decode one stream, attributing any codec failure to its patch."""
    if entry.codec not in available_codecs():
        raise CompressionError(
            f"patch stream {entry.describe()} uses unknown codec {entry.codec!r}; "
            f"available: {available_codecs()}"
        )
    codec = make_codec(entry.codec)
    if shared is not None and not getattr(codec, "supports_batch", False):
        raise CompressionError(
            f"patch stream {entry.describe()} is grouped but codec "
            f"{entry.codec!r} does not accept shared entropy"
        )
    try:
        if shared is not None:
            return codec.decompress(blob, shared=shared)
        return codec.decompress(blob)
    except FormatError as exc:
        raise FormatError(f"patch stream {entry.describe()}: {exc}") from exc


def _decode_task(task) -> np.ndarray:
    """Module-level decode task (picklable for process-mode parallel_map)."""
    entry, blob, shared = task
    return _decode_entry_stream(entry, blob, shared)
