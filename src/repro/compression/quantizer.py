"""Error-bounded linear-scale quantization (the SZ quantizer).

Prediction-based compressors quantize the residual ``value - prediction``
onto a uniform lattice of pitch ``2 * eb``; reconstructing as
``prediction + 2 * eb * code`` guarantees ``|value - recon| <= eb``
regardless of how good the prediction was. This module implements that
quantizer plus the *pre-quantization* ("dual-quant") variant used by the
vectorized Lorenzo path, where the data itself is snapped to the lattice
first and all later arithmetic is exact integer math.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CompressionError

__all__ = [
    "quantize_residuals",
    "reconstruct_from_codes",
    "prequantize",
    "dequantize",
]

#: Quantization codes are stored as int64; bound where float rounding is exact.
_MAX_SAFE_CODE = 2**52


def quantize_residuals(values: np.ndarray, predictions: np.ndarray, eb: float) -> np.ndarray:
    """Quantize ``values - predictions`` with pitch ``2 * eb``.

    Returns int64 codes such that ``predictions + 2 * eb * codes`` differs
    from ``values`` by at most ``eb`` element-wise.
    """
    if eb <= 0:
        raise CompressionError(f"error bound must be > 0, got {eb}")
    codes = np.rint((values - predictions) / (2.0 * eb))
    if np.abs(codes).max(initial=0.0) > _MAX_SAFE_CODE:
        raise CompressionError(
            "residual / error-bound ratio too large for exact integer codes; "
            "increase the error bound"
        )
    return codes.astype(np.int64)


def reconstruct_from_codes(predictions: np.ndarray, codes: np.ndarray, eb: float) -> np.ndarray:
    """Inverse of :func:`quantize_residuals`."""
    if eb <= 0:
        raise CompressionError(f"error bound must be > 0, got {eb}")
    return predictions + (2.0 * eb) * codes.astype(np.float64)


def prequantize(data: np.ndarray, eb: float) -> np.ndarray:
    """Snap ``data`` to the lattice ``2 * eb * k`` (dual-quant first stage).

    The returned int64 array ``q`` satisfies ``|data - 2 * eb * q| <= eb``.
    All subsequent prediction/transform arithmetic on ``q`` is exact, which
    is what makes the vectorized Lorenzo codec bit-exact invertible.
    """
    if eb <= 0:
        raise CompressionError(f"error bound must be > 0, got {eb}")
    q = np.rint(np.asarray(data, dtype=np.float64) / (2.0 * eb))
    if np.abs(q).max(initial=0.0) > _MAX_SAFE_CODE:
        raise CompressionError(
            "value / error-bound ratio too large for exact integer codes; "
            "increase the error bound"
        )
    return q.astype(np.int64)


def dequantize(q: np.ndarray, eb: float) -> np.ndarray:
    """Inverse of :func:`prequantize`."""
    if eb <= 0:
        raise CompressionError(f"error bound must be > 0, got {eb}")
    return q.astype(np.float64) * (2.0 * eb)
