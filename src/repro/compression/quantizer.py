"""Error-bounded linear-scale quantization (the SZ quantizer).

Prediction-based compressors quantize the residual ``value - prediction``
onto a uniform lattice of pitch ``2 * eb``; reconstructing as
``prediction + 2 * eb * code`` guarantees ``|value - recon| <= eb``
regardless of how good the prediction was. This module implements that
quantizer plus the *pre-quantization* ("dual-quant") variant used by the
vectorized Lorenzo path, where the data itself is snapped to the lattice
first and all later arithmetic is exact integer math.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CompressionError

__all__ = [
    "quantize_residuals",
    "reconstruct_from_codes",
    "prequantize",
    "dequantize",
]

#: Quantization codes are stored as int64; bound where float rounding is exact.
_MAX_SAFE_CODE = 2**52


def _check_eb(eb) -> None:
    """Every quantizer entry point takes a scalar bound or a broadcastable
    array of per-row bounds (the level-batched path quantizes all patches
    of a group in one call, each under its own resolved absolute bound)."""
    if np.any(np.asarray(eb) <= 0):
        raise CompressionError(f"error bound must be > 0, got {eb}")


def quantize_residuals(values: np.ndarray, predictions: np.ndarray, eb) -> np.ndarray:
    """Quantize ``values - predictions`` with pitch ``2 * eb``.

    ``eb`` is a positive scalar or an array broadcastable against
    ``values`` (per-block bounds in the batched path). Returns int64 codes
    such that ``predictions + 2 * eb * codes`` differs from ``values`` by
    at most ``eb`` element-wise.
    """
    _check_eb(eb)
    codes = np.rint((values - predictions) / (2.0 * np.asarray(eb)))
    if codes.size and max(-codes.min(), codes.max()) > _MAX_SAFE_CODE:
        raise CompressionError(
            "residual / error-bound ratio too large for exact integer codes; "
            "increase the error bound"
        )
    return codes.astype(np.int64)


def reconstruct_from_codes(predictions: np.ndarray, codes: np.ndarray, eb) -> np.ndarray:
    """Inverse of :func:`quantize_residuals`."""
    _check_eb(eb)
    return predictions + (2.0 * np.asarray(eb)) * codes.astype(np.float64)


def prequantize(data: np.ndarray, eb) -> np.ndarray:
    """Snap ``data`` to the lattice ``2 * eb * k`` (dual-quant first stage).

    ``eb`` is a positive scalar or broadcastable array of bounds. The
    returned int64 array ``q`` satisfies ``|data - 2 * eb * q| <= eb``.
    All subsequent prediction/transform arithmetic on ``q`` is exact, which
    is what makes the vectorized Lorenzo codec bit-exact invertible.
    """
    _check_eb(eb)
    q = np.asarray(data, dtype=np.float64) / (2.0 * np.asarray(eb))
    np.rint(q, out=q)
    if q.size and max(-q.min(), q.max()) > _MAX_SAFE_CODE:
        raise CompressionError(
            "value / error-bound ratio too large for exact integer codes; "
            "increase the error bound"
        )
    return q.astype(np.int64)


def dequantize(q: np.ndarray, eb) -> np.ndarray:
    """Inverse of :func:`prequantize`."""
    _check_eb(eb)
    return q.astype(np.float64) * (2.0 * np.asarray(eb))
