"""SZ-Interp: global spline-interpolation codec (paper §3.3).

The second compressor evaluated by the paper. Unlike SZ-L/R it has no block
structure: a coarse anchor lattice is stored almost losslessly, then each
refinement level predicts the new lattice points by cubic interpolation
along one axis at a time (see :mod:`repro.compression.interpolation`) and
quantizes the corrections. Artifacts are therefore smooth and global rather
than block-wise — the property the paper's Figures 10/11 analyze.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import (
    GROUPED_STAGE,
    RAW_SECTION_LEVEL,
    BatchResult,
    Compressor,
    SharedEntropy,
    StreamReader,
    StreamWriter,
    check_backend_level,
    check_entropy_params,
    decode_codes,
    encode_codes,
    encode_codes_batch,
)
from repro.compression.interpolation import InterpPlan, predict_axis
from repro.compression.lossless import compress_bytes, decompress_bytes
from repro.compression.quantizer import quantize_residuals, reconstruct_from_codes
from repro.errors import DecompressionError
from repro.util.timer import StageTimes

__all__ = ["SZInterp"]


class SZInterp(Compressor):
    """Global interpolation-predicted SZ codec.

    Parameters
    ----------
    entropy:
        ``"huffman"`` (default SZ pipeline) or ``"deflate"``.
    backend:
        Lossless byte backend for all sections.
    k_streams:
        Huffman interleave width: ``"auto"`` (scales with the input; the
        vectorized-decode default) or an explicit stream count.
    backend_level:
        Backend compression level for every section (0-9), or ``None``
        for the measured per-section defaults (cheap level for
        already-Huffman-coded sections; see
        :data:`~repro.compression.base.HUFFMAN_SECTION_LEVEL`).
    """

    name = "sz-interp"
    supports_batch = True

    def __init__(
        self,
        entropy: str = "huffman",
        backend: str = "deflate",
        k_streams: int | str = "auto",
        backend_level: int | None = None,
    ):
        # Constructor misuse is a CompressionError (nothing is being
        # decoded here); this used to raise DecompressionError.
        check_entropy_params(entropy, k_streams)
        check_backend_level(backend_level)
        self.entropy = entropy
        self.backend = backend
        self.k_streams = k_streams if k_streams == "auto" else int(k_streams)
        self.backend_level = backend_level
        self.last_stage_times: StageTimes = StageTimes()

    def _raw_level(self) -> int:
        """Backend level for non-entropy sections."""
        return RAW_SECTION_LEVEL if self.backend_level is None else self.backend_level

    # ------------------------------------------------------------------
    def _sub_lattice(
        self, recon: np.ndarray, plan: InterpPlan, stride: int, axis: int,
        batched: bool = False,
    ) -> np.ndarray:
        """Knot lattice for one interpolation pass: axes before ``axis`` at
        half spacing, axes after at full spacing, ``axis`` kept dense.
        With ``batched=True`` a leading patch axis passes through whole."""
        half = stride // 2
        grids = []
        for d, n in enumerate(plan.shape):
            if d == axis:
                grids.append(np.arange(n))
            elif d < axis:
                grids.append(np.arange(0, n, half))
            else:
                grids.append(np.arange(0, n, stride))
        if batched:
            return recon[(slice(None),) + np.ix_(*grids)]
        return recon[np.ix_(*grids)]

    def compress(self, data: np.ndarray, error_bound: float, mode: str = "abs") -> bytes:
        orig_dtype = np.asarray(data).dtype
        arr = self._validate_input(data)
        eb = self.resolve_error_bound(arr, error_bound, mode)
        times = StageTimes()
        plan = InterpPlan(arr.shape)
        recon = np.zeros(arr.shape, dtype=np.float64)
        anchors = arr[plan.anchor_slices()]
        recon[plan.anchor_slices()] = anchors
        code_chunks: list[np.ndarray] = []
        with times.measure("interp"):
            for stride, half in plan.levels():
                for axis in range(arr.ndim):
                    grid = plan.target_grid(stride, axis)
                    targets = np.arange(half, arr.shape[axis], stride)
                    if targets.size == 0:
                        continue
                    knots = self._sub_lattice(recon, plan, stride, axis)
                    pred = predict_axis(knots, axis, targets, half)
                    codes = quantize_residuals(arr[grid], pred, eb)
                    recon[grid] = reconstruct_from_codes(pred, codes, eb)
                    code_chunks.append(codes.ravel())
        all_codes = (
            np.concatenate(code_chunks) if code_chunks else np.empty(0, dtype=np.int64)
        )
        with times.measure("entropy"):
            code_blob, entropy_used = encode_codes(
                all_codes, self.entropy, self.backend, self.k_streams,
                level=self.backend_level,
            )
        with times.measure("pack"):
            writer = StreamWriter(
                self.name,
                arr.shape,
                orig_dtype,
                {
                    "eb": eb,
                    "stride": plan.stride,
                    "entropy": entropy_used,
                    "k_streams": self.k_streams,
                },
            )
            writer.add_section(
                "anchors",
                compress_bytes(
                    np.ascontiguousarray(anchors).tobytes(), self.backend, self._raw_level()
                ),
            )
            writer.add_section("codes", code_blob)
            blob = writer.tobytes()
        self.last_stage_times = times
        return blob

    def compress_batch(self, data: np.ndarray, error_bound, mode: str = "abs") -> BatchResult:
        """Compress a ``(n_patches, *shape)`` group in one fused run.

        Every interpolation pass operates on the whole batch at once (the
        predictor slices are axis-generic, so a leading patch axis rides
        along for free), and all patches' correction codes pool into one
        shared Huffman codebook. ``error_bound``/``mode`` follow
        :meth:`~repro.compression.base.Compressor.resolve_error_bounds`.
        """
        orig_dtype = np.asarray(data).dtype
        arr = self._validate_batch(data)
        n_patches = arr.shape[0]
        shape = arr.shape[1:]
        ebs = self.resolve_error_bounds(arr, error_bound, mode)
        eb_bc = ebs.reshape((n_patches,) + (1,) * len(shape))
        times = StageTimes()
        plan = InterpPlan(shape)
        recon = np.zeros(arr.shape, dtype=np.float64)
        batch = (slice(None),)
        anchors = arr[batch + plan.anchor_slices()]
        recon[batch + plan.anchor_slices()] = anchors
        code_chunks: list[np.ndarray] = []
        with times.measure("interp"):
            for stride, half in plan.levels():
                for axis in range(len(shape)):
                    grid = plan.target_grid(stride, axis)
                    targets = np.arange(half, shape[axis], stride)
                    if targets.size == 0:
                        continue
                    knots = self._sub_lattice(recon, plan, stride, axis, batched=True)
                    pred = predict_axis(knots, axis + 1, targets, half)
                    codes = quantize_residuals(arr[batch + grid], pred, eb_bc)
                    recon[batch + grid] = reconstruct_from_codes(pred, codes, eb_bc)
                    code_chunks.append(codes.reshape(n_patches, -1))
        all_codes = (
            np.concatenate(code_chunks, axis=1)
            if code_chunks
            else np.empty((n_patches, 0), dtype=np.int64)
        )
        with times.measure("entropy"):
            codebook, payloads, entropy_used = encode_codes_batch(
                all_codes, self.entropy, self.backend, self.k_streams,
                level=self.backend_level,
            )
        with times.measure("pack"):
            streams: list[bytes] = []
            for i in range(n_patches):
                params = {
                    "eb": float(ebs[i]),
                    "stride": plan.stride,
                    "entropy": entropy_used,
                    "k_streams": self.k_streams,
                }
                if entropy_used == GROUPED_STAGE:
                    params["group_member"] = i
                writer = StreamWriter(self.name, shape, orig_dtype, params)
                writer.add_section(
                    "anchors",
                    compress_bytes(
                        np.ascontiguousarray(anchors[i]).tobytes(),
                        self.backend,
                        self._raw_level(),
                    ),
                )
                if entropy_used != GROUPED_STAGE:
                    writer.add_section("codes", payloads[i])
                streams.append(writer.tobytes())
        self.last_stage_times = times
        if entropy_used != GROUPED_STAGE:
            return BatchResult(None, [], streams)
        return BatchResult(codebook, payloads, streams)

    def decompress(self, blob: bytes, shared: SharedEntropy | None = None) -> np.ndarray:
        reader = StreamReader(blob)
        self._check_stream(reader)
        eb = float(reader.params["eb"])
        shape = reader.shape
        plan = InterpPlan(shape)
        recon = np.zeros(shape, dtype=np.float64)
        anchor_raw = decompress_bytes(reader.section("anchors"))
        anchor_view = recon[plan.anchor_slices()]
        anchors = np.frombuffer(anchor_raw, dtype=np.float64).reshape(anchor_view.shape)
        recon[plan.anchor_slices()] = anchors
        entropy = reader.params["entropy"]
        section = None if entropy == GROUPED_STAGE else reader.section("codes")
        all_codes = decode_codes(section, entropy, shared)
        pos = 0
        for stride, half in plan.levels():
            for axis in range(len(shape)):
                grid = plan.target_grid(stride, axis)
                targets = np.arange(half, shape[axis], stride)
                if targets.size == 0:
                    continue
                knots = self._sub_lattice(recon, plan, stride, axis)
                pred = predict_axis(knots, axis, targets, half)
                count = pred.size
                if pos + count > all_codes.size:
                    raise DecompressionError("interpolation code stream truncated")
                codes = all_codes[pos : pos + count].reshape(pred.shape)
                pos += count
                recon[grid] = reconstruct_from_codes(pred, codes, eb)
        if pos != all_codes.size:
            raise DecompressionError(
                f"interpolation code stream has {all_codes.size - pos} unused codes"
            )
        return recon.astype(reader.dtype, copy=False)
