"""Canonical Huffman coding for quantization codes, from scratch.

SZ's entropy stage is a "customized Huffman coding" over the quantization
codes followed by a general lossless pass (paper §2.1). This module
implements that stage:

* code lengths from a binary heap (classic Huffman),
* length limiting to :data:`MAX_CODE_LENGTH` bits (frequency-halving
  heuristic) so decoding can use a single flat lookup table,
* canonical code assignment (sorted by length, then symbol) so only the
  lengths need to be stored,
* **K-way interleaved streams** (``HUF2`` layout): the symbol array is
  split round-robin into K independent bitstreams sharing one canonical
  codebook, so the decoder can run all K in lockstep — each vectorized
  round gathers K windows against the flat table and emits K symbols,
  replacing the per-symbol Python loop,
* vectorized bit packing on encode (one scatter pass per bit position,
  for all K streams at once),
* **shared codebooks** (``HUFB`` + ``HUFS`` layouts): many small symbol
  arrays — the per-patch quantization codes of one AMR level — can be
  coded against one :class:`SharedCodebook` built from their pooled
  frequencies. The codebook (alphabet + lengths) is serialized once per
  group; each member's payload carries only its bitstreams, and
  :func:`encode_batch` packs every member of a group in a single
  vectorized scatter pass. This is what makes level-batched compression
  cheap: the pure-Python tree build and the codebook bytes are paid per
  *group*, not per patch.

The alphabet is the set of distinct int64 code values; streams record the
alphabet explicitly, so arbitrary (sparse, negative) code values work.

Stream interleave (``k_streams``)
---------------------------------
Entropy decode is inherently bit-serial *within* a stream: symbol ``i+1``
starts where symbol ``i`` ended. Interleaving breaks the dependency chain
into K independent chains that advance together, one NumPy gather round
per symbol rank. NumPy's fixed per-op dispatch cost (~0.5 µs) means a
round over K lanes costs nearly the same for K=8 as for K=512, so wide
interleaves are what buy throughput: on a 64³ grid the lockstep decoder
is >=10x faster than the scalar loop at K≈512 but *slower* than it at
K=8 (measured in ``benchmarks/bench_entropy.py``). ``k_streams="auto"``
therefore scales K with the input so each lockstep round stays wide
(~:data:`_AUTO_TARGET_ROUNDS` rounds total), clamped to
[:data:`_AUTO_MIN_STREAMS`, :data:`_AUTO_MAX_STREAMS`]; tiny inputs and
narrow interleaves fall back to the scalar loop, which wins there.

Blob compatibility
------------------
:func:`encode` emits the ``HUF2`` layout. :func:`decode` reads both
``HUF2`` and the previous headerless single-stream layout (``HUF1``);
HUF1 read support is kept for one release after HUF2 landed, mirroring
the container policy in ``docs/container_format.md``. ``HUFS`` payloads
are *not* self-contained on purpose — they decode only through
:func:`decode_with_codebook` with their group's ``HUFB`` codebook (see
the grouped-stream layout in ``docs/container_format.md``).
"""

from __future__ import annotations

import heapq
import struct

import numpy as np

from repro.errors import CompressionError, DecompressionError

__all__ = [
    "MAX_CODE_LENGTH",
    "MAX_STREAMS",
    "HUF2_MAGIC",
    "HUFB_MAGIC",
    "HUFS_MAGIC",
    "HuffmanAlphabetError",
    "SharedCodebook",
    "encode",
    "decode",
    "encode_batch",
    "encode_with_codebook",
    "decode_with_codebook",
    "code_lengths",
    "resolve_k_streams",
]

#: Longest permitted code, bounding the decode table at 2**16 entries.
MAX_CODE_LENGTH = 16

#: Most interleaved streams a HUF2/HUFS blob may carry.
MAX_STREAMS = 4096

#: Magic prefix of the K-way interleaved blob layout.
HUF2_MAGIC = b"HUF2"

#: Magic prefix of a serialized shared codebook (alphabet + lengths only).
HUFB_MAGIC = b"HUFB"

#: Magic prefix of a shared-codebook payload (bitstreams only; decodes
#: exclusively through :func:`decode_with_codebook`).
HUFS_MAGIC = b"HUFS"

#: ``HUF2`` fixed header: magic, n_symbols (u64), k_streams (u32),
#: alphabet_size (u32).
_HUF2_HEAD = struct.Struct("<4sQII")

#: ``HUFB`` fixed header: magic, alphabet_size (u32).
_HUFB_HEAD = struct.Struct("<4sI")

#: ``HUFS`` fixed header: magic, n_symbols (u64), k_streams (u32).
_HUFS_HEAD = struct.Struct("<4sQI")

#: ``k_streams="auto"`` sizes K so the lockstep decode runs about this
#: many rounds — wide rounds amortize NumPy's per-op dispatch cost.
_AUTO_TARGET_ROUNDS = 256
_AUTO_MIN_STREAMS = 8
_AUTO_MAX_STREAMS = 1024

#: Below this symbol count the scalar loop beats the vectorized decoder's
#: setup cost; narrower interleaves than ``_VECTOR_MIN_STREAMS`` make the
#: lockstep rounds too thin to amortize NumPy dispatch (see module notes).
_SCALAR_CUTOFF = 4096
_VECTOR_MIN_STREAMS = 32


class HuffmanAlphabetError(CompressionError):
    """Raised when the alphabet cannot be Huffman-coded (too many symbols)."""


def _alphabet_inverse(syms: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(alphabet, inverse, freqs)`` of a flat int64 symbol array.

    Quantization codes cluster in a narrow value band, so when the value
    span is comparable to the symbol count a dense :func:`numpy.bincount`
    histogram beats sort-based :func:`numpy.unique` by several times —
    three linear passes instead of an O(n log n) sort. Wide/sparse spans
    fall back to ``unique``.
    """
    lo = int(syms.min())
    hi = int(syms.max())
    span = hi - lo + 1
    if span <= max(4 * syms.size, 1 << 16):
        shifted = syms - lo
        counts = np.bincount(shifted, minlength=span)
        present = counts > 0
        alphabet = np.flatnonzero(present) + lo
        remap = np.cumsum(present, dtype=np.int64) - 1
        return alphabet, remap[shifted], counts[present]
    alphabet, inverse = np.unique(syms, return_inverse=True)
    return alphabet, inverse, np.bincount(inverse)


def resolve_k_streams(k_streams: int | str, n_symbols: int) -> int:
    """Concrete stream count for ``n_symbols`` symbols.

    ``"auto"`` widens the interleave with the input (see module notes);
    an explicit int is validated against [1, :data:`MAX_STREAMS`] and
    clamped to the symbol count so no stream is empty.
    """
    if k_streams == "auto":
        k = _AUTO_MIN_STREAMS
        while k < _AUTO_MAX_STREAMS and k * _AUTO_TARGET_ROUNDS < n_symbols:
            k *= 2
    else:
        if (
            isinstance(k_streams, bool)
            or not isinstance(k_streams, (int, np.integer))
            or not 1 <= int(k_streams) <= MAX_STREAMS
        ):
            raise CompressionError(
                f"k_streams must be 'auto' or an int in [1, {MAX_STREAMS}], "
                f"got {k_streams!r}"
            )
        k = int(k_streams)
    return max(1, min(k, n_symbols))


def code_lengths(freqs: np.ndarray) -> np.ndarray:
    """Huffman code lengths for positive frequencies, capped at
    :data:`MAX_CODE_LENGTH` via frequency halving.

    Parameters
    ----------
    freqs:
        Positive occurrence counts, one per alphabet symbol.

    Returns
    -------
    numpy.ndarray
        uint8 lengths, same order as ``freqs``.
    """
    f = np.asarray(freqs, dtype=np.int64)
    if f.ndim != 1 or f.size == 0:
        raise CompressionError("freqs must be a non-empty 1-D array")
    if (f <= 0).any():
        raise CompressionError("all frequencies must be positive")
    if f.size > (1 << MAX_CODE_LENGTH):
        raise HuffmanAlphabetError(
            f"alphabet of {f.size} symbols exceeds {1 << MAX_CODE_LENGTH}"
        )
    if f.size == 1:
        return np.array([1], dtype=np.uint8)
    work = f.copy()
    while True:
        lengths = _heap_lengths(work)
        if lengths.max() <= MAX_CODE_LENGTH:
            return lengths
        # Flatten the distribution; guaranteed to terminate because equal
        # frequencies give a balanced tree of depth ceil(log2(n)) <= 16.
        work = (work + 1) // 2


def _heap_lengths(freqs: np.ndarray) -> np.ndarray:
    """Unrestricted Huffman code lengths via pairwise merging."""
    n = freqs.size
    # Heap items: (freq, tiebreak, node_id); leaves are 0..n-1.
    heap: list[tuple[int, int, int]] = [(int(freqs[i]), i, i) for i in range(n)]
    heapq.heapify(heap)
    parent = np.full(2 * n - 1, -1, dtype=np.int64)
    next_id = n
    tiebreak = n
    while len(heap) > 1:
        fa, _, a = heapq.heappop(heap)
        fb, _, b = heapq.heappop(heap)
        parent[a] = next_id
        parent[b] = next_id
        heapq.heappush(heap, (fa + fb, tiebreak, next_id))
        next_id += 1
        tiebreak += 1
    depths = np.zeros(2 * n - 1, dtype=np.uint32)
    # Nodes were created bottom-up, so iterate top-down for depths.
    for node in range(next_id - 2, -1, -1):
        depths[node] = depths[parent[node]] + 1
    return depths[:n].astype(np.uint8)


def _canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Canonical code values (uint32) for given lengths.

    Codes are assigned in (length, symbol-index) order, the standard
    canonical construction, so lengths alone reproduce the codebook.
    """
    order = np.lexsort((np.arange(lengths.size), lengths))
    codes = np.zeros(lengths.size, dtype=np.uint32)
    code = 0
    prev_len = 0
    for sym in order:
        length = int(lengths[sym])
        code <<= length - prev_len
        codes[sym] = code
        code += 1
        prev_len = length
    return codes


def _flat_tables(
    alphabet: np.ndarray, lengths: np.ndarray
) -> tuple[np.ndarray, np.ndarray, int]:
    """Flat decode tables: every ``max_len``-bit window starting with a
    code maps to (symbol value, code length).

    Built without a per-entry Python loop: canonical codes sorted by
    (length, symbol) have strictly increasing, space-tiling prefixes, so
    the table is one :func:`numpy.repeat` per array. A corrupt lengths
    section that does not tile the window space exactly is rejected here.
    """
    lens = np.asarray(lengths, dtype=np.int64)
    if lens.size == 0 or (lens <= 0).any() or lens.max() > MAX_CODE_LENGTH:
        raise DecompressionError("invalid Huffman code lengths")
    max_len = int(lens.max())
    order = np.lexsort((np.arange(lens.size), lens))
    spans = np.int64(1) << (max_len - lens[order])
    if int(spans.sum()) != (1 << max_len):
        raise DecompressionError("invalid Huffman code table (not full)")
    table_sym = np.repeat(alphabet[order], spans)
    table_len = np.repeat(lens[order], spans)
    return table_sym, table_len, max_len


def _fused_table(
    alphabet: np.ndarray, table_sym: np.ndarray, table_len: np.ndarray
) -> np.ndarray | None:
    """Fuse (symbol, length) into one gather table when symbols fit 58
    bits (quantization codes always do; arbitrary alphabets decode with
    two gathers instead). Compare min/max directly: ``np.abs(INT64_MIN)``
    overflows negative, so an abs()-based guard would wrongly fuse and
    corrupt extreme alphabets. (min/max, not alphabet[0]/[-1]: a doctored
    blob may be unsorted.)"""
    if alphabet.min() > -(1 << 57) and alphabet.max() < (1 << 57):
        return (table_sym << 5) | table_len
    return None


# ----------------------------------------------------------------------
# Shared codebooks
# ----------------------------------------------------------------------
class SharedCodebook:
    """One canonical Huffman codebook shared by a whole group of streams.

    Holds the (sorted, distinct) int64 alphabet and the per-symbol code
    lengths; canonical code values and the flat/fused decode tables are
    derived lazily and cached, so a group of N patches pays the table
    construction once instead of N times. Build one with
    :meth:`from_symbols` (pooled frequencies), serialize it with
    :meth:`tobytes` (``HUFB`` layout), and pair it with
    :func:`encode_batch` / :func:`decode_with_codebook`.
    """

    __slots__ = (
        "alphabet", "lengths", "_codes", "_codes_f", "_lengths64", "_tables",
        "_fused", "_lists",
    )

    def __init__(self, alphabet: np.ndarray, lengths: np.ndarray):
        alphabet = np.ascontiguousarray(alphabet, dtype=np.int64)
        lengths = np.ascontiguousarray(lengths, dtype=np.uint8)
        if alphabet.ndim != 1 or alphabet.size == 0:
            raise CompressionError("codebook alphabet must be a non-empty 1-D array")
        if lengths.shape != alphabet.shape:
            raise CompressionError(
                f"codebook lengths shape {lengths.shape} does not match "
                f"alphabet shape {alphabet.shape}"
            )
        if alphabet.size > (1 << MAX_CODE_LENGTH):
            raise HuffmanAlphabetError(
                f"alphabet of {alphabet.size} symbols exceeds {1 << MAX_CODE_LENGTH}"
            )
        if alphabet.size > 1 and not (np.diff(alphabet) > 0).all():
            raise CompressionError("codebook alphabet must be strictly increasing")
        self.alphabet = alphabet
        self.lengths = lengths
        self._codes: np.ndarray | None = None
        self._codes_f: np.ndarray | None = None
        self._lengths64: np.ndarray | None = None
        self._tables: tuple[np.ndarray, np.ndarray, int] | None = None
        self._fused: np.ndarray | None = None
        self._lists: tuple[list, list] | None = None

    @classmethod
    def from_symbols(cls, symbols: np.ndarray) -> "SharedCodebook":
        """Build a codebook from the pooled frequencies of ``symbols``
        (typically every patch of a group concatenated)."""
        syms = np.ascontiguousarray(symbols, dtype=np.int64).ravel()
        if syms.size == 0:
            raise CompressionError("cannot build a codebook from zero symbols")
        alphabet, _, freqs = _alphabet_inverse(syms)
        if alphabet.size > (1 << MAX_CODE_LENGTH):
            raise HuffmanAlphabetError(
                f"alphabet of {alphabet.size} symbols exceeds {1 << MAX_CODE_LENGTH}"
            )
        return cls(alphabet, code_lengths(freqs))

    @classmethod
    def from_symbols_with_inverse(
        cls, symbols: np.ndarray
    ) -> "tuple[SharedCodebook, np.ndarray]":
        """Like :meth:`from_symbols`, also returning the alphabet indices
        of every symbol (same shape as ``symbols``) so batch encoders skip
        a second alphabet lookup over the pooled data."""
        syms = np.ascontiguousarray(symbols, dtype=np.int64)
        if syms.size == 0:
            raise CompressionError("cannot build a codebook from zero symbols")
        alphabet, inverse, freqs = _alphabet_inverse(syms.ravel())
        if alphabet.size > (1 << MAX_CODE_LENGTH):
            raise HuffmanAlphabetError(
                f"alphabet of {alphabet.size} symbols exceeds {1 << MAX_CODE_LENGTH}"
            )
        return cls(alphabet, code_lengths(freqs)), inverse.reshape(syms.shape)

    # -- encode side ---------------------------------------------------
    @property
    def codes(self) -> np.ndarray:
        """Canonical code values (uint32), cached."""
        if self._codes is None:
            self._codes = _canonical_codes(self.lengths)
        return self._codes

    @property
    def codes_f(self) -> np.ndarray:
        """Canonical code values as float64 (exact: codes < 2**16), cached
        — the dtype the histogram-based bit packer consumes directly."""
        if self._codes_f is None:
            self._codes_f = self.codes.astype(np.float64)
        return self._codes_f

    @property
    def lengths64(self) -> np.ndarray:
        """Code lengths widened to int64 once (gather-ready), cached."""
        if self._lengths64 is None:
            self._lengths64 = self.lengths.astype(np.int64)
        return self._lengths64

    def lookup(self, symbols: np.ndarray) -> np.ndarray:
        """Alphabet indices of ``symbols`` (any shape).

        Symbols outside the alphabet are a caller error — the codebook was
        built from different data than it is being asked to encode.
        """
        syms = np.asarray(symbols, dtype=np.int64)
        idx = np.searchsorted(self.alphabet, syms)
        idx_c = np.minimum(idx, self.alphabet.size - 1)
        if not (self.alphabet[idx_c] == syms).all():
            raise CompressionError(
                "symbols outside the shared codebook alphabet; the codebook "
                "must be built from the pooled symbols it encodes"
            )
        return idx_c

    # -- decode side ---------------------------------------------------
    def tables(self) -> tuple[np.ndarray, np.ndarray, int]:
        """Flat decode tables ``(table_sym, table_len, max_len)``, cached."""
        if self._tables is None:
            self._tables = _flat_tables(self.alphabet, self.lengths)
        return self._tables

    def fused(self) -> np.ndarray | None:
        """Fused (symbol<<5 | length) gather table, or ``None`` when the
        alphabet does not fit 58 bits; cached."""
        if self._fused is None:
            table_sym, table_len, _ = self.tables()
            self._fused = _fused_table(self.alphabet, table_sym, table_len)
        return self._fused

    def scalar_tables(self, n_symbols: int) -> tuple:
        """List-or-ndarray tables for the scalar loop (see
        :func:`_scalar_tables`); the ``tolist`` conversion is cached so a
        group of many small patches pays it once."""
        table_sym, table_len, _ = self.tables()
        if n_symbols * 8 >= table_sym.size:
            if self._lists is None:
                self._lists = (table_sym.tolist(), table_len.tolist())
            return self._lists
        return table_sym, table_len

    # -- serialization -------------------------------------------------
    def tobytes(self) -> bytes:
        """``HUFB`` layout: ``magic | alphabet_size (u32) | alphabet
        (i64[]) | lengths (u8[])``."""
        return (
            _HUFB_HEAD.pack(HUFB_MAGIC, self.alphabet.size)
            + self.alphabet.tobytes()
            + self.lengths.tobytes()
        )

    @classmethod
    def frombytes(cls, blob) -> "SharedCodebook":
        """Parse a ``HUFB`` blob (corruption raises
        :class:`~repro.errors.DecompressionError`)."""
        if len(blob) < _HUFB_HEAD.size or bytes(blob[:4]) != HUFB_MAGIC:
            raise DecompressionError("not a shared Huffman codebook (bad magic)")
        _, alpha_size = _HUFB_HEAD.unpack_from(blob, 0)
        if not 1 <= alpha_size <= (1 << MAX_CODE_LENGTH):
            raise DecompressionError(f"codebook alphabet size {alpha_size} invalid")
        need = _HUFB_HEAD.size + 9 * alpha_size
        if len(blob) < need:
            raise DecompressionError("truncated shared Huffman codebook")
        alphabet = np.frombuffer(blob, dtype=np.int64, count=alpha_size, offset=_HUFB_HEAD.size)
        lengths = np.frombuffer(
            blob, dtype=np.uint8, count=alpha_size, offset=_HUFB_HEAD.size + 8 * alpha_size
        )
        try:
            return cls(alphabet, lengths)
        except CompressionError as exc:
            raise DecompressionError(f"corrupt shared Huffman codebook: {exc}") from exc


# ----------------------------------------------------------------------
# Encode
# ----------------------------------------------------------------------
#: Above this symbol count the byte-accumulation packer beats the
#: per-bit-position scatter (fewer, cache-friendlier passes); below it the
#: classic scatter's smaller constant wins (measured on 16^3-patch codes).
_PACK_BINCOUNT_CUTOFF = 1 << 16


def _scatter_pack(
    sym_codes: np.ndarray,
    sym_lens: np.ndarray,
    offsets: np.ndarray,
    total_bytes: int,
    max_len: int,
) -> np.ndarray:
    """Pack symbols into a byte array, vectorized (no per-symbol loop).

    Two equivalent strategies, picked by input size:

    * **bit-position scatter** (small inputs): one boolean-masked scatter
      per bit position, <= ``max_len`` <= :data:`MAX_CODE_LENGTH` passes.
    * **byte accumulation** (large inputs — the level-batched group
      encoder): every symbol's code occupies a disjoint bit range, so each
      output byte is the *sum* of the symbols' byte-aligned contributions.
      A code spans at most ``7 + MAX_CODE_LENGTH = 23 < 24`` bits from its
      byte-aligned window start, so three :func:`numpy.bincount`
      accumulations (one per window byte) build the whole stream — ~5
      passes total instead of ~3 per bit position. The per-byte sums stay
      < 256 exactly because contributions never overlap.

    Shared by the HUF1/HUF2 encoders and the grouped batch encoder.
    """
    n = sym_codes.size
    if n == 0 or total_bytes == 0:
        return np.zeros(total_bytes, dtype=np.uint8)
    if n < _PACK_BINCOUNT_CUTOFF:
        bits = np.zeros(8 * total_bytes, dtype=np.uint8)
        for b in range(max_len):
            active = sym_lens > b
            if not active.any():
                break
            shift = (sym_lens[active] - 1 - b).astype(np.uint32)
            bits[offsets[active] + b] = (sym_codes[active] >> shift) & 1
        return np.packbits(bits)
    # Left-align each code inside the 24-bit window that starts at its
    # byte; a window's unused low bits are zero, so windows rooted at the
    # same byte occupy disjoint bits and their SUM equals their OR. One
    # histogram therefore accumulates every symbol (float64 is exact:
    # per-byte window sums stay < 2**24), and the final byte stream falls
    # out of three shifted slice-adds of the per-byte sums. ``ldexp``
    # builds the float windows bincount wants directly — one ufunc pass
    # instead of an integer shift plus a float conversion.
    byte_idx = offsets >> 3
    shift = 24 - (offsets & 7) - sym_lens
    codes_f = (
        sym_codes
        if sym_codes.dtype == np.float64
        else sym_codes.astype(np.float64)
    )
    windows = np.ldexp(codes_f, shift.astype(np.int32, copy=False))
    acc = np.bincount(byte_idx, weights=windows, minlength=total_bytes).astype(np.int64)
    out = acc >> 16
    out[1:] += (acc[:-1] >> 8) & 0xFF
    out[2:] += acc[:-2] & 0xFF
    return out[:total_bytes].astype(np.uint8)


def encode(symbols: np.ndarray, k_streams: int | str = "auto") -> bytes:
    """Huffman-encode an int64 symbol array into a self-contained blob.

    The symbols are split round-robin into ``k_streams`` independent
    bitstreams (symbol ``i`` goes to stream ``i % K``) that share one
    canonical codebook, enabling the lockstep vectorized decode.

    ``HUF2`` layout: ``magic b"HUF2" | n_symbols (u64) | k_streams (u32) |
    alphabet_size (u32) | alphabet (i64[]) | lengths (u8[]) |
    stream_bits (u64[K]) | per-stream packed bits, each byte-aligned``.
    """
    syms = np.ascontiguousarray(symbols, dtype=np.int64).ravel()
    if syms.size == 0:
        return _HUF2_HEAD.pack(HUF2_MAGIC, 0, 0, 0)
    n = syms.size
    K = resolve_k_streams(k_streams, n)
    alphabet, inverse, freqs = _alphabet_inverse(syms)
    if alphabet.size > (1 << MAX_CODE_LENGTH):
        raise HuffmanAlphabetError(
            f"alphabet of {alphabet.size} symbols exceeds {1 << MAX_CODE_LENGTH}"
        )
    lengths = code_lengths(freqs)
    codes = _canonical_codes(lengths)
    sym_codes = codes[inverse]
    sym_lens = lengths[inverse].astype(np.int64)
    # Per-symbol destination bit offsets, all K streams in one pass:
    # symbol i = (round i // K, stream i % K), so a (rounds, K) reshape
    # turns per-stream prefix sums into one column-wise cumsum.
    n_rounds = -(-n // K)
    lens_mat = np.zeros(n_rounds * K, dtype=np.int64)
    lens_mat[:n] = sym_lens
    lens_mat = lens_mat.reshape(n_rounds, K)
    csum = np.cumsum(lens_mat, axis=0)
    stream_bits = csum[-1]
    stream_bytes = (stream_bits + 7) // 8
    base_bits = 8 * np.concatenate(([0], np.cumsum(stream_bytes)[:-1]))
    offsets = ((csum - lens_mat) + base_bits[None, :]).ravel()[:n]
    packed = _scatter_pack(
        sym_codes, sym_lens, offsets, int(stream_bytes.sum()), int(lengths.max())
    )
    out = bytearray()
    out += _HUF2_HEAD.pack(HUF2_MAGIC, n, K, alphabet.size)
    out += alphabet.tobytes()
    out += lengths.tobytes()
    out += stream_bits.astype(np.uint64).tobytes()
    out += packed.tobytes()
    return bytes(out)


def encode_batch(
    codes: np.ndarray,
    codebook: SharedCodebook,
    k_streams: int | str = "auto",
    inverse: np.ndarray | None = None,
) -> list[bytes]:
    """Encode every row of ``codes`` against one shared codebook.

    Parameters
    ----------
    codes:
        ``(n_members, n_symbols)`` int64 array — one row per group member
        (same-shape patches of one level). Every symbol must be in the
        codebook's alphabet.
    codebook:
        The group's shared :class:`SharedCodebook`.
    k_streams:
        Interleave width per member (resolved once — members share
        ``n_symbols``, so they share K).
    inverse:
        Optional precomputed alphabet indices of ``codes`` (from
        :meth:`SharedCodebook.from_symbols_with_inverse`), skipping the
        per-call lookup over the pooled symbols.

    Returns
    -------
    list[bytes]
        One ``HUFS`` payload per row: ``magic b"HUFS" | n_symbols (u64) |
        k_streams (u32) | stream_bits (u64[K]) | packed bits``. Each
        payload is exactly what :func:`encode_with_codebook` would produce
        for that row alone — but the whole group is packed in a *single*
        scatter pass, which is where the fused batch throughput comes
        from.
    """
    mat = np.ascontiguousarray(codes, dtype=np.int64)
    if mat.ndim != 2 or mat.shape[1] == 0:
        raise CompressionError(
            f"encode_batch expects a non-empty (members, symbols) matrix, "
            f"got shape {mat.shape}"
        )
    P, n = mat.shape
    if P == 0:
        return []
    K = resolve_k_streams(k_streams, n)
    if inverse is None:
        inverse = codebook.lookup(mat)
    elif inverse.shape != mat.shape:
        raise CompressionError(
            f"precomputed inverse shape {inverse.shape} does not match "
            f"codes shape {mat.shape}"
        )
    # Offsets fit int32 whenever the whole group's bit span does — always
    # true for patch-sized groups — which halves the memory traffic of the
    # cumsum/offset pipeline; huge groups fall back to int64.
    off_dtype = (
        np.int32
        if (P * n * MAX_CODE_LENGTH + 8 * P * K) < (1 << 31)
        else np.int64
    )
    sym_lens = codebook.lengths64[inverse].astype(off_dtype, copy=False)
    # The large-input packer wants float64 windows (bincount weights); the
    # small-input packer shifts integers. Gather the right dtype directly.
    if P * n >= _PACK_BINCOUNT_CUTOFF:
        sym_codes = codebook.codes_f[inverse]
    else:
        sym_codes = codebook.codes[inverse]
    n_rounds = -(-n // K)
    if n_rounds * K == n:
        # K divides the member size (the common patch-shaped case): the
        # (rounds, K) matrix is a reshape view, no zero-padded copy.
        lens_mat = sym_lens.reshape(P, n_rounds, K)
    else:
        lens_mat = np.zeros((P, n_rounds * K), dtype=off_dtype)
        lens_mat[:, :n] = sym_lens
        lens_mat = lens_mat.reshape(P, n_rounds, K)
    csum = np.cumsum(lens_mat, axis=1)
    stream_bits = csum[:, -1, :]  # (P, K)
    stream_bytes = (stream_bits + 7) // 8
    # Byte layout: member-major, stream-minor — member p's payload is the
    # contiguous run of its K streams, so per-member slicing is free.
    flat_bytes = stream_bytes.ravel()
    byte_starts = np.concatenate(([0], np.cumsum(flat_bytes, dtype=np.int64)))
    base_bits = (8 * byte_starts[:-1]).astype(off_dtype).reshape(P, K)
    offsets = ((csum - lens_mat) + base_bits[:, None, :]).reshape(P, n_rounds * K)[:, :n]
    packed = _scatter_pack(
        sym_codes.ravel(),
        sym_lens.ravel(),
        offsets.ravel(),
        int(flat_bytes.sum()),
        int(codebook.lengths.max()),
    )
    head = _HUFS_HEAD.pack(HUFS_MAGIC, n, K)
    headers = stream_bits.astype(np.uint64)
    member_bytes = stream_bytes.sum(axis=1)
    out: list[bytes] = []
    for p in range(P):
        start = int(byte_starts[p * K])
        end = start + int(member_bytes[p])
        out.append(head + headers[p].tobytes() + packed[start:end].tobytes())
    return out


def encode_with_codebook(
    symbols: np.ndarray, codebook: SharedCodebook, k_streams: int | str = "auto"
) -> bytes:
    """Encode one symbol array against a shared codebook (``HUFS``)."""
    syms = np.ascontiguousarray(symbols, dtype=np.int64).ravel()
    if syms.size == 0:
        raise CompressionError("cannot shared-codebook-encode zero symbols")
    return encode_batch(syms[None, :], codebook, k_streams=k_streams)[0]


def _encode_huf1(symbols: np.ndarray) -> bytes:
    """Legacy single-stream ``HUF1`` encoder (headerless layout).

    Kept only so tests and benchmarks can produce HUF1 blobs and exercise
    the one-release read-compat path; production encoding is :func:`encode`.
    """
    syms = np.ascontiguousarray(symbols, dtype=np.int64).ravel()
    if syms.size == 0:
        return struct.pack("<QI", 0, 0)
    alphabet, inverse = np.unique(syms, return_inverse=True)
    if alphabet.size > (1 << MAX_CODE_LENGTH):
        raise HuffmanAlphabetError(
            f"alphabet of {alphabet.size} symbols exceeds {1 << MAX_CODE_LENGTH}"
        )
    freqs = np.bincount(inverse)
    lengths = code_lengths(freqs)
    codes = _canonical_codes(lengths)
    sym_codes = codes[inverse]
    sym_lens = lengths[inverse].astype(np.int64)
    offsets = np.concatenate(([0], np.cumsum(sym_lens)[:-1]))
    total_bits = int(sym_lens.sum())
    packed = _scatter_pack(
        sym_codes, sym_lens, offsets, (total_bits + 7) // 8, int(lengths.max())
    )
    out = bytearray()
    out += struct.pack("<QI", syms.size, alphabet.size)
    out += alphabet.tobytes()
    out += lengths.tobytes()
    out += struct.pack("<Q", total_bits)
    out += packed.tobytes()
    return bytes(out)


# ----------------------------------------------------------------------
# Decode
# ----------------------------------------------------------------------
def decode(blob) -> np.ndarray:
    """Inverse of :func:`encode`; returns the int64 symbol array.

    Accepts any buffer (``bytes`` or a zero-copy ``memoryview`` from the
    mmap container path). Reads both the current ``HUF2`` layout and the
    legacy single-stream ``HUF1`` layout (kept for one release). ``HUFS``
    shared-codebook payloads are rejected with a pointer to
    :func:`decode_with_codebook` — they are not self-contained.
    """
    if len(blob) >= 4 and bytes(blob[:4]) == HUFS_MAGIC:
        raise DecompressionError(
            "HUFS shared-codebook payloads carry no alphabet; decode them "
            "with decode_with_codebook and their group's HUFB codebook"
        )
    if len(blob) >= 4 and bytes(blob[:4]) == HUF2_MAGIC:
        return _decode_huf2(blob)
    return _decode_huf1(blob)


def _decode_huf1(blob) -> np.ndarray:
    """Legacy headerless single-stream layout."""
    if len(blob) < 12:
        raise DecompressionError("truncated Huffman blob")
    n_symbols, alpha_size = struct.unpack_from("<QI", blob, 0)
    pos = 12
    if n_symbols == 0:
        return np.empty(0, dtype=np.int64)
    if len(blob) < pos + 9 * alpha_size + 8:
        raise DecompressionError("truncated Huffman blob header")
    alphabet = np.frombuffer(blob, dtype=np.int64, count=alpha_size, offset=pos)
    pos += 8 * alpha_size
    lengths = np.frombuffer(blob, dtype=np.uint8, count=alpha_size, offset=pos)
    pos += alpha_size
    (total_bits,) = struct.unpack_from("<Q", blob, pos)
    pos += 8
    packed = np.frombuffer(blob, dtype=np.uint8, offset=pos)
    if packed.size * 8 < total_bits:
        raise DecompressionError("Huffman bitstream truncated")
    if alpha_size == 1:
        # Degenerate single-symbol alphabet: nothing was written per symbol
        # beyond its 1-bit placeholder; reconstruct directly.
        return np.full(n_symbols, alphabet[0], dtype=np.int64)
    table_sym, table_len, max_len = _flat_tables(alphabet, lengths)
    tsym, tlen = _scalar_tables(table_sym, table_len, int(n_symbols))
    out, _ = _decode_stream(packed.tobytes(), int(n_symbols), tsym, tlen, max_len)
    return out


def _parse_huf2(blob):
    """Split a ``HUF2`` blob into (n, K, alphabet, lengths, stream_bits,
    payload bytes-like), validating sizes before any large allocation."""
    if len(blob) < _HUF2_HEAD.size:
        raise DecompressionError("truncated Huffman blob")
    _, n_symbols, K, alpha_size = _HUF2_HEAD.unpack_from(blob, 0)
    if n_symbols == 0:
        return 0, 0, None, None, None, b""
    if not 1 <= K <= MAX_STREAMS:
        raise DecompressionError(f"HUF2 stream count {K} outside [1, {MAX_STREAMS}]")
    if not 1 <= alpha_size <= (1 << MAX_CODE_LENGTH):
        raise DecompressionError(f"HUF2 alphabet size {alpha_size} invalid")
    pos = _HUF2_HEAD.size
    need = 9 * alpha_size + 8 * K
    if len(blob) < pos + need:
        raise DecompressionError("truncated Huffman blob header")
    alphabet = np.frombuffer(blob, dtype=np.int64, count=alpha_size, offset=pos)
    pos += 8 * alpha_size
    lengths = np.frombuffer(blob, dtype=np.uint8, count=alpha_size, offset=pos)
    pos += alpha_size
    stream_bits = np.frombuffer(blob, dtype=np.uint64, count=K, offset=pos).astype(
        np.int64
    )
    pos += 8 * K
    if (stream_bits < 0).any():
        raise DecompressionError("HUF2 per-stream bit length overflow")
    payload_len = len(blob) - pos
    if int(((stream_bits + 7) // 8).sum()) > payload_len:
        raise DecompressionError("Huffman bitstream truncated")
    payload = np.frombuffer(blob, dtype=np.uint8, offset=pos)
    return int(n_symbols), int(K), alphabet, lengths, stream_bits, payload


def _decode_huf2(blob) -> np.ndarray:
    n, K, alphabet, lengths, stream_bits, payload = _parse_huf2(blob)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if alphabet.size == 1:
        return np.full(n, alphabet[0], dtype=np.int64)
    table_sym, table_len, max_len = _flat_tables(alphabet, lengths)
    if K >= _VECTOR_MIN_STREAMS and n >= _SCALAR_CUTOFF:
        fused = _fused_table(alphabet, table_sym, table_len)
        return _decode_streams_vector(
            n, K, stream_bits, payload, table_sym, table_len, max_len, fused
        )
    tsym, tlen = _scalar_tables(table_sym, table_len, n)
    return _decode_streams_scalar(n, K, stream_bits, payload, tsym, tlen, max_len)


def decode_with_codebook(blob, codebook: SharedCodebook) -> np.ndarray:
    """Decode a ``HUFS`` shared-codebook payload produced by
    :func:`encode_batch` / :func:`encode_with_codebook`.

    The codebook's flat decode tables are built lazily and cached on the
    codebook, so decoding N members of a group costs one table build —
    the decode-side mirror of the shared tree build on encode.
    """
    if len(blob) < _HUFS_HEAD.size or bytes(blob[:4]) != HUFS_MAGIC:
        raise DecompressionError("not a shared-codebook Huffman payload (bad magic)")
    _, n_symbols, K = _HUFS_HEAD.unpack_from(blob, 0)
    if n_symbols == 0:
        return np.empty(0, dtype=np.int64)
    if not 1 <= K <= MAX_STREAMS:
        raise DecompressionError(f"HUFS stream count {K} outside [1, {MAX_STREAMS}]")
    pos = _HUFS_HEAD.size
    if len(blob) < pos + 8 * K:
        raise DecompressionError("truncated shared-codebook payload header")
    stream_bits = np.frombuffer(blob, dtype=np.uint64, count=K, offset=pos).astype(
        np.int64
    )
    pos += 8 * K
    if (stream_bits < 0).any():
        raise DecompressionError("HUFS per-stream bit length overflow")
    payload_len = len(blob) - pos
    if int(((stream_bits + 7) // 8).sum()) > payload_len:
        raise DecompressionError("shared-codebook bitstream truncated")
    payload = np.frombuffer(blob, dtype=np.uint8, offset=pos)
    n = int(n_symbols)
    if codebook.alphabet.size == 1:
        return np.full(n, codebook.alphabet[0], dtype=np.int64)
    table_sym, table_len, max_len = codebook.tables()
    if K >= _VECTOR_MIN_STREAMS and n >= _SCALAR_CUTOFF:
        return _decode_streams_vector(
            n, int(K), stream_bits, payload, table_sym, table_len, max_len,
            codebook.fused(),
        )
    tsym, tlen = codebook.scalar_tables(n)
    return _decode_streams_scalar(n, int(K), stream_bits, payload, tsym, tlen, max_len)


def _decode_streams_scalar(
    n, K, stream_bits, payload, tsym, tlen, max_len
) -> np.ndarray:
    """Per-stream scalar decode + interleave (tiny inputs, narrow K)."""
    stream_bytes = (stream_bits + 7) // 8
    starts = np.concatenate(([0], np.cumsum(stream_bytes)[:-1]))
    out = np.empty(n, dtype=np.int64)
    q, rmod = divmod(n, K)
    for k in range(K):
        count = q + (1 if k < rmod else 0)
        data = payload[int(starts[k]) : int(starts[k] + stream_bytes[k])].tobytes()
        out[k::K], consumed = _decode_stream(data, count, tsym, tlen, max_len)
        if consumed != int(stream_bits[k]):
            raise DecompressionError(
                f"interleaved stream {k} decoded {consumed} bits, expected "
                f"{int(stream_bits[k])} (corrupt bitstream or per-stream "
                "bit lengths)"
            )
    return out


def _decode_streams_vector(
    n, K, stream_bits, payload, table_sym, table_len, max_len, fused_table
) -> np.ndarray:
    """Lockstep vectorized decode: one NumPy gather round per symbol rank.

    Each of the K interleaved streams keeps a bit cursor into the shared
    payload; a round gathers a 32-bit big-endian window per lane, looks
    all K windows up in the flat table at once, emits K symbols, and
    advances the cursors by the decoded code lengths. A window only *uses*
    its top ``7 + max_len <= 23`` bits, so reading a few bytes past a
    stream's end (into the next stream, or the zero tail padding) never
    corrupts a symbol whose code bits lie inside the stream. The output
    lands in a ``(rounds, K)`` matrix whose row-major ravel *is* the
    round-robin interleave order.

    Corrupt input cannot escape: gathers are clamped to the padded payload
    (an overrunning lane reads zeros), and after the final round every
    lane's cursor must sit exactly at its recorded stream_bits.
    """
    stream_bytes = (stream_bits + 7) // 8
    starts = np.concatenate(([0], np.cumsum(stream_bytes)[:-1]))
    # 32-bit big-endian window at every byte offset (zero tail so the last
    # stream's final windows — and corrupt-input overruns — stay in range).
    needed = int(stream_bytes.sum())
    b = np.empty(needed + 8, dtype=np.uint32)
    b[:needed] = payload[:needed]
    b[needed:] = 0
    windows = (b[:-3] << 24) | (b[1:-2] << 16) | (b[2:-1] << 8) | b[3:]
    cap = np.int64(windows.size - 1)
    lane_base = 8 * starts
    cursor = lane_base.copy()
    q, rmod = divmod(n, K)
    n_rounds = q + (1 if rmod else 0)
    out = np.empty((n_rounds, K), dtype=np.int64)
    shift_base = np.int64(32 - max_len)
    mask = np.int64((1 << max_len) - 1)
    cursor_q = cursor
    for r in range(n_rounds):
        if r == q:
            cursor_q = cursor.copy()
        word = windows.take(np.minimum(cursor >> 3, cap))
        win = (word >> (shift_base - (cursor & 7))) & mask
        if fused_table is not None:
            entry = fused_table.take(win)
            out[r] = entry >> 5
            cursor = cursor + (entry & 31)
        else:
            out[r] = table_sym.take(win)
            cursor = cursor + table_len.take(win)
    # Lanes k < rmod decode n_rounds symbols, the rest stop one earlier.
    if rmod:
        final = np.where(np.arange(K) < rmod, cursor, cursor_q)
    else:
        final = cursor
    if not np.array_equal(final - lane_base, stream_bits):
        raise DecompressionError(
            "interleaved stream lengths inconsistent with decoded symbols "
            "(corrupt bitstream or per-stream bit lengths)"
        )
    return out.ravel()[:n]


def _scalar_tables(table_sym: np.ndarray, table_len: np.ndarray, n_symbols: int):
    """Pick list or ndarray tables for the scalar loop.

    Measured trade-off (see the micro-benchmark note in
    ``benchmarks/bench_entropy.py``): indexing a Python list inside the
    loop costs ~60 ns vs ~250 ns for an ndarray element (NumPy scalar
    boxing), but ``.tolist()`` of a full 2**16-entry table pair costs
    ~0.8 ms. Lists win once the symbol count is a non-trivial fraction of
    the table size; below that, index the NumPy tables directly.
    """
    if n_symbols * 8 >= table_sym.size:
        return table_sym.tolist(), table_len.tolist()
    return table_sym, table_len


def _decode_stream(
    data: bytes, n_symbols: int, table_sym, table_len, max_len: int
) -> tuple[np.ndarray, int]:
    """Tight scalar decode loop: one table lookup per symbol.

    Plain-Python loop on purpose: per-symbol dependencies make a single
    stream inherently sequential. It remains the fast path for tiny
    inputs, where the vectorized decoder's setup cost dominates; the
    tables are lists or ndarrays per :func:`_scalar_tables`. Returns the
    symbols and the exact number of bits consumed (for per-stream
    validation in the HUF2 layout).
    """
    out = np.empty(n_symbols, dtype=np.int64)
    mask = (1 << max_len) - 1
    bitbuf = 0
    nbits = 0
    byte_pos = 0
    n_bytes = len(data)
    for i in range(n_symbols):
        while nbits < max_len and byte_pos < n_bytes:
            bitbuf = (bitbuf << 8) | data[byte_pos]
            byte_pos += 1
            nbits += 8
        if nbits >= max_len:
            window = (bitbuf >> (nbits - max_len)) & mask
        else:
            window = (bitbuf << (max_len - nbits)) & mask
        length = table_len[window]
        if length > nbits:
            raise DecompressionError("Huffman bitstream exhausted mid-symbol")
        out[i] = table_sym[window]
        nbits -= length
        bitbuf &= (1 << nbits) - 1
    return out, 8 * byte_pos - nbits
