"""Canonical Huffman coding for quantization codes, from scratch.

SZ's entropy stage is a "customized Huffman coding" over the quantization
codes followed by a general lossless pass (paper §2.1). This module
implements that stage:

* code lengths from a binary heap (classic Huffman),
* length limiting to :data:`MAX_CODE_LENGTH` bits (frequency-halving
  heuristic) so decoding can use a single flat lookup table,
* canonical code assignment (sorted by length, then symbol) so only the
  lengths need to be stored,
* vectorized bit packing on encode (one scatter pass per bit position),
* flat-table decoding (one table lookup per symbol).

The alphabet is the set of distinct int64 code values; streams record the
alphabet explicitly, so arbitrary (sparse, negative) code values work.
"""

from __future__ import annotations

import heapq
import struct

import numpy as np

from repro.errors import CompressionError, DecompressionError

__all__ = ["MAX_CODE_LENGTH", "HuffmanAlphabetError", "encode", "decode", "code_lengths"]

#: Longest permitted code, bounding the decode table at 2**16 entries.
MAX_CODE_LENGTH = 16


class HuffmanAlphabetError(CompressionError):
    """Raised when the alphabet cannot be Huffman-coded (too many symbols)."""


def code_lengths(freqs: np.ndarray) -> np.ndarray:
    """Huffman code lengths for positive frequencies, capped at
    :data:`MAX_CODE_LENGTH` via frequency halving.

    Parameters
    ----------
    freqs:
        Positive occurrence counts, one per alphabet symbol.

    Returns
    -------
    numpy.ndarray
        uint8 lengths, same order as ``freqs``.
    """
    f = np.asarray(freqs, dtype=np.int64)
    if f.ndim != 1 or f.size == 0:
        raise CompressionError("freqs must be a non-empty 1-D array")
    if (f <= 0).any():
        raise CompressionError("all frequencies must be positive")
    if f.size > (1 << MAX_CODE_LENGTH):
        raise HuffmanAlphabetError(
            f"alphabet of {f.size} symbols exceeds {1 << MAX_CODE_LENGTH}"
        )
    if f.size == 1:
        return np.array([1], dtype=np.uint8)
    work = f.copy()
    while True:
        lengths = _heap_lengths(work)
        if lengths.max() <= MAX_CODE_LENGTH:
            return lengths
        # Flatten the distribution; guaranteed to terminate because equal
        # frequencies give a balanced tree of depth ceil(log2(n)) <= 16.
        work = (work + 1) // 2


def _heap_lengths(freqs: np.ndarray) -> np.ndarray:
    """Unrestricted Huffman code lengths via pairwise merging."""
    n = freqs.size
    # Heap items: (freq, tiebreak, node_id); leaves are 0..n-1.
    heap: list[tuple[int, int, int]] = [(int(freqs[i]), i, i) for i in range(n)]
    heapq.heapify(heap)
    parent = np.full(2 * n - 1, -1, dtype=np.int64)
    next_id = n
    tiebreak = n
    while len(heap) > 1:
        fa, _, a = heapq.heappop(heap)
        fb, _, b = heapq.heappop(heap)
        parent[a] = next_id
        parent[b] = next_id
        heapq.heappush(heap, (fa + fb, tiebreak, next_id))
        next_id += 1
        tiebreak += 1
    depths = np.zeros(2 * n - 1, dtype=np.uint32)
    # Nodes were created bottom-up, so iterate top-down for depths.
    for node in range(next_id - 2, -1, -1):
        depths[node] = depths[parent[node]] + 1
    return depths[:n].astype(np.uint8)


def _canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Canonical code values (uint32) for given lengths.

    Codes are assigned in (length, symbol-index) order, the standard
    canonical construction, so lengths alone reproduce the codebook.
    """
    order = np.lexsort((np.arange(lengths.size), lengths))
    codes = np.zeros(lengths.size, dtype=np.uint32)
    code = 0
    prev_len = 0
    for sym in order:
        length = int(lengths[sym])
        code <<= length - prev_len
        codes[sym] = code
        code += 1
        prev_len = length
    return codes


def encode(symbols: np.ndarray) -> bytes:
    """Huffman-encode an int64 symbol array into a self-contained blob.

    Layout: ``n_symbols (u64) | alphabet_size (u32) | alphabet (i64[]) |
    lengths (u8[]) | n_bits (u64) | packed bits``.
    """
    syms = np.ascontiguousarray(symbols, dtype=np.int64).ravel()
    if syms.size == 0:
        return struct.pack("<QI", 0, 0)
    alphabet, inverse = np.unique(syms, return_inverse=True)
    if alphabet.size > (1 << MAX_CODE_LENGTH):
        raise HuffmanAlphabetError(
            f"alphabet of {alphabet.size} symbols exceeds {1 << MAX_CODE_LENGTH}"
        )
    freqs = np.bincount(inverse)
    lengths = code_lengths(freqs)
    codes = _canonical_codes(lengths)
    sym_codes = codes[inverse]
    sym_lens = lengths[inverse].astype(np.int64)
    offsets = np.concatenate(([0], np.cumsum(sym_lens)[:-1]))
    total_bits = int(sym_lens.sum())
    bits = np.zeros(total_bits, dtype=np.uint8)
    # One vectorized scatter per bit position (<= MAX_CODE_LENGTH passes).
    for b in range(int(lengths.max())):
        active = sym_lens > b
        if not active.any():
            break
        shift = (sym_lens[active] - 1 - b).astype(np.uint32)
        bits[offsets[active] + b] = (sym_codes[active] >> shift) & 1
    packed = np.packbits(bits)
    out = bytearray()
    out += struct.pack("<QI", syms.size, alphabet.size)
    out += alphabet.tobytes()
    out += lengths.tobytes()
    out += struct.pack("<Q", total_bits)
    out += packed.tobytes()
    return bytes(out)


def decode(blob: bytes) -> np.ndarray:
    """Inverse of :func:`encode`; returns the int64 symbol array."""
    if len(blob) < 12:
        raise DecompressionError("truncated Huffman blob")
    n_symbols, alpha_size = struct.unpack_from("<QI", blob, 0)
    pos = 12
    if n_symbols == 0:
        return np.empty(0, dtype=np.int64)
    alphabet = np.frombuffer(blob, dtype=np.int64, count=alpha_size, offset=pos)
    pos += 8 * alpha_size
    lengths = np.frombuffer(blob, dtype=np.uint8, count=alpha_size, offset=pos)
    pos += alpha_size
    (total_bits,) = struct.unpack_from("<Q", blob, pos)
    pos += 8
    packed = np.frombuffer(blob, dtype=np.uint8, offset=pos)
    if packed.size * 8 < total_bits:
        raise DecompressionError("Huffman bitstream truncated")
    if alpha_size == 1:
        # Degenerate single-symbol alphabet: nothing was written per symbol
        # beyond its 1-bit placeholder; reconstruct directly.
        return np.full(n_symbols, alphabet[0], dtype=np.int64)
    codes = _canonical_codes(lengths)
    max_len = int(lengths.max())
    # Flat decode table: every max_len-bit window starting with a code maps
    # to (symbol index, code length).
    table_sym = np.zeros(1 << max_len, dtype=np.int64)
    table_len = np.zeros(1 << max_len, dtype=np.uint8)
    for sym in range(alpha_size):
        length = int(lengths[sym])
        prefix = int(codes[sym]) << (max_len - length)
        span = 1 << (max_len - length)
        table_sym[prefix : prefix + span] = alphabet[sym]
        table_len[prefix : prefix + span] = length
    if (table_len == 0).any():
        raise DecompressionError("invalid Huffman code table (not full)")
    return _decode_stream(packed.tobytes(), int(n_symbols), table_sym.tolist(), table_len.tolist(), max_len)


def _decode_stream(
    data: bytes, n_symbols: int, table_sym: list, table_len: list, max_len: int
) -> np.ndarray:
    """Tight decode loop: one table lookup per symbol.

    Plain-Python loop on purpose: per-symbol dependencies make this stage
    inherently sequential; locals + flat lists keep it at a few hundred ns
    per symbol, fast enough for the grid sizes used in the experiments.
    """
    out = np.empty(n_symbols, dtype=np.int64)
    mask = (1 << max_len) - 1
    bitbuf = 0
    nbits = 0
    byte_pos = 0
    n_bytes = len(data)
    out_list = out  # local alias
    for i in range(n_symbols):
        while nbits < max_len and byte_pos < n_bytes:
            bitbuf = (bitbuf << 8) | data[byte_pos]
            byte_pos += 1
            nbits += 8
        if nbits >= max_len:
            window = (bitbuf >> (nbits - max_len)) & mask
        else:
            window = (bitbuf << (max_len - nbits)) & mask
        length = table_len[window]
        if length > nbits:
            raise DecompressionError("Huffman bitstream exhausted mid-symbol")
        out_list[i] = table_sym[window]
        nbits -= length
        bitbuf &= (1 << nbits) - 1
    return out
