"""Canonical Huffman coding for quantization codes, from scratch.

SZ's entropy stage is a "customized Huffman coding" over the quantization
codes followed by a general lossless pass (paper §2.1). This module
implements that stage:

* code lengths from a binary heap (classic Huffman),
* length limiting to :data:`MAX_CODE_LENGTH` bits (frequency-halving
  heuristic) so decoding can use a single flat lookup table,
* canonical code assignment (sorted by length, then symbol) so only the
  lengths need to be stored,
* **K-way interleaved streams** (``HUF2`` layout): the symbol array is
  split round-robin into K independent bitstreams sharing one canonical
  codebook, so the decoder can run all K in lockstep — each vectorized
  round gathers K windows against the flat table and emits K symbols,
  replacing the per-symbol Python loop,
* vectorized bit packing on encode (one scatter pass per bit position,
  for all K streams at once).

The alphabet is the set of distinct int64 code values; streams record the
alphabet explicitly, so arbitrary (sparse, negative) code values work.

Stream interleave (``k_streams``)
---------------------------------
Entropy decode is inherently bit-serial *within* a stream: symbol ``i+1``
starts where symbol ``i`` ended. Interleaving breaks the dependency chain
into K independent chains that advance together, one NumPy gather round
per symbol rank. NumPy's fixed per-op dispatch cost (~0.5 µs) means a
round over K lanes costs nearly the same for K=8 as for K=512, so wide
interleaves are what buy throughput: on a 64³ grid the lockstep decoder
is >=10x faster than the scalar loop at K≈512 but *slower* than it at
K=8 (measured in ``benchmarks/bench_entropy.py``). ``k_streams="auto"``
therefore scales K with the input so each lockstep round stays wide
(~:data:`_AUTO_TARGET_ROUNDS` rounds total), clamped to
[:data:`_AUTO_MIN_STREAMS`, :data:`_AUTO_MAX_STREAMS`]; tiny inputs and
narrow interleaves fall back to the scalar loop, which wins there.

Blob compatibility
------------------
:func:`encode` emits the ``HUF2`` layout. :func:`decode` reads both
``HUF2`` and the previous headerless single-stream layout (``HUF1``);
HUF1 read support is kept for one release after HUF2 landed, mirroring
the container policy in ``docs/container_format.md``.
"""

from __future__ import annotations

import heapq
import struct

import numpy as np

from repro.errors import CompressionError, DecompressionError

__all__ = [
    "MAX_CODE_LENGTH",
    "MAX_STREAMS",
    "HUF2_MAGIC",
    "HuffmanAlphabetError",
    "encode",
    "decode",
    "code_lengths",
    "resolve_k_streams",
]

#: Longest permitted code, bounding the decode table at 2**16 entries.
MAX_CODE_LENGTH = 16

#: Most interleaved streams a HUF2 blob may carry.
MAX_STREAMS = 4096

#: Magic prefix of the K-way interleaved blob layout.
HUF2_MAGIC = b"HUF2"

#: ``HUF2`` fixed header: magic, n_symbols (u64), k_streams (u32),
#: alphabet_size (u32).
_HUF2_HEAD = struct.Struct("<4sQII")

#: ``k_streams="auto"`` sizes K so the lockstep decode runs about this
#: many rounds — wide rounds amortize NumPy's per-op dispatch cost.
_AUTO_TARGET_ROUNDS = 256
_AUTO_MIN_STREAMS = 8
_AUTO_MAX_STREAMS = 1024

#: Below this symbol count the scalar loop beats the vectorized decoder's
#: setup cost; narrower interleaves than ``_VECTOR_MIN_STREAMS`` make the
#: lockstep rounds too thin to amortize NumPy dispatch (see module notes).
_SCALAR_CUTOFF = 4096
_VECTOR_MIN_STREAMS = 32


class HuffmanAlphabetError(CompressionError):
    """Raised when the alphabet cannot be Huffman-coded (too many symbols)."""


def resolve_k_streams(k_streams: int | str, n_symbols: int) -> int:
    """Concrete stream count for ``n_symbols`` symbols.

    ``"auto"`` widens the interleave with the input (see module notes);
    an explicit int is validated against [1, :data:`MAX_STREAMS`] and
    clamped to the symbol count so no stream is empty.
    """
    if k_streams == "auto":
        k = _AUTO_MIN_STREAMS
        while k < _AUTO_MAX_STREAMS and k * _AUTO_TARGET_ROUNDS < n_symbols:
            k *= 2
    else:
        if (
            isinstance(k_streams, bool)
            or not isinstance(k_streams, (int, np.integer))
            or not 1 <= int(k_streams) <= MAX_STREAMS
        ):
            raise CompressionError(
                f"k_streams must be 'auto' or an int in [1, {MAX_STREAMS}], "
                f"got {k_streams!r}"
            )
        k = int(k_streams)
    return max(1, min(k, n_symbols))


def code_lengths(freqs: np.ndarray) -> np.ndarray:
    """Huffman code lengths for positive frequencies, capped at
    :data:`MAX_CODE_LENGTH` via frequency halving.

    Parameters
    ----------
    freqs:
        Positive occurrence counts, one per alphabet symbol.

    Returns
    -------
    numpy.ndarray
        uint8 lengths, same order as ``freqs``.
    """
    f = np.asarray(freqs, dtype=np.int64)
    if f.ndim != 1 or f.size == 0:
        raise CompressionError("freqs must be a non-empty 1-D array")
    if (f <= 0).any():
        raise CompressionError("all frequencies must be positive")
    if f.size > (1 << MAX_CODE_LENGTH):
        raise HuffmanAlphabetError(
            f"alphabet of {f.size} symbols exceeds {1 << MAX_CODE_LENGTH}"
        )
    if f.size == 1:
        return np.array([1], dtype=np.uint8)
    work = f.copy()
    while True:
        lengths = _heap_lengths(work)
        if lengths.max() <= MAX_CODE_LENGTH:
            return lengths
        # Flatten the distribution; guaranteed to terminate because equal
        # frequencies give a balanced tree of depth ceil(log2(n)) <= 16.
        work = (work + 1) // 2


def _heap_lengths(freqs: np.ndarray) -> np.ndarray:
    """Unrestricted Huffman code lengths via pairwise merging."""
    n = freqs.size
    # Heap items: (freq, tiebreak, node_id); leaves are 0..n-1.
    heap: list[tuple[int, int, int]] = [(int(freqs[i]), i, i) for i in range(n)]
    heapq.heapify(heap)
    parent = np.full(2 * n - 1, -1, dtype=np.int64)
    next_id = n
    tiebreak = n
    while len(heap) > 1:
        fa, _, a = heapq.heappop(heap)
        fb, _, b = heapq.heappop(heap)
        parent[a] = next_id
        parent[b] = next_id
        heapq.heappush(heap, (fa + fb, tiebreak, next_id))
        next_id += 1
        tiebreak += 1
    depths = np.zeros(2 * n - 1, dtype=np.uint32)
    # Nodes were created bottom-up, so iterate top-down for depths.
    for node in range(next_id - 2, -1, -1):
        depths[node] = depths[parent[node]] + 1
    return depths[:n].astype(np.uint8)


def _canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Canonical code values (uint32) for given lengths.

    Codes are assigned in (length, symbol-index) order, the standard
    canonical construction, so lengths alone reproduce the codebook.
    """
    order = np.lexsort((np.arange(lengths.size), lengths))
    codes = np.zeros(lengths.size, dtype=np.uint32)
    code = 0
    prev_len = 0
    for sym in order:
        length = int(lengths[sym])
        code <<= length - prev_len
        codes[sym] = code
        code += 1
        prev_len = length
    return codes


def _flat_tables(
    alphabet: np.ndarray, lengths: np.ndarray
) -> tuple[np.ndarray, np.ndarray, int]:
    """Flat decode tables: every ``max_len``-bit window starting with a
    code maps to (symbol value, code length).

    Built without a per-entry Python loop: canonical codes sorted by
    (length, symbol) have strictly increasing, space-tiling prefixes, so
    the table is one :func:`numpy.repeat` per array. A corrupt lengths
    section that does not tile the window space exactly is rejected here.
    """
    lens = np.asarray(lengths, dtype=np.int64)
    if lens.size == 0 or (lens <= 0).any() or lens.max() > MAX_CODE_LENGTH:
        raise DecompressionError("invalid Huffman code lengths")
    max_len = int(lens.max())
    order = np.lexsort((np.arange(lens.size), lens))
    spans = np.int64(1) << (max_len - lens[order])
    if int(spans.sum()) != (1 << max_len):
        raise DecompressionError("invalid Huffman code table (not full)")
    table_sym = np.repeat(alphabet[order], spans)
    table_len = np.repeat(lens[order], spans)
    return table_sym, table_len, max_len


# ----------------------------------------------------------------------
# Encode
# ----------------------------------------------------------------------
def encode(symbols: np.ndarray, k_streams: int | str = "auto") -> bytes:
    """Huffman-encode an int64 symbol array into a self-contained blob.

    The symbols are split round-robin into ``k_streams`` independent
    bitstreams (symbol ``i`` goes to stream ``i % K``) that share one
    canonical codebook, enabling the lockstep vectorized decode.

    ``HUF2`` layout: ``magic b"HUF2" | n_symbols (u64) | k_streams (u32) |
    alphabet_size (u32) | alphabet (i64[]) | lengths (u8[]) |
    stream_bits (u64[K]) | per-stream packed bits, each byte-aligned``.
    """
    syms = np.ascontiguousarray(symbols, dtype=np.int64).ravel()
    if syms.size == 0:
        return _HUF2_HEAD.pack(HUF2_MAGIC, 0, 0, 0)
    n = syms.size
    K = resolve_k_streams(k_streams, n)
    alphabet, inverse = np.unique(syms, return_inverse=True)
    if alphabet.size > (1 << MAX_CODE_LENGTH):
        raise HuffmanAlphabetError(
            f"alphabet of {alphabet.size} symbols exceeds {1 << MAX_CODE_LENGTH}"
        )
    freqs = np.bincount(inverse)
    lengths = code_lengths(freqs)
    codes = _canonical_codes(lengths)
    sym_codes = codes[inverse]
    sym_lens = lengths[inverse].astype(np.int64)
    # Per-symbol destination bit offsets, all K streams in one pass:
    # symbol i = (round i // K, stream i % K), so a (rounds, K) reshape
    # turns per-stream prefix sums into one column-wise cumsum.
    n_rounds = -(-n // K)
    lens_mat = np.zeros(n_rounds * K, dtype=np.int64)
    lens_mat[:n] = sym_lens
    lens_mat = lens_mat.reshape(n_rounds, K)
    csum = np.cumsum(lens_mat, axis=0)
    stream_bits = csum[-1]
    stream_bytes = (stream_bits + 7) // 8
    base_bits = 8 * np.concatenate(([0], np.cumsum(stream_bytes)[:-1]))
    offsets = ((csum - lens_mat) + base_bits[None, :]).ravel()[:n]
    bits = np.zeros(int(8 * stream_bytes.sum()), dtype=np.uint8)
    # One vectorized scatter per bit position (<= MAX_CODE_LENGTH passes).
    for b in range(int(lengths.max())):
        active = sym_lens > b
        if not active.any():
            break
        shift = (sym_lens[active] - 1 - b).astype(np.uint32)
        bits[offsets[active] + b] = (sym_codes[active] >> shift) & 1
    packed = np.packbits(bits)
    out = bytearray()
    out += _HUF2_HEAD.pack(HUF2_MAGIC, n, K, alphabet.size)
    out += alphabet.tobytes()
    out += lengths.tobytes()
    out += stream_bits.astype(np.uint64).tobytes()
    out += packed.tobytes()
    return bytes(out)


def _encode_huf1(symbols: np.ndarray) -> bytes:
    """Legacy single-stream ``HUF1`` encoder (headerless layout).

    Kept only so tests and benchmarks can produce HUF1 blobs and exercise
    the one-release read-compat path; production encoding is :func:`encode`.
    """
    syms = np.ascontiguousarray(symbols, dtype=np.int64).ravel()
    if syms.size == 0:
        return struct.pack("<QI", 0, 0)
    alphabet, inverse = np.unique(syms, return_inverse=True)
    if alphabet.size > (1 << MAX_CODE_LENGTH):
        raise HuffmanAlphabetError(
            f"alphabet of {alphabet.size} symbols exceeds {1 << MAX_CODE_LENGTH}"
        )
    freqs = np.bincount(inverse)
    lengths = code_lengths(freqs)
    codes = _canonical_codes(lengths)
    sym_codes = codes[inverse]
    sym_lens = lengths[inverse].astype(np.int64)
    offsets = np.concatenate(([0], np.cumsum(sym_lens)[:-1]))
    total_bits = int(sym_lens.sum())
    bits = np.zeros(total_bits, dtype=np.uint8)
    for b in range(int(lengths.max())):
        active = sym_lens > b
        if not active.any():
            break
        shift = (sym_lens[active] - 1 - b).astype(np.uint32)
        bits[offsets[active] + b] = (sym_codes[active] >> shift) & 1
    packed = np.packbits(bits)
    out = bytearray()
    out += struct.pack("<QI", syms.size, alphabet.size)
    out += alphabet.tobytes()
    out += lengths.tobytes()
    out += struct.pack("<Q", total_bits)
    out += packed.tobytes()
    return bytes(out)


# ----------------------------------------------------------------------
# Decode
# ----------------------------------------------------------------------
def decode(blob) -> np.ndarray:
    """Inverse of :func:`encode`; returns the int64 symbol array.

    Accepts any buffer (``bytes`` or a zero-copy ``memoryview`` from the
    mmap container path). Reads both the current ``HUF2`` layout and the
    legacy single-stream ``HUF1`` layout (kept for one release).
    """
    if len(blob) >= 4 and bytes(blob[:4]) == HUF2_MAGIC:
        return _decode_huf2(blob)
    return _decode_huf1(blob)


def _decode_huf1(blob) -> np.ndarray:
    """Legacy headerless single-stream layout."""
    if len(blob) < 12:
        raise DecompressionError("truncated Huffman blob")
    n_symbols, alpha_size = struct.unpack_from("<QI", blob, 0)
    pos = 12
    if n_symbols == 0:
        return np.empty(0, dtype=np.int64)
    if len(blob) < pos + 9 * alpha_size + 8:
        raise DecompressionError("truncated Huffman blob header")
    alphabet = np.frombuffer(blob, dtype=np.int64, count=alpha_size, offset=pos)
    pos += 8 * alpha_size
    lengths = np.frombuffer(blob, dtype=np.uint8, count=alpha_size, offset=pos)
    pos += alpha_size
    (total_bits,) = struct.unpack_from("<Q", blob, pos)
    pos += 8
    packed = np.frombuffer(blob, dtype=np.uint8, offset=pos)
    if packed.size * 8 < total_bits:
        raise DecompressionError("Huffman bitstream truncated")
    if alpha_size == 1:
        # Degenerate single-symbol alphabet: nothing was written per symbol
        # beyond its 1-bit placeholder; reconstruct directly.
        return np.full(n_symbols, alphabet[0], dtype=np.int64)
    table_sym, table_len, max_len = _flat_tables(alphabet, lengths)
    tsym, tlen = _scalar_tables(table_sym, table_len, int(n_symbols))
    out, _ = _decode_stream(packed.tobytes(), int(n_symbols), tsym, tlen, max_len)
    return out


def _parse_huf2(blob):
    """Split a ``HUF2`` blob into (n, K, alphabet, lengths, stream_bits,
    payload bytes-like), validating sizes before any large allocation."""
    if len(blob) < _HUF2_HEAD.size:
        raise DecompressionError("truncated Huffman blob")
    _, n_symbols, K, alpha_size = _HUF2_HEAD.unpack_from(blob, 0)
    if n_symbols == 0:
        return 0, 0, None, None, None, b""
    if not 1 <= K <= MAX_STREAMS:
        raise DecompressionError(f"HUF2 stream count {K} outside [1, {MAX_STREAMS}]")
    if not 1 <= alpha_size <= (1 << MAX_CODE_LENGTH):
        raise DecompressionError(f"HUF2 alphabet size {alpha_size} invalid")
    pos = _HUF2_HEAD.size
    need = 9 * alpha_size + 8 * K
    if len(blob) < pos + need:
        raise DecompressionError("truncated Huffman blob header")
    alphabet = np.frombuffer(blob, dtype=np.int64, count=alpha_size, offset=pos)
    pos += 8 * alpha_size
    lengths = np.frombuffer(blob, dtype=np.uint8, count=alpha_size, offset=pos)
    pos += alpha_size
    stream_bits = np.frombuffer(blob, dtype=np.uint64, count=K, offset=pos).astype(
        np.int64
    )
    pos += 8 * K
    if (stream_bits < 0).any():
        raise DecompressionError("HUF2 per-stream bit length overflow")
    payload_len = len(blob) - pos
    if int(((stream_bits + 7) // 8).sum()) > payload_len:
        raise DecompressionError("Huffman bitstream truncated")
    payload = np.frombuffer(blob, dtype=np.uint8, offset=pos)
    return int(n_symbols), int(K), alphabet, lengths, stream_bits, payload


def _decode_huf2(blob) -> np.ndarray:
    n, K, alphabet, lengths, stream_bits, payload = _parse_huf2(blob)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if alphabet.size == 1:
        return np.full(n, alphabet[0], dtype=np.int64)
    if K >= _VECTOR_MIN_STREAMS and n >= _SCALAR_CUTOFF:
        return _decode_huf2_vector(n, K, alphabet, lengths, stream_bits, payload)
    return _decode_huf2_scalar(n, K, alphabet, lengths, stream_bits, payload)


def _decode_huf2_scalar(n, K, alphabet, lengths, stream_bits, payload) -> np.ndarray:
    """Per-stream scalar decode + interleave (tiny inputs, narrow K)."""
    table_sym, table_len, max_len = _flat_tables(alphabet, lengths)
    tsym, tlen = _scalar_tables(table_sym, table_len, n)
    stream_bytes = (stream_bits + 7) // 8
    starts = np.concatenate(([0], np.cumsum(stream_bytes)[:-1]))
    out = np.empty(n, dtype=np.int64)
    q, rmod = divmod(n, K)
    for k in range(K):
        count = q + (1 if k < rmod else 0)
        data = payload[int(starts[k]) : int(starts[k] + stream_bytes[k])].tobytes()
        out[k::K], consumed = _decode_stream(data, count, tsym, tlen, max_len)
        if consumed != int(stream_bits[k]):
            raise DecompressionError(
                f"HUF2 stream {k} decoded {consumed} bits, expected "
                f"{int(stream_bits[k])} (corrupt bitstream or per-stream "
                "bit lengths)"
            )
    return out


def _decode_huf2_vector(n, K, alphabet, lengths, stream_bits, payload) -> np.ndarray:
    """Lockstep vectorized decode: one NumPy gather round per symbol rank.

    Each of the K interleaved streams keeps a bit cursor into the shared
    payload; a round gathers a 32-bit big-endian window per lane, looks
    all K windows up in the flat table at once, emits K symbols, and
    advances the cursors by the decoded code lengths. A window only *uses*
    its top ``7 + max_len <= 23`` bits, so reading a few bytes past a
    stream's end (into the next stream, or the zero tail padding) never
    corrupts a symbol whose code bits lie inside the stream. The output
    lands in a ``(rounds, K)`` matrix whose row-major ravel *is* the
    round-robin interleave order.

    Corrupt input cannot escape: gathers are clamped to the padded payload
    (an overrunning lane reads zeros), and after the final round every
    lane's cursor must sit exactly at its recorded stream_bits.
    """
    table_sym, table_len, max_len = _flat_tables(alphabet, lengths)
    stream_bytes = (stream_bits + 7) // 8
    starts = np.concatenate(([0], np.cumsum(stream_bytes)[:-1]))
    # 32-bit big-endian window at every byte offset (zero tail so the last
    # stream's final windows — and corrupt-input overruns — stay in range).
    needed = int(stream_bytes.sum())
    b = np.empty(needed + 8, dtype=np.uint32)
    b[:needed] = payload[:needed]
    b[needed:] = 0
    windows = (b[:-3] << 24) | (b[1:-2] << 16) | (b[2:-1] << 8) | b[3:]
    cap = np.int64(windows.size - 1)
    lane_base = 8 * starts
    cursor = lane_base.copy()
    # Fuse (symbol, length) into one gather when symbols fit 58 bits
    # (quantization codes always do; arbitrary alphabets get two gathers).
    # Compare min/max directly: np.abs(INT64_MIN) overflows negative, so an
    # abs()-based guard would wrongly fuse and corrupt extreme alphabets.
    # (min/max, not alphabet[0]/[-1]: a doctored blob may be unsorted.)
    fused = bool(alphabet.min() > -(1 << 57) and alphabet.max() < (1 << 57))
    if fused:
        table = (table_sym << 5) | table_len
    q, rmod = divmod(n, K)
    n_rounds = q + (1 if rmod else 0)
    out = np.empty((n_rounds, K), dtype=np.int64)
    shift_base = np.int64(32 - max_len)
    mask = np.int64((1 << max_len) - 1)
    cursor_q = cursor
    for r in range(n_rounds):
        if r == q:
            cursor_q = cursor.copy()
        word = windows.take(np.minimum(cursor >> 3, cap))
        win = (word >> (shift_base - (cursor & 7))) & mask
        if fused:
            entry = table.take(win)
            out[r] = entry >> 5
            cursor = cursor + (entry & 31)
        else:
            out[r] = table_sym.take(win)
            cursor = cursor + table_len.take(win)
    # Lanes k < rmod decode n_rounds symbols, the rest stop one earlier.
    if rmod:
        final = np.where(np.arange(K) < rmod, cursor, cursor_q)
    else:
        final = cursor
    if not np.array_equal(final - lane_base, stream_bits):
        raise DecompressionError(
            "HUF2 stream lengths inconsistent with decoded symbols "
            "(corrupt bitstream or per-stream bit lengths)"
        )
    return out.ravel()[:n]


def _scalar_tables(table_sym: np.ndarray, table_len: np.ndarray, n_symbols: int):
    """Pick list or ndarray tables for the scalar loop.

    Measured trade-off (see the micro-benchmark note in
    ``benchmarks/bench_entropy.py``): indexing a Python list inside the
    loop costs ~60 ns vs ~250 ns for an ndarray element (NumPy scalar
    boxing), but ``.tolist()`` of a full 2**16-entry table pair costs
    ~0.8 ms. Lists win once the symbol count is a non-trivial fraction of
    the table size; below that, index the NumPy tables directly.
    """
    if n_symbols * 8 >= table_sym.size:
        return table_sym.tolist(), table_len.tolist()
    return table_sym, table_len


def _decode_stream(
    data: bytes, n_symbols: int, table_sym, table_len, max_len: int
) -> tuple[np.ndarray, int]:
    """Tight scalar decode loop: one table lookup per symbol.

    Plain-Python loop on purpose: per-symbol dependencies make a single
    stream inherently sequential. It remains the fast path for tiny
    inputs, where the vectorized decoder's setup cost dominates; the
    tables are lists or ndarrays per :func:`_scalar_tables`. Returns the
    symbols and the exact number of bits consumed (for per-stream
    validation in the HUF2 layout).
    """
    out = np.empty(n_symbols, dtype=np.int64)
    mask = (1 << max_len) - 1
    bitbuf = 0
    nbits = 0
    byte_pos = 0
    n_bytes = len(data)
    for i in range(n_symbols):
        while nbits < max_len and byte_pos < n_bytes:
            bitbuf = (bitbuf << 8) | data[byte_pos]
            byte_pos += 1
            nbits += 8
        if nbits >= max_len:
            window = (bitbuf >> (nbits - max_len)) & mask
        else:
            window = (bitbuf << (max_len - nbits)) & mask
        length = table_len[window]
        if length > nbits:
            raise DecompressionError("Huffman bitstream exhausted mid-symbol")
        out[i] = table_sym[window]
        nbits -= length
        bitbuf &= (1 << nbits) - 1
    return out, 8 * byte_pos - nbits
