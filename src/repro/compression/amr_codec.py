"""AMR-aware compression of whole hierarchies.

Applies an error-bounded codec per (level, field, patch) and packages the
result into one self-describing container. Two paper-relevant features:

* **Redundant-data exclusion** (§2.2): patch-based AMR keeps coarse data
  under refined regions; since post-analysis never reads it (Figure 3), the
  codec can overwrite those cells with values that compress to almost
  nothing before encoding. On decompression the cells are either left as
  the filled values (``restore="fill"``) or rebuilt by conservatively
  averaging the decompressed fine data down (``restore="average_down"``),
  which keeps the hierarchy self-consistent for dual-cell visualization.
* **Per-patch independence**: every patch is a separate stream, so patches
  can be (de)compressed in parallel or selectively.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.amr.coverage import level_covered_masks
from repro.amr.hierarchy import AMRHierarchy
from repro.amr.level import AMRLevel
from repro.amr.patch import Patch
from repro.compression.base import Compressor
from repro.compression.registry import make_codec
from repro.errors import CompressionError, FormatError

__all__ = ["CompressedHierarchy", "compress_hierarchy", "decompress_hierarchy", "average_down"]

_MAGIC = b"RPRH"


def _fill_covered(data: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Replace covered cells by the mean of the exposed ones (maximally
    compressible constant region; the values are never consumed)."""
    if not mask.any():
        return data
    out = data.copy()
    exposed = data[~mask]
    fill = float(exposed.mean()) if exposed.size else float(data.mean())
    out[mask] = fill
    return out


def average_down(hierarchy: AMRHierarchy, field: str) -> None:
    """Overwrite covered coarse cells with the conservative average of the
    overlying fine cells (AMReX ``average_down``), in place."""
    for lev_idx in range(hierarchy.n_levels - 1):
        coarse = hierarchy[lev_idx]
        fine = hierarchy[lev_idx + 1]
        ratio = hierarchy.ref_ratios[lev_idx]
        for cpatch in coarse.patches(field):
            for fpatch in fine.patches(field):
                overlap = fpatch.box.coarsen(ratio).intersection(cpatch.box)
                if overlap is None:
                    continue
                fine_view = fpatch.view(overlap.refine(ratio))
                # Reshape (n0*r0, n1*r1, ...) -> (n0, r0, n1, r1, ...) and
                # average the ratio axes.
                shp = []
                for n, r in zip(overlap.shape, ratio):
                    shp.extend((n, r))
                reduced = fine_view.reshape(shp).mean(axis=tuple(range(1, 2 * len(ratio), 2)))
                cpatch.view(overlap)[...] = reduced


@dataclass
class CompressedHierarchy:
    """Container of per-patch compressed streams for one hierarchy."""

    codec: str
    error_bound: float
    mode: str
    fields: tuple[str, ...]
    exclude_covered: bool
    #: streams[level][field][patch] -> bytes
    streams: list[dict[str, list[bytes]]]
    original_bytes: int

    @property
    def compressed_bytes(self) -> int:
        """Total payload size."""
        return sum(
            len(blob) for level in self.streams for plist in level.values() for blob in plist
        )

    @property
    def ratio(self) -> float:
        """Compression ratio over the stored fields."""
        return self.original_bytes / self.compressed_bytes

    def tobytes(self) -> bytes:
        """Serialize container (header JSON + concatenated streams)."""
        index = {
            "codec": self.codec,
            "error_bound": self.error_bound,
            "mode": self.mode,
            "fields": list(self.fields),
            "exclude_covered": self.exclude_covered,
            "original_bytes": self.original_bytes,
            "levels": [
                {field: [len(b) for b in plist] for field, plist in level.items()}
                for level in self.streams
            ],
        }
        head = json.dumps(index, separators=(",", ":")).encode()
        out = bytearray(_MAGIC + struct.pack("<I", len(head)) + head)
        for level in self.streams:
            for field in sorted(level):
                for blob in level[field]:
                    out += blob
        return bytes(out)

    @classmethod
    def frombytes(cls, raw: bytes) -> "CompressedHierarchy":
        """Parse a container produced by :meth:`tobytes`."""
        if raw[:4] != _MAGIC:
            raise FormatError("not a compressed-hierarchy container")
        (hlen,) = struct.unpack_from("<I", raw, 4)
        index = json.loads(raw[8 : 8 + hlen].decode())
        pos = 8 + hlen
        streams: list[dict[str, list[bytes]]] = []
        for level in index["levels"]:
            ldict: dict[str, list[bytes]] = {}
            for field in sorted(level):
                blobs = []
                for length in level[field]:
                    blobs.append(raw[pos : pos + length])
                    pos += length
                ldict[field] = blobs
            streams.append(ldict)
        return cls(
            codec=index["codec"],
            error_bound=index["error_bound"],
            mode=index["mode"],
            fields=tuple(index["fields"]),
            exclude_covered=index["exclude_covered"],
            streams=streams,
            original_bytes=index["original_bytes"],
        )


def compress_hierarchy(
    hierarchy: AMRHierarchy,
    codec: str | Compressor,
    error_bound: float,
    mode: str = "rel",
    fields: Sequence[str] | None = None,
    exclude_covered: bool = False,
) -> CompressedHierarchy:
    """Compress selected fields of ``hierarchy`` patch by patch.

    Parameters
    ----------
    hierarchy:
        Input AMR dataset.
    codec:
        Registry name or codec instance.
    error_bound, mode:
        Error-bound spec, resolved *per patch* (``"rel"`` follows the paper:
        the bound scales with each patch's value range).
    fields:
        Fields to include (default: all).
    exclude_covered:
        Apply the §2.2 redundant-data optimization on coarse levels.
    """
    if isinstance(codec, str):
        # Per-patch arrays are sized by the regridder's blocking factor
        # (multiples of 4/8); auto block selection avoids the edge-padding
        # waste a fixed 6-cube would pay on them.
        comp = make_codec(codec, block_size="auto") if codec == "sz-lr" else make_codec(codec)
    else:
        comp = codec
    names = tuple(fields) if fields is not None else hierarchy.field_names
    for name in names:
        if name not in hierarchy.field_names:
            raise CompressionError(f"hierarchy has no field {name!r}")
    streams: list[dict[str, list[bytes]]] = []
    for lev_idx, lev in enumerate(hierarchy):
        masks = level_covered_masks(hierarchy, lev_idx) if exclude_covered else None
        ldict: dict[str, list[bytes]] = {}
        for name in names:
            blobs = []
            for p_idx, patch in enumerate(lev.patches(name)):
                data = patch.data
                if masks is not None and masks[p_idx].any():
                    # Resolve the bound against the *original* values first:
                    # filling may shrink the range (peaks often live under
                    # the refined region) and must not tighten the bound.
                    eb_abs = comp.resolve_error_bound(data, error_bound, mode)
                    data = _fill_covered(data, masks[p_idx])
                    blobs.append(comp.compress(data, eb_abs, "abs"))
                else:
                    blobs.append(comp.compress(data, error_bound, mode))
            ldict[name] = blobs
        streams.append(ldict)
    original = sum(hierarchy.nbytes(name) for name in names)
    return CompressedHierarchy(
        codec=comp.name,
        error_bound=float(error_bound),
        mode=mode,
        fields=names,
        exclude_covered=exclude_covered,
        streams=streams,
        original_bytes=original,
    )


def decompress_hierarchy(
    container: CompressedHierarchy,
    template: AMRHierarchy,
    restore: str = "none",
) -> AMRHierarchy:
    """Rebuild a hierarchy from compressed streams.

    Parameters
    ----------
    container:
        Output of :func:`compress_hierarchy`.
    template:
        Hierarchy providing the box structure and any fields that were not
        compressed (structure travels with the plotfile, not the codec
        stream — matching how AMReX stores metadata separately).
    restore:
        ``"none"`` — leave decompressed coarse values as stored;
        ``"average_down"`` — rebuild covered coarse cells from fine data
        (recommended with ``exclude_covered=True``).
    """
    if restore not in ("none", "average_down"):
        raise CompressionError(f"unknown restore mode {restore!r}")
    comp = make_codec(container.codec)
    new_levels = []
    for lev_idx, lev in enumerate(template):
        new = AMRLevel(lev.index, lev.boxes, lev.dx)
        for name in template.field_names:
            if name in container.fields:
                blobs = container.streams[lev_idx][name]
                patches = [
                    Patch(box, comp.decompress(blob).reshape(box.shape))
                    for box, blob in zip(lev.boxes, blobs)
                ]
            else:
                patches = [p.copy() for p in lev.patches(name)]
            new.add_field(name, patches)
        new_levels.append(new)
    out = AMRHierarchy(template.domain, new_levels, template.ref_ratios)
    if restore == "average_down":
        for name in container.fields:
            average_down(out, name)
    return out
