"""AMR-aware compression of whole hierarchies.

Applies an error-bounded codec per (level, field, patch) and packages the
result into a seekable, patch-indexed container (see
:mod:`repro.compression.container`). Three paper-relevant features:

* **Redundant-data exclusion** (§2.2): patch-based AMR keeps coarse data
  under refined regions; since post-analysis never reads it (Figure 3), the
  codec can overwrite those cells with values that compress to almost
  nothing before encoding. On decompression the cells are either left as
  the filled values (``restore="fill"``) or rebuilt by conservatively
  averaging the decompressed fine data down (``restore="average_down"``),
  which keeps the hierarchy self-consistent for dual-cell visualization.
* **Per-patch independence**: every patch is a separate stream, so patches
  are (de)compressed through :func:`repro.parallel.pool.parallel_map` in
  serial, thread, or process mode — with byte-identical output across
  modes.
* **Selective decompression**: the container's footer-located index lets
  :func:`decompress_selection` pull one patch, one level, or one field
  while reading O(selection) payload bytes — and, for ``RPH2S`` time-series
  sources (:mod:`repro.insitu`), one timestep via ``steps=`` selectors.

Containers written before the indexed format (magic ``RPRH``) are no
longer readable: the one-release compatibility shim was removed, and
:meth:`CompressedHierarchy.frombytes` now raises a clear "unsupported
legacy magic" error instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.amr.coverage import level_covered_masks
from repro.amr.hierarchy import AMRHierarchy
from repro.amr.level import AMRLevel
from repro.amr.patch import Patch
from repro.compression.base import BatchResult, Compressor, SharedEntropy
from repro.compression.container import (
    CONTAINER_MAGIC,
    ContainerReader,
    GroupHandle,
    _normalize_selector,
    group_handle_from_bytes,
    pack_container,
    pack_group,
)
from repro.compression.registry import codec_accepts, make_codec
from repro.errors import CompressionError, FormatError
from repro.parallel.pool import parallel_map

__all__ = [
    "CompressedHierarchy",
    "compress_hierarchy",
    "decompress_hierarchy",
    "decompress_selection",
    "resolve_patch_codec",
    "validate_field_bounds",
    "average_down",
]

#: Magic of the pre-index monolithic container. Writing it stopped with the
#: RPH2 container and the one-release read shim has been removed; the magic
#: is kept only to name the format in the rejection error.
_LEGACY_MAGIC = b"RPRH"
#: Magic of the RPH2S time-series container (see :mod:`repro.insitu.series`).
_SERIES_MAGIC = b"RPH2S"


def _fill_covered(data: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Replace covered cells by the mean of the exposed ones (maximally
    compressible constant region; the values are never consumed)."""
    if not mask.any():
        return data
    out = data.copy()
    exposed = data[~mask]
    fill = float(exposed.mean()) if exposed.size else float(data.mean())
    out[mask] = fill
    return out


def average_down(hierarchy: AMRHierarchy, field: str) -> None:
    """Overwrite covered coarse cells with the conservative average of the
    overlying fine cells (AMReX ``average_down``), in place."""
    for lev_idx in range(hierarchy.n_levels - 1):
        coarse = hierarchy[lev_idx]
        fine = hierarchy[lev_idx + 1]
        ratio = hierarchy.ref_ratios[lev_idx]
        for cpatch in coarse.patches(field):
            for fpatch in fine.patches(field):
                overlap = fpatch.box.coarsen(ratio).intersection(cpatch.box)
                if overlap is None:
                    continue
                fine_view = fpatch.view(overlap.refine(ratio))
                # Reshape (n0*r0, n1*r1, ...) -> (n0, r0, n1, r1, ...) and
                # average the ratio axes.
                shp = []
                for n, r in zip(overlap.shape, ratio):
                    shp.extend((n, r))
                reduced = fine_view.reshape(shp).mean(axis=tuple(range(1, 2 * len(ratio), 2)))
                cpatch.view(overlap)[...] = reduced


@dataclass
class CompressedHierarchy:
    """Container of per-patch compressed streams for one hierarchy.

    Level-batched compression (``batch="level"``) additionally carries the
    shared-codebook group sections in ``groups`` (raw ``RPGB`` blobs, gid
    order) and the ``(level, field, patch) -> (gid, member)`` membership in
    ``stream_groups``; both are empty for the per-patch path.
    """

    codec: str
    error_bound: float
    mode: str
    fields: tuple[str, ...]
    exclude_covered: bool
    #: streams[level][field][patch] -> bytes
    streams: list[dict[str, list[bytes]]]
    original_bytes: int
    #: group sections (raw RPGB blobs), indexed by gid.
    groups: list[bytes] = field(default_factory=list)
    #: (level, field, patch) -> (gid, member) for grouped streams.
    stream_groups: dict[tuple[int, str, int], tuple[int, int]] = field(default_factory=dict)
    #: per-field error-bound overrides (empty when single-bound).
    field_bounds: dict[str, float] = field(default_factory=dict)

    @property
    def compressed_bytes(self) -> int:
        """Total payload size (patch streams plus group sections)."""
        return sum(
            len(blob) for level in self.streams for plist in level.values() for blob in plist
        ) + sum(len(g) for g in self.groups)

    @property
    def ratio(self) -> float:
        """Compression ratio over the stored fields."""
        return self.original_bytes / self.compressed_bytes

    def _meta(self) -> dict:
        meta = {
            "codec": self.codec,
            "error_bound": self.error_bound,
            "mode": self.mode,
            "fields": list(self.fields),
            "exclude_covered": self.exclude_covered,
            "original_bytes": self.original_bytes,
        }
        if self.field_bounds:
            meta["field_bounds"] = dict(self.field_bounds)
        return meta

    def tobytes(self) -> bytes:
        """Serialize to the seekable patch-indexed ``RPH2`` container."""
        return pack_container(
            self._meta(), self.streams,
            groups=self.groups or None,
            stream_groups=self.stream_groups or None,
        )

    def _group_handle(self, gid: int) -> GroupHandle:
        """Parsed handle over one in-memory group section, cached (the
        shared codebook's decode tables amortize across members)."""
        cache = self.__dict__.setdefault("_group_handles", {})
        if gid not in cache:
            if not 0 <= gid < len(self.groups):
                raise FormatError(f"hierarchy has no group {gid}")
            cache[gid] = group_handle_from_bytes(gid, self.groups[gid])
        return cache[gid]

    def _shared_for(self, key: tuple[int, str, int], copy: bool = False) -> SharedEntropy | None:
        membership = self.stream_groups.get(key)
        if membership is None:
            return None
        gid, member = membership
        return self._group_handle(gid).shared(member, copy=copy)

    def select(
        self,
        levels=None,
        fields=None,
        patches=None,
        parallel: str = "serial",
        workers: int = 2,
        pool=None,
    ) -> dict[tuple[int, str, int], np.ndarray]:
        """Decompress a subset of in-memory streams (see
        :func:`decompress_selection` for the selector semantics).

        Streams are already in memory, so this filters and decodes them
        directly — no serialization round-trip.
        """
        want_levels = _normalize_selector(levels, "level")
        want_fields = _normalize_selector(fields, "field")
        want_patches = _normalize_selector(patches, "patch")
        chosen: list[tuple[tuple[int, str, int], bytes]] = []
        for lev_idx, level in enumerate(self.streams):
            if want_levels is not None and lev_idx not in want_levels:
                continue
            for field in sorted(level):
                if want_fields is not None and field not in want_fields:
                    continue
                for p_idx, blob in enumerate(level[field]):
                    if want_patches is not None and p_idx not in want_patches:
                        continue
                    chosen.append(((lev_idx, field, p_idx), blob))
        copy = parallel == "process" or (pool is not None and pool.mode == "process")
        arrays = parallel_map(
            _decompress_task,
            [
                (self.codec, blob, self._shared_for(key, copy=copy))
                for key, blob in chosen
            ],
            mode=parallel,
            workers=workers,
            pool=pool,
        )
        return {key: arr for (key, _), arr in zip(chosen, arrays)}

    @classmethod
    def frombytes(cls, raw: bytes) -> "CompressedHierarchy":
        """Parse a container produced by :meth:`tobytes`.

        Accepts the indexed ``RPH2`` format only. The legacy monolithic
        ``RPRH`` shim was removed one release after the indexed container
        landed; old blobs must be re-compressed with the current writer.
        """
        magic = bytes(raw[:4])
        if magic == _LEGACY_MAGIC:
            raise FormatError(
                f"unsupported legacy magic {_LEGACY_MAGIC!r}: the pre-index "
                "monolithic container is no longer readable (the one-release "
                "read shim was removed); re-compress the source data into an "
                f"{CONTAINER_MAGIC!r} container with the current writer"
            )
        if magic == CONTAINER_MAGIC:
            return cls.fromreader(ContainerReader(raw))
        raise FormatError(
            f"not a compressed-hierarchy container (magic {magic!r}; "
            f"expected {CONTAINER_MAGIC!r})"
        )

    @classmethod
    def fromreader(cls, reader: ContainerReader) -> "CompressedHierarchy":
        """Materialize every stream of an open :class:`ContainerReader`.

        Streams (and group sections) are owned ``bytes`` regardless of the
        reader's mode: an in-memory hierarchy outlives the reader (and
        pickles under process-mode selection), so zero-copy views are
        copied out here — the one place materialization is the point.
        """
        streams: list[dict[str, list[bytes]]] = [{} for _ in range(reader.n_levels)]
        stream_groups: dict[tuple[int, str, int], tuple[int, int]] = {}
        for entry in reader.entries:
            plist = streams[entry.level].setdefault(entry.field, [])
            if entry.patch != len(plist):
                raise FormatError(
                    f"container index out of order at patch {entry.describe()}"
                )
            plist.append(bytes(reader.read_stream(entry)))
            if entry.group is not None:
                stream_groups[entry.key] = (entry.group, entry.member)
        group_rows = sorted(reader.group_entries, key=lambda g: g.gid)
        if [g.gid for g in group_rows] != list(range(len(group_rows))):
            raise FormatError(
                "container group ids are not contiguous from 0 "
                f"(got {[g.gid for g in group_rows]})"
            )
        groups = [bytes(reader.read_group_blob(g.gid)) for g in group_rows]
        return cls(
            codec=reader.codec,
            error_bound=reader.error_bound,
            mode=reader.mode,
            fields=reader.fields,
            exclude_covered=reader.exclude_covered,
            streams=streams,
            original_bytes=reader.original_bytes,
            groups=groups,
            stream_groups=stream_groups,
            field_bounds=reader.field_bounds,
        )

def _compress_task(task: tuple[Compressor, np.ndarray, float, str]) -> bytes:
    """Module-level compress task (picklable for process mode)."""
    comp, data, error_bound, mode = task
    return comp.compress(data, error_bound, mode)


def _compress_group_task(task: tuple[Compressor, np.ndarray, np.ndarray]) -> BatchResult:
    """Module-level fused-group compress task (picklable for process mode)."""
    comp, stacked, bounds = task
    return comp.compress_batch(stacked, bounds, mode="abs")


def _decompress_task(task: tuple[str, bytes, SharedEntropy | None]) -> np.ndarray:
    """Module-level decompress task (picklable for process mode)."""
    codec_name, blob, shared = task
    codec = make_codec(codec_name)
    if shared is not None:
        return codec.decompress(blob, shared=shared)
    return codec.decompress(blob)


def resolve_patch_codec(codec: str | Compressor, k_streams: int | str = "auto") -> Compressor:
    """Resolve a registry name or instance into a patch-ready codec.

    Per-patch arrays are sized by the regridder's blocking factor (multiples
    of 4/8), so ``sz-lr`` gets automatic block selection to avoid the
    edge-padding waste a fixed 6-cube would pay on them; ``k_streams``
    (the Huffman interleave width, threaded from
    :func:`compress_hierarchy`) is forwarded to named codecs the same way.
    Both the batch :func:`compress_hierarchy` path and the streaming
    :class:`repro.insitu.StreamingWriter` resolve codecs through here, which
    is what keeps their output streams byte-identical. Codec *instances*
    pass through unchanged — they already carry their configuration.
    Custom codecs registered through ``register_codec`` whose factories
    never grew a ``k_streams`` parameter are constructed without it.
    """
    if isinstance(codec, str):
        kwargs: dict = {}
        if codec_accepts(codec, "k_streams"):
            kwargs["k_streams"] = k_streams
        if codec == "sz-lr":
            kwargs["block_size"] = "auto"
        return make_codec(codec, **kwargs)
    return codec


def validate_field_bounds(field_bounds, fields) -> dict[str, float]:
    """Normalize a ``{field: bound}`` override mapping (empty when None).

    Bounds must be positive finite numbers; when the field set is already
    known (``fields`` is not None), every override key must name one of
    its fields. Shared by :func:`compress_hierarchy`, the streaming
    writer, and the sharded campaign writer so every entry point rejects
    bad overrides identically.
    """
    if not field_bounds:
        return {}
    out: dict[str, float] = {}
    for name, bound in field_bounds.items():
        eb = float(bound)
        if not eb > 0 or eb != eb or eb == float("inf"):
            raise CompressionError(
                f"field_bounds[{name!r}] must be a positive finite bound, got {bound!r}"
            )
        out[str(name)] = eb
    if fields is not None:
        unknown = sorted(set(out) - set(fields))
        if unknown:
            raise CompressionError(
                f"field_bounds name unknown fields {unknown} "
                f"(known fields: {sorted(fields)})"
            )
    return out


def compress_hierarchy(
    hierarchy: AMRHierarchy,
    codec: str | Compressor,
    error_bound: float,
    mode: str = "rel",
    fields: Sequence[str] | None = None,
    exclude_covered: bool = False,
    parallel: str = "serial",
    workers: int = 2,
    k_streams: int | str = "auto",
    batch: str = "patch",
    pool=None,
    field_bounds=None,
) -> CompressedHierarchy:
    """Compress selected fields of ``hierarchy`` patch by patch.

    Parameters
    ----------
    hierarchy:
        Input AMR dataset.
    codec:
        Registry name or codec instance.
    error_bound, mode:
        Error-bound spec, resolved *per patch* (``"rel"`` follows the paper:
        the bound scales with each patch's value range).
    fields:
        Fields to include (default: all).
    exclude_covered:
        Apply the §2.2 redundant-data optimization on coarse levels.
    parallel, workers:
        Execution mode for the per-patch map (``"serial"``, ``"thread"``,
        or ``"process"``); the container bytes are identical across modes.
    k_streams:
        Huffman interleave width forwarded to named codecs (``"auto"``
        scales with each patch for the vectorized decode); ignored when
        ``codec`` is an instance, which already carries its configuration.
    batch:
        ``"patch"`` (historical: one codec call per patch) or ``"level"``
        — the **fused level-batched path**: all same-shape patches of one
        (level, field) run prediction + quantization as one batched kernel
        invocation and share one Huffman codebook per group, written as
        grouped container streams (see ``docs/container_format.md``).
        Real AMR hierarchies are built from many small patches at fixed
        blocking factors, so this amortizes every per-stream fixed cost
        the paper's workload shape is dominated by. Requires a codec with
        ``supports_batch`` (``sz-lr``, ``sz-interp``); the parallel map
        then runs per *group*, and the container bytes remain identical
        across serial/thread/process.
    pool:
        Optional persistent :class:`repro.parallel.WorkerPool`, reused
        across calls (e.g. across timesteps) instead of building an
        executor per call; overrides ``parallel``/``workers``.
    field_bounds:
        Optional ``{field: bound}`` overrides of ``error_bound`` — the
        mixed-physics knob (e.g. WarpX E fields at one bound, B fields at
        a tighter one). Overridden fields resolve their bound under the
        same ``mode``; fields not named keep ``error_bound``. Recorded in
        the container index (``ContainerReader.field_bounds``).
    """
    comp = resolve_patch_codec(codec, k_streams=k_streams)
    names = tuple(fields) if fields is not None else hierarchy.field_names
    for name in names:
        if name not in hierarchy.field_names:
            raise CompressionError(f"hierarchy has no field {name!r}")
    if batch not in ("patch", "level"):
        raise CompressionError(f"unknown batch mode {batch!r} (use 'patch' or 'level')")
    field_bounds = validate_field_bounds(field_bounds, names)
    if batch == "level":
        return _compress_hierarchy_batched(
            hierarchy, comp, error_bound, mode, names, exclude_covered,
            parallel, workers, pool, field_bounds,
        )
    # Flatten the hierarchy into an ordered task list: the map over patches
    # is pure (paper §3.3), so any executor that preserves order produces
    # the same streams — and therefore the same container bytes.
    tasks: list[tuple[Compressor, np.ndarray, float, str]] = []
    layout: list[dict[str, int]] = []
    for lev_idx, lev in enumerate(hierarchy):
        masks = level_covered_masks(hierarchy, lev_idx) if exclude_covered else None
        counts: dict[str, int] = {}
        for name in names:
            patches = lev.patches(name)
            counts[name] = len(patches)
            field_eb = field_bounds.get(name, error_bound)
            for p_idx, patch in enumerate(patches):
                data = patch.data
                if masks is not None and masks[p_idx].any():
                    # Resolve the bound against the *original* values first:
                    # filling may shrink the range (peaks often live under
                    # the refined region) and must not tighten the bound.
                    eb_abs = comp.resolve_error_bound(data, field_eb, mode)
                    data = _fill_covered(data, masks[p_idx])
                    tasks.append((comp, data, eb_abs, "abs"))
                else:
                    tasks.append((comp, data, field_eb, mode))
        layout.append(counts)
    blobs = parallel_map(_compress_task, tasks, mode=parallel, workers=workers, pool=pool)
    streams: list[dict[str, list[bytes]]] = []
    cursor = 0
    for counts in layout:
        ldict: dict[str, list[bytes]] = {}
        for name in names:
            ldict[name] = blobs[cursor : cursor + counts[name]]
            cursor += counts[name]
        streams.append(ldict)
    original = sum(hierarchy.nbytes(name) for name in names)
    return CompressedHierarchy(
        codec=comp.name,
        error_bound=float(error_bound),
        mode=mode,
        fields=names,
        exclude_covered=exclude_covered,
        streams=streams,
        original_bytes=original,
        field_bounds=field_bounds,
    )


def _compress_hierarchy_batched(
    hierarchy: AMRHierarchy,
    comp: Compressor,
    error_bound: float,
    mode: str,
    names: tuple[str, ...],
    exclude_covered: bool,
    parallel: str,
    workers: int,
    pool,
    field_bounds: dict[str, float],
) -> CompressedHierarchy:
    """The ``batch="level"`` body of :func:`compress_hierarchy`.

    Groups same-shape patches of each (level, field) into one fused
    ``compress_batch`` task; the parallel map runs per group. Group ids
    are assigned in deterministic task order (level ascending, field in
    ``names`` order, shape by first appearance), so the container bytes —
    like the per-patch path's — are identical across execution modes.
    """
    if not getattr(comp, "supports_batch", False):
        raise CompressionError(
            f"codec {comp.name!r} does not implement the level-batched fused "
            "path; use batch='patch' (batch-capable codecs: sz-lr, sz-interp)"
        )
    # One task per (level, field, patch shape): stack the members and
    # resolve every bound to an absolute value up front (identical math to
    # the per-patch path, including the covered-cell fill ordering).
    tasks: list[tuple[Compressor, np.ndarray, np.ndarray]] = []
    memberships: list[list[tuple[int, str, int]]] = []  # task -> member keys
    counts_by_level: list[dict[str, int]] = []
    for lev_idx, lev in enumerate(hierarchy):
        masks = level_covered_masks(hierarchy, lev_idx) if exclude_covered else None
        counts: dict[str, int] = {}
        for name in names:
            patches = lev.patches(name)
            counts[name] = len(patches)
            field_eb = field_bounds.get(name, error_bound)
            by_shape: dict[tuple[int, ...], list[int]] = {}
            for p_idx, patch in enumerate(patches):
                by_shape.setdefault(patch.box.shape, []).append(p_idx)
            for idxs in by_shape.values():
                stacked = np.stack([patches[p].data for p in idxs])
                # Bounds resolve against the *original* values, vectorized
                # over the stack; the covered-cell fill (which may shrink a
                # patch's range and must not tighten its bound) runs after.
                bounds = comp.resolve_error_bounds(stacked, field_eb, mode)
                if masks is not None:
                    for row, p_idx in enumerate(idxs):
                        if masks[p_idx].any():
                            stacked[row] = _fill_covered(stacked[row], masks[p_idx])
                tasks.append((comp, stacked, bounds))
                memberships.append([(lev_idx, name, p) for p in idxs])
        counts_by_level.append(counts)
    results = parallel_map(
        _compress_group_task, tasks, mode=parallel, workers=workers, pool=pool
    )
    # Deterministic assembly: gids in task order, skipping fallback groups
    # (pooled alphabet too large -> members became self-contained streams).
    streams: list[dict[str, list[bytes]]] = [
        {name: [b""] * counts[name] for name in names} for counts in counts_by_level
    ]
    groups: list[bytes] = []
    stream_groups: dict[tuple[int, str, int], tuple[int, int]] = {}
    for keys, result in zip(memberships, results):
        if result.codebook is not None:
            gid = len(groups)
            groups.append(pack_group(result.codebook, result.payloads))
            for member, key in enumerate(keys):
                stream_groups[key] = (gid, member)
        for (lev_idx, name, p_idx), blob in zip(keys, result.streams):
            streams[lev_idx][name][p_idx] = blob
    original = sum(hierarchy.nbytes(name) for name in names)
    return CompressedHierarchy(
        codec=comp.name,
        error_bound=float(error_bound),
        mode=mode,
        fields=names,
        exclude_covered=exclude_covered,
        streams=streams,
        original_bytes=original,
        groups=groups,
        stream_groups=stream_groups,
        field_bounds=field_bounds,
    )


def decompress_hierarchy(
    container: CompressedHierarchy,
    template: AMRHierarchy,
    restore: str = "none",
    parallel: str = "serial",
    workers: int = 2,
    pool=None,
) -> AMRHierarchy:
    """Rebuild a hierarchy from compressed streams.

    Parameters
    ----------
    container:
        Output of :func:`compress_hierarchy` (per-patch or level-batched;
        grouped streams decode against their shared codebooks
        transparently).
    template:
        Hierarchy providing the box structure and any fields that were not
        compressed (structure travels with the plotfile, not the codec
        stream — matching how AMReX stores metadata separately).
    restore:
        ``"none"`` — leave decompressed coarse values as stored;
        ``"average_down"`` — rebuild covered coarse cells from fine data
        (recommended with ``exclude_covered=True``).
    parallel, workers:
        Execution mode for the per-patch decode map; the rebuilt hierarchy
        is identical across modes.
    pool:
        Optional persistent :class:`repro.parallel.WorkerPool` to run the
        decode map on (overrides ``parallel``/``workers``).
    """
    if restore not in ("none", "average_down"):
        raise CompressionError(f"unknown restore mode {restore!r}")
    copy = parallel == "process" or (pool is not None and pool.mode == "process")
    tasks: list[tuple[str, bytes, SharedEntropy | None]] = []
    for lev_idx, lev in enumerate(template):
        for name in template.field_names:
            if name in container.fields:
                for p_idx, blob in enumerate(container.streams[lev_idx][name]):
                    shared = container._shared_for((lev_idx, name, p_idx), copy=copy)
                    tasks.append((container.codec, blob, shared))
    arrays = parallel_map(_decompress_task, tasks, mode=parallel, workers=workers, pool=pool)
    cursor = 0
    new_levels = []
    for lev_idx, lev in enumerate(template):
        new = AMRLevel(lev.index, lev.boxes, lev.dx)
        for name in template.field_names:
            if name in container.fields:
                n = len(container.streams[lev_idx][name])
                patches = [
                    Patch(box, arr.reshape(box.shape))
                    for box, arr in zip(lev.boxes, arrays[cursor : cursor + n])
                ]
                cursor += n
            else:
                patches = [p.copy() for p in lev.patches(name)]
            new.add_field(name, patches)
        new_levels.append(new)
    out = AMRHierarchy(template.domain, new_levels, template.ref_ratios)
    if restore == "average_down":
        for name in container.fields:
            average_down(out, name)
    return out


def _sniff_magic(fileobj) -> bytes:
    """Read the first 5 bytes of a seekable file and restore its position."""
    pos = fileobj.tell()
    fileobj.seek(0)
    magic = fileobj.read(len(_SERIES_MAGIC))
    fileobj.seek(pos)
    return magic


def _reject_steps_on_snapshot(steps) -> None:
    if steps is not None:
        raise CompressionError(
            "steps= selector given but the source is a single-snapshot "
            "container; only RPH2S time-series sources carry timesteps"
        )


def decompress_selection(
    source,
    levels=None,
    fields=None,
    patches=None,
    verify: bool = True,
    parallel: str = "serial",
    workers: int = 2,
    *,
    steps=None,
    pool=None,
):
    """Random-access decompression of a subset of patches.

    Parameters
    ----------
    source:
        Where to read from: a :class:`ContainerReader`, an open seekable
        binary file, a path, raw container ``bytes``, an in-memory
        :class:`CompressedHierarchy`, or an ``RPH2S`` time-series source
        (a :class:`repro.insitu.SeriesReader`, series bytes, or a series
        path). For indexed sources only the footer(s), the index(es), and
        the selected streams are read — O(selection) bytes.
    levels, fields, patches:
        Scalar, iterable, or ``None`` (= all) selectors; a patch is decoded
        when it matches all three.
    verify:
        Check each stream's crc32 against the index before decoding.
    parallel, workers:
        Execution mode for the decode map.
    steps:
        Timestep selector (scalar, iterable, or ``None`` = all). Only valid
        for time-series sources; a snapshot source rejects it.

    Returns
    -------
    dict
        ``(level, field, patch) -> np.ndarray`` for snapshot sources, or
        ``(step, level, field, patch) -> np.ndarray`` for series sources.
    """
    # The series readers live in repro.insitu, which imports this module —
    # resolve them lazily to keep the import graph acyclic.
    from repro.insitu.series import SERIES_MAGIC, SeriesReader
    from repro.insitu.sharded import MANIFEST_MAGIC, ShardedSeriesReader

    if isinstance(source, (SeriesReader, ShardedSeriesReader)):
        return source.select(
            steps=steps, levels=levels, fields=fields, patches=patches,
            verify=verify, parallel=parallel, workers=workers, pool=pool,
        )
    if isinstance(source, ContainerReader):
        _reject_steps_on_snapshot(steps)
        return source.select(
            levels=levels, fields=fields, patches=patches, verify=verify,
            parallel=parallel, workers=workers, pool=pool,
        )
    if isinstance(source, CompressedHierarchy):
        _reject_steps_on_snapshot(steps)
        return source.select(
            levels=levels, fields=fields, patches=patches,
            parallel=parallel, workers=workers, pool=pool,
        )
    if isinstance(source, (bytes, bytearray, memoryview)):
        # Buffer (zero-copy) mode: the readers slice memoryviews straight
        # off the caller's buffer — no BytesIO staging copy, no per-stream
        # bytes copy (select() still copies once for process-mode pickling).
        if bytes(source[: len(MANIFEST_MAGIC)]) == MANIFEST_MAGIC:
            raise CompressionError(
                "RPHM manifests reference sibling shard files; pass the "
                "manifest path (or an open ShardedSeriesReader), not bytes"
            )
        if bytes(source[: len(SERIES_MAGIC)]) == SERIES_MAGIC:
            return SeriesReader(source).select(
                steps=steps, levels=levels, fields=fields, patches=patches,
                verify=verify, parallel=parallel, workers=workers, pool=pool,
            )
        _reject_steps_on_snapshot(steps)
        return ContainerReader(source).select(
            levels=levels, fields=fields, patches=patches, verify=verify,
            parallel=parallel, workers=workers, pool=pool,
        )
    if isinstance(source, (str, Path)):
        with Path(source).open("rb") as fileobj:
            magic = _sniff_magic(fileobj)
            if magic[: len(MANIFEST_MAGIC)] == MANIFEST_MAGIC:
                # Sharded campaign: the manifest's sibling shard files are
                # resolved from the path, each step read from its shard.
                with SeriesReader.open(source) as reader:
                    return reader.select(
                        steps=steps, levels=levels, fields=fields,
                        patches=patches, verify=verify, parallel=parallel,
                        workers=workers, pool=pool,
                    )
            if magic == SERIES_MAGIC:
                return SeriesReader(fileobj).select(
                    steps=steps, levels=levels, fields=fields, patches=patches,
                    verify=verify, parallel=parallel, workers=workers,
                )
            _reject_steps_on_snapshot(steps)
            return ContainerReader(fileobj).select(
                levels=levels, fields=fields, patches=patches, verify=verify,
                parallel=parallel, workers=workers, pool=pool,
            )
    if hasattr(source, "seek") and hasattr(source, "read"):
        magic = _sniff_magic(source)
        if magic[: len(MANIFEST_MAGIC)] == MANIFEST_MAGIC:
            raise CompressionError(
                "RPHM manifests reference sibling shard files; pass the "
                "manifest path (or an open ShardedSeriesReader), not a "
                "file object"
            )
        if magic == SERIES_MAGIC:
            return SeriesReader(source).select(
                steps=steps, levels=levels, fields=fields, patches=patches,
                verify=verify, parallel=parallel, workers=workers, pool=pool,
            )
        _reject_steps_on_snapshot(steps)
        return ContainerReader(source).select(
            levels=levels, fields=fields, patches=patches, verify=verify,
            parallel=parallel, workers=workers, pool=pool,
        )
    raise CompressionError(
        f"cannot read a container from {type(source).__name__}; pass bytes, a "
        "path, a seekable file, a ContainerReader, a SeriesReader, or a "
        "CompressedHierarchy"
    )
