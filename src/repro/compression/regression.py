"""Per-block linear-regression predictor (the "R" of SZ-L/R).

SZ's high-ratio mode (Liang et al., IEEE Big Data 2018) partitions data into
small blocks and fits an affine model ``f(i,j,k) = b0 + b1*i + b2*j + b3*k``
per block. The design matrix is identical for every (full) block, so the
least-squares solve collapses to a single precomputed pseudo-inverse applied
to all blocks at once — one matmul for the whole array.

Coefficients are themselves quantized (they travel in the stream); the
residual quantizer downstream guarantees the error bound regardless of the
coefficient precision, which only influences ratio.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import CompressionError

__all__ = [
    "blockify",
    "unblockify",
    "fit_blocks",
    "quantize_coefficients",
    "dequantize_coefficients",
    "predict_blocks",
]


def blockify(arr: np.ndarray, bs: int, batch: bool = False) -> tuple[np.ndarray, tuple[int, ...]]:
    """Split ``arr`` into ``bs``-cubes after edge padding.

    Returns ``(blocks, padded_shape)`` where ``blocks`` has shape
    ``(n_blocks, bs**ndim)`` in C-order block raster order. Edge padding
    replicates border values so every block is full — padding cells are
    dropped again by :func:`unblockify`.

    With ``batch=True`` the leading axis of ``arr`` is a batch of
    same-shape patches: each ``arr[p]`` is blockified independently and
    the results are stacked patch-major, so ``blocks`` has shape
    ``(n_patches * blocks_per_patch, bs**ndim)`` with patch ``p``'s blocks
    at rows ``[p * blocks_per_patch, (p + 1) * blocks_per_patch)`` —
    identical rows to ``n_patches`` separate calls, computed in one pad +
    transpose. ``padded_shape`` stays the *spatial* padded shape.
    """
    if bs < 2:
        raise CompressionError(f"block size must be >= 2, got {bs}")
    spatial = arr.shape[1:] if batch else arr.shape
    pad = [(0, (-s) % bs) for s in spatial]
    if batch:
        pad = [(0, 0)] + pad
    padded = np.pad(arr, pad, mode="edge") if any(p[1] for p in pad) else arr
    nb = tuple(s // bs for s in (padded.shape[1:] if batch else padded.shape))
    ndim = len(spatial)
    # reshape to ([P,] nb0, bs, nb1, bs, ...) then move block axes to front.
    shape = []
    for n in nb:
        shape.extend((n, bs))
    lead = 1 if batch else 0
    view = padded.reshape(padded.shape[:lead] + tuple(shape))
    order = list(range(lead)) \
        + list(range(lead, lead + 2 * ndim, 2)) \
        + list(range(lead + 1, lead + 2 * ndim, 2))
    blocks = view.transpose(order).reshape(-1, bs**ndim)
    padded_spatial = padded.shape[1:] if batch else padded.shape
    return np.ascontiguousarray(blocks), padded_spatial


def unblockify(blocks: np.ndarray, bs: int, padded_shape: tuple[int, ...], shape: tuple[int, ...]) -> np.ndarray:
    """Inverse of :func:`blockify`, cropping padding back to ``shape``."""
    ndim = len(shape)
    nb = tuple(s // bs for s in padded_shape)
    view = blocks.reshape(nb + (bs,) * ndim)
    order: list[int] = []
    for d in range(ndim):
        order.extend((d, ndim + d))
    arr = view.transpose(order).reshape(padded_shape)
    return arr[tuple(slice(0, s) for s in shape)].copy()


@lru_cache(maxsize=8)
def _design(bs: int, ndim: int) -> tuple[np.ndarray, np.ndarray]:
    """(X, pinv(X)) for the per-block affine fit; cached per (bs, ndim)."""
    axes = [np.arange(bs, dtype=np.float64)] * ndim
    coords = np.meshgrid(*axes, indexing="ij")
    cols = [np.ones(bs**ndim)] + [c.ravel() for c in coords]
    x = np.stack(cols, axis=1)  # (bs**ndim, 1+ndim)
    pinv = np.linalg.pinv(x)  # (1+ndim, bs**ndim)
    return x, pinv


def fit_blocks(blocks: np.ndarray, bs: int, ndim: int) -> np.ndarray:
    """Least-squares affine coefficients per block, shape ``(n, 1 + ndim)``."""
    _, pinv = _design(bs, ndim)
    return blocks @ pinv.T


def coefficient_pitches(eb, bs: int, ndim: int) -> np.ndarray:
    """Quantization pitch per coefficient.

    The intercept moves the whole block, so it gets pitch ``eb/2``; each
    slope is scaled by up to ``bs`` cells, so slopes get ``eb/(2*bs)`` —
    keeping coefficient rounding well inside the residual quantizer's
    correction range (mirrors the reference SZ choice). ``eb`` is a scalar
    bound or a per-block array of shape ``(n,)`` (the level-batched path),
    giving pitches of shape ``(1 + ndim,)`` or ``(n, 1 + ndim)``.

    The pitch is computed by *division* (``eb / (2*bs)``), exactly as the
    historical scalar code did: a reciprocal multiply differs by 1 ulp for
    non-power-of-two block sizes (5, 6), which would silently change the
    dequantized coefficients of every previously written stream.
    """
    divisors = np.full(1 + ndim, 2.0 * bs)
    divisors[0] = 2.0
    eb_arr = np.asarray(eb, dtype=np.float64)
    return eb_arr[..., None] / divisors


def quantize_coefficients(coefs: np.ndarray, eb, bs: int, ndim: int) -> np.ndarray:
    """Snap coefficients to their pitch lattice; returns int64 codes."""
    pitches = coefficient_pitches(eb, bs, ndim)
    return np.rint(coefs / pitches).astype(np.int64)


def dequantize_coefficients(codes: np.ndarray, eb, bs: int, ndim: int) -> np.ndarray:
    """Inverse of :func:`quantize_coefficients`."""
    pitches = coefficient_pitches(eb, bs, ndim)
    return codes.astype(np.float64) * pitches


def predict_blocks(coefs: np.ndarray, bs: int, ndim: int) -> np.ndarray:
    """Evaluate the affine model: ``(n, 1+ndim) -> (n, bs**ndim)``."""
    x, _ = _design(bs, ndim)
    return coefs @ x.T
