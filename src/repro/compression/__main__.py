"""Command-line compressor for ``.npy`` arrays and plotfiles.

Usage::

    python -m repro.compression compress field.npy -o field.rprc \\
        --codec sz-interp --eb 1e-3 --mode rel
    python -m repro.compression decompress field.rprc -o restored.npy
    python -m repro.compression info field.rprc
    python -m repro.compression compress-plotfile myplt/ -o myplt.rprh \\
        --codec sz-lr --eb 1e-3 --parallel thread --workers 0
    python -m repro.compression inspect myplt.rprh
    python -m repro.compression extract myplt.rprh -o patch.npy \\
        --level 1 --field density --patch 0
    python -m repro.compression stream plt_0000/ plt_0001/ -o run.rph2s \\
        --codec sz-lr --eb 1e-3 --parallel thread --workers 0
    python -m repro.compression stream --sim nyx --steps 16 -o run.rph2s
    python -m repro.compression inspect run.rph2s
    python -m repro.compression extract run.rph2s --step 7 --level 1 \\
        --field baryon_density --patch 0 -o patch.npy
    python -m repro.compression recover run.rph2s            # dry-run report
    python -m repro.compression recover run.rph2s --commit   # rewrite index

``info`` prints the self-describing header (codec, shape, parameters,
section sizes) without decompressing. ``inspect`` walks a seekable
container's patch index — or a series' timestep index — without touching
the payload; ``extract`` decodes a selection of patches via random access
(O(selection) bytes read). ``stream`` compresses timesteps *as they are
produced* (plotfile directories read one at a time, or a built-in synthetic
campaign) into an appendable RPH2S series; ``--durability step`` fsyncs
every sealed step. ``recover`` salvages a series whose footer was lost to
a killed writer: dry run reports every fully-sealed step, ``--commit``
truncates trailing garbage and appends a fresh timestep index + footer.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.amr.io import open_container, read_plotfile
from repro.compression.amr_codec import (
    CompressedHierarchy,
    compress_hierarchy,
    decompress_selection,
)
from repro.compression.base import StreamReader
from repro.compression.registry import available_codecs, decompress_any, make_codec
from repro.insitu.writer import DURABILITY_MODES
from repro.parallel.pool import EXECUTION_MODES, resolve_workers

__all__ = ["main"]


def _cmd_compress(args) -> int:
    data = np.load(args.input, allow_pickle=False)
    codec = make_codec(args.codec)
    blob = codec.compress(data, args.eb, mode=args.mode)
    out = args.output if args.output else args.input.with_suffix(".rprc")
    Path(out).write_bytes(blob)
    print(
        f"{args.input} -> {out}: {data.nbytes} -> {len(blob)} bytes "
        f"(ratio {data.nbytes / len(blob):.2f}x, codec {args.codec}, "
        f"eb {args.eb:g} {args.mode})"
    )
    return 0


def _cmd_decompress(args) -> int:
    blob = Path(args.input).read_bytes()
    data = decompress_any(blob)
    out = args.output if args.output else Path(args.input).with_suffix(".npy")
    np.save(out, data, allow_pickle=False)
    print(f"{args.input} -> {out}: shape {data.shape}, dtype {data.dtype}")
    return 0


def _cmd_info(args) -> int:
    blob = Path(args.input).read_bytes()
    reader = StreamReader(blob)
    print(f"codec:  {reader.codec}")
    print(f"shape:  {reader.shape}")
    print(f"dtype:  {reader.dtype}")
    print(f"params: {reader.params}")
    meta = reader._meta  # header section table
    total = len(blob)
    for sec in meta["sections"]:
        share = 100.0 * sec["length"] / total
        print(f"  section {sec['name']:10s} {sec['length']:10d} bytes ({share:4.1f}%)")
    return 0


def _cmd_compress_plotfile(args) -> int:
    hierarchy = read_plotfile(args.input)
    fields = args.fields.split(",") if args.fields else None
    container = compress_hierarchy(
        hierarchy, args.codec, args.eb, mode=args.mode, fields=fields,
        exclude_covered=args.exclude_covered, batch=args.batch,
        parallel=args.parallel, workers=resolve_workers(args.workers),
    )
    out = args.output if args.output else Path(args.input).with_suffix(".rprh")
    Path(out).write_bytes(container.tobytes())
    print(
        f"{args.input} -> {out}: ratio {container.ratio:.2f}x over "
        f"{list(container.fields)} ({container.original_bytes} -> "
        f"{container.compressed_bytes} bytes)"
    )
    return 0


def _cmd_info_plotfile(args) -> int:
    container = CompressedHierarchy.frombytes(Path(args.input).read_bytes())
    print(f"codec:   {container.codec}")
    print(f"eb:      {container.error_bound:g} ({container.mode})")
    print(f"fields:  {list(container.fields)}")
    print(f"levels:  {len(container.streams)}")
    print(f"ratio:   {container.ratio:.2f}x")
    for lev_idx, level in enumerate(container.streams):
        for field, blobs in sorted(level.items()):
            size = sum(len(b) for b in blobs)
            print(f"  level {lev_idx} {field}: {len(blobs)} patches, {size} bytes")
    return 0


def _cmd_inspect(args) -> int:
    with Path(args.input).open("rb") as probe:
        magic = probe.read(5)
    if magic == b"RPH2S" or magic[:4] == b"RPHM":
        return _inspect_series(args.input)
    with open_container(args.input) as reader:
        print(f"codec:    {reader.codec}")
        print(f"eb:       {reader.error_bound:g} ({reader.mode})")
        print(f"fields:   {list(reader.fields)}")
        print(f"levels:   {reader.n_levels}")
        print(f"patches:  {len(reader.entries)}")
        print(f"payload:  {reader.compressed_bytes} bytes "
              f"(ratio {reader.original_bytes / reader.compressed_bytes:.2f}x)")
        print(f"{'level':>5} {'field':>12} {'patch':>5} {'offset':>10} "
              f"{'length':>10} {'codec':>10} {'crc32':>10}")
        for e in reader.entries:
            print(f"{e.level:>5} {e.field:>12} {e.patch:>5} {e.offset:>10} "
                  f"{e.length:>10} {e.codec:>10} {e.crc32:>10x}")
    return 0


def _inspect_series(path: Path) -> int:
    from repro.amr.io import open_series

    with open_series(path) as reader:
        if getattr(reader, "is_sharded", False):
            print(f"RPHM sharded campaign ({reader.n_shards} shards)")
            for name in reader.shards:
                owned = [e.step for e in reader.step_entries
                         if reader.shard_of(e.step) == name]
                print(f"  {Path(name).name}: steps {owned}")
        else:
            print("RPH2S time series")
        print(f"codec:    {reader.codec}")
        print(f"eb:       {reader.error_bound:g} ({reader.mode})")
        print(f"fields:   {list(reader.fields)}")
        print(f"steps:    {reader.n_steps}")
        total_ratio = (
            reader.original_bytes / reader.compressed_bytes
            if reader.compressed_bytes
            else float("nan")
        )
        print(f"payload:  {reader.compressed_bytes} bytes (ratio {total_ratio:.2f}x)")
        print(f"{'step':>5} {'time':>10} {'levels':>6} {'patches':>7} "
              f"{'offset':>10} {'length':>10} {'ratio':>7}")
        for e in reader.step_entries:
            ratio = e.original_bytes / e.length if e.length else float("nan")
            print(f"{e.step:>5} {e.time:>10.4g} {e.n_levels:>6} {e.n_patches:>7} "
                  f"{e.offset:>10} {e.length:>10} {ratio:>6.2f}x")
    return 0


def _parse_int_list(spec: str | None) -> list[int] | None:
    return None if spec is None else [int(s) for s in spec.split(",")]


def _cmd_extract(args) -> int:
    # decompress_selection routes on magic: RPH2 snapshots and RPH2S series.
    selected = decompress_selection(
        args.input,
        levels=_parse_int_list(args.level),
        fields=args.field.split(",") if args.field else None,
        patches=_parse_int_list(args.patch),
        parallel=args.parallel,
        workers=resolve_workers(args.workers),
        steps=_parse_int_list(args.step),
    )
    if not selected:
        print("selection matched no patches", file=sys.stderr)
        return 1

    def tag(key) -> str:
        if len(key) == 4:  # series: (step, level, field, patch)
            s, l, field, p = key
            return f"step{s:05d}_level{l}_{field}_patch{p:05d}"
        l, field, p = key
        return f"level{l}_{field}_patch{p:05d}"

    if len(selected) == 1 and not args.npz:
        ((key, data),) = selected.items()
        out = args.output if args.output else Path(args.input).with_suffix(".npy")
        np.save(out, data, allow_pickle=False)
        print(f"{args.input} -> {out}: {tag(key)}, shape {data.shape}")
    else:
        out = args.output if args.output else Path(args.input).with_suffix(".npz")
        arrays = {tag(key): data for key, data in selected.items()}
        np.savez(out, **arrays)
        print(f"{args.input} -> {out}: {len(arrays)} patches")
    return 0


def _cmd_recover(args) -> int:
    from repro.amr.io import recover_series
    from repro.errors import TruncatedSeriesError

    if args.output is not None and not args.commit:
        print("recover: -o/--output has no effect without --commit",
              file=sys.stderr)
    try:
        report = recover_series(args.input)  # dry run: never modifies the file
    except TruncatedSeriesError as exc:
        # A sharded campaign where no shard holds a sealed step.
        print(f"recover: {exc}", file=sys.stderr)
        return 1
    if getattr(report, "shard_reports", None) is not None and args.output:
        print("recover: -o/--output is not supported for sharded manifests "
              "(shards are recovered in place)", file=sys.stderr)
        return 2
    print(report.describe())
    if report.intact:
        if args.commit and args.output is not None:
            recover_series(args.input, commit=True, output=args.output)
            print(f"copied intact series -> {args.output}")
        return 0
    if not report.steps:
        print("recover: no fully-sealed steps; refusing to commit an empty "
              "series", file=sys.stderr)
        return 1
    if args.commit:
        # All mutation goes through the library path (one code path for
        # the CLI and repro.amr.io.recover_series).
        recover_series(args.input, commit=True, output=args.output)
        target = args.output if args.output is not None else args.input
        print(f"committed: {target} now carries a fresh timestep index "
              f"({len(report.steps)} step(s))")
    else:
        print("dry run — pass --commit to truncate trailing garbage and "
              "append a fresh timestep index + footer")
    return 0


def _cmd_scrub(args) -> int:
    from repro.errors import FormatError, StorageError
    from repro.integrity import scrub

    try:
        report = scrub(args.input)  # read-only: never modifies the file
    except (FormatError, StorageError) as exc:
        print(f"scrub: {exc}", file=sys.stderr)
        return 2
    print(report.describe())
    return 0 if report.clean else 1


def _cmd_repair(args) -> int:
    from repro.errors import FormatError, IntegrityError, StorageError
    from repro.integrity import repair_sharded

    try:
        report = repair_sharded(args.input, commit=args.commit)
    except (IntegrityError, FormatError, StorageError) as exc:
        print(f"repair: {exc}", file=sys.stderr)
        return 2
    print(report.describe())
    if report.unrecoverable:
        return 1
    if not args.commit and not report.clean:
        print("dry run — pass --commit to rewrite the damaged segments, "
              "shard indexes, and manifest from parity")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.serve import QueryServer, QueryService

    async def run() -> int:
        service = QueryService(
            args.input,
            recover=args.recover,
            cache_bytes=args.cache_bytes if args.cache_bytes > 0 else None,
            workers=resolve_workers(args.workers),
        )
        try:
            server = QueryServer(
                service,
                host=args.host,
                port=args.port,
                idle_timeout=(
                    args.idle_timeout if args.idle_timeout > 0 else None
                ),
                max_connections=(
                    args.max_connections if args.max_connections > 0 else None
                ),
            )
            await server.start()
            host, port = server.address
            kind = "sharded campaign" if service.is_sharded else (
                "series" if len(service.steps) > 1 or args.input.suffix
                == ".rph2s" else "snapshot"
            )
            # Parsed by tests and tools to learn the bound port: keep the
            # "serving ... on host:port" shape stable.
            print(
                f"serving {args.input} ({kind}, {len(service.steps)} step(s), "
                f"fields {list(service.fields)}) on {host}:{port}",
                flush=True,
            )
            await server.serve_until_shutdown()
            print("shutdown requested; server stopped", flush=True)
            return 0
        except BaseException:
            service.close()
            raise

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        print("interrupted; server stopped", file=sys.stderr)
        return 0


def _cmd_stream(args) -> int:
    from repro.insitu.writer import StreamingWriter

    if bool(args.inputs) == bool(args.sim):
        print("stream: pass plotfile directories OR --sim, not both/neither",
              file=sys.stderr)
        return 2
    if args.shards < 1:
        print("stream: --shards must be >= 1", file=sys.stderr)
        return 2
    fields = args.fields.split(",") if args.fields else None
    out = Path(args.output)

    def step_source():
        if args.inputs:
            # One plotfile in memory at a time: the streaming contract.
            for i, plt_dir in enumerate(args.inputs):
                yield read_plotfile(plt_dir), float(i), None
        else:
            from repro.sims.streams import nyx_step_stream, warpx_step_stream

            stream_fn = {"nyx": nyx_step_stream, "warpx": warpx_step_stream}[args.sim]
            for s in stream_fn(args.steps):
                yield s.hierarchy, s.time, s.index

    if args.shards > 1:
        from repro.insitu.sharded import ShardedSeriesWriter

        with ShardedSeriesWriter.create(
            out, args.codec, args.eb, mode=args.mode, n_shards=args.shards,
            fields=fields, exclude_covered=args.exclude_covered,
            overwrite=args.overwrite, durability=args.durability,
        ) as writer:
            for hierarchy, time, step in step_source():
                n = writer.append_step(hierarchy, time=time, step=step)
                print(f"  step {n} -> shard "
                      f"{Path(writer.shards[writer._route[n]]).name}")
            n_steps = writer.n_steps
        print(f"{out}: {n_steps} steps across {args.shards} shards")
        return 0
    with StreamingWriter.create(
        out, args.codec, args.eb, mode=args.mode, fields=fields,
        exclude_covered=args.exclude_covered, parallel=args.parallel,
        workers=resolve_workers(args.workers), overwrite=args.overwrite,
        durability=args.durability,
    ) as writer:
        for hierarchy, time, step in step_source():
            entry = writer.append_step(hierarchy, time=time, step=step)
            print(f"  step {entry.step}: t={entry.time:g} -> {entry.length} bytes "
                  f"(ratio {entry.original_bytes / entry.length:.2f}x)")
        n_steps = writer.n_steps
    print(f"{out}: {n_steps} steps written")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.compression",
        description="Error-bounded compression of .npy arrays and plotfiles.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compress", help="compress a .npy array")
    p.add_argument("input", type=Path)
    p.add_argument("-o", "--output", type=Path, default=None)
    p.add_argument("--codec", choices=available_codecs(), default="sz-lr")
    p.add_argument("--eb", type=float, default=1e-3)
    p.add_argument("--mode", choices=("abs", "rel"), default="rel")
    p.set_defaults(fn=_cmd_compress)

    p = sub.add_parser("decompress", help="decompress a .rprc stream")
    p.add_argument("input", type=Path)
    p.add_argument("-o", "--output", type=Path, default=None)
    p.set_defaults(fn=_cmd_decompress)

    p = sub.add_parser("info", help="inspect a .rprc stream header")
    p.add_argument("input", type=Path)
    p.set_defaults(fn=_cmd_info)

    p = sub.add_parser("compress-plotfile", help="compress a plotfile directory")
    p.add_argument("input", type=Path)
    p.add_argument("-o", "--output", type=Path, default=None)
    p.add_argument("--codec", choices=available_codecs(), default="sz-lr")
    p.add_argument("--eb", type=float, default=1e-3)
    p.add_argument("--mode", choices=("abs", "rel"), default="rel")
    p.add_argument("--fields", default=None, help="comma-separated subset")
    p.add_argument("--exclude-covered", action="store_true")
    p.add_argument(
        "--batch", choices=("patch", "level"), default="patch",
        help="'level' fuses same-shape patches per (level, field) under a "
             "shared Huffman codebook (grouped streams; much faster on "
             "many-small-patch hierarchies)",
    )
    p.add_argument("--parallel", choices=EXECUTION_MODES, default="serial")
    p.add_argument("--workers", type=int, default=0, help="0 = one per CPU core")
    p.set_defaults(fn=_cmd_compress_plotfile)

    p = sub.add_parser("info-plotfile", help="inspect a .rprh container")
    p.add_argument("input", type=Path)
    p.set_defaults(fn=_cmd_info_plotfile)

    p = sub.add_parser(
        "inspect", help="walk a .rprh container's patch index or a .rph2s timestep index"
    )
    p.add_argument("input", type=Path)
    p.set_defaults(fn=_cmd_inspect)

    p = sub.add_parser(
        "extract", help="selectively decode patches from a .rprh container or .rph2s series"
    )
    p.add_argument("input", type=Path)
    p.add_argument("-o", "--output", type=Path, default=None)
    p.add_argument("--step", default=None, help="comma-separated timesteps (series only)")
    p.add_argument("--level", default=None, help="comma-separated level indices")
    p.add_argument("--field", default=None, help="comma-separated field names")
    p.add_argument("--patch", default=None, help="comma-separated patch indices")
    p.add_argument("--npz", action="store_true", help="force .npz even for one patch")
    p.add_argument("--parallel", choices=EXECUTION_MODES, default="serial")
    p.add_argument("--workers", type=int, default=0, help="0 = one per CPU core")
    p.set_defaults(fn=_cmd_extract)

    p = sub.add_parser(
        "stream",
        help="compress timesteps as produced (plotfile dirs or a synthetic sim) "
             "into an .rph2s series",
    )
    p.add_argument("inputs", type=Path, nargs="*", help="plotfile dirs, one per step")
    p.add_argument("-o", "--output", type=Path, required=True)
    p.add_argument("--sim", choices=("nyx", "warpx"), default=None,
                   help="stream a synthetic campaign instead of plotfiles")
    p.add_argument("--steps", type=int, default=8, help="synthetic campaign length")
    p.add_argument("--codec", choices=available_codecs(), default="sz-lr")
    p.add_argument("--eb", type=float, default=1e-3)
    p.add_argument("--mode", choices=("abs", "rel"), default="rel")
    p.add_argument("--fields", default=None, help="comma-separated subset")
    p.add_argument("--exclude-covered", action="store_true")
    p.add_argument("--overwrite", action="store_true")
    p.add_argument("--parallel", choices=EXECUTION_MODES, default="serial")
    p.add_argument("--workers", type=int, default=0, help="0 = one per CPU core")
    p.add_argument(
        "--durability", choices=DURABILITY_MODES, default="close",
        help="fsync placement: 'step' makes every sealed step crash-durable, "
             "'close' (default) syncs the final index commit, 'none' never syncs",
    )
    p.add_argument(
        "--shards", type=int, default=1,
        help="fan the campaign across N shard files behind an RPHM manifest "
             "(steps assigned round-robin; -o names the manifest)",
    )
    p.set_defaults(fn=_cmd_stream)

    p = sub.add_parser(
        "serve",
        help="serve selective (step, level, field, patch) reads from a "
             ".rph2s series / RPHM campaign / .rprh snapshot over TCP "
             "(JSON-line protocol; see repro.serve.TCPClient)",
    )
    p.add_argument("input", type=Path)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="0 (default) binds an ephemeral port; the bound "
                        "address is printed on stdout")
    p.add_argument("--cache-bytes", type=int, default=64 << 20,
                   help="LRU budget for decoded patches + catalogs "
                        "(default 64 MiB; 0 disables caching)")
    p.add_argument("--workers", type=int, default=2,
                   help="decode worker threads (0 = one per CPU core)")
    p.add_argument("--recover", action="store_true",
                   help="serve the fully-sealed steps of a crash-"
                        "interrupted series (read-only recovery scan)")
    p.add_argument("--idle-timeout", type=float, default=300.0,
                   help="drop a connection idle for this many seconds "
                        "between requests (default 300; 0 = never)")
    p.add_argument("--max-connections", type=int, default=0,
                   help="refuse connections over this cap with a typed "
                        "Overloaded reply (default 0 = unlimited)")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "recover",
        help="salvage an .rph2s series whose footer/index was lost to a "
             "killed writer (dry-run report; --commit rewrites the index)",
    )
    p.add_argument("input", type=Path)
    p.add_argument("--commit", action="store_true",
                   help="truncate trailing garbage and append a fresh "
                        "timestep index + footer")
    p.add_argument("-o", "--output", type=Path, default=None,
                   help="with --commit, write the repaired series here and "
                        "leave the damaged original untouched")
    p.set_defaults(fn=_cmd_recover)

    p = sub.add_parser(
        "scrub",
        help="verify every checksum an .rph2/.rph2s/.rphm/.rpxp file "
             "carries (snapshots, series, sharded campaigns, parity); "
             "exits 1 when damage is found",
    )
    p.add_argument("input", type=Path)
    p.set_defaults(fn=_cmd_scrub)

    p = sub.add_parser(
        "repair",
        help="reconstruct a parity-carrying campaign's damaged or missing "
             "shard segments from the surviving shards (dry-run report; "
             "--commit rewrites segments, indexes, and manifest)",
    )
    p.add_argument("input", type=Path)
    p.add_argument("--commit", action="store_true",
                   help="write the reconstructions back: rewrite damaged "
                        "shards in place, recommit their indexes, and "
                        "refresh the manifest and stale parity")
    p.set_defaults(fn=_cmd_repair)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
