"""Integer Lorenzo transform (dual-quant formulation).

The classic SZ Lorenzo predictor estimates each value from its already
*reconstructed* lower neighbors, which forces a sequential scan. The cuSZ
"dual-quant" reformulation snaps data to the quantization lattice first
(:func:`repro.compression.quantizer.prequantize`) and then applies the
Lorenzo *transform* to the resulting integers. Because the n-D Lorenzo
operator factors into a first difference along each axis,

``L = prod_d (1 - S_d^{-1})``,

the transform and its inverse (a cumulative sum per axis) are exact in
int64 and fully vectorized, while the overall pipeline keeps the
``|x - x'| <= eb`` guarantee from pre-quantization alone.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CompressionError

__all__ = ["lorenzo_forward", "lorenzo_inverse"]


def lorenzo_forward(
    q: np.ndarray, axes: tuple[int, ...] | None = None, overwrite: bool = False
) -> np.ndarray:
    """Apply the n-D Lorenzo transform to an integer array.

    Equivalent to replacing each value by its Lorenzo prediction residual
    (with zero padding outside the array). Exact for int64 input.

    Parameters
    ----------
    q:
        Integer array.
    axes:
        Axes to transform (default: all). Batched use passes the spatial
        axes only, leaving a leading batch axis untouched.
    overwrite:
        Transform an int64 input in place instead of copying it first —
        for callers (the codec hot paths) whose ``q`` is a throwaway
        prequantization buffer.
    """
    arr = np.asarray(q)
    if arr.dtype.kind not in "iu":
        raise CompressionError(f"Lorenzo transform expects integers, got {arr.dtype}")
    if overwrite and arr.dtype == np.int64:
        out = arr
    else:
        out = arr.astype(np.int64, copy=True)
    for axis in axes if axes is not None else range(out.ndim):
        # First difference along `axis` with an implicit leading zero.
        view = np.moveaxis(out, axis, 0)
        view[1:] -= view[:-1].copy()
    return out


def lorenzo_inverse(d: np.ndarray, axes: tuple[int, ...] | None = None) -> np.ndarray:
    """Invert :func:`lorenzo_forward` (cumulative sum per axis)."""
    arr = np.asarray(d)
    if arr.dtype.kind not in "iu":
        raise CompressionError(f"Lorenzo inverse expects integers, got {arr.dtype}")
    out = arr.astype(np.int64, copy=True)
    axis_list = list(axes) if axes is not None else list(range(out.ndim))
    for axis in reversed(axis_list):
        np.cumsum(out, axis=axis, out=out)
    return out
