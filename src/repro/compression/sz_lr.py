"""SZ-L/R: block-based codec with Lorenzo + linear-regression predictors.

This is the paper's first compressor (§3.3): the input is partitioned into
6x6x6 blocks and each block independently picks the better of

* an (integer, dual-quant) **Lorenzo** predictor — good at rough, irregular
  data because it adapts per cell, and
* a **linear regression** plane fit — good at locally smooth data.

Blocks never read across their boundary, which is what yields both the
random-access property the paper highlights and the *block-wise artifacts*
it analyzes in Figures 9/11. Streams: per-block mode bits, per-block DC /
coefficients, and one Huffman+DEFLATE-coded quantization-code array.

Besides the per-array :meth:`SZLR.compress`, the codec implements the
**level-batched fused path** (:meth:`SZLR.compress_batch`): a whole group
of same-shape patches runs prediction, quantization, and predictor
selection as *one* batched kernel invocation, and their quantization codes
are entropy-coded against one shared canonical Huffman codebook — the
per-patch tree build, codebook bytes, and most per-call NumPy dispatch are
paid once per group (see ``docs/architecture.md``).
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import (
    GROUPED_STAGE,
    RAW_SECTION_LEVEL,
    BatchResult,
    Compressor,
    SharedEntropy,
    StreamReader,
    StreamWriter,
    check_backend_level,
    check_entropy_params,
    decode_codes,
    encode_codes,
    encode_codes_batch,
)
from repro.compression.lorenzo import lorenzo_forward, lorenzo_inverse
from repro.compression.lossless import compress_bytes, decompress_bytes, pack_ints, unpack_ints
from repro.compression.quantizer import prequantize, quantize_residuals
from repro.compression import regression as reg
from repro.errors import CompressionError, DecompressionError
from repro.util.timer import StageTimes

__all__ = ["SZLR", "MODE_LORENZO", "MODE_REGRESSION"]

MODE_LORENZO = 0
MODE_REGRESSION = 1


class SZLR(Compressor):
    """Block-based SZ with per-block Lorenzo/regression selection.

    Parameters
    ----------
    block_size:
        Edge length of the cubic blocks (paper uses 6).
    entropy:
        ``"huffman"`` (canonical Huffman then DEFLATE, the SZ pipeline) or
        ``"deflate"`` (skip Huffman; ablation baseline).
    backend:
        Lossless backend for all byte sections.
    predictor:
        ``"auto"`` (per-block selection), ``"lorenzo"`` or ``"regression"``
        to force one path (ablation).
    k_streams:
        Huffman interleave width: ``"auto"`` (scales with the input; the
        vectorized-decode default) or an explicit stream count.
    backend_level:
        Lossless-backend compression level for every section (0-9), or
        ``None`` for the measured per-section defaults: already-Huffman-
        coded codes sections take the cheap
        :data:`~repro.compression.base.HUFFMAN_SECTION_LEVEL`, raw
        sections the backend's usual
        :data:`~repro.compression.base.RAW_SECTION_LEVEL`.
    """

    name = "sz-lr"
    supports_batch = True

    def __init__(
        self,
        block_size: int | str = 6,
        entropy: str = "huffman",
        backend: str = "deflate",
        predictor: str = "auto",
        k_streams: int | str = "auto",
        backend_level: int | None = None,
    ):
        if block_size == "auto":
            pass  # resolved per array at compression time
        elif not isinstance(block_size, int) or block_size < 2:
            raise CompressionError(f"block_size must be >= 2 or 'auto', got {block_size}")
        check_entropy_params(entropy, k_streams)
        check_backend_level(backend_level)
        if predictor not in ("auto", "lorenzo", "regression"):
            raise CompressionError(f"unknown predictor {predictor!r}")
        self.block_size = block_size if block_size == "auto" else int(block_size)
        self.entropy = entropy
        self.backend = backend
        self.predictor = predictor
        self.k_streams = k_streams if k_streams == "auto" else int(k_streams)
        self.backend_level = backend_level
        self.last_stage_times: StageTimes = StageTimes()

    def _raw_level(self) -> int:
        """Backend level for non-entropy sections."""
        return RAW_SECTION_LEVEL if self.backend_level is None else self.backend_level

    # ------------------------------------------------------------------
    # Compression
    # ------------------------------------------------------------------
    def compress(self, data: np.ndarray, error_bound: float, mode: str = "abs") -> bytes:
        orig_dtype = np.asarray(data).dtype
        arr = self._validate_input(data)
        eb = self.resolve_error_bound(arr, error_bound, mode)
        bs = self._resolve_block_size(arr.shape)
        ndim = arr.ndim
        times = StageTimes()

        with times.measure("blockify"):
            blocks, padded_shape = reg.blockify(arr, bs)
        n_blocks = blocks.shape[0]
        block_cells = bs**ndim

        with times.measure("lorenzo"):
            q = prequantize(blocks.reshape((n_blocks,) + (bs,) * ndim), eb)
            lor = lorenzo_forward(q, axes=tuple(range(1, ndim + 1)), overwrite=True)
            lor = lor.reshape(n_blocks, block_cells)
            dc_all = lor[:, 0].copy()
            lor[:, 0] = 0

        with times.measure("regression"):
            coefs = reg.fit_blocks(blocks, bs, ndim)
            qcoefs = reg.quantize_coefficients(coefs, eb, bs, ndim)
            dqcoefs = reg.dequantize_coefficients(qcoefs, eb, bs, ndim)
            preds = reg.predict_blocks(dqcoefs, bs, ndim)
            res = quantize_residuals(blocks, preds, eb)

        with times.measure("select"):
            modes = self._select_modes(lor, res)
            codes = np.where((modes == MODE_LORENZO)[:, None], lor, res)

        with times.measure("entropy"):
            code_blob, entropy_used = encode_codes(
                codes.ravel(), self.entropy, self.backend, self.k_streams,
                level=self.backend_level,
            )

        with times.measure("pack"):
            writer = StreamWriter(
                self.name,
                arr.shape,
                orig_dtype,
                {
                    "eb": eb,
                    "block_size": bs,
                    "padded_shape": list(padded_shape),
                    "entropy": entropy_used,
                    "k_streams": self.k_streams,
                    "predictor": self.predictor,
                },
            )
            lvl = self._raw_level()
            writer.add_section(
                "modes", compress_bytes(modes.astype(np.uint8).tobytes(), self.backend, lvl)
            )
            lor_sel = modes == MODE_LORENZO
            writer.add_section("dc", pack_ints(dc_all[lor_sel], self.backend, lvl))
            writer.add_section("coefs", pack_ints(qcoefs[~lor_sel].ravel(), self.backend, lvl))
            writer.add_section("codes", code_blob)
            blob = writer.tobytes()
        self.last_stage_times = times
        return blob

    def compress_batch(self, data: np.ndarray, error_bound, mode: str = "abs") -> BatchResult:
        """Compress a ``(n_patches, *shape)`` group as one fused kernel run.

        Every stage that :meth:`compress` runs per patch — blockify,
        dual-quant Lorenzo, the regression fit, predictor selection —
        executes once over the whole group, and the quantization codes of
        all patches are pooled into **one** shared canonical Huffman
        codebook (see :func:`repro.compression.base.encode_codes_batch`).
        ``error_bound``/``mode`` follow
        :meth:`~repro.compression.base.Compressor.resolve_error_bounds`:
        a scalar spec is resolved per patch, or a pre-resolved
        ``(n_patches,)`` absolute-bound array is used as-is.

        Returns a :class:`~repro.compression.base.BatchResult`; member
        streams record :data:`~repro.compression.base.GROUPED_STAGE` and
        decode through :meth:`decompress` with their group's
        :class:`~repro.compression.base.SharedEntropy`.
        """
        orig_dtype = np.asarray(data).dtype
        arr = self._validate_batch(data)
        n_patches = arr.shape[0]
        shape = arr.shape[1:]
        ebs = self.resolve_error_bounds(arr, error_bound, mode)
        bs = self._resolve_block_size(shape)
        ndim = len(shape)
        times = StageTimes()

        with times.measure("blockify"):
            blocks, padded_shape = reg.blockify(arr, bs, batch=True)
        block_cells = bs**ndim
        per_patch = blocks.shape[0] // n_patches
        eb_blocks = np.repeat(ebs, per_patch)

        with times.measure("lorenzo"):
            q = prequantize(
                blocks.reshape((-1,) + (bs,) * ndim),
                eb_blocks.reshape((-1,) + (1,) * ndim),
            )
            lor = lorenzo_forward(q, axes=tuple(range(1, ndim + 1)), overwrite=True)
            lor = lor.reshape(-1, block_cells)
            dc_all = lor[:, 0].copy()
            lor[:, 0] = 0

        with times.measure("regression"):
            coefs = reg.fit_blocks(blocks, bs, ndim)
            qcoefs = reg.quantize_coefficients(coefs, eb_blocks, bs, ndim)
            dqcoefs = reg.dequantize_coefficients(qcoefs, eb_blocks, bs, ndim)
            preds = reg.predict_blocks(dqcoefs, bs, ndim)
            res = quantize_residuals(blocks, preds, eb_blocks[:, None])

        with times.measure("select"):
            modes = self._select_modes(lor, res)
            codes = np.where((modes == MODE_LORENZO)[:, None], lor, res)

        with times.measure("entropy"):
            codebook, payloads, entropy_used = encode_codes_batch(
                codes.reshape(n_patches, per_patch * block_cells),
                self.entropy, self.backend, self.k_streams,
                level=self.backend_level,
            )

        with times.measure("pack"):
            lvl = self._raw_level()
            streams: list[bytes] = []
            for i in range(n_patches):
                params = {
                    "eb": float(ebs[i]),
                    "block_size": bs,
                    "padded_shape": list(padded_shape),
                    "entropy": entropy_used,
                    "k_streams": self.k_streams,
                    "predictor": self.predictor,
                }
                if entropy_used == GROUPED_STAGE:
                    params["group_member"] = i
                writer = StreamWriter(self.name, shape, orig_dtype, params)
                rows = slice(i * per_patch, (i + 1) * per_patch)
                m = modes[rows]
                lor_sel = m == MODE_LORENZO
                writer.add_section(
                    "modes", compress_bytes(m.astype(np.uint8).tobytes(), self.backend, lvl)
                )
                writer.add_section("dc", pack_ints(dc_all[rows][lor_sel], self.backend, lvl))
                writer.add_section(
                    "coefs", pack_ints(qcoefs[rows][~lor_sel].ravel(), self.backend, lvl)
                )
                if entropy_used != GROUPED_STAGE:
                    writer.add_section("codes", payloads[i])
                streams.append(writer.tobytes())
        self.last_stage_times = times
        if entropy_used != GROUPED_STAGE:
            return BatchResult(None, [], streams)
        return BatchResult(codebook, payloads, streams)

    def _resolve_block_size(self, shape: tuple[int, ...]) -> int:
        """Concrete block edge for this array.

        ``"auto"`` picks the candidate that minimizes edge-padding waste
        (AMR patches are typically multiples of the blocking factor 4/8,
        where a fixed 6-cube pads by up to 2x; reference SZ codes partial
        edge blocks natively, and this emulates that efficiency). Ties go
        to the larger block, which amortizes per-block overhead.
        """
        if self.block_size != "auto":
            return int(self.block_size)
        best_bs = 6
        best_cost = None
        for bs in (4, 5, 6, 8):
            padded = 1
            for s in shape:
                padded *= ((s + bs - 1) // bs) * bs
            cost = (padded, -bs)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_bs = bs
        return best_bs

    def _select_modes(self, lor_codes: np.ndarray, reg_codes: np.ndarray) -> np.ndarray:
        """Per-block predictor choice by estimated coded size."""
        if self.predictor == "lorenzo":
            return np.full(lor_codes.shape[0], MODE_LORENZO, dtype=np.uint8)
        if self.predictor == "regression":
            return np.full(lor_codes.shape[0], MODE_REGRESSION, dtype=np.uint8)
        # log2(1+|code|) approximates the Huffman cost of each code; the
        # regression path also pays for its 1+ndim coefficients.
        lor_cost = np.log2(1.0 + np.abs(lor_codes)).sum(axis=1)
        reg_cost = np.log2(1.0 + np.abs(reg_codes)).sum(axis=1) + 8.0
        return np.where(lor_cost <= reg_cost, MODE_LORENZO, MODE_REGRESSION).astype(np.uint8)

    # ------------------------------------------------------------------
    # Decompression
    # ------------------------------------------------------------------
    def decompress(self, blob: bytes, shared: SharedEntropy | None = None) -> np.ndarray:
        """Reconstruct the array; grouped streams additionally need their
        group's :class:`~repro.compression.base.SharedEntropy` (the
        container reader supplies it)."""
        reader = StreamReader(blob)
        self._check_stream(reader)
        params = reader.params
        eb = float(params["eb"])
        bs = int(params["block_size"])
        shape = reader.shape
        padded_shape = tuple(params["padded_shape"])
        ndim = len(shape)
        block_cells = bs**ndim

        modes = np.frombuffer(decompress_bytes(reader.section("modes")), dtype=np.uint8)
        n_blocks = modes.size
        dc = unpack_ints(reader.section("dc"))
        qcoefs = unpack_ints(reader.section("coefs")).reshape(-1, 1 + ndim)
        codes = self._decode_code_section(reader, params, shared)
        if codes.size != n_blocks * block_cells:
            raise DecompressionError(
                f"code stream has {codes.size} entries, expected {n_blocks * block_cells}"
            )
        codes = codes.reshape(n_blocks, block_cells)

        out_blocks = np.empty((n_blocks, block_cells), dtype=np.float64)
        lor_sel = modes == MODE_LORENZO
        if lor_sel.any():
            lor_codes = codes[lor_sel].copy()
            lor_codes[:, 0] = dc
            q = lorenzo_inverse(lor_codes.reshape((-1,) + (bs,) * ndim), axes=tuple(range(1, ndim + 1)))
            out_blocks[lor_sel] = q.reshape(-1, block_cells).astype(np.float64) * (2.0 * eb)
        if (~lor_sel).any():
            dqcoefs = reg.dequantize_coefficients(qcoefs, eb, bs, ndim)
            preds = reg.predict_blocks(dqcoefs, bs, ndim)
            out_blocks[~lor_sel] = preds + (2.0 * eb) * codes[~lor_sel]
        arr = reg.unblockify(out_blocks, bs, padded_shape, shape)
        return arr.astype(reader.dtype, copy=False)

    @staticmethod
    def _decode_code_section(
        reader: StreamReader, params: dict, shared: SharedEntropy | None
    ) -> np.ndarray:
        """Decode the quantization codes, from the stream's own codes
        section or — for grouped streams — from the shared group payload."""
        entropy = params["entropy"]
        section = None if entropy == GROUPED_STAGE else reader.section("codes")
        return decode_codes(section, entropy, shared)

    # ------------------------------------------------------------------
    # Random access (paper §3.3: no dependency between blocks)
    # ------------------------------------------------------------------
    def decompress_block(
        self, blob: bytes, block_index: int, shared: SharedEntropy | None = None
    ) -> np.ndarray:
        """Decode a single ``block_size``-cube without assembling the array.

        The entropy stream is decoded once per call; for bulk random access
        decode the full array instead. Demonstrates the independence the
        paper credits SZ-L/R with (partial visualization support).

        For a grouped stream this routes through the *owning patch's*
        payload extent only (``shared.payload``): the symbols decoded are
        one patch's codes, never the whole group's — the per-patch extents
        in the group section are what keep block random access O(patch).
        """
        reader = StreamReader(blob)
        self._check_stream(reader)
        params = reader.params
        eb = float(params["eb"])
        bs = int(params["block_size"])
        ndim = len(reader.shape)
        block_cells = bs**ndim
        modes = np.frombuffer(decompress_bytes(reader.section("modes")), dtype=np.uint8)
        if not 0 <= block_index < modes.size:
            raise DecompressionError(f"block index {block_index} out of range [0, {modes.size})")
        codes = self._decode_code_section(reader, params, shared)
        block_codes = codes[block_index * block_cells : (block_index + 1) * block_cells].copy()
        if modes[block_index] == MODE_LORENZO:
            dc = unpack_ints(reader.section("dc"))
            rank = int(np.count_nonzero(modes[:block_index] == MODE_LORENZO))
            block_codes[0] = dc[rank]
            q = lorenzo_inverse(block_codes.reshape((bs,) * ndim))
            return q.astype(np.float64) * (2.0 * eb)
        qcoefs = unpack_ints(reader.section("coefs")).reshape(-1, 1 + ndim)
        rank = int(np.count_nonzero(modes[:block_index] == MODE_REGRESSION))
        dq = reg.dequantize_coefficients(qcoefs[rank : rank + 1], eb, bs, ndim)
        pred = reg.predict_blocks(dq, bs, ndim)[0]
        return (pred + (2.0 * eb) * block_codes).reshape((bs,) * ndim)
