"""SZ-L/R: block-based codec with Lorenzo + linear-regression predictors.

This is the paper's first compressor (§3.3): the input is partitioned into
6x6x6 blocks and each block independently picks the better of

* an (integer, dual-quant) **Lorenzo** predictor — good at rough, irregular
  data because it adapts per cell, and
* a **linear regression** plane fit — good at locally smooth data.

Blocks never read across their boundary, which is what yields both the
random-access property the paper highlights and the *block-wise artifacts*
it analyzes in Figures 9/11. Streams: per-block mode bits, per-block DC /
coefficients, and one Huffman+DEFLATE-coded quantization-code array.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import (
    Compressor,
    StreamReader,
    StreamWriter,
    check_entropy_params,
    decode_codes,
    encode_codes,
)
from repro.compression.lorenzo import lorenzo_forward, lorenzo_inverse
from repro.compression.lossless import compress_bytes, decompress_bytes, pack_ints, unpack_ints
from repro.compression.quantizer import prequantize, quantize_residuals
from repro.compression import regression as reg
from repro.errors import CompressionError, DecompressionError
from repro.util.timer import StageTimes

__all__ = ["SZLR", "MODE_LORENZO", "MODE_REGRESSION"]

MODE_LORENZO = 0
MODE_REGRESSION = 1


class SZLR(Compressor):
    """Block-based SZ with per-block Lorenzo/regression selection.

    Parameters
    ----------
    block_size:
        Edge length of the cubic blocks (paper uses 6).
    entropy:
        ``"huffman"`` (canonical Huffman then DEFLATE, the SZ pipeline) or
        ``"deflate"`` (skip Huffman; ablation baseline).
    backend:
        Lossless backend for all byte sections.
    predictor:
        ``"auto"`` (per-block selection), ``"lorenzo"`` or ``"regression"``
        to force one path (ablation).
    k_streams:
        Huffman interleave width: ``"auto"`` (scales with the input; the
        vectorized-decode default) or an explicit stream count.
    """

    name = "sz-lr"

    def __init__(
        self,
        block_size: int | str = 6,
        entropy: str = "huffman",
        backend: str = "deflate",
        predictor: str = "auto",
        k_streams: int | str = "auto",
    ):
        if block_size == "auto":
            pass  # resolved per array at compression time
        elif not isinstance(block_size, int) or block_size < 2:
            raise CompressionError(f"block_size must be >= 2 or 'auto', got {block_size}")
        check_entropy_params(entropy, k_streams)
        if predictor not in ("auto", "lorenzo", "regression"):
            raise CompressionError(f"unknown predictor {predictor!r}")
        self.block_size = block_size if block_size == "auto" else int(block_size)
        self.entropy = entropy
        self.backend = backend
        self.predictor = predictor
        self.k_streams = k_streams if k_streams == "auto" else int(k_streams)
        self.last_stage_times: StageTimes = StageTimes()

    # ------------------------------------------------------------------
    # Compression
    # ------------------------------------------------------------------
    def compress(self, data: np.ndarray, error_bound: float, mode: str = "abs") -> bytes:
        orig_dtype = np.asarray(data).dtype
        arr = self._validate_input(data)
        eb = self.resolve_error_bound(arr, error_bound, mode)
        bs = self._resolve_block_size(arr.shape)
        ndim = arr.ndim
        times = StageTimes()

        with times.measure("blockify"):
            blocks, padded_shape = reg.blockify(arr, bs)
        n_blocks = blocks.shape[0]
        block_cells = bs**ndim

        with times.measure("lorenzo"):
            q = prequantize(blocks.reshape((n_blocks,) + (bs,) * ndim), eb)
            lor = lorenzo_forward(q.reshape((-1,) + (bs,) * ndim), axes=tuple(range(1, ndim + 1)))
            lor = lor.reshape(n_blocks, block_cells)
            dc_all = lor[:, 0].copy()
            lor[:, 0] = 0

        with times.measure("regression"):
            coefs = reg.fit_blocks(blocks, bs, ndim)
            qcoefs = reg.quantize_coefficients(coefs, eb, bs, ndim)
            dqcoefs = reg.dequantize_coefficients(qcoefs, eb, bs, ndim)
            preds = reg.predict_blocks(dqcoefs, bs, ndim)
            res = quantize_residuals(blocks, preds, eb)

        with times.measure("select"):
            modes = self._select_modes(lor, res)
            codes = np.where((modes == MODE_LORENZO)[:, None], lor, res)

        with times.measure("entropy"):
            code_blob, entropy_used = encode_codes(
                codes.ravel(), self.entropy, self.backend, self.k_streams
            )

        with times.measure("pack"):
            writer = StreamWriter(
                self.name,
                arr.shape,
                orig_dtype,
                {
                    "eb": eb,
                    "block_size": bs,
                    "padded_shape": list(padded_shape),
                    "entropy": entropy_used,
                    "k_streams": self.k_streams,
                    "predictor": self.predictor,
                },
            )
            writer.add_section("modes", compress_bytes(modes.astype(np.uint8).tobytes(), self.backend))
            lor_sel = modes == MODE_LORENZO
            writer.add_section("dc", pack_ints(dc_all[lor_sel], self.backend))
            writer.add_section("coefs", pack_ints(qcoefs[~lor_sel].ravel(), self.backend))
            writer.add_section("codes", code_blob)
            blob = writer.tobytes()
        self.last_stage_times = times
        return blob

    def _resolve_block_size(self, shape: tuple[int, ...]) -> int:
        """Concrete block edge for this array.

        ``"auto"`` picks the candidate that minimizes edge-padding waste
        (AMR patches are typically multiples of the blocking factor 4/8,
        where a fixed 6-cube pads by up to 2x; reference SZ codes partial
        edge blocks natively, and this emulates that efficiency). Ties go
        to the larger block, which amortizes per-block overhead.
        """
        if self.block_size != "auto":
            return int(self.block_size)
        best_bs = 6
        best_cost = None
        for bs in (4, 5, 6, 8):
            padded = 1
            for s in shape:
                padded *= ((s + bs - 1) // bs) * bs
            cost = (padded, -bs)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_bs = bs
        return best_bs

    def _select_modes(self, lor_codes: np.ndarray, reg_codes: np.ndarray) -> np.ndarray:
        """Per-block predictor choice by estimated coded size."""
        if self.predictor == "lorenzo":
            return np.full(lor_codes.shape[0], MODE_LORENZO, dtype=np.uint8)
        if self.predictor == "regression":
            return np.full(lor_codes.shape[0], MODE_REGRESSION, dtype=np.uint8)
        # log2(1+|code|) approximates the Huffman cost of each code; the
        # regression path also pays for its 1+ndim coefficients.
        lor_cost = np.log2(1.0 + np.abs(lor_codes)).sum(axis=1)
        reg_cost = np.log2(1.0 + np.abs(reg_codes)).sum(axis=1) + 8.0
        return np.where(lor_cost <= reg_cost, MODE_LORENZO, MODE_REGRESSION).astype(np.uint8)

    # ------------------------------------------------------------------
    # Decompression
    # ------------------------------------------------------------------
    def decompress(self, blob: bytes) -> np.ndarray:
        reader = StreamReader(blob)
        self._check_stream(reader)
        params = reader.params
        eb = float(params["eb"])
        bs = int(params["block_size"])
        shape = reader.shape
        padded_shape = tuple(params["padded_shape"])
        ndim = len(shape)
        block_cells = bs**ndim

        modes = np.frombuffer(decompress_bytes(reader.section("modes")), dtype=np.uint8)
        n_blocks = modes.size
        dc = unpack_ints(reader.section("dc"))
        qcoefs = unpack_ints(reader.section("coefs")).reshape(-1, 1 + ndim)
        codes = decode_codes(reader.section("codes"), params["entropy"])
        if codes.size != n_blocks * block_cells:
            raise DecompressionError(
                f"code stream has {codes.size} entries, expected {n_blocks * block_cells}"
            )
        codes = codes.reshape(n_blocks, block_cells)

        out_blocks = np.empty((n_blocks, block_cells), dtype=np.float64)
        lor_sel = modes == MODE_LORENZO
        if lor_sel.any():
            lor_codes = codes[lor_sel].copy()
            lor_codes[:, 0] = dc
            q = lorenzo_inverse(lor_codes.reshape((-1,) + (bs,) * ndim), axes=tuple(range(1, ndim + 1)))
            out_blocks[lor_sel] = q.reshape(-1, block_cells).astype(np.float64) * (2.0 * eb)
        if (~lor_sel).any():
            dqcoefs = reg.dequantize_coefficients(qcoefs, eb, bs, ndim)
            preds = reg.predict_blocks(dqcoefs, bs, ndim)
            out_blocks[~lor_sel] = preds + (2.0 * eb) * codes[~lor_sel]
        arr = reg.unblockify(out_blocks, bs, padded_shape, shape)
        return arr.astype(reader.dtype, copy=False)

    # ------------------------------------------------------------------
    # Random access (paper §3.3: no dependency between blocks)
    # ------------------------------------------------------------------
    def decompress_block(self, blob: bytes, block_index: int) -> np.ndarray:
        """Decode a single ``block_size``-cube without assembling the array.

        The entropy stream is decoded once per call; for bulk random access
        decode the full array instead. Demonstrates the independence the
        paper credits SZ-L/R with (partial visualization support).
        """
        reader = StreamReader(blob)
        self._check_stream(reader)
        params = reader.params
        eb = float(params["eb"])
        bs = int(params["block_size"])
        ndim = len(reader.shape)
        block_cells = bs**ndim
        modes = np.frombuffer(decompress_bytes(reader.section("modes")), dtype=np.uint8)
        if not 0 <= block_index < modes.size:
            raise DecompressionError(f"block index {block_index} out of range [0, {modes.size})")
        codes = decode_codes(reader.section("codes"), params["entropy"])
        block_codes = codes[block_index * block_cells : (block_index + 1) * block_cells].copy()
        if modes[block_index] == MODE_LORENZO:
            dc = unpack_ints(reader.section("dc"))
            rank = int(np.count_nonzero(modes[:block_index] == MODE_LORENZO))
            block_codes[0] = dc[rank]
            q = lorenzo_inverse(block_codes.reshape((bs,) * ndim))
            return q.astype(np.float64) * (2.0 * eb)
        qcoefs = unpack_ints(reader.section("coefs")).reshape(-1, 1 + ndim)
        rank = int(np.count_nonzero(modes[:block_index] == MODE_REGRESSION))
        dq = reg.dequantize_coefficients(qcoefs[rank : rank + 1], eb, bs, ndim)
        pred = reg.predict_blocks(dq, bs, ndim)[0]
        return (pred + (2.0 * eb) * block_codes).reshape((bs,) * ndim)
