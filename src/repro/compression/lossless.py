"""Lossless byte-stream backend (final stage of SZ-style codecs).

SZ follows its Huffman stage with a general-purpose lossless compressor
(zstd in the reference implementation). Offline we use the standard
library's DEFLATE (zlib) and LZMA, behind a tiny named-backend API so the
entropy-stage ablation bench can swap them.
"""

from __future__ import annotations

import lzma
import struct
import zlib

import numpy as np

from repro.errors import CompressionError, DecompressionError

__all__ = ["compress_bytes", "decompress_bytes", "pack_ints", "unpack_ints", "BACKENDS"]

#: Supported lossless backends.
BACKENDS = ("deflate", "lzma", "none")

_BACKEND_IDS = {name: i for i, name in enumerate(BACKENDS)}
_ID_BACKENDS = {i: name for name, i in _BACKEND_IDS.items()}


def compress_bytes(raw: bytes, backend: str = "deflate", level: int = 6) -> bytes:
    """Losslessly compress ``raw``; output is self-describing (1-byte tag)."""
    if backend not in _BACKEND_IDS:
        raise CompressionError(f"unknown lossless backend {backend!r} (have {BACKENDS})")
    if backend == "deflate":
        body = zlib.compress(raw, level)
    elif backend == "lzma":
        body = lzma.compress(raw, preset=min(level, 9))
    else:
        body = raw
    return struct.pack("<B", _BACKEND_IDS[backend]) + body


def decompress_bytes(blob: bytes) -> bytes:
    """Inverse of :func:`compress_bytes`."""
    if len(blob) < 1:
        raise DecompressionError("empty lossless blob")
    backend = _ID_BACKENDS.get(blob[0])
    body = blob[1:]
    try:
        if backend == "deflate":
            return zlib.decompress(body)
        if backend == "lzma":
            return lzma.decompress(body)
        if backend == "none":
            return body
    except (zlib.error, lzma.LZMAError) as exc:
        raise DecompressionError(f"lossless stage failed: {exc}") from exc
    raise DecompressionError(f"unknown lossless backend id {blob[0]}")


def pack_ints(values: np.ndarray, backend: str = "deflate", level: int = 6) -> bytes:
    """Serialize an integer array (dtype narrowed to the smallest that fits)
    and losslessly compress it at ``level``.

    Arrays already stored in the narrowest fitting dtype are serialized
    without the narrowing copy (``astype(..., copy=False)`` is a no-op
    there), so repeated packing of already-narrow sections is allocation
    free up to the byte serialization itself.
    """
    arr = np.ascontiguousarray(values)
    if arr.dtype.kind not in "iu":
        raise CompressionError(f"pack_ints expects integers, got {arr.dtype}")
    if arr.size:
        lo = int(arr.min())
        hi = int(arr.max())
        for dtype in (np.int8, np.int16, np.int32, np.int64):
            info = np.iinfo(dtype)
            if info.min <= lo and hi <= info.max:
                arr = arr.astype(dtype, copy=False)
                break
    header = struct.pack("<2sQ", arr.dtype.str[-2:].encode(), arr.size)
    return header + compress_bytes(arr.tobytes(), backend, level)


def unpack_ints(blob: bytes) -> np.ndarray:
    """Inverse of :func:`pack_ints` (always returns int64)."""
    if len(blob) < 10:
        raise DecompressionError("truncated integer blob")
    code, size = struct.unpack_from("<2sQ", blob, 0)
    raw = decompress_bytes(blob[10:])
    arr = np.frombuffer(raw, dtype=np.dtype(code.decode()), count=size)
    return arr.astype(np.int64)
