"""zMesh-style 1-D reordering baseline (related work, paper §1).

Luo et al.'s zMesh rearranges AMR data from different refinement levels
into a single 1-D array (exploiting cross-level redundancy) and compresses
that; the paper points out the cost: *"compressing data into a 1D array
restricts the use of higher-dimension compression, leading to a loss of
spatial information"*. Wang et al.'s TAC/AMRIC responded with adaptive 3-D
compression — which is what :mod:`repro.compression.amr_codec` does.

This module implements the zMesh-style alternative so the trade-off is
measurable: patch values are serialized along a locality-preserving Morton
(Z-order) curve, levels are concatenated (coarse first, so co-located
coarse/fine values land near each other for the entropy stage), and the
resulting 1-D stream is compressed with a 1-D SZ codec. The
``bench_ablation_zmesh`` benchmark compares it against per-patch 3-D
compression and reproduces the paper's premise that 3-D wins.
"""

from __future__ import annotations

import numpy as np

from repro.amr.hierarchy import AMRHierarchy
from repro.compression.base import Compressor
from repro.compression.registry import make_codec
from repro.errors import CompressionError

__all__ = ["morton_order", "serialize_hierarchy_1d", "ZMeshLike"]


def morton_order(shape: tuple[int, ...]) -> np.ndarray:
    """Flat indices of ``shape`` visited along a Morton (Z-order) curve.

    Bits of each coordinate are interleaved; works for any (non-power-of-
    two) shape by generating the enclosing power-of-two curve and masking.
    """
    if len(shape) == 0 or any(s <= 0 for s in shape):
        raise CompressionError(f"invalid shape {shape}")
    ndim = len(shape)
    nbits = max(int(np.ceil(np.log2(max(shape)))), 1)
    coords = np.meshgrid(*[np.arange(s, dtype=np.uint64) for s in shape], indexing="ij")
    key = np.zeros(shape, dtype=np.uint64)
    for bit in range(nbits):
        for d, c in enumerate(coords):
            key |= ((c >> np.uint64(bit)) & np.uint64(1)) << np.uint64(bit * ndim + d)
    return np.argsort(key.ravel(), kind="stable")


def serialize_hierarchy_1d(
    hierarchy: AMRHierarchy, field: str
) -> tuple[np.ndarray, list[tuple[int, int, np.ndarray]]]:
    """Serialize one field of a hierarchy into a Morton-ordered 1-D array.

    Returns ``(flat, layout)`` where ``layout`` records, per patch,
    ``(level, patch_index, morton_permutation)`` so
    :func:`deserialize <ZMeshLike.decompress_hierarchy>` can undo it.
    """
    chunks = []
    layout = []
    for lev in hierarchy:
        for p_idx, patch in enumerate(lev.patches(field)):
            order = morton_order(patch.box.shape)
            chunks.append(patch.data.ravel()[order])
            layout.append((lev.index, p_idx, order))
    return np.concatenate(chunks), layout


class ZMeshLike:
    """1-D reordering AMR compressor (zMesh-style baseline).

    Parameters
    ----------
    codec:
        The 1-D backend codec name (``"sz-lr"`` degrades to 1-D blocks;
        ``"sz-interp"`` does 1-D interpolation).
    k_streams:
        Huffman interleave width forwarded to the backend codec
        (``"auto"`` scales with the input for the vectorized decode).
    """

    name = "zmesh-like"

    def __init__(self, codec: str = "sz-lr", k_streams: int | str = "auto"):
        self._backend = make_codec(codec, k_streams=k_streams)

    def compress_hierarchy(
        self, hierarchy: AMRHierarchy, field: str, error_bound: float, mode: str = "rel"
    ) -> bytes:
        """Compress ``field`` of the whole hierarchy as one 1-D stream."""
        flat, _ = serialize_hierarchy_1d(hierarchy, field)
        eb_abs = Compressor.resolve_error_bound(flat, error_bound, mode)
        return self._backend.compress(flat, eb_abs, mode="abs")

    def decompress_hierarchy(
        self, blob: bytes, template: AMRHierarchy, field: str
    ) -> AMRHierarchy:
        """Rebuild a hierarchy (all other fields copied from the template)."""
        flat = self._backend.decompress(blob)
        out = template.map_fields(lambda lev, name, d: d)  # deep copy
        pos = 0
        for lev in out:
            for patch in lev.patches(field):
                order = morton_order(patch.box.shape)
                n = patch.data.size
                chunk = flat[pos : pos + n]
                pos += n
                restored = np.empty(n, dtype=np.float64)
                restored[order] = chunk
                patch.data[...] = restored.reshape(patch.box.shape)
        if pos != flat.size:
            raise CompressionError("1-D stream length does not match hierarchy")
        return out
