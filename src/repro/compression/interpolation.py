"""Multi-level spline-interpolation predictor (the SZ-Interp engine).

Implements the dynamic-interpolation scheme of Zhao et al. (ICDE 2021) as
used by SZ3 and evaluated in the paper: starting from an anchor lattice of
stride ``2**L``, each level halves the stride; new points are predicted by
cubic (falling back to linear/nearest near boundaries) interpolation along
one axis at a time from *already reconstructed* points. Because every
prediction at a level depends only on values finalized at coarser levels or
earlier axis passes, each pass is one vectorized slicing expression — no
per-element loop.

The traversal order is a pure function of the array shape, so the
compressor and decompressor iterate identically; the compressor quantizes
``value - prediction`` while the decompressor adds the decoded correction.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["anchor_stride", "traversal", "predict_axis", "InterpPlan"]


def anchor_stride(shape: tuple[int, ...]) -> int:
    """Anchor-lattice stride: smallest power of two >= every dimension,
    capped at 64 so anchor storage stays negligible for small arrays."""
    longest = max(shape)
    s = 1
    while s < longest:
        s *= 2
    return min(s, 64)


class InterpPlan:
    """Deterministic traversal plan shared by encoder and decoder."""

    def __init__(self, shape: tuple[int, ...]):
        self.shape = tuple(int(s) for s in shape)
        self.stride = anchor_stride(self.shape)

    def levels(self) -> Iterator[tuple[int, int]]:
        """Yield ``(stride, half)`` pairs from coarse to fine."""
        s = self.stride
        while s >= 2:
            yield s, s // 2
            s //= 2

    def anchor_slices(self) -> tuple[slice, ...]:
        """Slices selecting the anchor lattice."""
        return tuple(slice(0, None, self.stride) for _ in self.shape)

    def target_grid(self, level_stride: int, axis: int) -> tuple[np.ndarray, ...]:
        """Open index grids of the points predicted in pass ``axis`` of the
        level with stride ``level_stride``.

        Along ``axis`` the new points sit at ``half, half+stride, ...``;
        axes before ``axis`` are already refined to ``half`` spacing; axes
        after it are still at ``stride`` spacing.
        """
        half = level_stride // 2
        grids = []
        for d, n in enumerate(self.shape):
            if d == axis:
                idx = np.arange(half, n, level_stride)
            elif d < axis:
                idx = np.arange(0, n, half)
            else:
                idx = np.arange(0, n, level_stride)
            grids.append(idx)
        return np.ix_(*grids)


def predict_axis(recon: np.ndarray, axis: int, targets: np.ndarray, half: int) -> np.ndarray:
    """Predict values at 1-D positions ``targets`` along ``axis``.

    ``recon`` holds reconstructed values at the surrounding knots (spacing
    ``2 * half`` along ``axis``). Cubic where all four knots exist, linear
    where both inner knots exist, otherwise nearest-left.

    Returns an array broadcastable to the target grid: the ``axis``
    dimension has ``targets.size`` entries, other dimensions keep the
    *knot-lattice* sampling the caller arranged.
    """
    n = recon.shape[axis]
    t = np.asarray(targets)
    l1 = t - half
    r1 = t + half
    l3 = t - 3 * half
    r3 = t + 3 * half
    has_r1 = r1 <= n - 1
    has_cubic = (l3 >= 0) & (r3 <= n - 1) & has_r1

    def take(idx: np.ndarray) -> np.ndarray:
        return np.take(recon, np.clip(idx, 0, n - 1), axis=axis)

    f_l1 = take(l1)
    f_r1 = take(r1)
    f_l3 = take(l3)
    f_r3 = take(r3)
    linear = 0.5 * (f_l1 + f_r1)
    cubic = (-f_l3 + 9.0 * f_l1 + 9.0 * f_r1 - f_r3) / 16.0
    # Broadcast the 1-D masks along `axis`.
    shape = [1] * recon.ndim
    shape[axis] = t.size
    has_r1b = has_r1.reshape(shape)
    has_cubicb = has_cubic.reshape(shape)
    pred = np.where(has_cubicb, cubic, np.where(has_r1b, linear, f_l1))
    return pred
