"""Error-bounded lossy compression substrate (SZ-style codecs).

Public entry points:

* :class:`repro.compression.sz_lr.SZLR` — block-based Lorenzo/regression
  codec (the paper's SZ-L/R),
* :class:`repro.compression.sz_interp.SZInterp` — global spline
  interpolation codec (the paper's SZ-Interp),
* :class:`repro.compression.zfp_like.ZFPLike` — transform-based baseline,
* :func:`repro.compression.amr_codec.compress_hierarchy` /
  :func:`~repro.compression.amr_codec.decompress_hierarchy` — AMR-aware
  per-patch compression with optional redundant-coarse-data exclusion,
* :func:`repro.compression.amr_codec.decompress_selection` /
  :class:`repro.compression.container.ContainerReader` — random access to
  individual patches of a seekable ``RPH2`` container
  (``docs/container_format.md``).
"""

from repro.compression.base import Compressor, CompressionStats, StreamReader, StreamWriter
from repro.compression.sz_lr import SZLR
from repro.compression.sz_interp import SZInterp
from repro.compression.zfp_like import ZFPLike
from repro.compression.registry import (
    available_codecs,
    codec_accepts,
    codec_supports_batch,
    make_codec,
    register_codec,
    decompress_any,
)
from repro.compression.zmesh_like import ZMeshLike, morton_order, serialize_hierarchy_1d
from repro.compression.container import (
    ContainerReader,
    GroupHandle,
    GroupIndexEntry,
    PatchIndexEntry,
    pack_container,
    pack_group,
    pack_header,
    pack_footer,
    build_index_bytes,
)
from repro.compression.amr_codec import (
    CompressedHierarchy,
    compress_hierarchy,
    decompress_hierarchy,
    decompress_selection,
    resolve_patch_codec,
    average_down,
)

__all__ = [
    "Compressor",
    "CompressionStats",
    "StreamReader",
    "StreamWriter",
    "SZLR",
    "SZInterp",
    "ZFPLike",
    "available_codecs",
    "codec_accepts",
    "codec_supports_batch",
    "make_codec",
    "register_codec",
    "decompress_any",
    "CompressedHierarchy",
    "ContainerReader",
    "GroupHandle",
    "GroupIndexEntry",
    "PatchIndexEntry",
    "pack_container",
    "pack_group",
    "pack_header",
    "pack_footer",
    "build_index_bytes",
    "compress_hierarchy",
    "decompress_hierarchy",
    "decompress_selection",
    "resolve_patch_codec",
    "average_down",
    "ZMeshLike",
    "morton_order",
    "serialize_hierarchy_1d",
]
