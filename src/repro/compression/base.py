"""Compressor interface and self-describing stream container.

Every codec in :mod:`repro.compression` produces a byte stream with a small
framed header (magic, codec name, dtype, shape, parameter JSON) followed by
named binary sections. The container is what makes streams self-describing:
:func:`repro.compression.registry.decompress` can route any blob to the
right codec without out-of-band metadata.

This module also hosts the **shared entropy stage** every SZ-style codec
threads its quantization codes through: canonical Huffman in the K-way
interleaved ``HUF2`` layout (see :mod:`repro.compression.huffman`), with
the DEFLATE fallback for oversized alphabets. Codecs expose the interleave
width as their ``k_streams`` constructor parameter and record it in the
stream params; blobs self-describe their K, so any stream decodes
regardless of the reader's configuration.

Streams are plain buffers end to end: :class:`StreamReader` accepts
``bytes`` *or* a ``memoryview`` (the zero-copy mmap container path) and
hands out section views without copying.
"""

from __future__ import annotations

import json
import struct
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.compression import huffman
from repro.compression.lossless import (
    compress_bytes,
    decompress_bytes,
    pack_ints,
    unpack_ints,
)
from repro.errors import CompressionError, DecompressionError, FormatError

__all__ = [
    "Compressor",
    "StreamWriter",
    "StreamReader",
    "CompressionStats",
    "STREAM_MAGIC",
    "ENTROPY_STAGES",
    "check_entropy_params",
    "encode_codes",
    "decode_codes",
]

#: Entropy stages a codec may select for its quantization codes.
ENTROPY_STAGES = ("huffman", "deflate")


def check_entropy_params(entropy: str, k_streams: int | str = "auto") -> None:
    """Validate codec constructor entropy parameters.

    Construction-time misuse is a :class:`CompressionError` (nothing is
    being decoded yet), shared here so every codec rejects bad ``entropy``
    / ``k_streams`` arguments identically.
    """
    if entropy not in ENTROPY_STAGES:
        raise CompressionError(
            f"entropy must be one of {ENTROPY_STAGES}, got {entropy!r}"
        )
    if k_streams != "auto":
        # Delegate range checking (raises CompressionError on misuse).
        huffman.resolve_k_streams(k_streams, 1)


def encode_codes(
    codes: np.ndarray,
    entropy: str,
    backend: str,
    k_streams: int | str = "auto",
) -> tuple[bytes, str]:
    """Entropy-encode a quantization-code array into a section blob.

    ``"huffman"`` runs the K-way interleaved canonical Huffman stage then
    the lossless backend (the SZ pipeline); alphabets too large to
    Huffman-code fall back to ``"deflate"``. Returns ``(blob, stage)``
    where ``stage`` names the encoding actually used — codecs record it in
    their stream params so :func:`decode_codes` can invert it.
    """
    if entropy == "huffman":
        try:
            return (
                compress_bytes(huffman.encode(codes, k_streams=k_streams), backend),
                "huffman",
            )
        except huffman.HuffmanAlphabetError:
            pass
    return pack_ints(np.ascontiguousarray(codes), backend), "deflate"


def decode_codes(section, entropy: str) -> np.ndarray:
    """Invert :func:`encode_codes` given the recorded stage name."""
    if entropy == "huffman":
        return huffman.decode(decompress_bytes(section))
    if entropy == "deflate":
        return unpack_ints(section)
    raise DecompressionError(f"stream records unknown entropy stage {entropy!r}")

#: Magic prefix of every framed codec stream.
STREAM_MAGIC = b"RPRC"
_MAGIC = STREAM_MAGIC
_VERSION = 1


@dataclass(frozen=True)
class CompressionStats:
    """Summary of one compression run."""

    codec: str
    original_bytes: int
    compressed_bytes: int
    error_bound: float
    stage_seconds: Mapping[str, float]

    @property
    def ratio(self) -> float:
        """Compression ratio (original / compressed)."""
        if self.compressed_bytes == 0:
            raise CompressionError("compressed size is zero")
        return self.original_bytes / self.compressed_bytes

    @property
    def bitrate(self) -> float:
        """Bits per value, assuming float64 input."""
        n_values = self.original_bytes / 8
        return 8.0 * self.compressed_bytes / n_values


class StreamWriter:
    """Builds a framed codec stream: header JSON + named binary sections."""

    def __init__(self, codec: str, shape: tuple[int, ...], dtype: np.dtype, params: dict[str, Any]):
        self._meta: dict[str, Any] = {
            "codec": codec,
            "shape": list(int(s) for s in shape),
            "dtype": np.dtype(dtype).str,
            "params": params,
            "sections": [],
        }
        self._blobs: list[bytes] = []

    def add_section(self, name: str, blob: bytes) -> None:
        """Append a named binary section."""
        self._meta["sections"].append({"name": name, "length": len(blob)})
        self._blobs.append(blob)

    def tobytes(self) -> bytes:
        """Serialize header + sections."""
        header = json.dumps(self._meta, separators=(",", ":")).encode()
        out = bytearray()
        out += _MAGIC
        out += struct.pack("<BI", _VERSION, len(header))
        out += header
        for blob in self._blobs:
            out += blob
        return bytes(out)


class StreamReader:
    """Parses a framed codec stream produced by :class:`StreamWriter`.

    Accepts any byte buffer — ``bytes`` or a ``memoryview`` (e.g. a
    zero-copy patch-stream slice from an mmap-opened container). Sections
    are sliced, not copied, so a ``memoryview`` input stays zero-copy all
    the way into the codec.
    """

    def __init__(self, blob):
        if len(blob) < 9 or bytes(blob[:4]) != _MAGIC:
            raise FormatError("not a repro compressed stream (bad magic)")
        version, header_len = struct.unpack_from("<BI", blob, 4)
        if version != _VERSION:
            raise FormatError(f"unsupported stream version {version}")
        start = 9
        try:
            self._meta = json.loads(bytes(blob[start : start + header_len]).decode())
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise FormatError(f"corrupt stream header: {exc}") from exc
        self._sections: dict[str, Any] = {}
        offset = start + header_len
        for sec in self._meta["sections"]:
            end = offset + sec["length"]
            if end > len(blob):
                raise FormatError(f"stream truncated in section {sec['name']!r}")
            self._sections[sec["name"]] = blob[offset:end]
            offset = end

    @property
    def codec(self) -> str:
        """Codec name recorded in the header."""
        return str(self._meta["codec"])

    @property
    def shape(self) -> tuple[int, ...]:
        """Original array shape."""
        return tuple(self._meta["shape"])

    @property
    def dtype(self) -> np.dtype:
        """Original array dtype."""
        return np.dtype(self._meta["dtype"])

    @property
    def params(self) -> dict[str, Any]:
        """Codec parameters recorded at compression time."""
        return dict(self._meta["params"])

    def section(self, name: str):
        """Fetch a named binary section (``bytes`` or a zero-copy view,
        matching the buffer the reader was constructed over)."""
        try:
            return self._sections[name]
        except KeyError:
            raise FormatError(f"stream has no section {name!r}") from None


class Compressor(ABC):
    """Error-bounded lossy compressor interface.

    Subclasses implement :meth:`compress` / :meth:`decompress` over 1-3 D
    float arrays and must guarantee ``max|x - x'| <= eb`` for the resolved
    absolute error bound.
    """

    #: registry name; subclasses override.
    name: str = "abstract"

    @abstractmethod
    def compress(self, data: np.ndarray, error_bound: float, mode: str = "abs") -> bytes:
        """Compress ``data`` under an error bound.

        Parameters
        ----------
        data:
            1-3 D floating array.
        error_bound:
            Bound value; interpretation depends on ``mode``.
        mode:
            ``"abs"`` — absolute bound; ``"rel"`` — value-range-relative
            bound (``eb_abs = error_bound * (max - min)``), as used
            throughout the paper's evaluation.
        """

    @abstractmethod
    def decompress(self, blob: bytes) -> np.ndarray:
        """Reconstruct the array from a stream produced by this codec."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _validate_input(data: np.ndarray) -> np.ndarray:
        arr = np.ascontiguousarray(data)
        if arr.dtype.kind != "f":
            raise CompressionError(f"only float arrays are supported, got {arr.dtype}")
        if arr.ndim not in (1, 2, 3):
            raise CompressionError(f"only 1-3 D arrays supported, got {arr.ndim}-D")
        if arr.size == 0:
            raise CompressionError("cannot compress an empty array")
        if not np.isfinite(arr).all():
            raise CompressionError("input contains NaN/Inf; mask before compressing")
        return arr.astype(np.float64, copy=False)

    @staticmethod
    def resolve_error_bound(data: np.ndarray, error_bound: float, mode: str) -> float:
        """Convert a (value, mode) pair to an absolute bound."""
        if error_bound <= 0:
            raise CompressionError(f"error bound must be > 0, got {error_bound}")
        if mode == "abs":
            return float(error_bound)
        if mode == "rel":
            value_range = float(np.max(data) - np.min(data))
            if value_range == 0.0:
                # Constant field: any positive bound works; pick the value.
                return float(error_bound)
            return float(error_bound) * value_range
        raise CompressionError(f"unknown error-bound mode {mode!r} (use 'abs' or 'rel')")

    @classmethod
    def _check_stream(cls, reader: StreamReader) -> None:
        if reader.codec != cls.name:
            raise DecompressionError(
                f"stream was produced by codec {reader.codec!r}, not {cls.name!r}"
            )
