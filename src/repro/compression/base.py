"""Compressor interface and self-describing stream container.

Every codec in :mod:`repro.compression` produces a byte stream with a small
framed header (magic, codec name, dtype, shape, parameter JSON) followed by
named binary sections. The container is what makes streams self-describing:
:func:`repro.compression.registry.decompress` can route any blob to the
right codec without out-of-band metadata.

This module also hosts the **shared entropy stage** every SZ-style codec
threads its quantization codes through: canonical Huffman in the K-way
interleaved ``HUF2`` layout (see :mod:`repro.compression.huffman`), with
the DEFLATE fallback for oversized alphabets. Codecs expose the interleave
width as their ``k_streams`` constructor parameter and record it in the
stream params; blobs self-describe their K, so any stream decodes
regardless of the reader's configuration.

Streams are plain buffers end to end: :class:`StreamReader` accepts
``bytes`` *or* a ``memoryview`` (the zero-copy mmap container path) and
hands out section views without copying.
"""

from __future__ import annotations

import json
import struct
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Mapping, NamedTuple

import numpy as np

from repro.compression import huffman
from repro.compression.lossless import (
    compress_bytes,
    decompress_bytes,
    pack_ints,
    unpack_ints,
)
from repro.errors import CompressionError, DecompressionError, FormatError

__all__ = [
    "Compressor",
    "StreamWriter",
    "StreamReader",
    "CompressionStats",
    "STREAM_MAGIC",
    "ENTROPY_STAGES",
    "GROUPED_STAGE",
    "GROUPED_SECTION_BACKEND",
    "BatchResult",
    "SharedEntropy",
    "check_entropy_params",
    "check_backend_level",
    "encode_codes",
    "encode_codes_batch",
    "decode_codes",
]

#: Entropy stages a codec may select for its quantization codes.
ENTROPY_STAGES = ("huffman", "deflate")

#: Recorded stage name of a grouped (shared-codebook) codes section; never
#: selected directly — :func:`encode_codes_batch` emits it.
GROUPED_STAGE = "huffman-grouped"

#: Default DEFLATE level for self-contained ``HUF2`` codes sections.
#: Measured on 16^3-patch SZ-L/R codes: a HUF2 blob deflates to 0.81x at
#: level 1 and 0.81x at level 6 (the win is the compressible alphabet +
#: lengths header and the stream zero padding, and level 1 already
#: captures it), while level 6 costs 10-60% more time — so the historical
#: level-6 default was pure waste here. Raw (non-Huffman) sections keep
#: zlib's default 6, where DEFLATE *is* the entropy coder.
HUFFMAN_SECTION_LEVEL = 1

#: Default DEFLATE level for sections the backend itself entropy-codes.
RAW_SECTION_LEVEL = 6

#: Grouped (``HUFS``) member payloads are pure shared-codebook bitstreams
#: — no alphabet header, no length table — and measured DEFLATE gain on
#: them is ~1.1% for ~18 ms per 256 x 16^3 group (level 1 and level 6
#: alike). The measured-right default is therefore the ``"none"`` backend
#: (a 1-byte tag); setting the codec's ``backend_level`` explicitly opts a
#: group back into its configured backend at that level.
GROUPED_SECTION_BACKEND = "none"


class BatchResult(NamedTuple):
    """Output of a codec's ``compress_batch`` over one group of patches.

    ``codebook`` is the serialized shared Huffman codebook (``HUFB``), or
    ``None`` when the pooled alphabet forced the DEFLATE fallback — then
    ``payloads`` is empty and every stream is self-contained. Otherwise
    ``payloads[i]`` is member ``i``'s entropy payload (backend-compressed
    ``HUFS``) and ``streams[i]`` its codec stream *without* a codes
    section (params record :data:`GROUPED_STAGE` and ``group_member``).
    """

    codebook: bytes | None
    payloads: list
    streams: list


#: Worker-side memo of parsed codebooks, keyed by their HUFB bytes: a
#: process-mode decode map ships raw bytes per member task, and without
#: this every member of a group would rebuild the flat decode tables the
#: shared codebook exists to amortize. Tiny bound — tasks arrive grouped.
_CODEBOOK_MEMO: dict[bytes, Any] = {}
_CODEBOOK_MEMO_MAX = 8


class SharedEntropy(NamedTuple):
    """What a grouped stream needs besides its own bytes to decode.

    ``codebook`` is the group's :class:`repro.compression.huffman.
    SharedCodebook` (cached decode tables amortize across members) or the
    raw ``HUFB`` bytes (picklable for process-mode workers); ``payload``
    is this member's backend-compressed ``HUFS`` blob.
    """

    codebook: Any
    payload: Any

    def resolve_codebook(self) -> "huffman.SharedCodebook":
        if isinstance(self.codebook, huffman.SharedCodebook):
            return self.codebook
        key = bytes(self.codebook)
        cached = _CODEBOOK_MEMO.get(key)
        if cached is None:
            cached = huffman.SharedCodebook.frombytes(key)
            if len(_CODEBOOK_MEMO) >= _CODEBOOK_MEMO_MAX:
                _CODEBOOK_MEMO.pop(next(iter(_CODEBOOK_MEMO)))
            _CODEBOOK_MEMO[key] = cached
        return cached


def check_entropy_params(entropy: str, k_streams: int | str = "auto") -> None:
    """Validate codec constructor entropy parameters.

    Construction-time misuse is a :class:`CompressionError` (nothing is
    being decoded yet), shared here so every codec rejects bad ``entropy``
    / ``k_streams`` arguments identically.
    """
    if entropy not in ENTROPY_STAGES:
        raise CompressionError(
            f"entropy must be one of {ENTROPY_STAGES}, got {entropy!r}"
        )
    if k_streams != "auto":
        # Delegate range checking (raises CompressionError on misuse).
        huffman.resolve_k_streams(k_streams, 1)


def check_backend_level(backend_level: int | None) -> None:
    """Validate a codec's ``backend_level`` constructor parameter
    (``None`` = per-section defaults, else a zlib/lzma level 0-9)."""
    if backend_level is None:
        return
    if isinstance(backend_level, bool) or not isinstance(backend_level, int) \
            or not 0 <= backend_level <= 9:
        raise CompressionError(
            f"backend_level must be None or an int in [0, 9], got {backend_level!r}"
        )


def encode_codes(
    codes: np.ndarray,
    entropy: str,
    backend: str,
    k_streams: int | str = "auto",
    level: int | None = None,
) -> tuple[bytes, str]:
    """Entropy-encode a quantization-code array into a section blob.

    ``"huffman"`` runs the K-way interleaved canonical Huffman stage then
    the lossless backend (the SZ pipeline); alphabets too large to
    Huffman-code fall back to ``"deflate"``. ``level`` overrides the
    backend compression level (default: :data:`HUFFMAN_SECTION_LEVEL` for
    Huffman-coded sections — the output is already near-entropy — and
    :data:`RAW_SECTION_LEVEL` for the fallback, where DEFLATE *is* the
    entropy coder). Returns ``(blob, stage)`` where ``stage`` names the
    encoding actually used — codecs record it in their stream params so
    :func:`decode_codes` can invert it.
    """
    if entropy == "huffman":
        try:
            return (
                compress_bytes(
                    huffman.encode(codes, k_streams=k_streams),
                    backend,
                    HUFFMAN_SECTION_LEVEL if level is None else level,
                ),
                "huffman",
            )
        except huffman.HuffmanAlphabetError:
            pass
    return (
        pack_ints(
            np.ascontiguousarray(codes),
            backend,
            RAW_SECTION_LEVEL if level is None else level,
        ),
        "deflate",
    )


def encode_codes_batch(
    codes: np.ndarray,
    entropy: str,
    backend: str,
    k_streams: int | str = "auto",
    level: int | None = None,
) -> tuple[bytes | None, list, str]:
    """Entropy-encode the ``(members, symbols)`` code matrix of one group.

    The Huffman path builds **one** shared codebook from the pooled
    frequencies and packs every member in a single vectorized scatter pass
    (:func:`repro.compression.huffman.encode_batch`); per-member payloads
    are wrapped individually so random access stays per-member. By default
    they are *stored*, not re-DEFLATEd (:data:`GROUPED_SECTION_BACKEND` —
    measured gain is ~1% for real time); pass ``level`` to opt back into
    ``backend`` at that level. Returns ``(codebook_bytes, payloads,
    stage)``; a pooled alphabet too large to Huffman-code (or
    ``entropy="deflate"``) falls back to self-contained per-member DEFLATE
    sections with ``codebook=None``.
    """
    mat = np.ascontiguousarray(codes, dtype=np.int64)
    if entropy == "huffman" and mat.size:
        try:
            codebook, inverse = huffman.SharedCodebook.from_symbols_with_inverse(mat)
            if level is None:
                wrap = lambda blob: compress_bytes(blob, GROUPED_SECTION_BACKEND)
            else:
                wrap = lambda blob: compress_bytes(blob, backend, level)
            payloads = [
                wrap(blob)
                for blob in huffman.encode_batch(
                    mat, codebook, k_streams=k_streams, inverse=inverse
                )
            ]
            return codebook.tobytes(), payloads, GROUPED_STAGE
        except huffman.HuffmanAlphabetError:
            pass
    lvl = RAW_SECTION_LEVEL if level is None else level
    return None, [pack_ints(row, backend, lvl) for row in mat], "deflate"


def decode_codes(section, entropy: str, shared: SharedEntropy | None = None) -> np.ndarray:
    """Invert :func:`encode_codes` / :func:`encode_codes_batch` given the
    recorded stage name.

    Grouped streams (:data:`GROUPED_STAGE`) carry no codes section of
    their own; their symbols live in ``shared.payload`` and decode against
    ``shared.codebook`` (see the grouped-stream layout in
    ``docs/container_format.md``).
    """
    if entropy == "huffman":
        return huffman.decode(decompress_bytes(section))
    if entropy == GROUPED_STAGE:
        if shared is None:
            raise DecompressionError(
                "stream was grouped under a shared Huffman codebook; decode "
                "it through its container (which supplies the group section) "
                "— the stream alone carries no entropy payload"
            )
        return huffman.decode_with_codebook(
            decompress_bytes(shared.payload), shared.resolve_codebook()
        )
    if entropy == "deflate":
        return unpack_ints(section)
    raise DecompressionError(f"stream records unknown entropy stage {entropy!r}")

#: Magic prefix of every framed codec stream.
STREAM_MAGIC = b"RPRC"
_MAGIC = STREAM_MAGIC
_VERSION = 1


@dataclass(frozen=True)
class CompressionStats:
    """Summary of one compression run."""

    codec: str
    original_bytes: int
    compressed_bytes: int
    error_bound: float
    stage_seconds: Mapping[str, float]

    @property
    def ratio(self) -> float:
        """Compression ratio (original / compressed)."""
        if self.compressed_bytes == 0:
            raise CompressionError("compressed size is zero")
        return self.original_bytes / self.compressed_bytes

    @property
    def bitrate(self) -> float:
        """Bits per value, assuming float64 input."""
        n_values = self.original_bytes / 8
        return 8.0 * self.compressed_bytes / n_values


class StreamWriter:
    """Builds a framed codec stream: header JSON + named binary sections."""

    def __init__(self, codec: str, shape: tuple[int, ...], dtype: np.dtype, params: dict[str, Any]):
        self._meta: dict[str, Any] = {
            "codec": codec,
            "shape": list(int(s) for s in shape),
            "dtype": np.dtype(dtype).str,
            "params": params,
            "sections": [],
        }
        self._blobs: list[bytes] = []

    def add_section(self, name: str, blob: bytes) -> None:
        """Append a named binary section."""
        self._meta["sections"].append({"name": name, "length": len(blob)})
        self._blobs.append(blob)

    def tobytes(self) -> bytes:
        """Serialize header + sections."""
        header = json.dumps(self._meta, separators=(",", ":")).encode()
        out = bytearray()
        out += _MAGIC
        out += struct.pack("<BI", _VERSION, len(header))
        out += header
        for blob in self._blobs:
            out += blob
        return bytes(out)


class StreamReader:
    """Parses a framed codec stream produced by :class:`StreamWriter`.

    Accepts any byte buffer — ``bytes`` or a ``memoryview`` (e.g. a
    zero-copy patch-stream slice from an mmap-opened container). Sections
    are sliced, not copied, so a ``memoryview`` input stays zero-copy all
    the way into the codec.
    """

    def __init__(self, blob):
        if len(blob) < 9 or bytes(blob[:4]) != _MAGIC:
            raise FormatError("not a repro compressed stream (bad magic)")
        version, header_len = struct.unpack_from("<BI", blob, 4)
        if version != _VERSION:
            raise FormatError(f"unsupported stream version {version}")
        start = 9
        try:
            self._meta = json.loads(bytes(blob[start : start + header_len]).decode())
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise FormatError(f"corrupt stream header: {exc}") from exc
        self._sections: dict[str, Any] = {}
        offset = start + header_len
        for sec in self._meta["sections"]:
            end = offset + sec["length"]
            if end > len(blob):
                raise FormatError(f"stream truncated in section {sec['name']!r}")
            self._sections[sec["name"]] = blob[offset:end]
            offset = end

    @property
    def codec(self) -> str:
        """Codec name recorded in the header."""
        return str(self._meta["codec"])

    @property
    def shape(self) -> tuple[int, ...]:
        """Original array shape."""
        return tuple(self._meta["shape"])

    @property
    def dtype(self) -> np.dtype:
        """Original array dtype."""
        return np.dtype(self._meta["dtype"])

    @property
    def params(self) -> dict[str, Any]:
        """Codec parameters recorded at compression time."""
        return dict(self._meta["params"])

    def section(self, name: str):
        """Fetch a named binary section (``bytes`` or a zero-copy view,
        matching the buffer the reader was constructed over)."""
        try:
            return self._sections[name]
        except KeyError:
            raise FormatError(f"stream has no section {name!r}") from None


class Compressor(ABC):
    """Error-bounded lossy compressor interface.

    Subclasses implement :meth:`compress` / :meth:`decompress` over 1-3 D
    float arrays and must guarantee ``max|x - x'| <= eb`` for the resolved
    absolute error bound.
    """

    #: registry name; subclasses override.
    name: str = "abstract"

    #: Whether this codec implements ``compress_batch`` (the level-batched
    #: fused path with shared Huffman codebooks).
    supports_batch: bool = False

    @abstractmethod
    def compress(self, data: np.ndarray, error_bound: float, mode: str = "abs") -> bytes:
        """Compress ``data`` under an error bound.

        Parameters
        ----------
        data:
            1-3 D floating array.
        error_bound:
            Bound value; interpretation depends on ``mode``.
        mode:
            ``"abs"`` — absolute bound; ``"rel"`` — value-range-relative
            bound (``eb_abs = error_bound * (max - min)``), as used
            throughout the paper's evaluation.
        """

    @abstractmethod
    def decompress(self, blob: bytes) -> np.ndarray:
        """Reconstruct the array from a stream produced by this codec."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _validate_input(data: np.ndarray) -> np.ndarray:
        arr = np.ascontiguousarray(data)
        if arr.dtype.kind != "f":
            raise CompressionError(f"only float arrays are supported, got {arr.dtype}")
        if arr.ndim not in (1, 2, 3):
            raise CompressionError(f"only 1-3 D arrays supported, got {arr.ndim}-D")
        if arr.size == 0:
            raise CompressionError("cannot compress an empty array")
        if not np.isfinite(arr).all():
            raise CompressionError("input contains NaN/Inf; mask before compressing")
        return arr.astype(np.float64, copy=False)

    @staticmethod
    def _validate_batch(data: np.ndarray) -> np.ndarray:
        """Validate a ``(n_patches, *shape)`` batch of same-shape patches
        (the level-batched fused path)."""
        arr = np.ascontiguousarray(data)
        if arr.dtype.kind != "f":
            raise CompressionError(f"only float arrays are supported, got {arr.dtype}")
        if arr.ndim not in (2, 3, 4):
            raise CompressionError(
                f"batch must be (n_patches, *shape) with 1-3 spatial dims, "
                f"got {arr.ndim}-D"
            )
        if arr.shape[0] == 0 or arr.size == 0:
            raise CompressionError("cannot compress an empty batch")
        if not np.isfinite(arr).all():
            raise CompressionError("input contains NaN/Inf; mask before compressing")
        return arr.astype(np.float64, copy=False)

    @staticmethod
    def resolve_error_bound(data: np.ndarray, error_bound: float, mode: str) -> float:
        """Convert a (value, mode) pair to an absolute bound."""
        if error_bound <= 0:
            raise CompressionError(f"error bound must be > 0, got {error_bound}")
        if mode == "abs":
            return float(error_bound)
        if mode == "rel":
            value_range = float(np.max(data) - np.min(data))
            if value_range == 0.0:
                # Constant field: any positive bound works; pick the value.
                return float(error_bound)
            return float(error_bound) * value_range
        raise CompressionError(f"unknown error-bound mode {mode!r} (use 'abs' or 'rel')")

    @classmethod
    def resolve_error_bounds(cls, batch: np.ndarray, error_bound, mode: str) -> np.ndarray:
        """Per-patch absolute bounds for a ``(n_patches, *shape)`` batch.

        ``error_bound`` may be a scalar spec (resolved per patch — in
        ``"rel"`` mode every patch gets a bound scaled to *its own* value
        range, exactly as the per-patch path does) or a pre-resolved
        ``(n_patches,)`` array of absolute bounds (``mode`` must then be
        ``"abs"``; the covered-cell path resolves before filling).
        """
        n = batch.shape[0]
        eb = np.asarray(error_bound, dtype=np.float64)
        if eb.ndim == 0:
            spatial = tuple(range(1, batch.ndim))
            if np.any(eb <= 0):
                raise CompressionError(f"error bound must be > 0, got {error_bound}")
            if mode == "abs":
                return np.full(n, float(eb))
            if mode == "rel":
                ranges = batch.max(axis=spatial) - batch.min(axis=spatial)
                out = np.where(ranges == 0.0, float(eb), float(eb) * ranges)
                return np.ascontiguousarray(out)
            raise CompressionError(
                f"unknown error-bound mode {mode!r} (use 'abs' or 'rel')"
            )
        if eb.shape != (n,):
            raise CompressionError(
                f"per-patch bounds must have shape ({n},), got {eb.shape}"
            )
        if mode != "abs":
            raise CompressionError(
                "per-patch bound arrays are already absolute; pass mode='abs'"
            )
        if np.any(eb <= 0):
            raise CompressionError("every per-patch bound must be > 0")
        return np.ascontiguousarray(eb)

    @classmethod
    def _check_stream(cls, reader: StreamReader) -> None:
        if reader.codec != cls.name:
            raise DecompressionError(
                f"stream was produced by codec {reader.codec!r}, not {cls.name!r}"
            )
