"""Codec registry: name-based construction and stream routing."""

from __future__ import annotations

import inspect
from typing import Callable

from repro.compression.base import STREAM_MAGIC, Compressor, StreamReader
from repro.compression.sz_interp import SZInterp
from repro.compression.sz_lr import SZLR
from repro.compression.zfp_like import ZFPLike
from repro.errors import CompressionError

import numpy as np

__all__ = [
    "available_codecs",
    "codec_accepts",
    "codec_supports_batch",
    "make_codec",
    "register_codec",
    "decompress_any",
]

_FACTORIES: dict[str, Callable[..., Compressor]] = {
    SZLR.name: SZLR,
    SZInterp.name: SZInterp,
    ZFPLike.name: ZFPLike,
}


def available_codecs() -> tuple[str, ...]:
    """Registered codec names."""
    return tuple(sorted(_FACTORIES))


def register_codec(name: str, factory: Callable[..., Compressor]) -> None:
    """Register a custom codec factory under ``name``."""
    if name in _FACTORIES:
        raise CompressionError(f"codec {name!r} already registered")
    _FACTORIES[name] = factory


def codec_accepts(name: str, param: str) -> bool:
    """Whether codec ``name``'s factory takes keyword ``param``.

    Lets generic call sites (e.g. ``resolve_patch_codec`` threading
    ``k_streams``) forward optional tuning parameters without breaking
    custom factories registered through :func:`register_codec` whose
    constructors never grew them. Unsignaturable factories (builtins,
    C callables) conservatively report ``False``.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise CompressionError(
            f"unknown codec {name!r}; available: {available_codecs()}"
        ) from None
    try:
        sig = inspect.signature(factory)
    except (TypeError, ValueError):
        return False
    return any(
        p.name == param or p.kind is inspect.Parameter.VAR_KEYWORD
        for p in sig.parameters.values()
    )


def codec_supports_batch(name: str) -> bool:
    """Whether codec ``name`` implements the level-batched fused path
    (``compress_batch`` + shared-codebook decode).

    Checked on the factory when it is a :class:`Compressor` subclass;
    custom factories registered as plain callables conservatively report
    ``False`` (their instances may still be passed to
    ``compress_hierarchy`` directly, which checks the instance).
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise CompressionError(
            f"unknown codec {name!r}; available: {available_codecs()}"
        ) from None
    if isinstance(factory, type) and issubclass(factory, Compressor):
        return bool(getattr(factory, "supports_batch", False))
    return False


def make_codec(name: str, **kwargs) -> Compressor:
    """Instantiate a codec by registry name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise CompressionError(
            f"unknown codec {name!r}; available: {available_codecs()}"
        ) from None
    return factory(**kwargs)


def decompress_any(blob: bytes) -> np.ndarray:
    """Decompress a stream from any registered codec (routed by header)."""
    magic = bytes(blob[:4])
    if magic != STREAM_MAGIC:
        raise CompressionError(
            f"unknown stream magic {magic!r}; expected a {STREAM_MAGIC!r} codec "
            "stream (hierarchy containers start with b'RPH2' — use "
            "repro.compression.amr_codec to read those)"
        )
    codec_name = StreamReader(blob).codec
    return make_codec(codec_name).decompress(blob)
