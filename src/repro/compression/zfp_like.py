"""Transform-based baseline codec (ZFP-inspired).

The paper names ZFP as the transform-based alternative to SZ (§1, §2.1).
This codec follows the same architectural recipe at reduced complexity:

1. pre-quantize to integers on the error-bound lattice (bounds the error
   exactly, like the Lorenzo dual-quant path);
2. split into 4^d blocks;
3. decorrelate each block with a hierarchical integer S-transform (a
   Haar-style lifting: exact, invertible ``(a, b) -> ((a + b) >> 1, a - b)``
   butterflies along each axis) — playing the role of ZFP's orthogonal
   block transform;
4. entropy-code the coefficients.

It is used as the extra baseline in the rate-distortion ablations; absolute
ratios differ from real ZFP but the transform-codec behaviour (smooth
blocks compress superbly, discontinuities ring) is preserved.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import (
    Compressor,
    StreamReader,
    StreamWriter,
    check_entropy_params,
    decode_codes,
    encode_codes,
)
from repro.compression.lossless import pack_ints, unpack_ints
from repro.compression.quantizer import dequantize, prequantize
from repro.compression import regression as reg
from repro.errors import CompressionError

__all__ = ["ZFPLike", "s_transform_forward", "s_transform_inverse"]


def _butterfly_forward(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Exact integer average/difference pair: ``s = (a+b) >> 1, d = a - b``."""
    d = a - b
    s = b + (d >> 1)  # == floor((a + b) / 2), overflow-safe
    return s, d


def _butterfly_inverse(s: np.ndarray, d: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    b = s - (d >> 1)
    a = d + b
    return a, b


def s_transform_forward(blocks: np.ndarray, axes: tuple[int, ...]) -> np.ndarray:
    """Two-scale integer S-transform along each axis of 4-wide blocks.

    ``blocks`` has 4 entries along every axis in ``axes``. After the
    transform, index 0 carries the block average and indices 1..3 carry
    detail coefficients.
    """
    out = blocks.astype(np.int64, copy=True)
    for axis in axes:
        if out.shape[axis] != 4:
            raise CompressionError(f"S-transform expects length 4 along axis {axis}")
        mv = np.moveaxis(out, axis, 0)
        s0, d0 = _butterfly_forward(mv[0].copy(), mv[1].copy())
        s1, d1 = _butterfly_forward(mv[2].copy(), mv[3].copy())
        s, d = _butterfly_forward(s0, s1)
        mv[0], mv[1], mv[2], mv[3] = s, d, d0, d1
    return out


def s_transform_inverse(coefs: np.ndarray, axes: tuple[int, ...]) -> np.ndarray:
    """Exact inverse of :func:`s_transform_forward`."""
    out = coefs.astype(np.int64, copy=True)
    for axis in reversed(axes):
        mv = np.moveaxis(out, axis, 0)
        s, d = mv[0].copy(), mv[1].copy()
        d0, d1 = mv[2].copy(), mv[3].copy()
        s0, s1 = _butterfly_inverse(s, d)
        a0, b0 = _butterfly_inverse(s0, d0)
        a1, b1 = _butterfly_inverse(s1, d1)
        mv[0], mv[1], mv[2], mv[3] = a0, b0, a1, b1
    return out


class ZFPLike(Compressor):
    """Fixed-accuracy transform codec over 4^d blocks.

    ``k_streams`` sets the Huffman interleave width (``"auto"`` scales
    with the input for the vectorized decode).
    """

    name = "zfp-like"

    def __init__(
        self,
        entropy: str = "huffman",
        backend: str = "deflate",
        k_streams: int | str = "auto",
    ):
        check_entropy_params(entropy, k_streams)
        self.entropy = entropy
        self.backend = backend
        self.k_streams = k_streams if k_streams == "auto" else int(k_streams)

    def compress(self, data: np.ndarray, error_bound: float, mode: str = "abs") -> bytes:
        orig_dtype = np.asarray(data).dtype
        arr = self._validate_input(data)
        eb = self.resolve_error_bound(arr, error_bound, mode)
        ndim = arr.ndim
        q = prequantize(arr, eb)
        blocks, padded_shape = reg.blockify(q, 4)
        cube = blocks.reshape((-1,) + (4,) * ndim)
        coefs = s_transform_forward(cube, tuple(range(1, ndim + 1)))
        flat = coefs.reshape(blocks.shape[0], 4**ndim)
        dc = flat[:, 0].copy()
        rest = flat.copy()
        rest[:, 0] = 0
        code_blob, entropy_used = encode_codes(
            rest.ravel(), self.entropy, self.backend, self.k_streams
        )
        writer = StreamWriter(
            self.name,
            arr.shape,
            orig_dtype,
            {
                "eb": eb,
                "padded_shape": list(padded_shape),
                "entropy": entropy_used,
                "k_streams": self.k_streams,
            },
        )
        writer.add_section("dc", pack_ints(dc, self.backend))
        writer.add_section("codes", code_blob)
        return writer.tobytes()

    def decompress(self, blob: bytes) -> np.ndarray:
        reader = StreamReader(blob)
        self._check_stream(reader)
        eb = float(reader.params["eb"])
        shape = reader.shape
        padded_shape = tuple(reader.params["padded_shape"])
        ndim = len(shape)
        dc = unpack_ints(reader.section("dc"))
        codes = decode_codes(reader.section("codes"), reader.params["entropy"])
        flat = codes.reshape(dc.size, 4**ndim).copy()
        flat[:, 0] = dc
        cube = flat.reshape((-1,) + (4,) * ndim)
        q = s_transform_inverse(cube, tuple(range(1, ndim + 1)))
        blocks = q.reshape(dc.size, 4**ndim)
        arr = reg.unblockify(dequantize(blocks, eb), 4, padded_shape, shape)
        return arr.astype(reader.dtype, copy=False)
