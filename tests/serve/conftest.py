"""Shared sources for the serve suite: one small series, one sharded
campaign, and one grouped snapshot, each step holding *distinct* data so
byte-identity checks cannot pass by accident."""

from __future__ import annotations

import numpy as np
import pytest

from repro.amr.io import write_series, write_sharded_series
from repro.compression.amr_codec import compress_hierarchy, decompress_selection

from tests.conftest import make_sphere_hierarchy

N_STEPS = 4
N_SHARD_STEPS = 6
N_SHARDS = 3


def step_hierarchy(s: int):
    """A two-level hierarchy whose data differs per step."""
    h = make_sphere_hierarchy(n=16)
    for level in h.levels:
        for p in level.patches("f"):
            p.data += 0.05 * (s + 1) * np.cos(p.data * (s + 1))
    return h


@pytest.fixture(scope="session")
def series_path(tmp_path_factory):
    """A 4-step RPH2S series with per-step distinct data."""
    path = tmp_path_factory.mktemp("serve") / "run.rph2s"
    write_series(path, [step_hierarchy(s) for s in range(N_STEPS)], "sz-lr", 1e-3)
    return path


@pytest.fixture(scope="session")
def sharded_path(tmp_path_factory):
    """A 6-step, 3-shard RPHM campaign with per-step distinct data."""
    path = tmp_path_factory.mktemp("serve-sharded") / "camp.rphm"
    write_sharded_series(
        path,
        [step_hierarchy(s) for s in range(N_SHARD_STEPS)],
        "sz-lr",
        1e-3,
        n_shards=N_SHARDS,
    )
    return path


@pytest.fixture(scope="session")
def snapshot_path(tmp_path_factory):
    """A standalone level-batched RPH2 snapshot — the only source kind
    whose streams live in RPGB shared-codebook groups (the streaming
    writer never groups), so this is what exercises batched decode."""
    path = tmp_path_factory.mktemp("serve-snap") / "snap.rph2"
    blob = compress_hierarchy(
        step_hierarchy(0), "sz-lr", 1e-3, batch="level"
    ).tobytes()
    path.write_bytes(blob)
    return path


def direct_truth(path, **selectors):
    """Fresh single-threaded ground truth, keyed like the service: a
    4-tuple ``(step, level, field, patch)`` even for snapshots (which the
    service exposes as step 0, so a ``steps`` selector without 0 is an
    empty selection)."""
    with open(path, "rb") as probe:
        head = probe.read(5)
    if head[:4] == b"RPH2" and head != b"RPH2S":
        steps = selectors.pop("steps", None)
        if steps is not None:
            wanted = {steps} if isinstance(steps, int) else set(steps)
            if 0 not in wanted:
                return {}
    out = decompress_selection(path, **selectors)
    return {
        (k if len(k) == 4 else (0, *k)): v for k, v in out.items()
    }


def assert_byte_identical(served: dict, truth: dict):
    assert set(served) == set(truth), (
        f"key sets differ: served-only {set(served) - set(truth)}, "
        f"truth-only {set(truth) - set(served)}"
    )
    for key in served:
        a, b = served[key], truth[key]
        assert a.dtype == b.dtype and a.shape == b.shape, key
        assert a.tobytes() == b.tobytes(), f"bytes differ for {key}"
