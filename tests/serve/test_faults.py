"""Fault injection on the serving path.

The service routes every byte through its storage backend, so a
:class:`repro.faults.FaultPlan` wired into ``RangedBackend``'s fault
hook can fail any GET at any moment. The contract under fire: transient
faults retry invisibly (byte-identical results), exhausted retries
surface as ``StorageError`` without poisoning the cache or the
single-flight table, and a failing file never wedges queries against
healthy files — including queries already in flight when the fault
starts.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import StorageError
from repro.faults import FaultPlan
from repro.serve import QueryService
from repro.storage import LocalFileBackend, RangedBackend

from tests.serve.conftest import assert_byte_identical, direct_truth


def _no_sleep(_seconds: float) -> None:
    pass


def _service(path, plan: FaultPlan, **kwargs) -> tuple[QueryService, RangedBackend]:
    backend = RangedBackend(
        LocalFileBackend(), readahead=1 << 12, max_retries=2,
        sleep=_no_sleep, fault=plan,
    )
    return QueryService(path, backend=backend, workers=2, **kwargs), backend


def test_transient_faults_retry_to_identical_bytes(series_path):
    plan = FaultPlan()
    plan.flake(lambda name, off, length: True)  # every GET flakes once

    async def scenario():
        svc, backend = _service(series_path, plan)
        try:
            served = await svc.query(steps=[0, 2], levels=1)
            return served, dict(backend.stats)
        finally:
            svc.close()

    served, stats = asyncio.run(scenario())
    assert_byte_identical(served, direct_truth(series_path, steps=[0, 2], levels=1))
    assert plan.faults > 0
    assert stats["retries"] == plan.faults  # every injected fault was retried


def test_exhausted_retries_propagate_without_poisoning_cache(series_path):
    plan = FaultPlan()

    async def scenario():
        svc, _ = _service(series_path, plan)
        try:
            # Load the catalog cleanly, then fail all payload GETs.
            await svc.plan(steps=1)
            plan.always(lambda name, off, length: True)
            with pytest.raises(StorageError, match="injected transient fault"):
                await svc.query(steps=1, levels=0)
            after_failure = svc.stats
            assert after_failure["patches_served"] == 0
            # Nothing half-decoded may have been cached...
            assert not any(
                k[0] == "patch" for k in svc._cache._entries
            ), "failed query left a patch in the cache"
            # ...and the single-flight table must be clean (a stale entry
            # would wedge every later query for the same patch).
            assert not svc._inflight
            plan.clear()
            return await svc.query(steps=1, levels=0)
        finally:
            svc.close()

    served = asyncio.run(scenario())
    assert_byte_identical(served, direct_truth(series_path, steps=1, levels=0))


def test_catalog_load_failure_is_clean_and_recoverable(series_path):
    plan = FaultPlan()

    async def scenario():
        svc, _ = _service(series_path, plan)  # harvest runs clean
        plan.always(lambda name, off, length: True)
        try:
            with pytest.raises(StorageError, match="injected transient fault"):
                await svc.query(steps=0)
            # The failed parse must not be cached as a catalog...
            assert not any(k[0] == "catalog" for k in svc._cache._entries)
            plan.clear()
            # ...so the retry reloads and succeeds.
            return await svc.query(steps=0, levels=0)
        finally:
            svc.close()

    served = asyncio.run(scenario())
    assert_byte_identical(served, direct_truth(series_path, steps=0, levels=0))


def test_faulty_shard_does_not_wedge_other_shards(sharded_path):
    """Kill one shard's GETs mid-service: queries for its steps fail,
    queries for every other shard keep answering byte-identically."""
    plan = FaultPlan()

    async def scenario():
        svc, _ = _service(sharded_path, plan)
        try:
            victim = svc._segments[0][0]  # shard file owning step 0
            safe_steps = [
                s for s, (f, _, _) in svc._segments.items() if f != victim
            ]
            plan.always(lambda name, off, length: name == victim)
            outcomes = await asyncio.gather(
                svc.query(steps=0),
                *[svc.query(steps=s, levels=1) for s in safe_steps],
                return_exceptions=True,
            )
            return safe_steps, outcomes
        finally:
            svc.close()

    safe_steps, outcomes = asyncio.run(scenario())
    assert isinstance(outcomes[0], StorageError)
    for s, served in zip(safe_steps, outcomes[1:]):
        assert not isinstance(served, BaseException), f"step {s}: {served!r}"
        assert_byte_identical(served, direct_truth(sharded_path, steps=s, levels=1))


def test_single_flight_waiters_see_the_owners_failure(series_path):
    """Two concurrent queries for the same cold patch share one decode;
    when that decode's GET dies, both see the failure (no hang), and the
    patch is still servable once the fault clears."""
    plan = FaultPlan()

    async def scenario():
        svc, _ = _service(series_path, plan)
        try:
            await svc.plan(steps=2)  # catalog in, payload still cold
            plan.always(lambda name, off, length: True)
            outcomes = await asyncio.wait_for(
                asyncio.gather(
                    svc.query(steps=2, levels=0),
                    svc.query(steps=2, levels=0),
                    return_exceptions=True,
                ),
                timeout=30,
            )
            assert all(isinstance(o, StorageError) for o in outcomes), outcomes
            assert not svc._inflight
            plan.clear()
            return await svc.query(steps=2, levels=0)
        finally:
            svc.close()

    served = asyncio.run(scenario())
    assert_byte_identical(served, direct_truth(series_path, steps=2, levels=0))


def test_mid_campaign_transient_burst_is_invisible(sharded_path):
    """A burst of first-attempt faults across all shards mid-stream of
    interleaved queries changes no bytes anywhere."""
    plan = FaultPlan()

    async def scenario():
        svc, backend = _service(sharded_path, plan)
        try:
            warm = await svc.query(steps=[0, 1])  # clean warm-up
            plan.flake(lambda name, off, length: True)
            during = await asyncio.gather(
                *[svc.query(steps=s) for s in (2, 3, 4, 5)]
            )
            return warm, during, dict(backend.stats)
        finally:
            svc.close()

    warm, during, stats = asyncio.run(scenario())
    assert_byte_identical(warm, direct_truth(sharded_path, steps=[0, 1]))
    for s, served in zip((2, 3, 4, 5), during):
        assert_byte_identical(served, direct_truth(sharded_path, steps=s))
    assert stats["retries"] > 0
