"""Property tests for the selection planner.

The planner's contract, checked exhaustively over randomized extent
layouts: every requested extent is covered by exactly one ranged read
(no gaps, no overlaps), reads are disjoint and tight (they start and end
on extent boundaries), no merged gap exceeds ``gap_cap``, and the total
fetched bytes never exceed the slack budget —
``extent_sum + floor(slack_frac * extent_sum)``. Then end-to-end: a plan
executed by the service returns bytes identical to direct
``decompress_selection`` on the same source.
"""

from __future__ import annotations

import asyncio
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ServeError
from repro.serve import (
    DEFAULT_GAP_CAP,
    Extent,
    QueryService,
    coalesce_extents,
)

from tests.serve.conftest import assert_byte_identical, direct_truth


# ----------------------------------------------------------------------
# Extent-layout strategies
# ----------------------------------------------------------------------
@st.composite
def extent_layouts(draw):
    """Disjoint extents built from (gap, length) runs, returned shuffled
    so the planner's own sorting is exercised."""
    n = draw(st.integers(min_value=0, max_value=20))
    offset = draw(st.integers(min_value=0, max_value=1000))
    extents = []
    for i in range(n):
        gap = draw(
            st.one_of(
                st.just(0),  # touching runs are common in real layouts
                st.integers(min_value=1, max_value=200),
                st.integers(min_value=1, max_value=200_000),
            )
        )
        length = draw(
            st.one_of(
                st.just(0),  # zero-length extents must be harmless
                st.integers(min_value=1, max_value=5000),
            )
        )
        offset += gap
        extents.append(
            Extent(offset, length, "stream", (0, 0, "f", i), crc32=0)
        )
        offset += length
    draw(st.randoms(use_true_random=False)).shuffle(extents)
    return extents


coalesce_params = st.tuples(
    st.integers(min_value=0, max_value=1 << 18),  # gap_cap
    st.floats(min_value=0.0, max_value=2.0, allow_nan=False),  # slack_frac
)


@given(extent_layouts(), coalesce_params)
@settings(max_examples=300, deadline=None)
def test_reads_exactly_cover_extents(extents, params):
    gap_cap, slack = params
    reads = coalesce_extents(extents, gap_cap=gap_cap, slack_frac=slack)
    real = [e for e in extents if e.length > 0]
    # Every real extent is fully inside exactly one read.
    for ext in real:
        owners = [
            r for r in reads if r.offset <= ext.offset and ext.end <= r.end
        ]
        assert len(owners) == 1, f"extent {ext} covered by {len(owners)} reads"
        assert ext in owners[0].extents
    # And each read's extent list is exactly the extents it covers.
    assert sum(len(r.extents) for r in reads) == len(real)


@given(extent_layouts(), coalesce_params)
@settings(max_examples=300, deadline=None)
def test_reads_disjoint_sorted_and_tight(extents, params):
    gap_cap, slack = params
    reads = coalesce_extents(extents, gap_cap=gap_cap, slack_frac=slack)
    for prev, nxt in zip(reads, reads[1:]):
        assert prev.end < nxt.offset, "reads overlap or touch (should have merged)"
    for r in reads:
        # Tight: a read starts at its first extent and ends at its last —
        # slack is only ever *between* extents, never padding the edges.
        assert r.offset == r.extents[0].offset
        assert r.end == r.extents[-1].end
        assert list(r.extents) == sorted(r.extents, key=lambda e: e.offset)


@given(extent_layouts(), coalesce_params)
@settings(max_examples=300, deadline=None)
def test_slack_budget_and_gap_cap_hold(extents, params):
    gap_cap, slack = params
    reads = coalesce_extents(extents, gap_cap=gap_cap, slack_frac=slack)
    extent_sum = sum(e.length for e in extents)
    fetched = sum(r.length for r in reads)
    assert fetched <= extent_sum + int(slack * extent_sum)
    # No single merged gap exceeds gap_cap.
    for r in reads:
        for a, b in zip(r.extents, r.extents[1:]):
            assert b.offset - a.end <= gap_cap


@given(extent_layouts(), coalesce_params)
@settings(max_examples=100, deadline=None)
def test_coalesce_is_order_independent(extents, params):
    gap_cap, slack = params
    reads = coalesce_extents(extents, gap_cap=gap_cap, slack_frac=slack)
    shuffled = list(extents)
    random.Random(7).shuffle(shuffled)
    assert coalesce_extents(shuffled, gap_cap=gap_cap, slack_frac=slack) == reads


def test_zero_slack_merges_only_touching_extents():
    extents = [
        Extent(0, 10, "stream", (0, 0, "f", 0), 0),
        Extent(10, 10, "stream", (0, 0, "f", 1), 0),  # touching: free
        Extent(21, 10, "stream", (0, 0, "f", 2), 0),  # gap 1: costs budget
    ]
    reads = coalesce_extents(extents, slack_frac=0.0)
    assert [(r.offset, r.length) for r in reads] == [(0, 20), (21, 10)]


def test_smallest_gaps_merge_first():
    extents = [
        Extent(0, 100, "stream", (0, 0, "f", 0), 0),
        Extent(150, 100, "stream", (0, 0, "f", 1), 0),  # gap 50
        Extent(260, 100, "stream", (0, 0, "f", 2), 0),  # gap 10
    ]
    # Budget of 0.1 * 300 = 30 bytes: only the 10-byte gap fits.
    reads = coalesce_extents(extents, slack_frac=0.1)
    assert [(r.offset, r.length) for r in reads] == [(0, 100), (150, 210)]


def test_overlapping_extents_rejected():
    extents = [
        Extent(0, 10, "stream", (0, 0, "f", 0), 0),
        Extent(5, 10, "stream", (0, 0, "f", 1), 0),
    ]
    with pytest.raises(ServeError, match="overlapping"):
        coalesce_extents(extents)


def test_bad_knobs_rejected():
    with pytest.raises(ServeError, match="gap_cap"):
        coalesce_extents([], gap_cap=-1)
    with pytest.raises(ServeError, match="slack_frac"):
        coalesce_extents([], slack_frac=-0.1)


def test_empty_and_zero_length_only_layouts():
    assert coalesce_extents([]) == []
    only_empty = [Extent(5, 0, "stream", (0, 0, "f", 0), 0)]
    assert coalesce_extents(only_empty) == []


# ----------------------------------------------------------------------
# Plan-vs-direct byte identity on real sources
# ----------------------------------------------------------------------
def _run(coro):
    return asyncio.run(coro)


SELECTIONS = [
    {},
    {"levels": 0},
    {"levels": 1, "fields": "f"},
    {"patches": 0},
    {"levels": [0, 1], "patches": [0]},
]


@pytest.mark.parametrize("selectors", SELECTIONS)
def test_series_plan_execution_matches_direct(series_path, selectors):
    async def scenario():
        svc = QueryService(series_path, workers=2)
        try:
            plan = await svc.plan(**selectors)
            # The planner's slack guarantee, restated on a real layout.
            assert plan.fetched_bytes <= int(1.25 * plan.extent_bytes)
            served = await svc.query(**selectors)
            return served
        finally:
            svc.close()

    served = _run(scenario())
    assert_byte_identical(served, direct_truth(series_path, **selectors))


@pytest.mark.parametrize("selectors", SELECTIONS)
def test_grouped_snapshot_plan_execution_matches_direct(snapshot_path, selectors):
    async def scenario():
        svc = QueryService(snapshot_path, workers=2)
        try:
            plan = await svc.plan(**selectors)
            assert plan.fetched_bytes <= int(1.25 * plan.extent_bytes)
            if not selectors:
                # Full selection over a level-batched snapshot must plan
                # shared-codebook batches, not per-patch decodes.
                assert plan.n_group_batches > 0
            served = await svc.query(**selectors)
            return served
        finally:
            svc.close()

    served = _run(scenario())
    assert_byte_identical(served, direct_truth(snapshot_path, **selectors))


def test_random_selections_match_direct(series_path):
    rng = random.Random(1234)

    async def scenario(selectors):
        svc = QueryService(series_path, workers=2)
        try:
            return await svc.query(**selectors)
        finally:
            svc.close()

    for _ in range(10):
        selectors = {}
        if rng.random() < 0.7:
            selectors["steps"] = rng.sample(range(4), rng.randint(1, 4))
        if rng.random() < 0.7:
            selectors["levels"] = rng.sample(range(2), rng.randint(1, 2))
        if rng.random() < 0.5:
            selectors["patches"] = [0]
        served = _run(scenario(selectors))
        assert_byte_identical(served, direct_truth(series_path, **selectors))


def test_plan_excludes_cached_patches(series_path):
    async def scenario():
        svc = QueryService(series_path, workers=2)
        try:
            first = await svc.plan(steps=0)
            assert first.extent_bytes > 0
            await svc.query(steps=0)
            warm = await svc.plan(steps=0)
            assert warm.extent_bytes == 0 and warm.n_reads == 0
        finally:
            svc.close()

    _run(scenario())
