"""TCP protocol round-trips and the ``serve`` CLI subcommand.

The socket layer must preserve the service's core guarantee — responses
byte-identical to direct reads — and its protocol errors must be
per-request, never per-connection or per-server.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import subprocess
import sys
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.errors import DeadlineExceeded, Overloaded, ServeError, StorageError
from repro.serve import QueryServer, QueryService, TCPClient

from tests.serve.conftest import assert_byte_identical, direct_truth

REPO = Path(__file__).resolve().parents[2]


@contextmanager
def running_server(path, server_kwargs=None, **service_kwargs):
    """A QueryServer on a background event-loop thread; yields (host, port)."""
    loop = asyncio.new_event_loop()
    started = threading.Event()
    box: dict = {}

    async def main():
        service = QueryService(path, workers=2, **service_kwargs)
        server = QueryServer(service, **(server_kwargs or {}))
        await server.start()
        box["addr"] = server.address
        box["server"] = server
        started.set()
        await server.serve_until_shutdown()

    thread = threading.Thread(target=lambda: loop.run_until_complete(main()),
                              daemon=True)
    thread.start()
    assert started.wait(15), "server did not start"
    try:
        yield box["addr"]
    finally:
        coro = box["server"].stop()
        try:  # no-op if a shutdown op already stopped the loop
            asyncio.run_coroutine_threadsafe(coro, loop).result(timeout=15)
        except Exception:
            coro.close()
        thread.join(timeout=15)
        loop.close()


def test_tcp_query_byte_identical(series_path):
    with running_server(series_path) as (host, port):
        with TCPClient(host, port) as client:
            assert client.ping()
            served, info = client.query_info(steps=[1, 3], levels=1)
            assert info["fetched_bytes"] > 0
            assert_byte_identical(
                served, direct_truth(series_path, steps=[1, 3], levels=1)
            )
            # Warm repeat over the same socket: zero payload bytes.
            _, warm = client.query_info(steps=[1, 3], levels=1)
            assert warm["fetched_bytes"] == 0 and warm["meta_bytes"] == 0


def test_tcp_meta_plan_stats_ops(sharded_path):
    with running_server(sharded_path) as (host, port):
        with TCPClient(host, port) as client:
            meta = client.meta()
            assert meta["sharded"] is True
            assert meta["steps"] == [0, 1, 2, 3, 4, 5]
            assert meta["fields"] == ["f"]
            plan = client.plan(steps=[0, 1])
            assert plan["extent_bytes"] > 0
            assert plan["fetched_bytes"] <= int(1.25 * plan["extent_bytes"])
            client.query(steps=[0, 1])
            stats = client.stats()
            assert stats["queries"] == 1
            assert stats["payload_bytes"] > 0


def test_tcp_errors_are_per_request(series_path):
    with running_server(series_path) as (host, port):
        with TCPClient(host, port) as client:
            with pytest.raises(ServeError, match="unknown op"):
                client._request({"op": "frobnicate"})
            with pytest.raises(ServeError, match="region"):
                client.query(steps=0, levels=0, region=[[0, 1]])  # wrong ndim
            # Malformed JSON on the raw socket: reported, not fatal.
            client._sock.sendall(b"{not json\n")
            reply = json.loads(client._rfile.readline())
            assert reply["ok"] is False and "JSON" in reply["error"]
            # The connection (and server) still answer real queries.
            served = client.query(steps=0, levels=0)
            assert_byte_identical(
                served, direct_truth(series_path, steps=0, levels=0)
            )


def test_tcp_concurrent_clients(series_path):
    selections = [
        {"steps": [0]}, {"steps": [1], "levels": [1]},
        {"steps": [2], "levels": [0]}, {"steps": [3]},
        {"levels": [1]}, {"steps": [0, 2], "patches": [0]},
    ]
    with running_server(series_path) as (host, port):

        def worker(sel):
            with TCPClient(host, port) as client:
                return sel, client.query(**sel)

        with ThreadPoolExecutor(max_workers=6) as pool:
            outcomes = list(pool.map(worker, selections))
    for sel, served in outcomes:
        assert_byte_identical(served, direct_truth(series_path, **sel))


def test_tcp_partial_query_reports_missing_shard(sharded_path):
    from repro.faults import FaultPlan
    from repro.storage import LocalFileBackend, RangedBackend

    plan = FaultPlan()
    backend = RangedBackend(
        LocalFileBackend(), readahead=1 << 12, max_retries=0,
        sleep=lambda s: None, fault=plan,
    )
    with running_server(
        sharded_path, backend=backend, breaker_threshold=None
    ) as (host, port):
        with TCPClient(host, port) as client:
            # Find the shard owning step 0 from a clean plan, then kill it.
            stats_before = client.stats()
            assert stats_before["partial_queries"] == 0
            victim_holder: dict = {}

            def victim_match(name, off, length):
                victim_holder.setdefault("name", name)
                return name == victim_holder["name"]

            # First failing GET names the shard; every later GET to the
            # same file fails too — a single-shard outage.
            plan.always(victim_match, kind="storage")
            with pytest.raises(StorageError, match="injected storage fault"):
                client.query(steps=0)
            served, info = client.query_info(partial=True)
            assert info["partial"] is True
            assert info["missing"], "dead shard not reported"
            missing_steps = sorted({m["step"] for m in info["missing"]})
            assert 0 in missing_steps
            for m in info["missing"]:
                assert m["error"] == "StorageError"
                assert "injected storage fault" in m["detail"]
            served_steps = sorted({k[0] for k in served})
            assert set(served_steps).isdisjoint(missing_steps)
            assert_byte_identical(
                served, direct_truth(sharded_path, steps=served_steps)
            )
            # The outage ends: the same query is complete again.
            plan.clear()
            full, info2 = client.query_info(partial=True)
            assert info2["missing"] == []
            assert_byte_identical(full, direct_truth(sharded_path))


def test_tcp_query_timeout_is_typed_and_connection_survives(series_path):
    from repro.faults import FaultPlan
    from repro.storage import LocalFileBackend, RangedBackend

    plan = FaultPlan()
    backend = RangedBackend(
        LocalFileBackend(), readahead=1 << 12, max_retries=0, fault=plan,
    )
    with running_server(series_path, backend=backend) as (host, port):
        with TCPClient(host, port) as client:
            plan.latency(0.5)
            with pytest.raises(DeadlineExceeded, match="timeout"):
                client.query(steps=0, levels=0, timeout=0.05)
            plan.clear()
            # Same connection, same selection, no deadline: clean bytes.
            served = client.query(steps=0, levels=0)
            assert_byte_identical(
                served, direct_truth(series_path, steps=0, levels=0)
            )


def test_tcp_idle_timeout_reclaims_connection(series_path):
    import time

    with running_server(
        series_path, server_kwargs={"idle_timeout": 0.2}
    ) as (host, port):
        client = TCPClient(host, port)
        assert client.ping()
        time.sleep(0.6)  # stay silent past the idle timeout
        with pytest.raises(ServeError, match="closed"):
            client.ping()
        client.close()
        # A fresh connection serves normally.
        with TCPClient(host, port) as client2:
            assert client2.ping()


def test_tcp_connection_cap_refuses_with_retry_after(series_path):
    import time

    with running_server(
        series_path, server_kwargs={"max_connections": 1}
    ) as (host, port):
        first = TCPClient(host, port)
        assert first.ping()
        second = TCPClient(host, port)
        with pytest.raises(Overloaded, match="connection cap") as exc_info:
            second.ping()
        assert exc_info.value.retry_after is not None
        second.close()
        first.close()
        # The slot frees up once the first client is gone.
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            try:
                with TCPClient(host, port) as again:
                    assert again.ping()
                break
            except Overloaded:
                time.sleep(0.05)
        else:
            pytest.fail("connection slot never freed after close")


def test_shutdown_op_stops_server(series_path):
    with running_server(series_path) as (host, port):
        with TCPClient(host, port) as client:
            client.shutdown()
        # New connections are refused once the listener is down.
        import socket, time

        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            try:
                socket.create_connection((host, port), timeout=0.5).close()
            except OSError:
                break
            time.sleep(0.05)
        else:
            pytest.fail("listener still accepting after shutdown op")


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _spawn_serve(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.compression", "serve", *map(str, args)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
        cwd=REPO,
    )


def _bound_address(proc) -> tuple[str, int]:
    line = proc.stdout.readline()
    m = re.search(r"on ([\d.]+):(\d+)\s*$", line)
    assert m, f"cannot parse serve banner: {line!r}"
    return m.group(1), int(m.group(2))


def test_cli_serve_roundtrip_and_shutdown(series_path):
    proc = _spawn_serve(series_path, "--port", "0")
    try:
        host, port = _bound_address(proc)
        with TCPClient(host, port) as client:
            meta = client.meta()
            assert meta["steps"] == [0, 1, 2, 3]
            served = client.query(steps=2, levels=1)
            assert_byte_identical(
                served, direct_truth(series_path, steps=2, levels=1)
            )
            client.shutdown()
        assert proc.wait(timeout=15) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


def test_cli_serve_recovered_series(series_path, tmp_path):
    import shutil

    torn = tmp_path / "torn.rph2s"
    shutil.copy(series_path, torn)
    with open(torn, "r+b") as f:
        f.truncate(torn.stat().st_size - 40)
    proc = _spawn_serve(torn, "--recover")
    try:
        host, port = _bound_address(proc)
        with TCPClient(host, port) as client:
            assert client.meta()["recovered"] is True
            served = client.query(steps=1, levels=0)
            assert_byte_identical(
                served, direct_truth(series_path, steps=1, levels=0)
            )
            client.shutdown()
        assert proc.wait(timeout=15) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


def test_cli_serve_refuses_garbage(tmp_path):
    bogus = tmp_path / "bogus.bin"
    bogus.write_bytes(b"NOTAFORMAT" * 10)
    proc = _spawn_serve(bogus)
    out, err = proc.communicate(timeout=30)
    assert proc.returncode != 0
    assert "RPH2" in err  # names the formats it can serve
