"""Cache correctness: the LRU itself, and its observable effect on the
backend — stats must reconcile exactly with GET counts on a
``RangedBackend`` with ``readahead=1`` (every byte the service touches is
a byte the backend saw, and a warm query touches none)."""

from __future__ import annotations

import asyncio
import random
import shutil

import numpy as np
import pytest

from repro.errors import ServeError, TruncatedSeriesError
from repro.insitu.series import SeriesReader
from repro.serve import QueryService, ServeCache
from repro.storage import LocalFileBackend, RangedBackend

from tests.serve.conftest import N_STEPS, assert_byte_identical, direct_truth


# ----------------------------------------------------------------------
# ServeCache unit tests
# ----------------------------------------------------------------------
def test_budget_is_never_exceeded():
    cache = ServeCache(100)
    rng = random.Random(3)
    for i in range(200):
        cache.put(("patch", i), object(), rng.randint(0, 60))
        assert cache.current_bytes <= 100
        assert cache.current_bytes == sum(
            n for _, n in cache._entries.values()
        )
    assert cache.evictions > 0


def test_lru_eviction_order():
    cache = ServeCache(100)
    cache.put("a", "A", 40)
    cache.put("b", "B", 40)
    assert cache.get("a") == "A"  # refresh a: b is now LRU
    cache.put("c", "C", 40)  # over budget: evicts b
    assert "b" not in cache
    assert cache.get("a") == "A" and cache.get("c") == "C"
    assert cache.evictions == 1


def test_oversize_values_are_rejected_not_stored():
    cache = ServeCache(100)
    assert not cache.put("big", "X", 101)
    assert "big" not in cache and cache.rejected == 1
    assert cache.current_bytes == 0
    assert cache.put("fits", "Y", 100)


def test_inflate_grows_charge_and_can_trigger_eviction():
    cache = ServeCache(100)
    cache.put("catalog", "C", 30)
    cache.put("patch", "P", 40)
    cache.inflate("catalog", 20)
    assert cache.peek_charge("catalog") == 50
    assert cache.current_bytes == 90
    cache.inflate("catalog", 60)  # 150 total: evicts LRU ("catalog" itself
    # was refreshed by neither get nor put, so it is the oldest entry)
    assert cache.current_bytes <= 100
    cache.inflate("missing", 10)  # no-op, never raises
    assert cache.peek_charge("missing") is None


def test_get_put_counters_and_pop():
    cache = ServeCache(100)
    assert cache.get("k") is None
    cache.put("k", "V", 10)
    assert cache.get("k") == "V"
    cache.pop("k")
    assert cache.get("k") is None
    assert cache.stats == {
        "hits": 1, "misses": 2, "evictions": 0, "puts": 1, "rejected": 0,
        "entries": 0, "current_bytes": 0, "max_bytes": 100,
    }


def test_invalid_parameters_rejected():
    with pytest.raises(ServeError, match="max_bytes"):
        ServeCache(0)
    cache = ServeCache(10)
    with pytest.raises(ServeError, match="charge"):
        cache.put("k", "V", -1)


# ----------------------------------------------------------------------
# Service-level reconciliation against backend request counts
# ----------------------------------------------------------------------
def _counted_service(path, **kwargs):
    backend = RangedBackend(LocalFileBackend(), readahead=1)
    return QueryService(path, backend=backend, workers=2, **kwargs), backend


def test_query_bytes_reconcile_with_backend(series_path):
    """With readahead=1 every GET is exactly one service read, so the
    per-query accounting must match the backend's meters byte for byte."""

    async def scenario():
        svc, backend = _counted_service(series_path)
        try:
            before = dict(backend.stats)
            _, cold = await svc.query_info(steps=[0, 1], levels=1)
            mid = dict(backend.stats)
            assert (
                mid["bytes_fetched"] - before["bytes_fetched"]
                == cold.fetched_bytes + cold.meta_bytes
            )
            assert cold.fetched_bytes > 0 and cold.meta_bytes > 0
            # Payload GETs are the planned coalesced reads; the rest of
            # the request delta is catalog/group-header metadata.
            assert mid["requests"] - before["requests"] >= cold.ranged_reads
            _, warm = await svc.query_info(steps=[0, 1], levels=1)
            after = dict(backend.stats)
            assert warm.fetched_bytes == 0 and warm.meta_bytes == 0
            assert warm.cache_hits == warm.keys
            assert after == mid, "warm query issued backend requests"
        finally:
            svc.close()

    asyncio.run(scenario())


def test_cache_disabled_refetches_exactly_the_extents(series_path):
    async def scenario():
        svc, backend = _counted_service(series_path, cache_bytes=None)
        try:
            _, first = await svc.query_info(steps=2)
            # Displace the RangedBackend reader's single readahead window
            # (it legitimately serves an immediate re-read GET-free).
            await svc.query(steps=3)
            before = dict(backend.stats)
            _, second = await svc.query_info(steps=2)
            after = dict(backend.stats)
            # Catalogs persist even with the cache off (plain per-step
            # table), so the repeat pays payload only — and all of it.
            assert second.meta_bytes == 0
            assert second.fetched_bytes == first.fetched_bytes > 0
            assert (
                after["bytes_fetched"] - before["bytes_fetched"]
                == second.fetched_bytes
            )
            assert svc.stats["cache"] is None
        finally:
            svc.close()

    asyncio.run(scenario())


def test_thrashing_cache_stays_within_budget_and_correct(series_path):
    budget = 96 << 10

    async def scenario():
        svc, _ = _counted_service(series_path, cache_bytes=budget)
        try:
            rng = random.Random(5)
            served = []
            for _ in range(12):
                sel = {
                    "steps": rng.sample(range(N_STEPS), rng.randint(1, 2)),
                    "levels": rng.sample(range(2), rng.randint(1, 2)),
                }
                served.append((sel, await svc.query(**sel)))
                assert svc._cache.current_bytes <= budget
            stats = svc.stats["cache"]
            assert stats["evictions"] > 0, "budget never forced an eviction"
            assert stats["current_bytes"] <= budget
            return served
        finally:
            svc.close()

    for sel, served in asyncio.run(scenario()):
        assert_byte_identical(served, direct_truth(series_path, **sel))


def test_patch_cache_key_separates_verify_modes(series_path):
    """verify=False results must never satisfy a verify=True query (the
    unverified bytes were not crc-checked)."""

    async def scenario():
        svc, _ = _counted_service(series_path)
        try:
            await svc.query(steps=0, levels=0, verify=False)
            _, info = await svc.query_info(steps=0, levels=0, verify=True)
            assert info.cache_misses == info.keys  # no cross-mode hits
            _, again = await svc.query_info(steps=0, levels=0, verify=True)
            assert again.cache_hits == again.keys
        finally:
            svc.close()

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# Recovered sources
# ----------------------------------------------------------------------
@pytest.fixture()
def torn_series(series_path, tmp_path):
    """The shared series with its footer+index torn off — only a
    recovery scan can serve it."""
    torn = tmp_path / "torn.rph2s"
    shutil.copy(series_path, torn)
    size = torn.stat().st_size
    with open(torn, "r+b") as f:
        f.truncate(size - 40)  # destroys the footer and part of the index
    return torn


def test_recovered_series_serves_identically(series_path, torn_series):
    with pytest.raises(TruncatedSeriesError):
        QueryService(torn_series)

    async def scenario():
        svc = QueryService(torn_series, recover=True, workers=2)
        try:
            assert svc.recovered
            assert svc.steps == tuple(range(N_STEPS))
            served = await svc.query(levels=1)
            _, warm = await svc.query_info(levels=1)
            assert warm.fetched_bytes == 0
            return served
        finally:
            svc.close()

    served = asyncio.run(scenario())
    # The sealed segments are bit-exact copies of the intact series', so
    # the intact file is valid ground truth for the recovered service.
    assert_byte_identical(served, direct_truth(series_path, levels=1))


def test_recovered_series_through_ranged_backend(torn_series):
    async def scenario():
        backend = RangedBackend(LocalFileBackend(), readahead=1 << 12)
        svc = QueryService(torn_series, backend=backend, recover=True, workers=2)
        try:
            return await svc.query(steps=1, levels=0)
        finally:
            svc.close()

    served = asyncio.run(scenario())
    with SeriesReader.open(torn_series, recover=True) as reader:
        truth = reader.select(steps=1, levels=0)
    assert_byte_identical(served, {k: v for k, v in truth.items()})
