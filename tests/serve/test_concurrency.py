"""Concurrency stress: many interleaved clients against one service.

Every concurrently-served response must be byte-identical to a fresh
single-threaded ``decompress_selection`` of the same selection — over a
local series, a sharded campaign, and a grouped snapshot; with the cache
on, off, and thrashing (a budget small enough to force constant
eviction); through the asyncio surface and through the thread-safe
``InProcessClient`` facade.
"""

from __future__ import annotations

import asyncio
import random
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.serve import InProcessClient, QueryService

from tests.serve.conftest import (
    N_SHARD_STEPS,
    N_STEPS,
    assert_byte_identical,
    direct_truth,
)

N_CLIENTS = 8
QUERIES_PER_CLIENT = 6


def random_selectors(rng: random.Random, n_steps: int) -> dict:
    out = {}
    if rng.random() < 0.8:
        out["steps"] = rng.sample(range(n_steps), rng.randint(1, min(3, n_steps)))
    if rng.random() < 0.7:
        out["levels"] = rng.sample(range(2), rng.randint(1, 2))
    if rng.random() < 0.4:
        out["patches"] = [0]
    if rng.random() < 0.2:
        out["verify"] = False
    return out


async def _client(svc: QueryService, seed: int, n_steps: int):
    rng = random.Random(seed)
    out = []
    for _ in range(QUERIES_PER_CLIENT):
        selectors = random_selectors(rng, n_steps)
        served = await svc.query(**selectors)
        out.append((selectors, served))
        await asyncio.sleep(0)  # force interleaving between clients
    return out


def _check_against_truth(source, batches):
    for per_client in batches:
        for selectors, served in per_client:
            truth_sel = {k: v for k, v in selectors.items() if k != "verify"}
            assert_byte_identical(served, direct_truth(source, **truth_sel))


def _stress(source, n_steps: int, **service_kwargs):
    async def scenario():
        svc = QueryService(source, workers=2, **service_kwargs)
        try:
            return await asyncio.gather(
                *[_client(svc, 1000 + i, n_steps) for i in range(N_CLIENTS)]
            )
        finally:
            svc.close()

    _check_against_truth(source, asyncio.run(scenario()))


def test_concurrent_clients_local_series(series_path):
    _stress(series_path, N_STEPS)


def test_concurrent_clients_sharded(sharded_path):
    _stress(sharded_path, N_SHARD_STEPS)


def test_concurrent_clients_grouped_snapshot(snapshot_path):
    _stress(snapshot_path, 1)


def test_concurrent_clients_cache_disabled(series_path):
    _stress(series_path, N_STEPS, cache_bytes=None)


def test_concurrent_clients_cache_thrashing(series_path):
    # A budget far below one query's decoded output: every query evicts
    # most of what the previous one cached, mid-flight.
    _stress(series_path, N_STEPS, cache_bytes=64 << 10)


def test_cache_on_off_identical_bytes(series_path):
    """The cache must be invisible: cached, uncached, and thrashing
    services return bit-identical responses for an identical query mix."""
    rng = random.Random(99)
    mixes = [random_selectors(rng, N_STEPS) for _ in range(12)]

    async def run_service(cache_bytes):
        svc = QueryService(series_path, workers=2, cache_bytes=cache_bytes)
        try:
            return [await svc.query(**sel) for sel in mixes]
        finally:
            svc.close()

    cached = asyncio.run(run_service(64 << 20))
    uncached = asyncio.run(run_service(None))
    thrashing = asyncio.run(run_service(64 << 10))
    for a, b, c in zip(cached, uncached, thrashing):
        assert set(a) == set(b) == set(c)
        for key in a:
            assert a[key].tobytes() == b[key].tobytes() == c[key].tobytes()


def test_concurrent_queries_share_one_catalog_load(series_path):
    """N clients hitting the same cold step must parse its catalog once —
    the per-(file, step) lock prevents a duplicate-load stampede."""

    async def scenario():
        svc = QueryService(series_path, workers=2)
        try:
            infos = await asyncio.gather(
                *[svc.query_info(steps=2, levels=0) for _ in range(6)]
            )
            loads = sum(1 for _, info in infos if info.meta_bytes > 0)
            assert loads == 1, f"catalog parsed {loads} times for one step"
            # Exactly one of the six paid payload bytes, too: the rest
            # either hit the decoded-patch cache or waited out the load.
            assert svc.stats["payload_bytes"] == max(
                info.fetched_bytes for _, info in infos
            )
            return [res for res, _ in infos]
        finally:
            svc.close()

    results = asyncio.run(scenario())
    truth = direct_truth(series_path, steps=2, levels=0)
    for served in results:
        assert_byte_identical(served, truth)


def test_in_process_client_thread_stress(series_path):
    """The synchronous facade under real threads: 8 threads, interleaved
    random selections, one shared client/service."""
    with InProcessClient(series_path, workers=2) as client:

        def worker(seed: int):
            rng = random.Random(seed)
            out = []
            for _ in range(QUERIES_PER_CLIENT):
                selectors = random_selectors(rng, N_STEPS)
                out.append((selectors, client.query(**selectors)))
            return out

        with ThreadPoolExecutor(max_workers=N_CLIENTS) as pool:
            batches = list(pool.map(worker, range(2000, 2000 + N_CLIENTS)))
    _check_against_truth(series_path, batches)


def test_serial_pool_still_concurrent_correct(series_path):
    """A serial decode pool (inline futures) must not deadlock the loop
    or corrupt interleaved responses."""
    from repro.parallel.pool import WorkerPool

    async def scenario():
        with WorkerPool("serial") as pool:
            svc = QueryService(series_path, pool=pool)
            try:
                return await asyncio.gather(
                    *[_client(svc, 3000 + i, N_STEPS) for i in range(4)]
                )
            finally:
                svc.close()

    _check_against_truth(series_path, asyncio.run(scenario()))


def test_region_slicing_matches_manual_slice(series_path):
    async def scenario():
        svc = QueryService(series_path, workers=2)
        try:
            whole = await svc.query(steps=0, levels=0)
            sliced = await svc.query(
                steps=0, levels=0, region=((2, 9), (0, 16), (4, 5))
            )
            return whole, sliced
        finally:
            svc.close()

    whole, sliced = asyncio.run(scenario())
    assert set(whole) == set(sliced)
    for key in whole:
        expect = whole[key][2:9, 0:16, 4:5]
        assert sliced[key].shape == expect.shape
        assert sliced[key].tobytes() == expect.tobytes()


def test_served_arrays_are_read_only(series_path):
    with InProcessClient(series_path, workers=2) as client:
        served = client.query(steps=0, levels=0)
        arr = next(iter(served.values()))
        with pytest.raises(ValueError):
            arr[0, 0, 0] = 1.0


def test_cancelled_waiter_does_not_poison_the_shared_decode(series_path):
    """Single-flight regression: three queries share one cold decode;
    cancelling one *waiter* must not cancel the owner's decode, fail the
    other waiter, or leak an in-flight entry."""
    import threading

    from repro.faults import FaultPlan
    from repro.storage import LocalFileBackend, RangedBackend

    release = threading.Event()
    plan = FaultPlan(sleep=lambda s: release.wait(timeout=30))
    backend = RangedBackend(
        LocalFileBackend(), readahead=1 << 12, max_retries=0, fault=plan,
    )

    async def scenario():
        svc = QueryService(series_path, backend=backend, workers=2)
        try:
            await svc.plan(steps=1)  # catalog in, payload still cold
            plan.latency(1.0)  # payload GETs block on the event
            owner = asyncio.create_task(svc.query(steps=1, levels=0))
            await asyncio.sleep(0.05)  # owner registers the decode
            waiter_a = asyncio.create_task(svc.query(steps=1, levels=0))
            waiter_b = asyncio.create_task(svc.query(steps=1, levels=0))
            await asyncio.sleep(0.05)  # both join the in-flight future
            waiter_a.cancel()
            with pytest.raises(asyncio.CancelledError):
                await waiter_a
            release.set()  # un-stall the owner's fetch
            got_owner = await asyncio.wait_for(owner, timeout=30)
            got_waiter = await asyncio.wait_for(waiter_b, timeout=30)
            assert not svc._inflight
            return got_owner, got_waiter
        finally:
            svc.close()

    got_owner, got_waiter = asyncio.run(scenario())
    truth = direct_truth(series_path, steps=1, levels=0)
    assert_byte_identical(got_owner, truth)
    assert_byte_identical(got_waiter, truth)


def test_decode_worker_death_is_typed_and_service_recovers(series_path):
    """Kill a process-pool decode worker mid-service: the query fails
    with a typed ServeError (not a hang, not a raw BrokenProcessPool),
    and the service answers the next query from a rebuilt pool."""
    from repro.errors import ServeError

    async def scenario():
        svc = QueryService(
            series_path, decode_mode="process", workers=1,
            cache_bytes=None,  # force every query through the pool
        )
        try:
            first = await asyncio.wait_for(svc.query(steps=0, levels=0), 60)
            # Kill the (only) worker process under the executor.
            procs = list(svc._pool._executor._processes.values())
            assert procs, "process pool has no workers"
            for p in procs:
                p.kill()
            with pytest.raises(ServeError, match="decode worker pool"):
                await asyncio.wait_for(svc.query(steps=1, levels=0), 60)
            assert svc.stats["pool_rebuilds"] == 1
            # The rebuilt pool serves the same selection cleanly.
            second = await asyncio.wait_for(svc.query(steps=1, levels=0), 60)
            return first, second
        finally:
            svc.close()

    first, second = asyncio.run(scenario())
    assert_byte_identical(first, direct_truth(series_path, steps=0, levels=0))
    assert_byte_identical(second, direct_truth(series_path, steps=1, levels=0))
