"""Resilient serving: deadlines, admission control, circuit breakers,
and degraded (partial) sharded reads.

Unit tests drive the :mod:`repro.serve.resilience` state machines with
injected clocks; the integration tests put a real :class:`QueryService`
under injected faults (:mod:`repro.faults`) and assert the typed-error
and byte-identity contracts the chaos harness (``tools/chaossim.py``)
sweeps at scale.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    Overloaded,
    StorageError,
)
from repro.faults import FaultPlan
from repro.serve import QueryService
from repro.serve.resilience import AdmissionGate, CircuitBreaker, Deadline
from repro.storage import LocalFileBackend, RangedBackend

from tests.serve.conftest import assert_byte_identical, direct_truth


class Clock:
    """Manually-advanced monotonic clock."""

    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


def _service(path, plan=None, **kwargs):
    backend = RangedBackend(
        LocalFileBackend(), readahead=1 << 12, max_retries=0,
        sleep=lambda s: None, fault=plan,
    )
    return QueryService(path, backend=backend, workers=2, **kwargs), backend


# ----------------------------------------------------------------------
# Deadline
# ----------------------------------------------------------------------
class TestDeadline:
    def test_of_none_means_no_deadline(self):
        assert Deadline.of(None, None) is None

    def test_timeout_is_relative_deadline_absolute(self):
        clock = Clock(100.0)
        dl = Deadline.of(5.0, None, clock)
        assert dl.remaining() == pytest.approx(5.0)
        clock.now = 103.0
        assert dl.remaining() == pytest.approx(2.0)
        assert not dl.expired()
        clock.now = 105.0
        assert dl.expired() and dl.remaining() == 0.0
        absolute = Deadline.of(None, 107.0, clock)
        assert absolute.remaining() == pytest.approx(2.0)

    def test_both_given_earlier_wins(self):
        clock = Clock(0.0)
        dl = Deadline.of(10.0, 3.0, clock)
        assert dl.at == 3.0
        dl = Deadline.of(1.0, 3.0, clock)
        assert dl.at == 1.0

    def test_negative_timeout_rejected(self):
        with pytest.raises(DeadlineExceeded):
            Deadline.of(-1.0, None)


# ----------------------------------------------------------------------
# CircuitBreaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        clock = Clock()
        b = CircuitBreaker(threshold=3, cooldown=10.0, clock=clock)
        for _ in range(2):
            b.record_failure()
        assert b.state == "closed" and b.allow()
        b.record_failure()
        assert b.state == "open"
        assert not b.allow()
        with pytest.raises(CircuitOpenError, match="circuit breaker open"):
            b.check("shard-0")

    def test_success_resets_the_consecutive_count(self):
        b = CircuitBreaker(threshold=2, cooldown=10.0, clock=Clock())
        b.record_failure()
        b.record_success()
        b.record_failure()
        assert b.state == "closed"

    def test_half_open_probe_success_closes(self):
        clock = Clock()
        b = CircuitBreaker(threshold=1, cooldown=10.0, clock=clock)
        b.record_failure()
        assert b.state == "open" and b.remaining() == pytest.approx(10.0)
        clock.now = 10.5
        assert b.allow()  # the single half-open probe
        assert b.state == "half_open"
        assert not b.allow()  # second caller is still fast-failed
        b.record_success()
        assert b.state == "closed" and b.allow()

    def test_half_open_probe_failure_reopens(self):
        clock = Clock()
        b = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
        b.record_failure()
        clock.now = 6.0
        assert b.allow()
        b.record_failure()
        assert b.state == "open"
        assert b.remaining() == pytest.approx(5.0)
        assert b.trips == 2
        stats = b.stats
        assert stats["state"] == "open" and stats["probes"] == 1


# ----------------------------------------------------------------------
# AdmissionGate
# ----------------------------------------------------------------------
class TestAdmissionGate:
    def test_sheds_when_budget_and_queue_full(self):
        async def scenario():
            gate = AdmissionGate(max_inflight=1, max_queue=0)
            await gate.acquire_slot()
            with pytest.raises(Overloaded) as exc_info:
                await gate.acquire_slot()
            assert exc_info.value.retry_after > 0
            gate.release_slot()
            await gate.acquire_slot()  # capacity is back
            gate.release_slot()
            assert gate.stats["shed"] == 1

        asyncio.run(scenario())

    def test_waiters_wake_fifo(self):
        async def scenario():
            gate = AdmissionGate(max_inflight=1, max_queue=4)
            await gate.acquire_slot()
            order: list[int] = []

            async def waiter(i: int):
                await gate.acquire_slot()
                order.append(i)
                await asyncio.sleep(0)
                gate.release_slot()

            tasks = []
            for i in range(3):
                tasks.append(asyncio.create_task(waiter(i)))
                await asyncio.sleep(0)  # park them in arrival order
            gate.release_slot()
            await asyncio.gather(*tasks)
            assert order == [0, 1, 2]

        asyncio.run(scenario())

    def test_deadline_bounds_the_admission_wait(self):
        async def scenario():
            gate = AdmissionGate(max_inflight=1, max_queue=4)
            await gate.acquire_slot()
            with pytest.raises(DeadlineExceeded, match="admission wait"):
                await gate.acquire_slot(Deadline.of(0.01, None))
            # The expired waiter left the queue; the slot still hands on.
            gate.release_slot()
            await gate.acquire_slot()
            gate.release_slot()

        asyncio.run(scenario())

    def test_byte_budget_serializes_and_admits_oversize_alone(self):
        async def scenario():
            gate = AdmissionGate(max_inflight=None, max_queue=4, max_bytes=100)
            r1 = await gate.reserve_bytes(60)
            parked = asyncio.create_task(gate.reserve_bytes(60))
            await asyncio.sleep(0)
            assert not parked.done() and gate.stats["queued"] == 1
            gate.release_bytes(r1)
            assert (await parked) == 60
            gate.release_bytes(60)
            # Larger than the whole budget: admitted only when idle.
            r3 = await gate.reserve_bytes(1000)
            assert r3 == 1000 and gate.bytes_held == 1000
            gate.release_bytes(r3)
            assert gate.bytes_held == 0

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# Integration: deadlines on real queries
# ----------------------------------------------------------------------
def test_query_timeout_raises_deadline_exceeded_then_retry_succeeds(series_path):
    plan = FaultPlan()

    async def scenario():
        svc, _ = _service(series_path, plan)
        try:
            await svc.plan(steps=1)  # catalog in, payload cold
            plan.latency(0.5)  # every payload GET stalls half a second
            with pytest.raises(DeadlineExceeded, match="timeout"):
                await svc.query(steps=1, levels=0, timeout=0.05)
            # Expiry must not poison the single-flight table or cache.
            assert not svc._inflight
            assert svc.stats["deadline_exceeded"] == 1
            plan.clear()
            return await svc.query(steps=1, levels=0)
        finally:
            svc.close()

    served = asyncio.run(scenario())
    assert_byte_identical(served, direct_truth(series_path, steps=1, levels=0))


def test_warm_query_beats_any_reasonable_deadline(series_path):
    async def scenario():
        svc, _ = _service(series_path)
        try:
            await svc.query(steps=0)  # warm up
            return await svc.query(steps=0, timeout=30.0)
        finally:
            svc.close()

    served = asyncio.run(scenario())
    assert_byte_identical(served, direct_truth(series_path, steps=0))


# ----------------------------------------------------------------------
# Integration: admission control
# ----------------------------------------------------------------------
def test_overload_sheds_with_retry_after(series_path):
    plan = FaultPlan()

    async def scenario():
        svc, _ = _service(series_path, plan, max_inflight=1, max_queue=0)
        try:
            await svc.plan(steps=0)
            plan.latency(0.3)
            slow = asyncio.create_task(svc.query(steps=0, levels=0))
            await asyncio.sleep(0.05)  # let it get admitted and stall
            with pytest.raises(Overloaded, match="overloaded") as exc_info:
                await svc.query(steps=1)
            assert exc_info.value.retry_after is not None
            assert svc.stats["shed"] == 1
            await slow  # the admitted query still completes cleanly
            plan.clear()
            return await svc.query(steps=1)
        finally:
            svc.close()

    served = asyncio.run(scenario())
    assert_byte_identical(served, direct_truth(series_path, steps=1))


# ----------------------------------------------------------------------
# Integration: circuit breakers
# ----------------------------------------------------------------------
def test_breaker_trips_fast_fails_and_recovers_after_cooldown(sharded_path):
    plan = FaultPlan()
    clock = Clock()

    async def scenario():
        svc, backend = _service(
            sharded_path, plan,
            breaker_threshold=2, breaker_cooldown=30.0, clock=clock,
        )
        try:
            victim = svc._segments[0][0]
            victim_steps = sorted(
                s for s, (f, _, _) in svc._segments.items() if f == victim
            )
            plan.always(lambda name, off, length: name == victim)
            for _ in range(2):
                with pytest.raises(StorageError):
                    await svc.query(steps=0)
            assert svc.stats["breakers"][victim]["state"] == "open"
            # Tripped: fast-fail without touching the backend at all.
            before = backend.stats["requests"]
            with pytest.raises(CircuitOpenError, match="circuit breaker open"):
                await svc.query(steps=0)
            assert backend.stats["requests"] == before
            # Other shards are unaffected by the open breaker.
            healthy = min(
                s for s in svc._segments if s not in victim_steps
            )
            served = await svc.query(steps=healthy, levels=1)
            # Cooldown passes and the backend heals: the half-open probe
            # succeeds and the breaker closes again.
            clock.now += 31.0
            plan.clear()
            recovered = await svc.query(steps=0, levels=0)
            assert svc.stats["breakers"][victim]["state"] == "closed"
            return healthy, served, recovered
        finally:
            svc.close()

    healthy, served, recovered = asyncio.run(scenario())
    assert_byte_identical(
        served, direct_truth(sharded_path, steps=healthy, levels=1)
    )
    assert_byte_identical(
        recovered, direct_truth(sharded_path, steps=0, levels=0)
    )


def test_breakers_can_be_disabled(series_path):
    plan = FaultPlan()

    async def scenario():
        svc, _ = _service(series_path, plan, breaker_threshold=None)
        try:
            plan.always(lambda name, off, length: True)
            for _ in range(8):
                with pytest.raises(StorageError, match="injected"):
                    await svc.query(steps=0)
            assert svc.stats["breakers"] == {}
            plan.clear()
            return await svc.query(steps=0, levels=0)
        finally:
            svc.close()

    served = asyncio.run(scenario())
    assert_byte_identical(served, direct_truth(series_path, steps=0, levels=0))


# ----------------------------------------------------------------------
# Integration: degraded (partial) sharded serving
# ----------------------------------------------------------------------
def test_partial_serves_around_a_dead_shard(sharded_path):
    plan = FaultPlan()

    async def scenario():
        svc, _ = _service(sharded_path, plan, breaker_threshold=None)
        try:
            victim = svc._segments[0][0]
            victim_steps = sorted(
                s for s, (f, _, _) in svc._segments.items() if f == victim
            )
            survivor_steps = sorted(
                s for s in svc._segments if s not in victim_steps
            )
            plan.always(lambda name, off, length: name == victim)
            # Non-partial: the dead shard fails the whole query.
            with pytest.raises(StorageError, match="injected"):
                await svc.query(levels=1)
            # Partial: surviving shards answer, the dead one is reported.
            results, info = await svc.query_info(levels=1, partial=True)
            assert info.partial
            assert sorted({m["step"] for m in info.missing}) == victim_steps
            assert all(m["file"] == victim for m in info.missing)
            assert all(m["error"] and m["detail"] for m in info.missing)
            result_steps = sorted({k[0] for k in results})
            assert result_steps == survivor_steps
            assert svc.stats["partial_queries"] == 1
            # The shard comes back: the same partial query is complete.
            plan.clear()
            full, info2 = await svc.query_info(levels=1, partial=True)
            assert info2.missing == []
            return results, survivor_steps, full
        finally:
            svc.close()

    results, survivor_steps, full = asyncio.run(scenario())
    assert_byte_identical(
        results, direct_truth(sharded_path, steps=survivor_steps, levels=1)
    )
    assert_byte_identical(full, direct_truth(sharded_path, levels=1))


def test_partial_with_healthy_shards_reports_nothing_missing(sharded_path):
    async def scenario():
        svc, _ = _service(sharded_path)
        try:
            return await svc.query_info(steps=[0, 1], partial=True)
        finally:
            svc.close()

    results, info = asyncio.run(scenario())
    assert info.missing == []
    assert_byte_identical(results, direct_truth(sharded_path, steps=[0, 1]))
