"""Tier-1 tests for the experiment registry (the CI-gated benchmark fleet).

Every registered entry actually runs here at quick scale — a broken paper
check or a metric/declaration mismatch fails tier-1, not a nightly run.
The registry's own contract (duplicate rejection, group resolution, gate
directions, artifact schema, CLI) is pinned alongside.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments.registry import (
    EXPERIMENTS,
    GROUP_NAMES,
    MetricSpec,
    check,
    groups,
    load_all,
    main,
    register,
    resolve,
    round_sig,
    run_experiment,
)

load_all()


# ----------------------------------------------------------------------
# The fleet itself: every entry runs quick and honours its declaration
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_entry_runs_quick_and_emits_schema_valid_artifact(name, tmp_path):
    result = run_experiment(name, quick=True, out_dir=tmp_path)
    spec = EXPERIMENTS[name]
    assert result.scale == spec.quick_scale
    assert set(result.metrics) == set(spec.metrics)
    # The artifact exists, parses, and passes the shared schema validator.
    assert result.artifact == tmp_path / f"BENCH_{name}.json"
    doc = json.loads(result.artifact.read_text())
    from repro.experiments.registry import _perf_harness

    _perf_harness().validate_artifact(doc)
    assert doc["bench"] == name
    assert doc["scale"] == spec.quick_scale
    # Deterministic artifacts never carry the RSS annotation.
    assert "peak_rss_mb" not in doc


def test_every_entry_declares_gate_directions():
    for name, spec in EXPERIMENTS.items():
        assert spec.group in GROUP_NAMES
        assert spec.metrics, f"{name} declares no metrics"
        for metric, mspec in spec.metrics.items():
            assert isinstance(mspec.higher_is_better, bool), (name, metric)
            assert mspec.unit is not None
            if mspec.tolerance is not None:
                assert 0 < mspec.tolerance <= 1


def test_fleet_covers_every_paper_driver():
    """The registry absorbs all figure/table/ablation drivers + scenario."""
    have = set(EXPERIMENTS)
    expected = {
        "fig01", "fig02", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14",
        "table1", "table2",
        "ablation_artifacts", "ablation_blocksize", "ablation_entropy",
        "ablation_predictor", "ablation_redundant", "ablation_zmesh",
        "warpx_mixed_bounds",
    }
    assert expected <= have


# ----------------------------------------------------------------------
# Registry contract
# ----------------------------------------------------------------------
def test_duplicate_name_rejected():
    with pytest.raises(ExperimentError, match="duplicate"):
        register("fig01", "figures", "dup", {"m": MetricSpec("x")})(lambda s: {"m": 1.0})


def test_unknown_group_rejected():
    with pytest.raises(ExperimentError, match="unknown group"):
        register("nope", "nonsense", "t", {"m": MetricSpec("x")})(lambda s: {"m": 1.0})


def test_empty_metrics_rejected():
    with pytest.raises(ExperimentError, match="declares no metrics"):
        register("nope2", "figures", "t", {})(lambda s: {})


def test_unknown_experiment_rejected():
    with pytest.raises(ExperimentError, match="unknown experiment"):
        run_experiment("does_not_exist")
    with pytest.raises(ExperimentError, match="unknown experiment or group"):
        resolve(["does_not_exist"])


def test_metric_mismatch_rejected(tmp_path):
    register(
        "_mismatch", "figures", "t", {"declared": MetricSpec("x")}
    )(lambda s: {"other": 1.0})
    try:
        with pytest.raises(ExperimentError, match="declares"):
            run_experiment("_mismatch")
    finally:
        del EXPERIMENTS["_mismatch"]


def test_resolve_groups_and_all():
    all_names = resolve(["all"])
    assert set(all_names) == set(EXPERIMENTS)
    figures = resolve(["figures"])
    assert figures and all(EXPERIMENTS[n].group == "figures" for n in figures)
    # Group + member dedups; order is registry order.
    assert resolve(["figures", "fig01"]) == figures
    by_group = groups()
    assert set(by_group) <= set(GROUP_NAMES)
    assert sorted(n for ns in by_group.values() for n in ns) == sorted(EXPERIMENTS)


def test_round_sig_is_stable():
    assert round_sig(1.23456789) == 1.23457
    assert round_sig(0.000123456789) == 0.000123457
    assert round_sig(0.0) == 0.0
    assert round_sig(float("inf")) == float("inf")


def test_check_raises_experiment_error():
    check(True, "fine")
    with pytest.raises(ExperimentError, match="paper-shape"):
        check(False, "paper-shape broke")


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for group in groups():
        assert f"{group}:" in out
    assert "fig09" in out


def test_cli_run_single_quick_writes_artifact(tmp_path, capsys):
    rc = main(["run", "fig14", "--quick", "--out", str(tmp_path)])
    assert rc == 0
    assert (tmp_path / "BENCH_fig14.json").exists()
    out = capsys.readouterr().out
    assert "1 experiment(s) passed" in out


def test_cli_run_group_selection(tmp_path):
    rc = main(["run", "tables", "--quick", "--out", str(tmp_path)])
    assert rc == 0
    assert (tmp_path / "BENCH_table1.json").exists()
    assert (tmp_path / "BENCH_table2.json").exists()


def test_cli_unknown_selector_fails(capsys):
    assert main(["run", "not_a_thing"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_cli_failing_check_reports_and_fails(capsys):
    register(
        "_failing", "figures", "t", {"m": MetricSpec("x")}
    )(lambda s: check(False, "boom") or {"m": 1.0})
    try:
        assert main(["run", "_failing", "--quick"]) == 1
        err = capsys.readouterr().err
        assert "FAIL _failing" in err and "boom" in err
    finally:
        del EXPERIMENTS["_failing"]


def test_module_cli_dispatches_run_subcommand(capsys):
    from repro.experiments.__main__ import main as top_main

    assert top_main(["list"]) == 0
    assert "figures:" in capsys.readouterr().out
