"""Tests for the Table 1 / Table 2 regenerators."""

from __future__ import annotations

import pytest

from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2

SCALE = 0.25


@pytest.fixture(scope="module")
def table1():
    return run_table1(SCALE)


@pytest.fixture(scope="module")
def table2():
    return run_table2(SCALE, error_bounds=(1e-3, 1e-2))


class TestTable1:
    def test_both_apps(self, table1):
        assert {r.app for r in table1} == {"warpx", "nyx"}

    def test_two_levels_each(self, table1):
        assert all(r.n_levels == 2 for r in table1)

    def test_density_near_paper(self, table1):
        for row in table1:
            assert row.density_error < 0.1

    def test_fine_grid_doubles(self, table1):
        for row in table1:
            assert all(f == 2 * c for c, f in zip(*row.grids))


class TestTable2:
    def test_row_count(self, table2):
        assert len(table2) == 2 * 2 * 2  # apps x codecs x bounds

    def test_cr_increases_with_eb(self, table2):
        for app in ("warpx", "nyx"):
            for codec in ("sz-lr", "sz-interp"):
                rows = [r for r in table2 if r.app == app and r.codec == codec]
                rows.sort(key=lambda r: r.error_bound)
                crs = [r.cr for r in rows]
                assert crs == sorted(crs)

    def test_psnr_decreases_with_eb(self, table2):
        for app in ("warpx", "nyx"):
            for codec in ("sz-lr", "sz-interp"):
                rows = sorted(
                    (r for r in table2 if r.app == app and r.codec == codec),
                    key=lambda r: r.error_bound,
                )
                psnrs = [r.psnr for r in rows]
                assert psnrs == sorted(psnrs, reverse=True)

    def test_r_ssim_increases_with_eb(self, table2):
        for app in ("warpx", "nyx"):
            for codec in ("sz-lr", "sz-interp"):
                rows = sorted(
                    (r for r in table2 if r.app == app and r.codec == codec),
                    key=lambda r: r.error_bound,
                )
                rs = [r.r_ssim for r in rows]
                assert rs == sorted(rs)

    def test_interp_wins_cr_on_warpx(self, table2):
        # The paper's WarpX finding: SZ-Interp compresses smooth data better.
        for eb in (1e-3, 1e-2):
            lr = next(r for r in table2 if r.app == "warpx" and r.codec == "sz-lr" and r.error_bound == eb)
            it = next(r for r in table2 if r.app == "warpx" and r.codec == "sz-interp" and r.error_bound == eb)
            assert it.cr > lr.cr

    def test_paper_refs_attached(self, table2):
        assert all(r.paper_cr is not None for r in table2)
        assert all(r.paper_r_ssim is not None for r in table2)

    def test_ssim_close_to_one_at_small_eb(self, table2):
        small = [r for r in table2 if r.error_bound == 1e-3]
        assert all(r.ssim > 0.99 for r in small)
