"""Tests for report formatting and the experiments CLI."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments.report import ascii_plot, format_table, rows_to_csv
from repro.experiments.__main__ import main


@dataclass
class Row:
    name: str
    value: float
    count: int


ROWS = [Row("alpha", 1.2345678, 3), Row("beta", 1e-7, 42)]


class TestFormatTable:
    def test_contains_headers_and_rows(self):
        text = format_table(ROWS, title="T")
        assert "T" in text
        assert "alpha" in text and "beta" in text
        assert "name" in text

    def test_scientific_for_small_values(self):
        assert "1.000e-07" in format_table(ROWS)

    def test_column_subset(self):
        text = format_table(ROWS, columns=["name"])
        assert "value" not in text

    def test_empty(self):
        assert "empty" in format_table([])


class TestCsv:
    def test_write_and_content(self, tmp_path):
        path = rows_to_csv(ROWS, tmp_path / "out.csv")
        text = path.read_text()
        assert text.splitlines()[0] == "name,value,count"
        assert "alpha" in text

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            rows_to_csv([], tmp_path / "x.csv")


class TestAsciiPlot:
    def test_markers_and_legend(self):
        out = ascii_plot({"a": [(1, 1), (2, 2)], "b": [(1, 2)]}, width=20, height=5)
        assert "*" in out and "o" in out
        assert "a" in out and "b" in out

    def test_log_axes(self):
        out = ascii_plot({"s": [(1, 1e-6), (10, 1e-2)]}, logy=True, logx=True)
        assert "1e" in out

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ExperimentError):
            ascii_plot({"s": [(1, 0.0)]}, logy=True)

    def test_empty(self):
        assert "no data" in ascii_plot({})


class TestCli:
    def test_fig14(self, capsys):
        assert main(["fig14"]) == 0
        out = capsys.readouterr().out
        assert "re-sampled" in out

    def test_table1_with_out(self, tmp_path, capsys):
        assert main(["table1", "--scale", "0.25", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "table1.csv").is_file()
        assert "warpx" in capsys.readouterr().out

    def test_fig1_writes_images(self, tmp_path):
        assert main(["fig1", "--scale", "0.25", "--out", str(tmp_path)]) == 0
        images = list((tmp_path / "images").glob("*.pgm"))
        assert len(images) == 3

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["fig99"])
