"""Tests for the in-situ streaming-vs-batch campaign experiment."""

from __future__ import annotations

from repro.experiments.insitu import run_insitu


def test_streaming_beats_batch_memory():
    rows = run_insitu(scale=0.2, steps=4)
    by_path = {r.path: r for r in rows}
    assert set(by_path) == {"streaming", "batch"}
    stream, batch = by_path["streaming"], by_path["batch"]
    # Identical work, identical artifact size, same campaign.
    assert stream.steps == batch.steps == 4
    assert stream.out_mb == batch.out_mb
    assert stream.ratio == batch.ratio > 1.0
    # The whole point: streaming never holds the campaign.
    assert stream.peak_mb < batch.peak_mb
    assert stream.mb_s > 0 and batch.mb_s > 0
