"""Tests for canonical experiment datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments.datasets import APPS, PAPER_TABLE1, PAPER_TABLE2, load_app

SCALE = 0.25  # tiny grids for CI


class TestLoadApp:
    @pytest.mark.parametrize("app", APPS)
    def test_loads_and_caches(self, app):
        a = load_app(app, SCALE)
        b = load_app(app, SCALE)
        assert a is b  # lru cached

    def test_unknown_app_rejected(self):
        with pytest.raises(ExperimentError):
            load_app("athena", SCALE)

    def test_warpx_shape_elongated(self):
        ds = load_app("warpx", SCALE)
        shape = ds.hierarchy.grid_shape(0)
        assert shape[2] > 4 * shape[0]

    def test_nyx_cubic(self):
        ds = load_app("nyx", SCALE)
        s = ds.hierarchy.grid_shape(0)
        assert s[0] == s[1] == s[2]

    def test_fields_exist(self):
        for app in APPS:
            ds = load_app(app, SCALE)
            assert ds.field in ds.hierarchy.field_names

    def test_iso_inside_field_range(self):
        for app in APPS:
            ds = load_app(app, SCALE)
            u = ds.uniform_field()
            assert u.min() < ds.iso < u.max()

    def test_uniform_field_shape(self):
        ds = load_app("nyx", SCALE)
        assert ds.uniform_field().shape == ds.hierarchy.grid_shape(1)

    def test_seed_override_changes_data(self):
        a = load_app("nyx", SCALE)
        b = load_app("nyx", SCALE, seed=123)
        assert not np.array_equal(a.uniform_field(), b.uniform_field())


class TestPaperReferences:
    def test_table1_density_shares_sum_to_one(self):
        for app, ref in PAPER_TABLE1.items():
            assert sum(ref["densities"]) == pytest.approx(1.0, abs=0.01)

    def test_table2_complete(self):
        for app in APPS:
            for codec in ("sz-lr", "sz-interp"):
                for eb in (1e-4, 1e-3, 1e-2):
                    assert (app, codec, eb) in PAPER_TABLE2
