"""Tests for the figure regenerators and the paper's qualitative claims."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.figures import (
    run_fig1,
    run_fig2,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_fig14,
)

SCALE = 0.25


class TestFig1:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_fig1(SCALE)

    def test_three_methods(self, rows):
        assert [r.method for r in rows] == ["resampling", "dual", "dual+redundant"]

    def test_resampling_has_cracks(self, rows):
        assert rows[0].open_edge_count > 0

    def test_dual_gap_worse_than_crack(self, rows):
        resample, dual, fixed = rows
        assert dual.mean_gap > resample.mean_gap

    def test_redundant_fix_best(self, rows):
        resample, dual, fixed = rows
        assert fixed.mean_gap < dual.mean_gap
        assert fixed.max_gap < dual.max_gap

    def test_images_captured(self):
        store = {}
        run_fig1(SCALE, image_store=store)
        assert len(store) == 3
        assert all(img.ndim == 2 for img in store.values())


class TestFig2:
    def test_structure_sharpens_over_time(self):
        rows = run_fig2(SCALE)
        assert len(rows) == 3
        maxima = [r.max_density for r in rows]
        assert maxima == sorted(maxima)
        assert all(0.2 < r.fine_fraction < 0.6 for r in rows)


class TestFig9:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_fig9(SCALE)

    def test_grid(self, rows):
        assert len(rows) == 3 * 2  # 3 ebs x 2 methods

    def test_dual_amplifies_artifacts(self, rows):
        # Paper's central claim: same eb, dual-cell render R-SSIM worse.
        for eb in (1e-4, 1e-3, 1e-2):
            res = next(r for r in rows if r.error_bound == eb and r.method == "resampling")
            dual = next(r for r in rows if r.error_bound == eb and r.method == "dual+redundant")
            assert dual.render_r_ssim > res.render_r_ssim

    def test_r_ssim_grows_with_eb(self, rows):
        for method in ("resampling", "dual+redundant"):
            series = sorted(
                (r for r in rows if r.method == method), key=lambda r: r.error_bound
            )
            vals = [r.render_r_ssim for r in series]
            assert vals == sorted(vals)


class TestFig10And11:
    def test_fig10_dual_worse(self):
        rows = run_fig10(SCALE)
        res = next(r for r in rows if r.method == "resampling")
        dual = next(r for r in rows if r.method == "dual+redundant")
        assert dual.render_r_ssim > res.render_r_ssim

    def test_fig11_has_original_and_codecs(self):
        rows = run_fig11(SCALE)
        codecs = {r.codec for r in rows}
        assert codecs == {"original", "sz-lr", "sz-interp"}
        originals = [r for r in rows if r.codec == "original"]
        assert all(r.render_r_ssim == 0.0 for r in originals)


class TestRDFigures:
    @pytest.fixture(scope="class")
    def fig12(self):
        return run_fig12(SCALE)

    @pytest.fixture(scope="class")
    def fig13(self):
        return run_fig13(SCALE)

    def test_fig12_interp_dominates_cr(self, fig12):
        # WarpX: at every eb, SZ-Interp reaches a higher ratio (Fig 12).
        by_eb = {}
        for r in fig12:
            by_eb.setdefault(r.error_bound, {})[r.codec] = r
        for eb, d in by_eb.items():
            assert d["sz-interp"].cr > d["sz-lr"].cr

    def test_fig13_lr_wins_r_ssim_on_nyx(self):
        # Nyx: SZ-L/R beats SZ-Interp on R-SSIM at the largest bound (the
        # paper's Figure 13b / Table 2 observation). The effect needs real
        # small-scale irregularity, so this one claim runs at scale 0.5
        # (32^3 + 64^3) rather than the CI scale.
        from repro.experiments.figures import run_rd

        rows = run_rd("nyx", scale=0.5, error_bounds=(1e-2,))
        lr = next(r for r in rows if r.codec == "sz-lr")
        it = next(r for r in rows if r.codec == "sz-interp")
        assert lr.r_ssim < it.r_ssim

    def test_curves_monotone(self, fig12, fig13):
        for rows in (fig12, fig13):
            for codec in ("sz-lr", "sz-interp"):
                series = sorted(
                    (r for r in rows if r.codec == codec), key=lambda r: r.error_bound
                )
                crs = [r.cr for r in series]
                assert crs == sorted(crs)


class TestFig14:
    def test_exact_paper_arrays(self):
        demo = run_fig14()
        assert demo.original.tolist() == list(range(9))
        assert demo.decompressed.tolist() == [1, 1, 1, 4, 4, 4, 7, 7, 7]
        assert demo.resampled.tolist() == [1, 1, 1, 2.5, 4, 4, 5.5, 7, 7, 7]
        assert demo.resampled_rmse < demo.dual_cell_rmse
