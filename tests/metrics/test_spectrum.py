"""Tests for power-spectrum metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MetricError
from repro.metrics import power_spectrum, spectrum_distortion


class TestPowerSpectrum:
    def test_single_mode_lands_in_right_bin(self):
        n = 64
        x = np.arange(n)
        xx, yy = np.meshgrid(x, x, indexing="ij")
        field = np.sin(2 * np.pi * 5 * xx / n)  # pure mode k=5
        k, p = power_spectrum(field, n_bins=16)
        peak_bin = int(np.argmax(p))
        assert abs(k[peak_bin] - 5.0) < 2.5

    def test_red_spectrum_decays(self):
        from repro.sims import gaussian_random_field

        f = gaussian_random_field((64, 64, 64), spectral_index=-3.0, seed=0)
        k, p = power_spectrum(f, n_bins=10)
        # Power must fall by a large factor from the largest to the
        # smallest scales for a red spectrum.
        assert p[0] > 30 * p[-1]

    def test_dc_removed(self):
        k, p = power_spectrum(np.full((16, 16), 7.0))
        assert np.allclose(p, 0.0)

    def test_parseval_scaling(self, rng):
        f = rng.normal(size=(32, 32))
        k, p = power_spectrum(f, n_bins=8)
        assert (p >= 0).all()

    def test_validation(self):
        with pytest.raises(MetricError):
            power_spectrum(np.zeros(16))  # 1-D unsupported
        with pytest.raises(MetricError):
            power_spectrum(np.zeros((8, 8)), n_bins=1)


class TestSpectrumDistortion:
    def test_identical_zero(self, rng):
        f = rng.normal(size=(32, 32, 32))
        _, d = spectrum_distortion(f, f)
        assert np.allclose(d, 0.0)

    def test_small_eb_small_distortion(self):
        from repro.compression import SZInterp
        from repro.sims import gaussian_random_field

        f = gaussian_random_field((32, 32, 32), spectral_index=-2.5, seed=1)
        codec = SZInterp()
        recon = codec.decompress(codec.compress(f, 1e-4, mode="rel"))
        k, d = spectrum_distortion(f, recon, n_bins=8)
        # Large scales essentially untouched at eb 1e-4.
        assert d[0] < 0.01

    def test_distortion_grows_with_eb(self):
        from repro.compression import SZLR
        from repro.sims import gaussian_random_field

        f = gaussian_random_field((32, 32, 32), spectral_index=-2.5, seed=2)
        codec = SZLR()
        outs = []
        for eb in (1e-4, 1e-2):
            recon = codec.decompress(codec.compress(f, eb, mode="rel"))
            _, d = spectrum_distortion(f, recon, n_bins=8)
            outs.append(np.nanmean(d))
        assert outs[0] < outs[1]

    def test_small_scales_distorted_first(self):
        """Compression noise is broadband: relative damage concentrates at
        high k where the red spectrum has the least power."""
        from repro.compression import SZLR
        from repro.sims import gaussian_random_field

        f = gaussian_random_field((48, 48, 48), spectral_index=-3.0, seed=3)
        codec = SZLR()
        recon = codec.decompress(codec.compress(f, 1e-2, mode="rel"))
        _, d = spectrum_distortion(f, recon, n_bins=8)
        assert d[-1] > d[0]
