"""Tests for the from-scratch SSIM / R-SSIM."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MetricError
from repro.metrics import r_ssim, ssim, ssim_map


@pytest.fixture
def image(rng):
    x, y = np.meshgrid(np.linspace(0, 4, 64), np.linspace(0, 4, 64), indexing="ij")
    return np.sin(x) * np.cos(y) + 0.05 * rng.normal(size=(64, 64))


class TestIdentity:
    def test_identical_images_ssim_one(self, image):
        assert ssim(image, image) == pytest.approx(1.0, abs=1e-9)

    def test_r_ssim_zero(self, image):
        assert r_ssim(image, image) == pytest.approx(0.0, abs=1e-9)

    def test_uniform_window_identity(self, image):
        assert ssim(image, image, sigma=None, window=7) == pytest.approx(1.0, abs=1e-9)


class TestSensitivity:
    def test_monotone_in_noise(self, image, rng):
        noisy1 = image + 0.01 * rng.normal(size=image.shape)
        noisy2 = image + 0.1 * rng.normal(size=image.shape)
        assert ssim(image, noisy1) > ssim(image, noisy2)

    def test_constant_shift_penalized_less_than_structure_loss(self, image, rng):
        shifted = image + 0.05
        scrambled = rng.permutation(image.ravel()).reshape(image.shape)
        assert ssim(image, shifted) > ssim(image, scrambled)

    def test_range_bounded(self, image, rng):
        other = rng.normal(size=image.shape)
        val = ssim(image, other)
        assert -1.0 <= val <= 1.0

    def test_map_shape(self, image):
        m = ssim_map(image, image)
        assert m.shape == image.shape

    def test_local_degradation_localized(self, image):
        corrupted = image.copy()
        corrupted[20:30, 20:30] += 1.0
        m = ssim_map(image, corrupted)
        assert m[25, 25] < 0.9
        assert m[5, 5] > 0.99


class TestVolumes:
    def test_3d_uniform_window(self, rng):
        vol = rng.normal(size=(20, 20, 20))
        assert ssim(vol, vol, sigma=None, window=5) == pytest.approx(1.0, abs=1e-9)

    def test_3d_noise_sensitivity(self, rng):
        vol = np.broadcast_to(np.linspace(0, 1, 20)[:, None, None], (20, 20, 20)).copy()
        noisy = vol + 0.1 * rng.normal(size=vol.shape)
        assert ssim(vol, noisy, sigma=None, window=5) < 0.99


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(Exception):
            ssim(np.zeros((8, 8)), np.zeros((9, 9)))

    def test_even_window_rejected(self, image):
        with pytest.raises(MetricError):
            ssim(image, image, window=8)

    def test_window_larger_than_image(self):
        with pytest.raises(MetricError):
            ssim(np.zeros((5, 5)), np.zeros((5, 5)), window=11)

    def test_data_range_override(self, image):
        a = ssim(image, image + 0.01, data_range=1.0)
        b = ssim(image, image + 0.01, data_range=100.0)
        assert b > a  # larger nominal range -> more forgiving
