"""Tests for point-wise error metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MetricError
from repro.metrics import max_abs_error, mse, nrmse, psnr, rmse, verify_error_bound


class TestBasics:
    def test_identical_arrays(self, rng):
        a = rng.normal(size=(10, 10))
        assert max_abs_error(a, a) == 0.0
        assert mse(a, a) == 0.0
        assert psnr(a, a) == float("inf")

    def test_known_values(self):
        a = np.array([0.0, 1.0, 2.0, 3.0])
        b = a + np.array([0.1, -0.1, 0.1, -0.1])
        assert max_abs_error(a, b) == pytest.approx(0.1)
        assert mse(a, b) == pytest.approx(0.01)
        assert rmse(a, b) == pytest.approx(0.1)
        assert nrmse(a, b) == pytest.approx(0.1 / 3.0)

    def test_psnr_formula(self):
        a = np.array([0.0, 10.0])
        b = np.array([1.0, 10.0])
        # range = 10, mse = 0.5 -> psnr = 20log10(10) - 10log10(0.5)
        assert psnr(a, b) == pytest.approx(20.0 + 10.0 * np.log10(2.0))

    def test_psnr_decreases_with_noise(self, rng):
        a = rng.normal(size=1000)
        small = a + 1e-5 * rng.normal(size=1000)
        large = a + 1e-2 * rng.normal(size=1000)
        assert psnr(a, small) > psnr(a, large)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(Exception):
            mse(np.zeros(3), np.zeros(4))

    def test_constant_reference_rejected(self):
        with pytest.raises(MetricError):
            psnr(np.full(5, 2.0), np.zeros(5))
        with pytest.raises(MetricError):
            nrmse(np.full(5, 2.0), np.zeros(5))


class TestVerifyBound:
    def test_within(self):
        a = np.zeros(10)
        assert verify_error_bound(a, a + 0.01, 0.02)

    def test_exceeds(self):
        a = np.zeros(10)
        assert not verify_error_bound(a, a + 0.05, 0.02)

    def test_exact_boundary_tolerated(self):
        a = np.zeros(4)
        b = a + 0.02 * (1 + 1e-12)
        assert verify_error_bound(a, b, 0.02)

    def test_bad_eb_rejected(self):
        with pytest.raises(MetricError):
            verify_error_bound(np.zeros(2), np.zeros(2), 0.0)
